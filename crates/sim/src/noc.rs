//! The 2D-mesh network-on-chip model.
//!
//! Packets are moved at routing-packet granularity (2048 B by default,
//! matching the paper's Table 3 unit): each packet store-and-forwards
//! across its path, holding every link for its serialization time
//! (`bytes / link_bytes_per_cycle`) plus a per-hop router latency. Links
//! are `busy_until` resources, so two flows crossing the same link contend
//! and the loser's wait shows up in [`Noc::contention_cycles`] — this is
//! the *NoC interference* phenomenon of §4.1.2.
//!
//! Routing is pluggable through [`NocRouter`]: the bare-metal default
//! ([`DorRouter`]) applies dimension-order routing on physical IDs; the
//! `vnpu` crate supplies a vRouter implementation that first translates
//! virtual core IDs through the routing table and optionally walks
//! direction-override paths confined to the virtual topology.

use crate::config::SocConfig;
use crate::{Result, SimError};
use std::collections::{BTreeSet, HashMap};
use vnpu_topo::{route, NodeId, Topology};

/// Resolves program-level destination core IDs and supplies NoC paths.
///
/// Implementations must be deterministic; `resolve` may mutate internal
/// state (e.g. a last-destination cache, as in the paper: "if consecutive
/// instructions are directed to the same NPU core, the subsequent
/// instructions do not need to query the routing table again").
pub trait NocRouter: Send {
    /// Translates a program-level destination to a physical core ID,
    /// returning the lookup cost in cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteFault`] when the destination is not mapped
    /// for this core's tenant.
    fn resolve(&mut self, dst_program: u32) -> Result<(u32, u64)>;

    /// Physical path (node sequence including both endpoints) between two
    /// physical cores.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteFault`] when no path exists.
    fn path(&self, src_phys: u32, dst_phys: u32) -> Result<Vec<u32>>;

    /// Extra cycles charged per packet (destination-rewrite muxing in the
    /// send/receive engine; 0 for bare-metal).
    fn per_packet_overhead(&self) -> u64 {
        0
    }

    /// Mechanism name for reports.
    fn name(&self) -> String;
}

/// Bare-metal routing: program IDs *are* physical IDs; dimension-order
/// (X-then-Y) paths; zero lookup cost.
#[derive(Debug, Clone)]
pub struct DorRouter {
    topo: Topology,
}

impl DorRouter {
    /// Creates a DOR router over the machine's mesh.
    pub fn new(cfg: &SocConfig) -> Self {
        DorRouter {
            topo: Topology::mesh2d(cfg.mesh_width, cfg.mesh_height),
        }
    }
}

impl NocRouter for DorRouter {
    fn resolve(&mut self, dst_program: u32) -> Result<(u32, u64)> {
        if (dst_program as usize) < self.topo.node_count() {
            Ok((dst_program, 0))
        } else {
            Err(SimError::RouteFault {
                core: u32::MAX,
                dst: dst_program,
            })
        }
    }

    fn path(&self, src_phys: u32, dst_phys: u32) -> Result<Vec<u32>> {
        route::dor_path(&self.topo, NodeId(src_phys), NodeId(dst_phys))
            .map(|p| p.into_iter().map(|n| n.0).collect())
            .map_err(|_| SimError::RouteFault {
                core: src_phys,
                dst: dst_phys,
            })
    }

    fn name(&self) -> String {
        "dor".to_owned()
    }
}

/// One directed mesh link's occupancy state.
#[derive(Debug, Clone, Copy, Default)]
struct Link {
    busy_until: u64,
    bytes_carried: u64,
}

/// The mesh NoC: directed links with busy-until contention tracking.
#[derive(Debug, Clone)]
pub struct Noc {
    links: HashMap<(u32, u32), Link>,
    link_bw: u64,
    router_latency: u64,
    contention_cycles: u64,
    packets_sent: u64,
    /// Faulted directed links (injected hardware failures). A packet
    /// routed across one errors with [`SimError::LinkFaulted`]. Faults
    /// model hardware, so — like the link graph — they survive
    /// [`Noc::reset_epoch`] until explicitly repaired.
    faulted: BTreeSet<(u32, u32)>,
    /// Extra per-hop router cycles charged while the chip runs in
    /// degraded mode (active faults anywhere on the chip force the
    /// routers onto slower fault-tolerant arbitration). 0 = healthy.
    degraded_penalty: u64,
}

/// Timing of one packet's traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketTiming {
    /// When the packet finished serializing onto the first link (the
    /// sender's injection port is free again).
    pub injected_at: u64,
    /// When the packet fully arrived at the destination.
    pub arrived_at: u64,
}

impl Noc {
    /// Creates the NoC for a mesh configuration.
    pub fn new(cfg: &SocConfig) -> Self {
        let topo = Topology::mesh2d(cfg.mesh_width, cfg.mesh_height);
        let mut links = HashMap::new();
        for (a, b) in topo.edges() {
            links.insert((a.0, b.0), Link::default());
            links.insert((b.0, a.0), Link::default());
        }
        Noc {
            links,
            link_bw: cfg.link_bytes_per_cycle.max(1),
            router_latency: cfg.router_latency,
            contention_cycles: 0,
            packets_sent: 0,
            faulted: BTreeSet::new(),
            degraded_penalty: 0,
        }
    }

    /// Sends one packet of `bytes` along `path` starting no earlier than
    /// `depart`. Returns the injection-done and arrival times.
    ///
    /// A single-node path (self-send) arrives after one router latency.
    /// While the chip runs degraded (see [`Noc::set_degraded_penalty`]),
    /// every hop pays the extra penalty on top of the router latency.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteFault`] if the path uses a non-existent
    /// link, or [`SimError::LinkFaulted`] if it crosses a faulted one.
    pub fn send_packet(&mut self, path: &[u32], bytes: u64, depart: u64) -> Result<PacketTiming> {
        self.packets_sent += 1;
        let hop_latency = self.router_latency + self.degraded_penalty;
        if path.len() < 2 {
            return Ok(PacketTiming {
                injected_at: depart,
                arrived_at: depart + hop_latency,
            });
        }
        let ser = bytes.div_ceil(self.link_bw);
        let mut t = depart;
        let mut injected_at = None;
        for w in path.windows(2) {
            if self.faulted.contains(&(w[0], w[1])) {
                return Err(SimError::LinkFaulted {
                    src: w[0],
                    dst: w[1],
                });
            }
            let link = self
                .links
                .get_mut(&(w[0], w[1]))
                .ok_or(SimError::RouteFault {
                    core: w[0],
                    dst: w[1],
                })?;
            let start = t.max(link.busy_until);
            self.contention_cycles += start - t;
            link.busy_until = start + ser;
            link.bytes_carried += bytes;
            if injected_at.is_none() {
                injected_at = Some(start + ser);
            }
            t = start + hop_latency + ser;
        }
        Ok(PacketTiming {
            injected_at: injected_at.expect("path has at least one link"),
            arrived_at: t,
        })
    }

    /// Rewinds the NoC to an idle state for a fresh machine epoch: every
    /// link's `busy_until` clock and the per-epoch counters are zeroed,
    /// while the link graph itself is reused (never rebuilt).
    pub fn reset_epoch(&mut self) {
        for link in self.links.values_mut() {
            *link = Link::default();
        }
        self.contention_cycles = 0;
        self.packets_sent = 0;
    }

    /// Total cycles packets spent waiting for busy links (the NoC
    /// interference metric).
    pub fn contention_cycles(&self) -> u64 {
        self.contention_cycles
    }

    /// Total packets injected.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Marks (or repairs) the *undirected* link between `a` and `b` —
    /// both directed entries change together, since a physical fault
    /// takes out the whole wire. Returns whether the state changed
    /// (`false` = the link was already in the requested state).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteFault`] when `a` and `b` are not adjacent
    /// in the mesh (there is no such link to fault).
    pub fn set_link_faulted(&mut self, a: u32, b: u32, faulted: bool) -> Result<bool> {
        if !self.links.contains_key(&(a, b)) || !self.links.contains_key(&(b, a)) {
            return Err(SimError::RouteFault { core: a, dst: b });
        }
        let changed = if faulted {
            self.faulted.insert((a, b)) | self.faulted.insert((b, a))
        } else {
            self.faulted.remove(&(a, b)) | self.faulted.remove(&(b, a))
        };
        Ok(changed)
    }

    /// Whether the directed link `src → dst` is currently faulted.
    pub fn link_faulted(&self, src: u32, dst: u32) -> bool {
        self.faulted.contains(&(src, dst))
    }

    /// Currently faulted directed links, in sorted order.
    pub fn faulted_links(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.faulted.iter().copied()
    }

    /// Number of faulted directed links.
    pub fn faulted_link_count(&self) -> usize {
        self.faulted.len()
    }

    /// Sets the degraded-mode per-hop penalty (0 restores full speed).
    pub fn set_degraded_penalty(&mut self, cycles: u64) {
        self.degraded_penalty = cycles;
    }

    /// The current degraded-mode per-hop penalty.
    pub fn degraded_penalty(&self) -> u64 {
        self.degraded_penalty
    }

    /// Bytes carried per directed link, for utilization heat maps.
    pub fn link_loads(&self) -> Vec<((u32, u32), u64)> {
        let mut v: Vec<_> = self
            .links
            .iter()
            .map(|(&k, l)| (k, l.bytes_carried))
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SocConfig {
        SocConfig::fpga() // 4x2 mesh, 16 B/cyc links, router latency 3
    }

    #[test]
    fn dor_router_identity_resolution() {
        let mut r = DorRouter::new(&cfg());
        assert_eq!(r.resolve(3).unwrap(), (3, 0));
        assert!(r.resolve(99).is_err());
    }

    #[test]
    fn single_hop_packet_timing() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        // 2048 B over a 16 B/cyc link: 128 cycles serialization + 3 router.
        let t = noc.send_packet(&[0, 1], 2048, 0).unwrap();
        assert_eq!(t.injected_at, 128);
        assert_eq!(t.arrived_at, 131);
    }

    #[test]
    fn multi_hop_accumulates_router_latency() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        // 0 -> 1 -> 2 -> 3 on the 4x2 mesh: 3 hops.
        let t = noc.send_packet(&[0, 1, 2, 3], 2048, 0).unwrap();
        assert_eq!(t.arrived_at, 3 * (128 + 3));
    }

    #[test]
    fn self_send_is_cheap() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        let t = noc.send_packet(&[5], 2048, 10).unwrap();
        assert_eq!(t.arrived_at, 10 + c.router_latency);
    }

    #[test]
    fn contention_serializes_same_link() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        let a = noc.send_packet(&[0, 1], 2048, 0).unwrap();
        let b = noc.send_packet(&[0, 1], 2048, 0).unwrap();
        assert_eq!(b.injected_at, a.injected_at + 128);
        assert_eq!(noc.contention_cycles(), 128);
    }

    #[test]
    fn disjoint_links_do_not_contend() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        let a = noc.send_packet(&[0, 1], 2048, 0).unwrap();
        let b = noc.send_packet(&[2, 3], 2048, 0).unwrap();
        assert_eq!(a.arrived_at, b.arrived_at);
        assert_eq!(noc.contention_cycles(), 0);
    }

    #[test]
    fn reverse_direction_is_separate_link() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        noc.send_packet(&[0, 1], 2048, 0).unwrap();
        let b = noc.send_packet(&[1, 0], 2048, 0).unwrap();
        assert_eq!(b.injected_at, 128);
        assert_eq!(noc.contention_cycles(), 0);
    }

    #[test]
    fn crossing_flows_contend_on_shared_segment() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        // Flow A: 0->1->2; Flow B: 4->... wait, use 1->2 shared:
        // A: 0->1->2, B: 5->1? 5 is below 1 on 4x2 mesh (nodes 0..3 top row,
        // 4..7 bottom). B: 5->1->2 shares link (1,2).
        let a = noc.send_packet(&[0, 1, 2], 2048, 0).unwrap();
        let b = noc.send_packet(&[5, 1, 2], 2048, 0).unwrap();
        assert!(noc.contention_cycles() > 0);
        assert!(b.arrived_at > a.arrived_at || a.arrived_at > 2 * 131);
    }

    #[test]
    fn invalid_link_rejected() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        // 0 and 2 are not adjacent on the 4-wide mesh.
        assert!(noc.send_packet(&[0, 2], 64, 0).is_err());
    }

    #[test]
    fn table3_shape_packet_scaling() {
        // The Table 3 calibration: send N packets back-to-back over one hop;
        // marginal cost per packet ≈ serialization (128 cyc at 2048 B,
        // 16 B/cyc). Matches the paper's ~141 cyc/packet with overheads.
        let c = cfg();
        let mut noc = Noc::new(&c);
        let mut depart = 0;
        let mut last_arrival = 0;
        for _ in 0..10 {
            let t = noc.send_packet(&[0, 1], 2048, depart).unwrap();
            depart = t.injected_at;
            last_arrival = t.arrived_at;
        }
        assert_eq!(last_arrival, 10 * 128 + 3);
    }

    #[test]
    fn faulted_link_rejects_packets_and_survives_epoch_reset() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        assert!(noc.set_link_faulted(0, 1, true).unwrap());
        assert!(!noc.set_link_faulted(0, 1, true).unwrap(), "idempotent");
        assert!(noc.link_faulted(0, 1) && noc.link_faulted(1, 0));
        assert!(matches!(
            noc.send_packet(&[0, 1], 2048, 0),
            Err(SimError::LinkFaulted { src: 0, dst: 1 })
        ));
        // Epoch resets rewind clocks, not hardware state.
        noc.reset_epoch();
        assert!(noc.link_faulted(0, 1));
        assert_eq!(noc.faulted_link_count(), 2);
        assert!(noc.set_link_faulted(0, 1, false).unwrap());
        assert!(noc.send_packet(&[0, 1], 2048, 0).is_ok());
        // Non-adjacent pairs cannot be faulted.
        assert!(noc.set_link_faulted(0, 2, true).is_err());
    }

    #[test]
    fn degraded_penalty_slows_every_hop() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        noc.set_degraded_penalty(5);
        assert_eq!(noc.degraded_penalty(), 5);
        let t = noc.send_packet(&[0, 1, 2], 2048, 0).unwrap();
        assert_eq!(t.arrived_at, 2 * (128 + 3 + 5));
        noc.set_degraded_penalty(0);
        noc.reset_epoch();
        let t = noc.send_packet(&[0, 1, 2], 2048, 0).unwrap();
        assert_eq!(t.arrived_at, 2 * (128 + 3));
    }

    #[test]
    fn link_loads_accumulate() {
        let c = cfg();
        let mut noc = Noc::new(&c);
        noc.send_packet(&[0, 1], 2048, 0).unwrap();
        noc.send_packet(&[0, 1], 2048, 0).unwrap();
        let loads = noc.link_loads();
        let l01 = loads.iter().find(|(k, _)| *k == (0, 1)).unwrap().1;
        assert_eq!(l01, 4096);
        assert_eq!(noc.packets_sent(), 2);
    }
}
