//! The per-epoch half of the machine: bound threads, in-flight events,
//! flow/flag/barrier bookkeeping, and the deterministic event loop.
//!
//! A [`crate::machine::Machine`] is split in two layers so a
//! serving runtime can interleave tenant arrivals with execution:
//!
//! * **persistent chip state** (`machine.rs`) — configuration, per-core
//!   hardware (hybrid-core scalings), the NoC link graph, HBM channels,
//!   and the tenant registry. Built once, reused for every batch.
//! * **epoch state** (this module) — everything one workload batch
//!   creates: thread bindings with their virtualization services, the
//!   event queue, flow credits, global-memory flags and barriers, and the
//!   per-core activity traces. [`Machine::finish_epoch`] drops this layer
//!   and resets the chip's *clocks* (link/channel `busy_until`), while the
//!   chip structures themselves are never rebuilt.
//!
//! The event loop itself also lives here: it is the part of the machine
//! that only ever touches one epoch.

use crate::compute::kernel_cycles;
use crate::controller;
use crate::isa::{Instr, Program};
use crate::machine::{Machine, TenantId};
use crate::stats::{Activity, CoreTrace, Report, TenantStats};
use crate::{Result, SimError};
use std::collections::hash_map::Entry;
use std::collections::{BinaryHeap, HashMap};
use vnpu_mem::{Perm, VirtAddr};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    Prelude(usize),
    Body { iter: u32, pc: usize },
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct FlowKey {
    pub tenant: TenantId,
    pub src: u32,
    pub dst: u32,
    pub tag: u32,
}

#[derive(Debug, Default)]
pub(crate) struct FlowState {
    pub sent: u64,
    pub arrived: u64,
    pub consumed: u64,
    /// Blocked receiver: (thread, bytes needed beyond `consumed`, since).
    pub waiter: Option<(usize, u64, u64)>,
    /// Senders blocked on flow credit.
    pub credit_waiters: Vec<usize>,
}

#[derive(Debug)]
pub(crate) struct ThreadState {
    pub tenant: TenantId,
    pub prog_core: u32,
    pub phys_core: u32,
    pub program: Program,
    pub phase: Phase,
    pub warmup_done: Option<u64>,
    pub finished_at: Option<u64>,
    pub body_started: Option<u64>,
    pub compute_cycles: u64,
    pub macs: u64,
    pub consumed_flags: HashMap<u32, u64>,
    pub blocked: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Event {
    ThreadReady(usize),
    PacketArrive {
        flow_idx: usize,
        bytes: u64,
    },
    FlagWrite {
        tenant: TenantId,
        tag: u32,
        bytes: u64,
    },
}

#[derive(Debug, PartialEq, Eq)]
pub(crate) struct QueuedEvent {
    pub time: u64,
    pub seq: u64,
    pub event: Event,
}

impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via reverse comparison on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything one workload batch allocates on the machine. Dropped and
/// rebuilt (cheaply — all containers start empty) by
/// [`Machine::finish_epoch`]; the chip state is not.
#[derive(Debug)]
pub(crate) struct EpochState {
    pub threads: Vec<ThreadState>,
    pub queue: BinaryHeap<QueuedEvent>,
    pub seq: u64,
    pub now: u64,
    pub flow_index: HashMap<FlowKey, usize>,
    pub flows: Vec<FlowState>,
    pub flags: HashMap<(TenantId, u32), u64>,
    /// (thread, tag, needed_total, since)
    pub flag_waiters: Vec<(usize, u32, u64, u64)>,
    pub barriers: HashMap<(TenantId, u32), Vec<(usize, u64)>>,
    /// Threads bound per tenant *this epoch* (barrier quorum).
    pub tenant_threads: HashMap<TenantId, u32>,
    pub traces: Vec<CoreTrace>,
    pub mem_trace: Vec<(u64, u32, u64)>, // (time, core, va)
}

impl EpochState {
    pub(crate) fn new(core_count: usize) -> Self {
        EpochState {
            threads: Vec::new(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: 0,
            flow_index: HashMap::new(),
            flows: Vec::new(),
            flags: HashMap::new(),
            flag_waiters: Vec::new(),
            barriers: HashMap::new(),
            tenant_threads: HashMap::new(),
            traces: (0..core_count).map(|_| CoreTrace::default()).collect(),
            mem_trace: Vec::new(),
        }
    }
}

/// The event loop: the epoch-scoped half of [`Machine`]'s behaviour.
impl Machine {
    pub(crate) fn push_event(&mut self, time: u64, event: Event) {
        self.epoch.seq += 1;
        self.epoch.queue.push(QueuedEvent {
            time,
            seq: self.epoch.seq,
            event,
        });
    }

    fn flow_idx(&mut self, key: FlowKey) -> usize {
        match self.epoch.flow_index.entry(key) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                let idx = self.epoch.flows.len();
                v.insert(idx);
                self.epoch.flows.push(FlowState::default());
                idx
            }
        }
    }

    /// Runs the current epoch's bound programs to completion.
    ///
    /// The machine stays in the finished-epoch state afterwards (reports
    /// drained); call [`Machine::finish_epoch`] — or use
    /// [`Machine::run_epoch`] — to make it bindable again.
    ///
    /// # Errors
    ///
    /// * [`SimError::Deadlock`] — threads remain blocked with no pending
    ///   events (e.g. a `Recv` whose `Send` never happens).
    /// * [`SimError::CycleLimit`] — the configured cycle budget ran out.
    /// * [`SimError::MemFault`] / [`SimError::RouteFault`] — a program
    ///   performed an invalid access.
    pub fn run(&mut self) -> Result<Report> {
        // Kick off every thread at its controller-dispatch offset.
        for t in 0..self.epoch.threads.len() {
            let core = self.epoch.threads[t].phys_core;
            let offset = controller::dispatch_latency(
                self.config(),
                controller::DispatchPath::InstructionNoc,
                core,
            );
            self.push_event(offset, Event::ThreadReady(t));
        }
        while let Some(q) = self.epoch.queue.pop() {
            self.epoch.now = q.time;
            if self.epoch.now > self.config().max_cycles {
                return Err(SimError::CycleLimit {
                    limit: self.config().max_cycles,
                });
            }
            match q.event {
                Event::ThreadReady(t) => self.step_thread(t)?,
                Event::PacketArrive { flow_idx, bytes } => self.packet_arrive(flow_idx, bytes),
                Event::FlagWrite { tenant, tag, bytes } => self.flag_write(tenant, tag, bytes),
            }
        }
        // Done or deadlocked.
        let blocked: Vec<String> = self
            .epoch
            .threads
            .iter()
            .enumerate()
            .filter(|(_, th)| th.phase != Phase::Done)
            .map(|(i, th)| {
                format!(
                    "thread {i} (tenant {}, core {}): {}",
                    th.tenant,
                    th.phys_core,
                    th.blocked.as_deref().unwrap_or("not started")
                )
            })
            .collect();
        if !blocked.is_empty() {
            return Err(SimError::Deadlock {
                detail: blocked.join("; "),
            });
        }
        Ok(self.build_report())
    }

    fn current_instr(&self, t: usize) -> Option<Instr> {
        let th = &self.epoch.threads[t];
        match th.phase {
            Phase::Prelude(pc) => th.program.prelude.get(pc).copied(),
            Phase::Body { pc, .. } => th.program.body.get(pc).copied(),
            Phase::Done => None,
        }
    }

    /// Advances the phase state machine past the current instruction,
    /// recording warm-up / completion timestamps at boundaries.
    fn advance(&mut self, t: usize, at: u64) {
        let th = &mut self.epoch.threads[t];
        th.phase = match th.phase {
            Phase::Prelude(pc) => {
                if pc + 1 < th.program.prelude.len() {
                    Phase::Prelude(pc + 1)
                } else {
                    th.warmup_done = Some(at);
                    if th.program.body.is_empty() || th.program.iterations == 0 {
                        th.finished_at = Some(at);
                        Phase::Done
                    } else {
                        th.body_started = Some(at);
                        Phase::Body { iter: 0, pc: 0 }
                    }
                }
            }
            Phase::Body { iter, pc } => {
                if pc + 1 < th.program.body.len() {
                    Phase::Body { iter, pc: pc + 1 }
                } else if iter + 1 < th.program.iterations {
                    Phase::Body {
                        iter: iter + 1,
                        pc: 0,
                    }
                } else {
                    th.finished_at = Some(at);
                    Phase::Done
                }
            }
            Phase::Done => Phase::Done,
        };
    }

    fn finish_instr(&mut self, t: usize, at: u64) {
        self.advance(t, at);
        if self.epoch.threads[t].phase != Phase::Done {
            self.push_event(at, Event::ThreadReady(t));
        }
    }

    fn step_thread(&mut self, t: usize) -> Result<()> {
        self.epoch.threads[t].blocked = None;
        if self.epoch.threads[t].body_started.is_none() {
            if let Phase::Body { .. } = self.epoch.threads[t].phase {
                self.epoch.threads[t].body_started = Some(self.epoch.now);
                if self.epoch.threads[t].warmup_done.is_none() {
                    self.epoch.threads[t].warmup_done = Some(self.epoch.now);
                }
            }
        }
        let Some(instr) = self.current_instr(t) else {
            return Ok(());
        };
        match instr {
            Instr::Delay { cycles } => {
                let done = self.epoch.now + cycles;
                self.finish_instr(t, done);
            }
            Instr::Compute(kernel) => {
                let phys = self.epoch.threads[t].phys_core as usize;
                let (matrix_scale, vector_scale) = self.core_scales(phys);
                let scale = match kernel {
                    crate::isa::Kernel::Vector { .. } => vector_scale,
                    _ => matrix_scale,
                };
                let dur = (kernel_cycles(self.config(), &kernel) * u64::from(scale) / 100).max(1);
                let now = self.epoch.now;
                let tdm_penalty = self.config().tdm_switch_penalty;
                let core = self.core_mut(phys);
                let mut start = now.max(core.compute_busy_until);
                if core.thread_count > 1 && core.last_owner.is_some_and(|o| o != t) {
                    start += tdm_penalty;
                }
                core.compute_busy_until = start + dur;
                core.last_owner = Some(t);
                self.epoch.threads[t].compute_cycles += dur;
                self.epoch.threads[t].macs += kernel.macs();
                self.epoch.traces[phys].push(start, start + dur, Activity::Compute);
                self.finish_instr(t, start + dur);
            }
            Instr::DmaLoad { va, bytes } => self.do_dma(t, va, bytes, Perm::R)?,
            Instr::DmaStore { va, bytes } => self.do_dma(t, va, bytes, Perm::W)?,
            Instr::Send { dst, bytes, tag } => self.do_send(t, dst, bytes, tag)?,
            Instr::Recv { src, bytes, tag } => self.do_recv(t, src, bytes, tag),
            Instr::GlobalWrite { va, bytes, tag } => self.do_global_write(t, va, bytes, tag)?,
            Instr::GlobalRead { va, bytes, tag } => self.do_global_read(t, va, bytes, tag)?,
            Instr::Barrier { id } => self.do_barrier(t, id),
        }
        Ok(())
    }

    /// Streams a DMA transfer: chunked issue, translation stalls, optional
    /// bandwidth limiting, HBM channel contention.
    fn do_dma(&mut self, t: usize, va: VirtAddr, bytes: u64, perm: Perm) -> Result<()> {
        let phys = self.epoch.threads[t].phys_core;
        let channel = self.config().interface_of(phys);
        let burst = self.config().dma_burst_bytes.max(1);
        let issue_interval = self.config().dma_issue_interval;
        let mem_trace_enabled = self.mem_trace_enabled;
        let now = self.epoch.now;
        let services = self.services.get_mut(t).expect("every thread has services");
        let mut issue = now;
        let mut done = now;
        let mut off = 0u64;
        while off < bytes {
            let len = burst.min(bytes - off);
            let tr = services
                .translator
                .translate(va.offset(off), len, perm)
                .map_err(|err| SimError::MemFault { core: phys, err })?;
            if tr.hit {
                issue += tr.cycles;
            } else {
                // §4.2: "Any TLB misses can cause a stall in numerous
                // subsequent DMA requests" — the engine drains its
                // outstanding transfers, then walks, then resumes issuing.
                issue = done.max(issue) + tr.cycles;
            }
            if let Some(lim) = services.limiter.as_mut() {
                issue += lim.record(issue, len);
            }
            let _ = tr.pa; // physical address is modelled, not dereferenced
            let completion = self.hbm.access(channel, len, issue);
            done = done.max(completion);
            if mem_trace_enabled {
                self.epoch
                    .mem_trace
                    .push((issue, phys, va.offset(off).value()));
            }
            issue += issue_interval;
            off += len;
        }
        self.epoch.traces[phys as usize].push(now, done, Activity::Dma);
        self.finish_instr(t, done);
        Ok(())
    }

    fn do_send(&mut self, t: usize, dst: u32, bytes: u64, tag: u32) -> Result<()> {
        let th = &self.epoch.threads[t];
        let key = FlowKey {
            tenant: th.tenant,
            src: th.prog_core,
            dst,
            tag,
        };
        let phys = th.phys_core;
        let fidx = self.flow_idx(key);
        // Finite receive buffering: block while too many bytes are in
        // flight and unconsumed.
        let credit = self.config().flow_credit_bytes.max(bytes);
        let flow = &mut self.epoch.flows[fidx];
        if flow.sent - flow.consumed + bytes > credit {
            flow.credit_waiters.push(t);
            self.epoch.threads[t].blocked = Some(format!(
                "send to {dst} tag {tag}: flow-credit wait ({} in flight)",
                flow.sent - flow.consumed
            ));
            return Ok(());
        }
        flow.sent += bytes;
        let send_setup = self.config().send_setup;
        let packet_bytes = self.config().packet_bytes;
        let packet_overhead = self.config().packet_overhead;
        let now = self.epoch.now;
        let services = self.services.get_mut(t).expect("every thread has services");
        let (dst_phys, lookup) = services
            .router
            .resolve(dst)
            .map_err(|_| SimError::RouteFault { core: phys, dst })?;
        let path = services.router.path(phys, dst_phys)?;
        let per_packet = services.router.per_packet_overhead();
        // The thread only programs the engine; streaming is asynchronous.
        let engine_ready = now + send_setup + lookup;
        let mut depart = engine_ready.max(self.core(phys as usize).send_engine_busy_until);
        let send_started = depart;
        let mut off = 0u64;
        let mut arrivals: Vec<(u64, u64)> = Vec::new();
        while off < bytes {
            let len = packet_bytes.min(bytes - off);
            let timing = self.noc.send_packet(&path, len, depart + per_packet)?;
            depart = timing.injected_at + packet_overhead;
            arrivals.push((timing.arrived_at + packet_overhead, len));
            off += len;
        }
        for (at, len) in arrivals {
            self.push_event(
                at,
                Event::PacketArrive {
                    flow_idx: fidx,
                    bytes: len,
                },
            );
        }
        self.core_mut(phys as usize).send_engine_busy_until = depart;
        self.epoch.traces[phys as usize].push(send_started, depart, Activity::Send);
        self.finish_instr(t, engine_ready);
        Ok(())
    }

    fn do_recv(&mut self, t: usize, src: u32, bytes: u64, tag: u32) {
        let th = &self.epoch.threads[t];
        let key = FlowKey {
            tenant: th.tenant,
            src,
            dst: th.prog_core,
            tag,
        };
        let fidx = self.flow_idx(key);
        let flow = &mut self.epoch.flows[fidx];
        if flow.arrived - flow.consumed >= bytes {
            flow.consumed += bytes;
            let waiters = std::mem::take(&mut flow.credit_waiters);
            let now = self.epoch.now;
            for w in waiters {
                self.push_event(now, Event::ThreadReady(w));
            }
            let done = now + self.recv_ack;
            self.finish_instr(t, done);
        } else {
            debug_assert!(flow.waiter.is_none(), "one receiver per flow");
            flow.waiter = Some((t, bytes, self.epoch.now));
            self.epoch.threads[t].blocked = Some(format!(
                "recv from {src} tag {tag}: waiting for {bytes} bytes"
            ));
        }
    }

    fn packet_arrive(&mut self, fidx: usize, bytes: u64) {
        let flow = &mut self.epoch.flows[fidx];
        flow.arrived += bytes;
        if let Some((t, needed, since)) = flow.waiter {
            if flow.arrived - flow.consumed >= needed {
                flow.waiter = None;
                flow.consumed += needed;
                let waiters = std::mem::take(&mut flow.credit_waiters);
                let now = self.epoch.now;
                let phys = self.epoch.threads[t].phys_core as usize;
                self.epoch.traces[phys].push(since, now, Activity::RecvWait);
                for w in waiters {
                    self.push_event(now, Event::ThreadReady(w));
                }
                let done = now + self.recv_ack;
                self.finish_instr(t, done);
            }
        }
    }

    fn do_global_write(&mut self, t: usize, va: VirtAddr, bytes: u64, tag: u32) -> Result<()> {
        // Write the payload + a flag line through the HBM channel, at
        // load/store (cache-line) granularity.
        let tenant = self.epoch.threads[t].tenant;
        let phys = self.epoch.threads[t].phys_core;
        let channel = self.config().interface_of(phys);
        let burst = self.config().dma_burst_bytes.max(1);
        let (line, mlp) = (self.config().uvm_line_bytes, self.config().uvm_mlp);
        let issue_interval = self.config().dma_issue_interval;
        let send_setup = self.config().send_setup;
        let now = self.epoch.now;
        let services = self.services.get_mut(t).expect("every thread has services");
        let mut issue = now;
        let mut done = now;
        let mut off = 0u64;
        while off < bytes {
            let len = burst.min(bytes - off);
            let tr = services
                .translator
                .translate(va.offset(off), len, Perm::W)
                .map_err(|err| SimError::MemFault { core: phys, err })?;
            issue += tr.cycles;
            if let Some(lim) = services.limiter.as_mut() {
                issue += lim.record(issue, len);
            }
            done = done.max(self.hbm.access_uvm(channel, len, issue, line, mlp));
            issue += issue_interval;
            off += len;
        }
        // Flag publication: one extra cache-line write after the data.
        let flag_done = self.hbm.access_uvm(channel, 64, done, line, mlp);
        self.epoch.traces[phys as usize].push(now, flag_done, Activity::Send);
        self.push_event(flag_done, Event::FlagWrite { tenant, tag, bytes });
        // Stores drain through a write buffer: the producer core continues
        // after issuing (symmetric with the asynchronous send engine); the
        // channel occupancy above still serializes its later accesses.
        self.finish_instr(t, now + send_setup);
        Ok(())
    }

    fn do_global_read(&mut self, t: usize, va: VirtAddr, bytes: u64, tag: u32) -> Result<()> {
        let tenant = self.epoch.threads[t].tenant;
        let consumed = *self.epoch.threads[t].consumed_flags.get(&tag).unwrap_or(&0);
        let available = *self.epoch.flags.get(&(tenant, tag)).unwrap_or(&0);
        if available >= consumed + bytes {
            // Data is published: read it through HBM (contention!).
            self.epoch.threads[t]
                .consumed_flags
                .insert(tag, consumed + bytes);
            let phys = self.epoch.threads[t].phys_core;
            let channel = self.config().interface_of(phys);
            let burst = self.config().dma_burst_bytes.max(1);
            let (line, mlp) = (self.config().uvm_line_bytes, self.config().uvm_mlp);
            let issue_interval = self.config().dma_issue_interval;
            let now = self.epoch.now;
            let services = self.services.get_mut(t).expect("every thread has services");
            let mut issue = now;
            let mut done = now;
            let mut off = 0u64;
            while off < bytes {
                let len = burst.min(bytes - off);
                let tr = services
                    .translator
                    .translate(va.offset(off), len, Perm::R)
                    .map_err(|err| SimError::MemFault { core: phys, err })?;
                issue += tr.cycles;
                if let Some(lim) = services.limiter.as_mut() {
                    issue += lim.record(issue, len);
                }
                done = done.max(self.hbm.access_uvm(channel, len, issue, line, mlp));
                issue += issue_interval;
                off += len;
            }
            self.epoch.traces[phys as usize].push(now, done, Activity::RecvWait);
            self.finish_instr(t, done);
        } else {
            self.epoch
                .flag_waiters
                .push((t, tag, consumed + bytes, self.epoch.now));
            self.epoch.threads[t].blocked = Some(format!(
                "global-read tag {tag}: waiting for {} bytes (have {available})",
                consumed + bytes
            ));
        }
        Ok(())
    }

    fn flag_write(&mut self, tenant: TenantId, tag: u32, bytes: u64) {
        *self.epoch.flags.entry((tenant, tag)).or_insert(0) += bytes;
        let available = self.epoch.flags[&(tenant, tag)];
        let mut still_waiting = Vec::new();
        let waiters = std::mem::take(&mut self.epoch.flag_waiters);
        let now = self.epoch.now;
        for (t, wtag, needed, since) in waiters {
            if wtag == tag && self.epoch.threads[t].tenant == tenant && available >= needed {
                self.push_event(now, Event::ThreadReady(t));
            } else {
                still_waiting.push((t, wtag, needed, since));
            }
        }
        self.epoch.flag_waiters = still_waiting;
    }

    fn do_barrier(&mut self, t: usize, id: u32) {
        let tenant = self.epoch.threads[t].tenant;
        let total = self.epoch.tenant_threads[&tenant];
        let now = self.epoch.now;
        let entry = self.epoch.barriers.entry((tenant, id)).or_default();
        entry.push((t, now));
        if entry.len() as u32 == total {
            let participants = std::mem::take(entry);
            for (p, _) in participants {
                self.advance(p, now);
                if self.epoch.threads[p].phase != Phase::Done {
                    self.push_event(now, Event::ThreadReady(p));
                }
            }
            // Re-check Done bookkeeping for completed threads handled in advance().
        } else {
            self.epoch.threads[t].blocked = Some(format!("barrier {id}"));
        }
    }

    fn build_report(&mut self) -> Report {
        // A thread's final instruction completes without scheduling another
        // event, so the true makespan is the max over completion stamps,
        // not the last event time.
        let makespan = self
            .epoch
            .threads
            .iter()
            .filter_map(|th| th.finished_at)
            .max()
            .unwrap_or(0)
            .max(self.epoch.now);
        let mut tenants: HashMap<TenantId, TenantStats> = HashMap::new();
        for th in &self.epoch.threads {
            let s = tenants.entry(th.tenant).or_insert_with(|| TenantStats {
                name: self.tenant_names[&th.tenant].clone(),
                warmup_end: 0,
                body_start: u64::MAX,
                end: 0,
                iterations: th.program.iterations,
                threads: 0,
                compute_cycles: 0,
                macs: 0,
            });
            s.threads += 1;
            s.warmup_end = s.warmup_end.max(th.warmup_done.unwrap_or(0));
            s.body_start = s.body_start.min(th.body_started.unwrap_or(u64::MAX));
            s.end = s.end.max(th.finished_at.unwrap_or(0));
            s.compute_cycles += th.compute_cycles;
            s.macs += th.macs;
            s.iterations = s.iterations.max(th.program.iterations);
        }
        let translator_stats = self
            .services
            .iter()
            .enumerate()
            .map(|(i, s)| (self.epoch.threads[i].phys_core, s.translator.stats()))
            .collect();
        Report::new(
            self.config().clone(),
            makespan,
            tenants,
            std::mem::take(&mut self.epoch.traces),
            self.noc.contention_cycles(),
            self.noc.packets_sent(),
            self.hbm.wait_cycles(),
            translator_stats,
            std::mem::take(&mut self.epoch.mem_trace),
        )
    }
}

/// A summary of one finished epoch, kept by the machine for trend
/// queries without retaining whole [`Report`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochSummary {
    /// Zero-based index of the epoch.
    pub index: u64,
    /// Makespan of the epoch in cycles.
    pub makespan: u64,
    /// Threads that ran in the epoch.
    pub threads: usize,
    /// Tenants that had at least one thread bound.
    pub tenants: usize,
}
