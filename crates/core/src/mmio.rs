//! Hyper-mode MMIO register model (§5.1).
//!
//! "vNPU first introduces a new feature: hyper mode for the NPU
//! controller. Only the hyper-mode NPU controller is permitted to modify
//! virtualization-related tables ... only the hypervisor is authorized to
//! map MMIO space of hyper-mode NPU controller (e.g., PF); whereas guest
//! VMs are restricted to mapping the MMIO spaces only associated with
//! virtual NPUs (e.g., VF)."
//!
//! This module models that register file and its access-control rules:
//! the physical function (PF) holds the meta-table base/bound registers
//! and per-core hyper registers; each virtual function (VF) exposes only
//! its own doorbell/status window. Guest writes to PF space — or to
//! another tenant's VF — are rejected, which is the property the
//! capability-matrix tests lean on.

use crate::ids::VmId;
use crate::{Result, VnpuError};
use std::collections::BTreeMap;

/// Who is issuing an MMIO access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requester {
    /// The hypervisor through the hyper-mode controller mapping.
    Hypervisor,
    /// A guest VM through its VF mapping.
    Guest(VmId),
}

/// PF register offsets (one page, hypervisor-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u64)]
#[non_exhaustive]
pub enum PfReg {
    /// Base address of the routing table in controller SRAM.
    RtBase = 0x00,
    /// Number of routing-table entries.
    RtLen = 0x08,
    /// Base address of the range translation table (meta-zone).
    RttBase = 0x10,
    /// `RTT_END`: number of RTT entries.
    RttLen = 0x18,
    /// Per-window byte budget of the access counter (0 = unlimited).
    BandwidthBudget = 0x20,
    /// Hyper-mode enable bit.
    HyperEnable = 0x28,
}

/// VF register offsets (one page per virtual NPU, guest-mappable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u64)]
#[non_exhaustive]
pub enum VfReg {
    /// Doorbell: guest kicks program dispatch.
    Doorbell = 0x00,
    /// Status: busy/idle.
    Status = 0x08,
    /// Completed-iterations counter (read-only to the guest).
    Completed = 0x10,
}

/// Size of each function's register window in bytes.
pub const FUNCTION_WINDOW_BYTES: u64 = 0x1000;

/// The controller's MMIO space: one PF window plus one VF window per
/// virtual NPU.
#[derive(Debug, Default)]
pub struct MmioSpace {
    pf: BTreeMap<u64, u64>,
    vfs: BTreeMap<VmId, BTreeMap<u64, u64>>,
}

impl MmioSpace {
    /// Creates an empty MMIO space (hyper mode disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a VF window for a newly created virtual NPU.
    pub fn add_vf(&mut self, vm: VmId) {
        self.vfs.entry(vm).or_default();
    }

    /// Removes a VF window on teardown.
    pub fn remove_vf(&mut self, vm: VmId) {
        self.vfs.remove(&vm);
    }

    /// Writes a PF register. Hypervisor-only.
    ///
    /// # Errors
    ///
    /// [`VnpuError::MmioDenied`] for guest requesters.
    pub fn write_pf(&mut self, who: Requester, reg: PfReg, value: u64) -> Result<()> {
        match who {
            Requester::Hypervisor => {
                self.pf.insert(reg as u64, value);
                Ok(())
            }
            Requester::Guest(vm) => Err(VnpuError::MmioDenied {
                vm,
                offset: reg as u64,
            }),
        }
    }

    /// Reads a PF register. Hypervisor-only.
    ///
    /// # Errors
    ///
    /// [`VnpuError::MmioDenied`] for guest requesters.
    pub fn read_pf(&self, who: Requester, reg: PfReg) -> Result<u64> {
        match who {
            Requester::Hypervisor => Ok(self.pf.get(&(reg as u64)).copied().unwrap_or(0)),
            Requester::Guest(vm) => Err(VnpuError::MmioDenied {
                vm,
                offset: reg as u64,
            }),
        }
    }

    /// Writes a VF register: the hypervisor may touch any VF; a guest
    /// only its own.
    ///
    /// # Errors
    ///
    /// [`VnpuError::MmioDenied`] on cross-tenant access;
    /// [`VnpuError::UnknownVm`] for unregistered windows.
    pub fn write_vf(&mut self, who: Requester, vm: VmId, reg: VfReg, value: u64) -> Result<()> {
        self.check_vf(who, vm, reg as u64)?;
        self.vfs
            .get_mut(&vm)
            .ok_or(VnpuError::UnknownVm(vm))?
            .insert(reg as u64, value);
        Ok(())
    }

    /// Reads a VF register under the same rules as [`MmioSpace::write_vf`].
    ///
    /// # Errors
    ///
    /// See [`MmioSpace::write_vf`].
    pub fn read_vf(&self, who: Requester, vm: VmId, reg: VfReg) -> Result<u64> {
        self.check_vf(who, vm, reg as u64)?;
        Ok(self
            .vfs
            .get(&vm)
            .ok_or(VnpuError::UnknownVm(vm))?
            .get(&(reg as u64))
            .copied()
            .unwrap_or(0))
    }

    fn check_vf(&self, who: Requester, vm: VmId, offset: u64) -> Result<()> {
        match who {
            Requester::Hypervisor => Ok(()),
            Requester::Guest(g) if g == vm => Ok(()),
            Requester::Guest(g) => Err(VnpuError::MmioDenied { vm: g, offset }),
        }
    }

    /// Whether hyper mode has been enabled by the hypervisor.
    pub fn hyper_enabled(&self) -> bool {
        self.pf
            .get(&(PfReg::HyperEnable as u64))
            .copied()
            .unwrap_or(0)
            != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hypervisor_owns_pf() {
        let mut m = MmioSpace::new();
        m.write_pf(Requester::Hypervisor, PfReg::RtBase, 0x4000)
            .unwrap();
        m.write_pf(Requester::Hypervisor, PfReg::HyperEnable, 1)
            .unwrap();
        assert_eq!(
            m.read_pf(Requester::Hypervisor, PfReg::RtBase).unwrap(),
            0x4000
        );
        assert!(m.hyper_enabled());
    }

    #[test]
    fn guest_cannot_touch_pf() {
        let mut m = MmioSpace::new();
        let deny = m.write_pf(Requester::Guest(VmId(1)), PfReg::RttBase, 0xdead);
        assert!(matches!(deny, Err(VnpuError::MmioDenied { .. })));
        assert!(m
            .read_pf(Requester::Guest(VmId(1)), PfReg::RttBase)
            .is_err());
    }

    #[test]
    fn guest_owns_only_its_vf() {
        let mut m = MmioSpace::new();
        m.add_vf(VmId(1));
        m.add_vf(VmId(2));
        m.write_vf(Requester::Guest(VmId(1)), VmId(1), VfReg::Doorbell, 7)
            .unwrap();
        assert_eq!(
            m.read_vf(Requester::Guest(VmId(1)), VmId(1), VfReg::Doorbell)
                .unwrap(),
            7
        );
        // Cross-tenant access denied.
        assert!(m
            .write_vf(Requester::Guest(VmId(1)), VmId(2), VfReg::Doorbell, 1)
            .is_err());
        assert!(m
            .read_vf(Requester::Guest(VmId(2)), VmId(1), VfReg::Status)
            .is_err());
        // The hypervisor can service any VF.
        m.write_vf(Requester::Hypervisor, VmId(2), VfReg::Status, 1)
            .unwrap();
    }

    #[test]
    fn vf_lifecycle() {
        let mut m = MmioSpace::new();
        m.add_vf(VmId(3));
        m.write_vf(Requester::Hypervisor, VmId(3), VfReg::Completed, 42)
            .unwrap();
        m.remove_vf(VmId(3));
        assert!(matches!(
            m.read_vf(Requester::Hypervisor, VmId(3), VfReg::Completed),
            Err(VnpuError::UnknownVm(_))
        ));
    }

    #[test]
    fn unwritten_registers_read_zero() {
        let mut m = MmioSpace::new();
        m.add_vf(VmId(0));
        assert_eq!(m.read_pf(Requester::Hypervisor, PfReg::RtLen).unwrap(), 0);
        assert_eq!(
            m.read_vf(Requester::Guest(VmId(0)), VmId(0), VfReg::Status)
                .unwrap(),
            0
        );
    }
}
