//! The static lock-site registry.
//!
//! Every lock in the workspace is declared here with a stable label and
//! a canonical acquisition **rank**. The intended global order is
//! ascending rank; for a sharded site, ascending shard index within the
//! site. The analyses in [`crate::analysis`] check observed traces
//! against this registry, and the registry itself doubles as the static
//! half of the lock-order pass: a site missing from here cannot be
//! instrumented, so adding a lock without declaring it fails to
//! compile.
//!
//! The workspace currently has exactly three lock sites:
//!
//! | site | rank | sharded | owner |
//! |---|---|---|---|
//! | `vnpu::pool::WorkerPool::rx` | 0 | no | worker pool shared receiver |
//! | `vnpu_topo::cache::ShardedMappingCache::shard` | 10 | yes | per-shard mapping cache |
//! | `vnpu::cluster::Cluster::hint_cache` | 20 | yes (by chip) | per-chip fit-hint cache |
//!
//! Ranks are spaced by 10 so future sites can slot between existing
//! ones without renumbering.

use std::fmt;

/// Stable numeric identity of a lock site (index into the registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SiteId(pub u32);

/// One declared lock site.
#[derive(Debug)]
pub struct Site {
    /// Stable id (unique across the registry).
    pub id: SiteId,
    /// Human-readable label, `crate::path::field` style.
    pub label: &'static str,
    /// Canonical acquisition rank: locks must be taken in ascending
    /// rank order; equal ranks only for distinct shards of the same
    /// site, in ascending shard order.
    pub rank: u32,
    /// Whether the site is a family of shard locks (shard index is
    /// meaningful) rather than a single lock.
    pub sharded: bool,
}

impl PartialEq for Site {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Site {}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label)
    }
}

/// The worker pool's shared job receiver (`vnpu::pool::WorkerPool`).
/// Rank 0: it is only ever taken by idle workers that hold nothing.
pub static POOL_RX: Site = Site {
    id: SiteId(0),
    label: "vnpu::pool::WorkerPool::rx",
    rank: 0,
    sharded: false,
};

/// A shard of `vnpu_topo::cache::ShardedMappingCache`. Sharded: the
/// shard index must be a pure function of the key hash, never of the
/// acquiring worker — [`crate::analysis::analyze_shard_order`] checks
/// this via the key tags recorded at acquisition.
pub static CACHE_SHARD: Site = Site {
    id: SiteId(1),
    label: "vnpu_topo::cache::ShardedMappingCache::shard",
    rank: 10,
    sharded: true,
};

/// A per-chip fit-hint cache (`vnpu::cluster::Cluster::hint_caches`).
/// The shard index is the chip index. Highest rank: hint caches are
/// leaf state and must never be held while taking a pool or cache lock.
pub static HINT_CACHE: Site = Site {
    id: SiteId(2),
    label: "vnpu::cluster::Cluster::hint_cache",
    rank: 20,
    sharded: true,
};

/// Every declared lock site, the static half of the lock-order pass.
pub fn registry() -> &'static [&'static Site] {
    static REGISTRY: [&Site; 3] = [&POOL_RX, &CACHE_SHARD, &HINT_CACHE];
    &REGISTRY
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_ids_ranks_and_labels_are_unique() {
        let sites = registry();
        let ids: BTreeSet<u32> = sites.iter().map(|s| s.id.0).collect();
        let ranks: BTreeSet<u32> = sites.iter().map(|s| s.rank).collect();
        let labels: BTreeSet<&str> = sites.iter().map(|s| s.label).collect();
        assert_eq!(ids.len(), sites.len());
        assert_eq!(ranks.len(), sites.len());
        assert_eq!(labels.len(), sites.len());
    }

    #[test]
    fn pool_rx_is_the_lowest_rank() {
        for site in registry() {
            if site.id != POOL_RX.id {
                assert!(site.rank > POOL_RX.rank, "{}", site.label);
            }
        }
    }

    #[test]
    fn site_equality_is_by_id() {
        assert_eq!(&POOL_RX, &POOL_RX);
        assert_ne!(&POOL_RX, &CACHE_SHARD);
    }
}
