//! **vnpu_audit** — static analysis over the vNPU stack's safety
//! invariants.
//!
//! The paper's core promise is *safe* multi-tenant sharing of an
//! inter-core connected NPU: tenants spatially isolated, routing tables
//! consistent, reconfiguration atomic. After the transactional-plan,
//! live-migration, defragmentation and drain layers, those invariants
//! are upheld by construction — but nothing *checks* them. This crate is
//! the checker: three read-only passes that never mutate the structures
//! they audit and never panic, reporting violations as structured
//! [`AuditFinding`]s instead.
//!
//! * [`linter`] — lints a [`vnpu::plan::PlacementTxn`] *before* commit:
//!   double-booked cores, use-after-destroy ordering hazards, cost-sum
//!   mismatches, budget violations, stale plan generations, plans
//!   targeting a draining chip.
//! * [`routing`] — rebuilds every resident tenant's physical routes from
//!   its routing table and route policy, then proves NoC deadlock
//!   freedom over the channel-dependency graph and checks inter-tenant
//!   link isolation.
//! * [`fleet`] — the whole-[`vnpu::cluster::Cluster`] post-tick audit:
//!   core-ownership and free-set consistency, HBM byte conservation,
//!   drained-chip residue, cache-generation monotonicity (via the
//!   stateful [`FleetAuditor`]).
//!
//! The fleet pass is wired into the serving loop behind
//! `ServeConfig::audit` (off by default — zero cost) and into the
//! serving benches' quick modes as a hard gate. It is also the safety
//! net for the ROADMAP's parallel-cluster-tick refactor: the invariants
//! a sharded tick must preserve are exactly the rules below.
//!
//! # Rule catalogue
//!
//! | Rule id | Invariant | Layer |
//! |---|---|---|
//! | `PLAN-GEN` | plan generation matches the live chain | plan |
//! | `PLAN-SNAP` | plan snapshot matches the live free region / HBM | plan |
//! | `PLAN-COST` | declared total equals the sum of per-op costs | plan |
//! | `PLAN-ORDER` | no op uses a VM a previous op destroys | plan |
//! | `PLAN-VM` | every named VM is live on the chip | plan |
//! | `PLAN-CORE` | no physical core acquired twice without release | plan |
//! | `PLAN-FREE` | no op releases an already-free core | plan |
//! | `PLAN-HBM` | created guest memory fits the snapshot's free HBM | plan |
//! | `PLAN-BUDGET` | migrations stay inside the reconfiguration budget | plan |
//! | `PLAN-DRAIN` | no create/migrate lands on an unschedulable chip | plan |
//! | `ROUTE-TABLE` | routing-table entries agree with the core mapping | routing |
//! | `ROUTE-CONF` | confined tenants' routes stay inside their cores | routing |
//! | `ROUTE-ISO` | no link shared with a NoC-isolated tenant | routing |
//! | `ROUTE-SHARE` | (strict) no two tenants share any physical link | routing |
//! | `ROUTE-CDG` | the channel-dependency graph is acyclic | routing |
//! | `FLEET-OWN` | per-core user counts equal the sum of tenant claims | fleet |
//! | `FLEET-SHARE` | shared cores only between temporal-sharing tenants | fleet |
//! | `FLEET-FREE` | free-set membership/fingerprint match occupancy | fleet |
//! | `FLEET-HBM` | allocated HBM equals the sum of tenant blocks | fleet |
//! | `FLEET-DRAIN` | a drained chip holds zero tenants | fleet |
//! | `FLEET-GEN` | the mapping-cache generation never regresses | fleet |
//! | `FAULT-MAP` | no live tenant maps a faulted core | fault |
//! | `FAULT-FREE` | no faulted core is advertised free | fault |
//! | `FAULT-LINK` | no live tenant owns an endpoint of a faulted link | fault |
//! | `CONC-ORDER` | locks are acquired in declared rank/shard order | conc |
//! | `CONC-HOLD` | no pool batch submitted while holding a lock | conc |
//! | `CONC-SHARD` | shard choice is a pure function of the key hash | conc |
//! | `CONC-DET` | phase digest chains agree across runs | conc |
//! | `TEMP-STARVE` | arrivals admitted or terminally rejected in bounded ticks | temporal |
//! | `TEMP-DRAIN` | a silently stalled drain progresses or finishes in bounded ticks | temporal |
//! | `TEMP-FAULT` | detected outages resolve by the recovery deadline | temporal |
//! | `TEMP-COST` | per-event paid costs sum to the report's claims | temporal |
//! | `TEMP-CACHE` | cache counters consistent and monotone | temporal |
//! | `TEMP-LEAK` | quiescence implies a coalesced, leak-free free state | temporal |
//! | `TEMP-HINT` | emitted fit hints fit the emitting admission snapshot | temporal |
//!
//! The `CONC-*` rules are produced by `vnpu_conc`'s trace analyses and
//! determinism sanitizer (see that crate); [`AuditFinding`] implements
//! `From<vnpu_conc::ConcFinding>` so concurrency findings flow through
//! the same reporting channel as the passes above. The `TEMP-*` rules
//! are produced by `vnpu_temporal`'s streaming property checker over
//! serve traces and lift into this channel the same way.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use vnpu::VmId;

pub mod fleet;
pub mod linter;
pub mod routing;

pub use fleet::{audit_chip, audit_cluster, FleetAuditor};
pub use linter::{lint_plan, lint_view, OpKindView, OpView, PlanSnapshotView, PlanView};
pub use routing::{audit_routing, collect_tenant_routes, Link, TenantRoutes};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A diagnostic worth knowing (e.g. two best-effort tenants sharing
    /// a NoC link under plain dimension-order routing) — not a broken
    /// guarantee.
    Warning,
    /// A violated invariant: committing the plan (or running the fleet
    /// as-is) is unsafe.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The machine-checkable invariants this crate enforces. Every rule has
/// a stable string id (see the crate-level catalogue) used in reports
/// and CI gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum Rule {
    /// The plan's generation no longer matches the hypervisor's chain.
    PlanStaleGeneration,
    /// The plan's free-region/HBM snapshot drifted from the live chip.
    PlanSnapshotDrift,
    /// The declared total cost is not the sum of the per-op costs.
    PlanCostMismatch,
    /// An op names a VM that an earlier op in the same plan destroys.
    PlanUseAfterDestroy,
    /// An op names a VM that is not live on the chip.
    PlanUnknownVm,
    /// A physical core is acquired while already occupied.
    PlanDoubleBooked,
    /// An op releases a core that is already free.
    PlanOverRelease,
    /// Created guest memory exceeds the snapshot's free HBM.
    PlanHbmOvercommit,
    /// A migration op exceeds the reconfiguration budget.
    PlanBudgetExceeded,
    /// A create/migrate op targets a draining or drained chip.
    PlanUnschedulableChip,
    /// A routing-table entry disagrees with the tenant's core mapping.
    RouteTableMismatch,
    /// A confined (NoC-isolated) tenant's route leaves its own cores.
    RouteEscapedRegion,
    /// A physical link is shared with a tenant that was promised NoC
    /// isolation.
    RouteIsolationLeak,
    /// (Strict mode only.) Two tenants' routes share a physical link.
    RouteSharedLink,
    /// The channel-dependency graph over all resident routes has a
    /// cycle — deadlock freedom is not provable.
    RouteDeadlockCycle,
    /// A core's user count disagrees with the tenants claiming it.
    FleetCoreOwnership,
    /// A core is shared by tenants that did not all opt into temporal
    /// sharing.
    FleetSharedCore,
    /// The free set (membership, count or fingerprint) disagrees with
    /// per-core occupancy.
    FleetFreeSetDrift,
    /// Allocated HBM bytes differ from the sum of tenant blocks.
    FleetHbmAccounting,
    /// A drained chip still holds tenants.
    FleetDrainedResidue,
    /// A chip's mapping-cache (topology) generation went backwards.
    FleetGenerationRegressed,
    /// A live tenant's mapping includes a core the fault layer marked
    /// dead — recovery has not (yet) moved it off and the placement
    /// machinery failed to exclude the core.
    FaultMappedCore,
    /// A faulted core is a member of the chip's free region — it could
    /// be handed to the next placement.
    FaultFreeCore,
    /// A live tenant owns an endpoint core of a faulted NoC link: its
    /// traffic terminates in (or originates from) the dead link's
    /// routers. A warning — traffic may still route around the link —
    /// but recovery should be moving the tenant.
    FaultLinkEndpoint,
    /// A lock was acquired against the declared rank/shard order, or
    /// the observed acquisition graph has a cycle (potential deadlock).
    ConcLockOrder,
    /// A worker-pool batch was submitted while the submitting thread
    /// held an instrumented lock.
    ConcHoldAcrossSubmit,
    /// A sharded lock's shard choice derived from worker identity or
    /// pool width instead of the key hash.
    ConcShardOrder,
    /// Phase digest chains diverged between runs that must agree.
    ConcDeterminism,
    /// A queued request was neither admitted nor terminally rejected
    /// within the admission policy's starvation bound.
    TemporalStarvation,
    /// A draining chip sat through silent drain steps (nothing moved,
    /// nothing explicitly skipped) past the stall bound.
    TemporalDrainConvergence,
    /// A detected outage was not recovered, lost, or departed by the
    /// recovery deadline.
    TemporalFaultDeadline,
    /// Per-event paid reconfiguration costs do not sum to the serve
    /// report's claimed totals.
    TemporalCostConservation,
    /// Mapping-cache counters are inconsistent or regressed over time.
    TemporalCacheConservation,
    /// The fleet claimed quiescence while leaking cores/HBM or with an
    /// uncoalesced free region on healthy hardware.
    TemporalQuiescenceLeak,
    /// An emitted fit hint exceeds the largest schedulable free island
    /// at the start of its admission pass.
    TemporalHintSoundness,
}

impl Rule {
    /// The stable rule id used in reports and the README catalogue.
    pub fn id(self) -> &'static str {
        match self {
            Rule::PlanStaleGeneration => "PLAN-GEN",
            Rule::PlanSnapshotDrift => "PLAN-SNAP",
            Rule::PlanCostMismatch => "PLAN-COST",
            Rule::PlanUseAfterDestroy => "PLAN-ORDER",
            Rule::PlanUnknownVm => "PLAN-VM",
            Rule::PlanDoubleBooked => "PLAN-CORE",
            Rule::PlanOverRelease => "PLAN-FREE",
            Rule::PlanHbmOvercommit => "PLAN-HBM",
            Rule::PlanBudgetExceeded => "PLAN-BUDGET",
            Rule::PlanUnschedulableChip => "PLAN-DRAIN",
            Rule::RouteTableMismatch => "ROUTE-TABLE",
            Rule::RouteEscapedRegion => "ROUTE-CONF",
            Rule::RouteIsolationLeak => "ROUTE-ISO",
            Rule::RouteSharedLink => "ROUTE-SHARE",
            Rule::RouteDeadlockCycle => "ROUTE-CDG",
            Rule::FleetCoreOwnership => "FLEET-OWN",
            Rule::FleetSharedCore => "FLEET-SHARE",
            Rule::FleetFreeSetDrift => "FLEET-FREE",
            Rule::FleetHbmAccounting => "FLEET-HBM",
            Rule::FleetDrainedResidue => "FLEET-DRAIN",
            Rule::FleetGenerationRegressed => "FLEET-GEN",
            Rule::FaultMappedCore => "FAULT-MAP",
            Rule::FaultFreeCore => "FAULT-FREE",
            Rule::FaultLinkEndpoint => "FAULT-LINK",
            Rule::ConcLockOrder => "CONC-ORDER",
            Rule::ConcHoldAcrossSubmit => "CONC-HOLD",
            Rule::ConcShardOrder => "CONC-SHARD",
            Rule::ConcDeterminism => "CONC-DET",
            Rule::TemporalStarvation => "TEMP-STARVE",
            Rule::TemporalDrainConvergence => "TEMP-DRAIN",
            Rule::TemporalFaultDeadline => "TEMP-FAULT",
            Rule::TemporalCostConservation => "TEMP-COST",
            Rule::TemporalCacheConservation => "TEMP-CACHE",
            Rule::TemporalQuiescenceLeak => "TEMP-LEAK",
            Rule::TemporalHintSoundness => "TEMP-HINT",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violated (or noteworthy) invariant, with enough context to name
/// the offender: rule, severity, chip/VM/core where applicable, and a
/// human-readable explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The rule that fired.
    pub rule: Rule,
    /// How bad it is.
    pub severity: Severity,
    /// Offending chip index, when the audit ran over a cluster.
    pub chip: Option<usize>,
    /// Offending tenant, when one is identifiable.
    pub vm: Option<VmId>,
    /// Offending physical core, when one is identifiable.
    pub core: Option<u32>,
    /// Human-readable explanation (exact link, tenant pair, expected vs
    /// observed value, ...).
    pub detail: String,
}

impl AuditFinding {
    pub(crate) fn error(rule: Rule, detail: String) -> Self {
        AuditFinding {
            rule,
            severity: Severity::Error,
            chip: None,
            vm: None,
            core: None,
            detail,
        }
    }

    pub(crate) fn warning(rule: Rule, detail: String) -> Self {
        AuditFinding {
            rule,
            severity: Severity::Warning,
            chip: None,
            vm: None,
            core: None,
            detail,
        }
    }

    pub(crate) fn vm(mut self, vm: VmId) -> Self {
        self.vm = Some(vm);
        self
    }

    pub(crate) fn core(mut self, core: u32) -> Self {
        self.core = Some(core);
        self
    }

    pub(crate) fn on_chip(mut self, chip: usize) -> Self {
        self.chip = Some(chip);
        self
    }
}

impl From<vnpu_conc::ConcFinding> for AuditFinding {
    /// Lifts a concurrency finding into the audit channel: same rule id
    /// (the `CONC-*` [`Rule`] variants), same severity, chip carried
    /// over; concurrency findings never name a VM or core.
    fn from(finding: vnpu_conc::ConcFinding) -> Self {
        AuditFinding {
            rule: match finding.rule {
                vnpu_conc::ConcRule::LockOrder => Rule::ConcLockOrder,
                vnpu_conc::ConcRule::HoldAcrossSubmit => Rule::ConcHoldAcrossSubmit,
                vnpu_conc::ConcRule::ShardOrder => Rule::ConcShardOrder,
                // `ConcRule` is non_exhaustive; a future rule defaults
                // to the determinism bucket rather than being dropped.
                vnpu_conc::ConcRule::Determinism => Rule::ConcDeterminism,
                _ => Rule::ConcDeterminism,
            },
            severity: match finding.severity {
                vnpu_conc::ConcSeverity::Warning => Severity::Warning,
                vnpu_conc::ConcSeverity::Error => Severity::Error,
            },
            chip: finding.chip,
            vm: None,
            core: None,
            detail: finding.detail,
        }
    }
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.severity)?;
        if let Some(chip) = self.chip {
            write!(f, " chip{chip}")?;
        }
        if let Some(vm) = self.vm {
            write!(f, " {vm}")?;
        }
        if let Some(core) = self.core {
            write!(f, " core{core}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finding_display_names_the_offender() {
        let f = AuditFinding::error(Rule::FleetSharedCore, "two exclusive owners".into())
            .on_chip(1)
            .vm(VmId(3))
            .core(7);
        let s = f.to_string();
        assert!(s.contains("[FLEET-SHARE]"), "{s}");
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("chip1"), "{s}");
        assert!(s.contains("core7"), "{s}");
        assert!(s.contains("two exclusive owners"), "{s}");
    }

    #[test]
    fn rule_ids_are_unique_and_stable() {
        let rules = [
            Rule::PlanStaleGeneration,
            Rule::PlanSnapshotDrift,
            Rule::PlanCostMismatch,
            Rule::PlanUseAfterDestroy,
            Rule::PlanUnknownVm,
            Rule::PlanDoubleBooked,
            Rule::PlanOverRelease,
            Rule::PlanHbmOvercommit,
            Rule::PlanBudgetExceeded,
            Rule::PlanUnschedulableChip,
            Rule::RouteTableMismatch,
            Rule::RouteEscapedRegion,
            Rule::RouteIsolationLeak,
            Rule::RouteSharedLink,
            Rule::RouteDeadlockCycle,
            Rule::FleetCoreOwnership,
            Rule::FleetSharedCore,
            Rule::FleetFreeSetDrift,
            Rule::FleetHbmAccounting,
            Rule::FleetDrainedResidue,
            Rule::FleetGenerationRegressed,
            Rule::FaultMappedCore,
            Rule::FaultFreeCore,
            Rule::FaultLinkEndpoint,
            Rule::ConcLockOrder,
            Rule::ConcHoldAcrossSubmit,
            Rule::ConcShardOrder,
            Rule::ConcDeterminism,
            Rule::TemporalStarvation,
            Rule::TemporalDrainConvergence,
            Rule::TemporalFaultDeadline,
            Rule::TemporalCostConservation,
            Rule::TemporalCacheConservation,
            Rule::TemporalQuiescenceLeak,
            Rule::TemporalHintSoundness,
        ];
        let ids: std::collections::BTreeSet<&str> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), rules.len(), "duplicate rule id");
        for id in ids {
            let (layer, _) = id.split_once('-').expect("ids are LAYER-NAME");
            assert!(
                matches!(
                    layer,
                    "PLAN" | "ROUTE" | "FLEET" | "CONC" | "FAULT" | "TEMP"
                ),
                "{id}"
            );
        }
    }

    #[test]
    fn conc_findings_convert_losslessly() {
        let cases = [
            (vnpu_conc::ConcRule::LockOrder, "CONC-ORDER"),
            (vnpu_conc::ConcRule::HoldAcrossSubmit, "CONC-HOLD"),
            (vnpu_conc::ConcRule::ShardOrder, "CONC-SHARD"),
            (vnpu_conc::ConcRule::Determinism, "CONC-DET"),
        ];
        for (conc_rule, id) in cases {
            // The conc crate and the audit catalogue must agree on ids.
            assert_eq!(conc_rule.id(), id);
            let lifted: AuditFinding =
                vnpu_conc::ConcFinding::error(conc_rule, "witness".into()).into();
            assert_eq!(lifted.rule.id(), id);
            assert_eq!(lifted.severity, Severity::Error);
            assert_eq!(lifted.detail, "witness");
        }
        let warned: AuditFinding = vnpu_conc::ConcFinding::warning(
            vnpu_conc::ConcRule::Determinism,
            "tick 5 diverged".into(),
        )
        .on_chip(3)
        .into();
        assert_eq!(warned.severity, Severity::Warning);
        assert_eq!(warned.chip, Some(3));
        assert_eq!(warned.vm, None);
        assert_eq!(warned.core, None);
    }

    #[test]
    fn severity_orders_warning_below_error() {
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }
}
