//! Virtual-NPU core allocation strategies — the paper's §4.3 and
//! Algorithm 1 (`minTopologyEditDistance`).
//!
//! Three strategies are provided, matching the paper's evaluation
//! (Figures 8, 17 and 18):
//!
//! * [`Strategy::straightforward`] — allocate the first `k` free cores in
//!   core-ID (zig-zag) order. Cheap, but the resulting shape can deviate
//!   badly from the request.
//! * [`Strategy::similar_topology`] — the paper's best-effort mapping:
//!   enumerate connected candidate sub-topologies of the free region,
//!   early-exit on an exact (isomorphic) match, deduplicate isomorphic
//!   candidates, score the rest by topology edit distance in parallel, and
//!   return the minimum.
//! * [`Strategy::exact_only`] — the rigid "topology lock-in" behaviour:
//!   succeed only on an exact match (what MIG-style partitioning provides).
//!
//! All strategies honour R-1 (node count) by construction; R-3
//! (connectivity) is enforced unless fragmentation mode
//! ([`Strategy::allow_disconnected`]) is enabled.

use crate::cache::{FreeSet, MappingCache};
use crate::canonical::{canonical_key, find_isomorphism, CanonicalKey};
use crate::enumerate::{self, Visit, DEFAULT_CANDIDATE_CAP};
use crate::ged::{self, GedResult, MatchCosts, UniformCosts};
use crate::{NodeId, Result, TopoError, Topology};
use std::collections::HashSet;
use std::sync::Arc;

/// Which allocation algorithm a [`Strategy`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StrategyKind {
    /// First-k free cores in ID order ("zig-zag").
    Straightforward,
    /// Minimum topology-edit-distance mapping (Algorithm 1).
    SimilarTopology,
    /// Exact isomorphic match or failure.
    ExactOnly,
}

/// Configuration for a mapping attempt.
///
/// Build with one of the constructors and refine with the chained setters:
///
/// ```
/// use vnpu_topo::mapping::Strategy;
/// let s = Strategy::similar_topology()
///     .candidate_cap(5_000)
///     .threads(2);
/// ```
#[derive(Clone)]
pub struct Strategy {
    kind: StrategyKind,
    candidate_cap: usize,
    allow_disconnected: bool,
    threads: usize,
    costs: Arc<dyn MatchCosts + Send + Sync>,
    /// Whether `costs` is still the stock [`UniformCosts`] — custom costs
    /// make a mapping attempt uncacheable (the cache key cannot see them).
    default_costs: bool,
}

impl std::fmt::Debug for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Strategy")
            .field("kind", &self.kind)
            .field("candidate_cap", &self.candidate_cap)
            .field("allow_disconnected", &self.allow_disconnected)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

impl Strategy {
    /// Straightforward (zig-zag, by core ID) allocation.
    pub fn straightforward() -> Self {
        Strategy {
            kind: StrategyKind::Straightforward,
            candidate_cap: DEFAULT_CANDIDATE_CAP,
            allow_disconnected: false,
            threads: 1,
            costs: Arc::new(UniformCosts),
            default_costs: true,
        }
    }

    /// Similar-topology (minimum edit distance) allocation with uniform
    /// costs.
    pub fn similar_topology() -> Self {
        Strategy {
            kind: StrategyKind::SimilarTopology,
            candidate_cap: DEFAULT_CANDIDATE_CAP,
            allow_disconnected: false,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            costs: Arc::new(UniformCosts),
            default_costs: true,
        }
    }

    /// Exact-match-only allocation (fails rather than approximate).
    pub fn exact_only() -> Self {
        Strategy {
            kind: StrategyKind::ExactOnly,
            ..Strategy::straightforward()
        }
    }

    /// The hypervisor's *performance-first* preset (Figure 10): insist on
    /// an exact topology match — fail rather than degrade the tenant's
    /// data flow.
    pub fn performance_first() -> Self {
        Strategy::exact_only()
    }

    /// The hypervisor's *utilization-first* preset (Figure 10): accept
    /// the closest similar topology and, when the free region is
    /// fragmented, even a disconnected allocation — never strand cores.
    pub fn utilization_first() -> Self {
        Strategy::similar_topology().allow_disconnected(true)
    }

    /// Limits the number of enumerated candidate sub-topologies.
    pub fn candidate_cap(mut self, cap: usize) -> Self {
        self.candidate_cap = cap.max(1);
        self
    }

    /// Permits disconnected allocations when no connected candidate exists
    /// (the paper's fragmentation trade-off, §4.3).
    pub fn allow_disconnected(mut self, allow: bool) -> Self {
        self.allow_disconnected = allow;
        self
    }

    /// Number of worker threads for parallel edit-distance scoring
    /// (Algorithm 1 line 30's `multiprocess`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Installs custom node/edge match costs (heterogeneous nodes, critical
    /// edges). Attempts with custom costs bypass the [`MappingCache`].
    pub fn costs(mut self, costs: Arc<dyn MatchCosts + Send + Sync>) -> Self {
        self.costs = costs;
        self.default_costs = false;
        self
    }

    /// The strategy kind.
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// A discriminant folding every result-affecting knob into one word for
    /// [`MappingCache`] keys, or `None` when the strategy is uncacheable
    /// (custom costs). The thread count is deliberately excluded: scoring
    /// is deterministic regardless of how it is parallelized.
    pub fn cache_tag(&self) -> Option<u64> {
        if !self.default_costs {
            return None;
        }
        let kind = match self.kind {
            StrategyKind::Straightforward => 0u64,
            StrategyKind::SimilarTopology => 1,
            StrategyKind::ExactOnly => 2,
        };
        Some(kind | (u64::from(self.allow_disconnected) << 2) | ((self.candidate_cap as u64) << 3))
    }
}

/// A completed virtual-to-physical core mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    phys_nodes: Vec<NodeId>,
    edit_distance: u64,
    exact_distance: bool,
    connected: bool,
}

impl Mapping {
    /// Physical node chosen for each virtual node (index = virtual node
    /// ID).
    pub fn phys_nodes(&self) -> &[NodeId] {
        &self.phys_nodes
    }

    /// Physical node backing virtual node `v`.
    pub fn phys_of(&self, v: NodeId) -> NodeId {
        self.phys_nodes[v.index()]
    }

    /// Topology edit distance between the request and the allocated
    /// sub-topology (0 = exact match).
    pub fn edit_distance(&self) -> u64 {
        self.edit_distance
    }

    /// Whether [`Mapping::edit_distance`] came from the exact algorithm.
    pub fn is_distance_exact(&self) -> bool {
        self.exact_distance
    }

    /// Whether the allocated physical node set is connected (R-3).
    pub fn is_connected(&self) -> bool {
        self.connected
    }
}

/// Maps virtual topologies onto the free region of a physical topology.
#[derive(Debug, Clone, Copy)]
pub struct Mapper<'a> {
    phys: &'a Topology,
    /// Label-sensitive fingerprint of `phys`, computed once so cached
    /// lookups can bind their keys to the chip without re-hashing the
    /// whole graph per request.
    phys_key: u64,
    /// The chip's reconfiguration generation, folded into every cache
    /// key: hardware changes the topology fingerprint cannot see (hybrid
    /// core scaling) bump this so stale cost-annotated strategies expire.
    generation: u64,
}

impl<'a> Mapper<'a> {
    /// Creates a mapper over the given physical topology.
    pub fn new(phys: &'a Topology) -> Self {
        Self::with_phys_key(phys, crate::cache::labeled_hash(phys))
    }

    /// Creates a mapper with a precomputed physical-topology fingerprint,
    /// so long-lived callers admitting requests in a loop don't re-hash
    /// the whole chip (O(nodes + edges)) on every attempt just to consult
    /// the cache. `phys_key` must equal
    /// [`crate::cache::labeled_hash`]`(phys)` — a wrong key silently
    /// aliases cache entries across chips.
    pub fn with_phys_key(phys: &'a Topology, phys_key: u64) -> Self {
        Mapper {
            phys,
            phys_key,
            generation: 0,
        }
    }

    /// Binds the mapper to a reconfiguration generation: cached lookups
    /// from different generations never alias, so bumping the counter
    /// after a hardware reconfig (e.g. hybrid-core scaling) invalidates
    /// every previously memoized strategy for this chip.
    pub fn at_generation(mut self, generation: u64) -> Self {
        self.generation = generation;
        self
    }

    /// The physical topology's [`crate::cache::labeled_hash`] fingerprint.
    pub fn phys_key(&self) -> u64 {
        self.phys_key
    }

    /// The reconfiguration generation cache keys are bound to.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Allocates physical nodes for the requested virtual topology `req`
    /// out of the free node set, per `strategy`.
    ///
    /// # Errors
    ///
    /// * [`TopoError::InsufficientNodes`] — fewer free nodes than requested
    ///   (violates R-1).
    /// * [`TopoError::NoCandidate`] — no allocation satisfying the
    ///   strategy's constraints (connectivity, exactness) exists.
    pub fn map(&self, free: &[NodeId], req: &Topology, strategy: &Strategy) -> Result<Mapping> {
        let set = FreeSet::from_free_nodes(self.phys.node_count(), free);
        self.map_in(&set, req, strategy)
    }

    /// [`Mapper::map`] over an incrementally-maintained [`FreeSet`] — the
    /// serving hot path: no occupancy mask is rebuilt per request.
    ///
    /// # Errors
    ///
    /// As for [`Mapper::map`], plus [`TopoError::FreeSetMismatch`] when
    /// `free` tracks a different node count than the physical topology
    /// (the candidate enumerators index the mask by physical node id, so
    /// an undersized set would otherwise panic).
    pub fn map_in(&self, free: &FreeSet, req: &Topology, strategy: &Strategy) -> Result<Mapping> {
        if free.capacity() != self.phys.node_count() {
            return Err(TopoError::FreeSetMismatch {
                set: free.capacity(),
                topology: self.phys.node_count(),
            });
        }
        let k = req.node_count();
        if free.free_count() < k {
            return Err(TopoError::InsufficientNodes {
                requested: k,
                available: free.free_count(),
            });
        }
        if k == 0 {
            return Ok(Mapping {
                phys_nodes: Vec::new(),
                edit_distance: 0,
                exact_distance: true,
                connected: true,
            });
        }
        match strategy.kind {
            StrategyKind::Straightforward => Ok(self.straightforward(free, req, strategy)),
            StrategyKind::ExactOnly => self.exact(free, req),
            StrategyKind::SimilarTopology => self.similar(free, req, strategy),
        }
    }

    /// [`Mapper::map_in`] memoized through a [`MappingCache`]: a hit
    /// returns the stored result (success *or* failure) for this exact
    /// `(physical topology, request, strategy, free-region)` tuple; a miss
    /// computes and stores it. Uncacheable strategies (custom costs) fall
    /// through to the direct path. One cache may safely be shared by
    /// mappers over different chips — the key carries the physical
    /// topology's fingerprint.
    ///
    /// # Errors
    ///
    /// As for [`Mapper::map_in`] (memoized errors replay identically).
    pub fn map_cached(
        &self,
        free: &FreeSet,
        req: &Topology,
        strategy: &Strategy,
        cache: &mut MappingCache,
    ) -> Result<Mapping> {
        self.map_cached_with(free, req, strategy, cache, None)
    }

    /// [`Mapper::map_cached`] with an optional *precomputed* result to use
    /// in place of the inline [`Mapper::map_in`] call on a cache miss —
    /// the replay half of the speculative-probe protocol: a worker thread
    /// computes `map_in` off the critical path, and the sequential merge
    /// substitutes that value here so the cache's `get`/`insert` sequence
    /// (and every statistic) is exactly what the non-speculative path
    /// would have produced. `precomputed` must equal what `map_in(free,
    /// req, strategy)` would return — callers guarantee this by computing
    /// it with the same mapper, free set, request and strategy.
    ///
    /// # Errors
    ///
    /// As for [`Mapper::map_cached`].
    pub fn map_cached_with(
        &self,
        free: &FreeSet,
        req: &Topology,
        strategy: &Strategy,
        cache: &mut MappingCache,
        precomputed: Option<Result<Mapping>>,
    ) -> Result<Mapping> {
        // Checked before the cache is touched: the free-region fingerprint
        // is capacity-independent, so a wrong-capacity set would alias the
        // correctly-sized region with the same free membership — memoizing
        // the mismatch error (or replaying a placement) under that key
        // would poison it for valid callers.
        if free.capacity() != self.phys.node_count() {
            return Err(TopoError::FreeSetMismatch {
                set: free.capacity(),
                topology: self.phys.node_count(),
            });
        }
        let Some(key) = cache.key_for(self.phys_key, self.generation, req, strategy, free) else {
            return precomputed.unwrap_or_else(|| self.map_in(free, req, strategy));
        };
        if let Some(result) = cache.get(&key, free) {
            return result;
        }
        let result = precomputed.unwrap_or_else(|| self.map_in(free, req, strategy));
        cache.insert(key, result.clone());
        result
    }

    /// First-k free nodes in ascending ID order; virtual node `i` gets the
    /// `i`-th of them (the zig-zag order of paper Figure 17/18).
    fn straightforward(&self, free: &FreeSet, req: &Topology, strategy: &Strategy) -> Mapping {
        let chosen: Vec<NodeId> = free.nodes().into_iter().take(req.node_count()).collect();
        let (sub, _) = self.phys.induced_subgraph(&chosen);
        let identity: Vec<Option<NodeId>> = (0..req.node_count() as u32)
            .map(|i| Some(NodeId(i)))
            .collect();
        let distance = ged::mapping_cost(req, &sub, &identity, strategy.costs.as_ref());
        let connected = self.phys.is_connected_subset(&chosen);
        Mapping {
            phys_nodes: chosen,
            edit_distance: distance,
            exact_distance: true, // exact cost *of this mapping*, not a minimum
            connected,
        }
    }

    /// Exact isomorphic match or [`TopoError::NoCandidate`].
    fn exact(&self, free: &FreeSet, req: &Topology) -> Result<Mapping> {
        if let Some(m) = self.try_exact(free, req, DEFAULT_CANDIDATE_CAP) {
            return Ok(m);
        }
        Err(TopoError::NoCandidate)
    }

    fn try_exact(&self, free: &FreeSet, req: &Topology, cap: usize) -> Option<Mapping> {
        // Rectangle fast-path for mesh requests on mesh hardware.
        if let Some(shape) = req.mesh_shape() {
            if let Some(rects) =
                enumerate::mesh_rectangles_in(self.phys, free, shape.width, shape.height)
            {
                if let Some(cells) = rects.into_iter().next() {
                    // `cells` is sorted; the window is itself row-major, so an
                    // isomorphism search gives the virtual -> physical layout.
                    let (sub, back) = self.phys.induced_subgraph(&cells);
                    if let Some(iso) = find_isomorphism(req, &sub) {
                        let phys_nodes = iso.iter().map(|j| back[j.index()]).collect();
                        return Some(Mapping {
                            phys_nodes,
                            edit_distance: 0,
                            exact_distance: true,
                            connected: true,
                        });
                    }
                }
            }
        }
        // General exact search: enumerate connected candidates, compare
        // canonical keys, verify with an isomorphism search. The cap
        // bounds the (worst-case exponential) exhaustion proof.
        let req_key = canonical_key(req);
        let mut found: Option<Mapping> = None;
        enumerate::enumerate_connected_in(self.phys, free, req.node_count(), cap, |cells| {
            let (sub, back) = self.phys.induced_subgraph(cells);
            if canonical_key(&sub) == req_key {
                if let Some(iso) = find_isomorphism(req, &sub) {
                    found = Some(Mapping {
                        phys_nodes: iso.iter().map(|j| back[j.index()]).collect(),
                        edit_distance: 0,
                        exact_distance: true,
                        connected: true,
                    });
                    return Visit::Stop;
                }
            }
            Visit::Continue
        });
        found
    }

    /// Algorithm 1: enumerate, early-exit, dedup, score in parallel, pick
    /// the minimum-edit-distance candidate.
    fn similar(&self, free: &FreeSet, req: &Topology, strategy: &Strategy) -> Result<Mapping> {
        // Line 22: exact early exit.
        if let Some(m) = self.try_exact(free, req, strategy.candidate_cap) {
            return Ok(m);
        }
        // Lines 20–29: collect connected candidates, dedup by canonical key.
        let mut seen: HashSet<CanonicalKey> = HashSet::new();
        let mut candidates: Vec<Vec<NodeId>> = Vec::new();
        enumerate::enumerate_connected_in(
            self.phys,
            free,
            req.node_count(),
            strategy.candidate_cap,
            |cells| {
                let (sub, _) = self.phys.induced_subgraph(cells);
                if seen.insert(canonical_key(&sub)) {
                    candidates.push(cells.to_vec());
                }
                Visit::Continue
            },
        );
        if candidates.is_empty() {
            if strategy.allow_disconnected {
                // Fragmentation mode: fall back to zig-zag over whatever is
                // free; the caller accepts inter-core conflict overheads.
                return Ok(self.straightforward(free, req, strategy));
            }
            return Err(TopoError::NoCandidate);
        }
        // Lines 30–32: parallel TED scoring.
        let results = self.score_parallel(req, &candidates, strategy);
        // Refine the best few candidates with 2-opt swaps (the bipartite
        // assignment ignores global edge structure). Pipeline-style
        // requests (virtual IDs in dataflow order) additionally get a
        // serpentine seed — a snake through the candidate region — which
        // is usually the natural embedding for chains.
        let mut order: Vec<usize> = (0..results.len()).collect();
        order.sort_by_key(|&i| results[i].cost);
        let mut best: Option<(u64, Vec<NodeId>, bool)> = None;
        for &i in order.iter().take(REFINE_TOP_CANDIDATES) {
            let cells = &candidates[i];
            let (sub, back) = self.phys.induced_subgraph(cells);
            let mut starts: Vec<Vec<Option<NodeId>>> =
                vec![complete_option_mapping(&results[i].mapping, cells.len())];
            starts.push(self.serpentine_mapping(cells));
            for start in starts {
                let (refined, cost) =
                    ged::refine_mapping(req, &sub, &start, strategy.costs.as_ref(), 8);
                if best.as_ref().is_none_or(|(c, _, _)| cost < *c) {
                    let phys_nodes = refined
                        .iter()
                        .map(|m| back[m.expect("total mapping").index()])
                        .collect();
                    best = Some((cost, phys_nodes, false));
                }
            }
        }
        let (cost, phys_nodes, exact) = best.expect("candidates is non-empty");
        Ok(Mapping {
            phys_nodes,
            edit_distance: cost,
            exact_distance: exact,
            connected: true,
        })
    }

    /// Virtual node `i` → the `i`-th candidate cell in serpentine order
    /// (row-major with alternating column direction on meshes; BFS order
    /// from the lowest cell otherwise). Candidate-local node IDs.
    fn serpentine_mapping(&self, cells: &[NodeId]) -> Vec<Option<NodeId>> {
        let mut order: Vec<usize> = (0..cells.len()).collect();
        if self.phys.mesh_shape().is_some() {
            order.sort_by_key(|&j| {
                let (x, y) = self.phys.mesh_coord(cells[j]).expect("mesh coord");
                let xx = if y % 2 == 0 { x as i64 } else { -(x as i64) };
                (y, xx)
            });
        } else {
            // BFS order from the lowest cell keeps neighbors close.
            let sub = cells.to_vec();
            let mut seen = vec![false; cells.len()];
            let mut bfs = Vec::with_capacity(cells.len());
            let mut queue = std::collections::VecDeque::from([0usize]);
            seen[0] = true;
            while let Some(u) = queue.pop_front() {
                bfs.push(u);
                for (v, &cell) in sub.iter().enumerate() {
                    if !seen[v] && self.phys.has_edge(sub[u], cell) {
                        seen[v] = true;
                        queue.push_back(v);
                    }
                }
            }
            for (v, &s) in seen.iter().enumerate() {
                if !s {
                    bfs.push(v);
                }
            }
            order = bfs;
        }
        order.into_iter().map(|j| Some(NodeId(j as u32))).collect()
    }

    fn score_parallel(
        &self,
        req: &Topology,
        candidates: &[Vec<NodeId>],
        strategy: &Strategy,
    ) -> Vec<GedResult> {
        let threads = strategy.threads.min(candidates.len()).max(1);
        if threads == 1 {
            return candidates
                .iter()
                .map(|cells| {
                    let (sub, _) = self.phys.induced_subgraph(cells);
                    ged::ged(req, &sub, strategy.costs.as_ref())
                })
                .collect();
        }
        let chunk = candidates.len().div_ceil(threads);
        let mut results: Vec<Option<GedResult>> = vec![None; candidates.len()];
        std::thread::scope(|scope| {
            let mut rest = results.as_mut_slice();
            for (t, cand_chunk) in candidates.chunks(chunk).enumerate() {
                let (head, tail) = rest.split_at_mut(cand_chunk.len().min(rest.len()));
                rest = tail;
                let phys = self.phys;
                let costs = Arc::clone(&strategy.costs);
                let _ = t;
                scope.spawn(move || {
                    for (slot, cells) in head.iter_mut().zip(cand_chunk) {
                        let (sub, _) = phys.induced_subgraph(cells);
                        *slot = Some(ged::ged(req, &sub, costs.as_ref()));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every candidate scored"))
            .collect()
    }
}

/// How many of the lowest-TED candidates receive 2-opt refinement.
const REFINE_TOP_CANDIDATES: usize = 6;

/// Turns a (possibly partial) GED node mapping into a total mapping in
/// candidate-local node IDs: unmapped virtual nodes take the leftover
/// candidate cells in order.
fn complete_option_mapping(
    mapping: &[Option<NodeId>],
    candidate_len: usize,
) -> Vec<Option<NodeId>> {
    let mut used = vec![false; candidate_len];
    for m in mapping.iter().flatten() {
        used[m.index()] = true;
    }
    let mut leftovers = (0..candidate_len).filter(|&j| !used[j]);
    mapping
        .iter()
        .map(|m| match m {
            Some(j) => Some(*j),
            None => Some(NodeId(
                leftovers.next().expect("R-1: equal node counts") as u32
            )),
        })
        .collect()
}

/// A memoization backend for one cached mapping attempt.
///
/// The hypervisor's placement paths are generic over this trait so the
/// same code serves three cache forms: an exclusively-borrowed
/// [`MappingCache`] (the per-chip hint caches, and every pre-existing
/// call site), a shared [`crate::cache::ShardedMappingCache`] reached through per-shard
/// locks (the cluster's placement cache), and the [`ProbedCache`] adapter
/// that substitutes a speculatively-precomputed result into the shared
/// cache's miss path. Each impl runs the *identical* `key_for` → `get` →
/// `insert` protocol of [`Mapper::map_cached`], which is what keeps
/// cache contents and statistics byte-identical across them.
pub trait PlacementCache {
    /// One memoized mapping attempt; see [`Mapper::map_cached`].
    ///
    /// # Errors
    ///
    /// As for [`Mapper::map_cached`].
    fn map(
        &mut self,
        mapper: &Mapper<'_>,
        free: &FreeSet,
        req: &Topology,
        strategy: &Strategy,
    ) -> Result<Mapping>;
}

impl PlacementCache for MappingCache {
    fn map(
        &mut self,
        mapper: &Mapper<'_>,
        free: &FreeSet,
        req: &Topology,
        strategy: &Strategy,
    ) -> Result<Mapping> {
        mapper.map_cached(free, req, strategy, self)
    }
}

impl PlacementCache for &crate::cache::ShardedMappingCache {
    fn map(
        &mut self,
        mapper: &Mapper<'_>,
        free: &FreeSet,
        req: &Topology,
        strategy: &Strategy,
    ) -> Result<Mapping> {
        self.with_shard(req, |c| mapper.map_cached(free, req, strategy, c))
    }
}

/// A [`ShardedMappingCache`](crate::cache::ShardedMappingCache) view that
/// substitutes one speculatively-precomputed mapping result into the miss
/// path of its *first* `map` call (subsequent calls fall through to the
/// plain shared-cache protocol).
///
/// This is the coordinator's side of the parallel-admission handshake:
/// a worker ran `map_in` for `(free, req, strategy)` off-thread; wrapping
/// the shared cache in `ProbedCache::new(cache, Some(result))` makes the
/// merge consume that value only when the canonical protocol actually
/// misses — on a hit the cached entry wins, exactly as it would have
/// sequentially.
#[derive(Debug)]
pub struct ProbedCache<'a> {
    cache: &'a crate::cache::ShardedMappingCache,
    probe: Option<Result<Mapping>>,
}

impl<'a> ProbedCache<'a> {
    /// Wraps `cache`, arming it with `probe` for the first miss.
    pub fn new(
        cache: &'a crate::cache::ShardedMappingCache,
        probe: Option<Result<Mapping>>,
    ) -> Self {
        ProbedCache { cache, probe }
    }
}

impl PlacementCache for ProbedCache<'_> {
    fn map(
        &mut self,
        mapper: &Mapper<'_>,
        free: &FreeSet,
        req: &Topology,
        strategy: &Strategy,
    ) -> Result<Mapping> {
        let probe = self.probe.take();
        self.cache.with_shard(req, |c| {
            mapper.map_cached_with(free, req, strategy, c, probe)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn free_except(t: &Topology, taken: &[u32]) -> Vec<NodeId> {
        t.nodes().filter(|n| !taken.contains(&n.0)).collect()
    }

    #[test]
    fn mismatched_free_set_is_an_error_not_a_panic() {
        // The enumerators index the free mask by physical node id, so a
        // set sized for a different chip must be rejected up front.
        let phys = Topology::mesh2d(3, 3);
        let mapper = Mapper::new(&phys);
        let small = FreeSet::all_free(4);
        let err = mapper
            .map_in(&small, &Topology::line(2), &Strategy::similar_topology())
            .unwrap_err();
        assert!(matches!(
            err,
            TopoError::FreeSetMismatch {
                set: 4,
                topology: 9
            }
        ));
    }

    #[test]
    fn with_phys_key_matches_new() {
        let phys = Topology::mesh2d(3, 3);
        let from_new = Mapper::new(&phys);
        let precomputed = Mapper::with_phys_key(&phys, crate::cache::labeled_hash(&phys));
        assert_eq!(from_new.phys_key(), precomputed.phys_key());
    }

    #[test]
    fn straightforward_takes_lowest_ids() {
        let phys = Topology::mesh2d(5, 5);
        let req = Topology::mesh2d(2, 2);
        let free = free_except(&phys, &[0, 1]);
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::straightforward())
            .unwrap();
        assert_eq!(
            m.phys_nodes(),
            &[NodeId(2), NodeId(3), NodeId(4), NodeId(5)]
        );
    }

    #[test]
    fn exact_mesh_fast_path() {
        let phys = Topology::mesh2d(5, 5);
        let req = Topology::mesh2d(3, 3);
        let free: Vec<NodeId> = phys.nodes().collect();
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::exact_only())
            .unwrap();
        assert_eq!(m.edit_distance(), 0);
        assert!(m.is_connected());
        // mapping must be a valid isomorphism: adjacent virtual nodes map to
        // adjacent physical nodes
        for (a, b) in req.edges() {
            assert!(phys.has_edge(m.phys_of(a), m.phys_of(b)));
        }
    }

    #[test]
    fn topology_lock_in_reproduced() {
        // Paper §4.3: 5x5 mesh, two 3x3 requests. Exact-only can satisfy only
        // one; similar-topology satisfies both.
        let phys = Topology::mesh2d(5, 5);
        let req = Topology::mesh2d(3, 3);
        let all: Vec<NodeId> = phys.nodes().collect();
        let mapper = Mapper::new(&phys);

        let first = mapper.map(&all, &req, &Strategy::exact_only()).unwrap();
        let free: Vec<NodeId> = all
            .iter()
            .copied()
            .filter(|n| !first.phys_nodes().contains(n))
            .collect();
        assert_eq!(free.len(), 16);
        // Exact fails: lock-in.
        assert_eq!(
            mapper.map(&free, &req, &Strategy::exact_only()),
            Err(TopoError::NoCandidate)
        );
        // Similar topology succeeds with a small positive edit distance.
        let second = mapper
            .map(&free, &req, &Strategy::similar_topology().threads(2))
            .unwrap();
        assert_eq!(second.phys_nodes().len(), 9);
        assert!(second.edit_distance() > 0);
        assert!(second.is_connected());
        // Its nodes must all be free ones.
        for n in second.phys_nodes() {
            assert!(free.contains(n));
        }
    }

    #[test]
    fn similar_prefers_exact_when_available() {
        let phys = Topology::mesh2d(4, 4);
        let req = Topology::mesh2d(2, 2);
        let free: Vec<NodeId> = phys.nodes().collect();
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::similar_topology())
            .unwrap();
        assert_eq!(m.edit_distance(), 0);
    }

    #[test]
    fn insufficient_nodes_error() {
        let phys = Topology::mesh2d(2, 2);
        let req = Topology::mesh2d(3, 3);
        let free: Vec<NodeId> = phys.nodes().collect();
        assert!(matches!(
            Mapper::new(&phys).map(&free, &req, &Strategy::similar_topology()),
            Err(TopoError::InsufficientNodes {
                requested: 9,
                available: 4
            })
        ));
    }

    #[test]
    fn mapping_is_injective() {
        let phys = Topology::mesh2d(5, 5);
        let req = Topology::line(6);
        let free = free_except(&phys, &[6, 7, 8, 11, 12, 13]);
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::similar_topology().threads(2))
            .unwrap();
        let mut seen = HashSet::new();
        for n in m.phys_nodes() {
            assert!(seen.insert(*n), "physical node {n} assigned twice");
        }
    }

    #[test]
    fn disconnected_free_region_needs_fragmentation_mode() {
        // Free nodes form two islands of 2; request a 4-line.
        let phys = Topology::mesh2d(3, 3);
        let free = vec![NodeId(0), NodeId(1), NodeId(7), NodeId(8)];
        let req = Topology::line(4);
        let mapper = Mapper::new(&phys);
        assert_eq!(
            mapper.map(&free, &req, &Strategy::similar_topology()),
            Err(TopoError::NoCandidate)
        );
        let m = mapper
            .map(
                &free,
                &req,
                &Strategy::similar_topology().allow_disconnected(true),
            )
            .unwrap();
        assert!(!m.is_connected());
        assert_eq!(m.phys_nodes().len(), 4);
    }

    #[test]
    fn zero_node_request() {
        let phys = Topology::mesh2d(2, 2);
        let req = Topology::empty(0);
        let free: Vec<NodeId> = phys.nodes().collect();
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::similar_topology())
            .unwrap();
        assert!(m.phys_nodes().is_empty());
    }

    #[test]
    fn similar_beats_straightforward_on_distance() {
        // Occupy a snake so that low-ID free cells are badly shaped.
        let phys = Topology::mesh2d(5, 5);
        let taken = [0u32, 2, 4, 10, 12, 14, 20, 22, 24];
        let free = free_except(&phys, &taken);
        let req = Topology::mesh2d(2, 2);
        let mapper = Mapper::new(&phys);
        let s = mapper
            .map(&free, &req, &Strategy::straightforward())
            .unwrap();
        let t = mapper
            .map(&free, &req, &Strategy::similar_topology().threads(2))
            .unwrap();
        assert!(
            t.edit_distance() <= s.edit_distance(),
            "similar ({}) must not lose to straightforward ({})",
            t.edit_distance(),
            s.edit_distance()
        );
    }

    #[test]
    fn policy_presets_match_figure10() {
        // Performance-first = exact or fail; utilization-first = always
        // place when nodes exist, even disconnected.
        let phys = Topology::mesh2d(3, 3);
        // Fragmented free set: the four corners.
        let free = vec![NodeId(0), NodeId(2), NodeId(6), NodeId(8)];
        let req = Topology::mesh2d(2, 2);
        let mapper = Mapper::new(&phys);
        assert!(mapper
            .map(&free, &req, &Strategy::performance_first())
            .is_err());
        let m = mapper
            .map(&free, &req, &Strategy::utilization_first())
            .unwrap();
        assert_eq!(m.phys_nodes().len(), 4);
        assert!(!m.is_connected());
    }

    #[test]
    fn chain_requests_embed_as_snakes() {
        // A 12-chain onto an idle 4x3 mesh: the serpentine seed + 2-opt
        // must keep every chain edge on a mesh edge (edit distance =
        // only the mesh's surplus edges).
        let phys = Topology::mesh2d(4, 3);
        let req = Topology::line(12);
        let free: Vec<NodeId> = phys.nodes().collect();
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::similar_topology().threads(1))
            .unwrap();
        // Every consecutive pair must be physically adjacent.
        for w in m.phys_nodes().windows(2) {
            assert!(
                phys.has_edge(w[0], w[1]),
                "chain neighbors {}-{} not adjacent",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn transposed_rectangle_found() {
        // Only a vertical 1x3 strip is free; request a horizontal 3x1.
        let phys = Topology::mesh2d(3, 3);
        let free = vec![NodeId(1), NodeId(4), NodeId(7)];
        let req = Topology::mesh2d(3, 1);
        let m = Mapper::new(&phys)
            .map(&free, &req, &Strategy::exact_only())
            .unwrap();
        assert_eq!(m.edit_distance(), 0);
    }
}
