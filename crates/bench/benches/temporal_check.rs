//! Thin bench entry point; the scenario lives in
//! [`vnpu_bench::figs::temporal_check`] so `tests/benches_smoke.rs`
//! can run it at tiny scale under `cargo test`. Pass `-- --quick` for
//! the same fast mode here.

fn main() {
    vnpu_bench::figs::temporal_check::run(vnpu_bench::harness::quick_from_env());
}
