//! An in-repo worker pool for sharding per-chip serve work.
//!
//! Same offline-first spirit as `vnpu_mem::proptest_lite`: plain
//! `std::thread` workers draining a shared channel — no external crates,
//! no scoped-thread tricks, no unsafe. Jobs are `'static` closures, so
//! callers *move* owned per-chip state (a `Machine`, a `Hypervisor`, a
//! hint cache) into each job and take it back out of the result, which is
//! exactly the shape the deterministic serve-loop merge wants: fan work
//! out by chip, collect results **in submission-index order**, reduce
//! sequentially.
//!
//! Determinism contract: [`WorkerPool::run`] returns results in the same
//! order as the submitted jobs regardless of which worker ran what or in
//! what order jobs finished. A pool with `workers == 1` never spawns a
//! thread at all — `run` executes jobs inline on the caller's thread, so
//! the single-worker configuration is *exactly* the sequential path, not
//! a one-thread simulation of it.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};

/// A unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped (the job channel closes and each worker joins), so the
/// per-tick cost of fanning out is two channel hops per job, not a
/// thread spawn.
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
    /// `None` for the inline single-worker pool (no threads to feed).
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Creates a pool of `workers` threads (clamped to at least 1).
    ///
    /// `workers == 1` creates the *inline* pool: no thread is spawned and
    /// [`WorkerPool::run`] executes jobs directly on the caller's thread.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        if workers == 1 {
            return WorkerPool {
                workers,
                tx: None,
                handles: Vec::new(),
            };
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        WorkerPool {
            workers,
            tx: Some(tx),
            handles,
        }
    }

    /// Number of workers this pool was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns their results **in job order**.
    ///
    /// Jobs execute concurrently on the pool's workers (inline on the
    /// caller's thread for a single-worker pool, or when there is at most
    /// one job). The caller blocks until all results are in.
    ///
    /// # Panics
    ///
    /// A panicking job does not poison the pool: the panic is caught on
    /// the worker, every remaining result is still collected, and the
    /// first panicking job's payload (in job order) is re-raised on the
    /// caller's thread.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let Some(tx) = self.tx.as_ref().filter(|_| jobs.len() > 1) else {
            return jobs.into_iter().map(|f| f()).collect();
        };
        let n = jobs.len();
        let (result_tx, result_rx) = channel::<(usize, thread::Result<T>)>();
        for (i, job) in jobs.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            let boxed: Job = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The receiver only disappears if `run` itself unwound;
                // dropping the result is then the right thing.
                let _ = result_tx.send((i, outcome));
            });
            tx.send(boxed).expect("worker pool is alive while owned");
        }
        drop(result_tx);
        let mut slots: Vec<Option<thread::Result<T>>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, outcome) = result_rx
                .recv()
                .expect("every submitted job reports exactly once");
            slots[i] = Some(outcome);
        }
        let mut out = Vec::with_capacity(n);
        let mut panic_payload = None;
        for slot in slots {
            match slot.expect("all slots filled") {
                Ok(v) => out.push(v),
                Err(p) => {
                    // Keep the first panic in job order; later ones are
                    // secondary casualties of the same tick.
                    panic_payload.get_or_insert(p);
                }
            }
        }
        if let Some(p) = panic_payload {
            resume_unwind(p);
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drains jobs until the channel closes. The receiver lock is held only
/// for the `recv`, so a long job never blocks other workers from picking
/// up the next one.
fn worker_loop(rx: &Mutex<Receiver<Job>>) {
    loop {
        let job = rx
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .recv()
            .ok();
        match job {
            Some(job) => job(),
            None => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let jobs: Vec<_> = (0..32u64)
                .map(|i| {
                    move || {
                        // Finish out of order on purpose.
                        if i % 3 == 0 {
                            thread::yield_now();
                        }
                        i * i
                    }
                })
                .collect();
            let got = pool.run(jobs);
            let want: Vec<u64> = (0..32).map(|i| i * i).collect();
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn owned_state_moves_through_and_back() {
        // The serve loop's idiom: move owned per-chip state into jobs,
        // get it back in chip order.
        let pool = WorkerPool::new(3);
        let chips: Vec<Vec<u32>> = (0..6).map(|c| vec![c; 4]).collect();
        let returned = pool.run(
            chips
                .into_iter()
                .map(|mut chip| {
                    move || {
                        chip.push(99);
                        chip
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (c, chip) in returned.iter().enumerate() {
            assert_eq!(chip.len(), 5);
            assert_eq!(chip[0], c as u32);
            assert_eq!(chip[4], 99);
        }
    }

    #[test]
    fn single_job_runs_inline_even_on_a_wide_pool() {
        let pool = WorkerPool::new(4);
        let caller = thread::current().id();
        let ran_on = pool.run(vec![move || thread::current().id()]);
        assert_eq!(ran_on, vec![caller], "one job must not pay a channel hop");
    }

    #[test]
    fn zero_workers_clamps_to_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_job_resurfaces_without_poisoning_the_pool() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..4)
                    .map(|i| move || if i == 2 { panic!("job 2 died") } else { i })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(caught.is_err(), "the job's panic must reach the caller");
        // The pool still works afterwards.
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }
}
