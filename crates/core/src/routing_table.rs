//! Routing tables — the vRouter's core data structure (§4.1.1, Figure 4).
//!
//! "Similar to the page table used in memory virtualization ... the routing
//! table maps virtual NPU core IDs to physical NPU core IDs." Two
//! organizations exist:
//!
//! * [`RoutingTable::standard`] — one entry per virtual core (needed for
//!   irregular virtual topologies);
//! * [`RoutingTable::mesh2d`] — the compact form for regular shapes:
//!   "only records the initial ID of the virtual and physical NPU core,
//!   and the shape of the virtual NPU topology" — one entry regardless of
//!   core count.
//!
//! Tables are keyed by `VMID` and stored in controller SRAM; per-core NoC
//! copies may carry per-destination *direction* overrides (Figure 5's
//! `Direction` column) to keep packets inside the virtual topology.

use crate::ids::{PhysCoreId, VirtCoreId, VmId};
use std::collections::BTreeMap;
use vnpu_sim::controller;
use vnpu_topo::MeshShape;

/// Bits per standard routing-table entry: 16-bit virtual ID + 16-bit
/// physical ID + 8-bit VMID + 4-bit direction + valid bit (padded).
pub const RT_ENTRY_BITS: u64 = 48;

/// Bits of a compact mesh entry: base IDs + 2×8-bit shape + VMID + valid.
pub const RT_MESH_ENTRY_BITS: u64 = 64;

/// Cycles for one routing-table lookup in controller SRAM (charged on the
/// first send to a new destination; consecutive sends to the same core hit
/// the cached translation — §6.2.1).
pub const RT_LOOKUP_CYCLES: u64 = 30;

/// A per-VM routing table in one of the two Figure 4 organizations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoutingTable {
    /// One `(v_CoreID, p_CoreID)` row per virtual core.
    Standard {
        /// Owning virtual machine.
        vmid: VmId,
        /// Virtual → physical core map.
        entries: BTreeMap<VirtCoreId, PhysCoreId>,
    },
    /// Compact regular-shape form: virtual core `(x, y)` maps to physical
    /// core `p_origin + y·phys_width + x`.
    Mesh2d {
        /// Owning virtual machine.
        vmid: VmId,
        /// Physical core backing virtual core 0 (the window origin).
        p_origin: PhysCoreId,
        /// Shape of the virtual mesh.
        shape: MeshShape,
        /// Row stride of the *physical* mesh.
        phys_width: u32,
    },
}

impl RoutingTable {
    /// Builds a standard table from `(virtual, physical)` pairs.
    pub fn standard(vmid: VmId, pairs: impl IntoIterator<Item = (VirtCoreId, PhysCoreId)>) -> Self {
        RoutingTable::Standard {
            vmid,
            entries: pairs.into_iter().collect(),
        }
    }

    /// Builds a standard table from a dense virtual→physical vector
    /// (index = virtual core ID).
    pub fn from_dense(vmid: VmId, v2p: &[u32]) -> Self {
        RoutingTable::standard(
            vmid,
            v2p.iter()
                .enumerate()
                .map(|(v, &p)| (VirtCoreId(v as u32), PhysCoreId(p))),
        )
    }

    /// Builds a compact mesh table.
    pub fn mesh2d(vmid: VmId, p_origin: PhysCoreId, shape: MeshShape, phys_width: u32) -> Self {
        RoutingTable::Mesh2d {
            vmid,
            p_origin,
            shape,
            phys_width,
        }
    }

    /// The owning VM.
    pub fn vmid(&self) -> VmId {
        match self {
            RoutingTable::Standard { vmid, .. } | RoutingTable::Mesh2d { vmid, .. } => *vmid,
        }
    }

    /// Number of virtual cores covered.
    pub fn core_count(&self) -> u32 {
        match self {
            RoutingTable::Standard { entries, .. } => entries.len() as u32,
            RoutingTable::Mesh2d { shape, .. } => shape.width * shape.height,
        }
    }

    /// Number of SRAM entries occupied (the Figure 4 distinction: the mesh
    /// form needs a single entry).
    pub fn entry_count(&self) -> u32 {
        match self {
            RoutingTable::Standard { entries, .. } => entries.len() as u32,
            RoutingTable::Mesh2d { .. } => 1,
        }
    }

    /// Translates a virtual core ID to its physical core.
    pub fn lookup(&self, v: VirtCoreId) -> Option<PhysCoreId> {
        match self {
            RoutingTable::Standard { entries, .. } => entries.get(&v).copied(),
            RoutingTable::Mesh2d {
                p_origin,
                shape,
                phys_width,
                ..
            } => {
                if v.0 >= shape.width * shape.height {
                    return None;
                }
                let vx = v.0 % shape.width;
                let vy = v.0 / shape.width;
                Some(PhysCoreId(p_origin.0 + vy * phys_width + vx))
            }
        }
    }

    /// Inverse lookup: which virtual core is backed by `p`?
    pub fn lookup_phys(&self, p: PhysCoreId) -> Option<VirtCoreId> {
        match self {
            RoutingTable::Standard { entries, .. } => {
                entries.iter().find_map(|(&v, &pp)| (pp == p).then_some(v))
            }
            RoutingTable::Mesh2d {
                p_origin,
                shape,
                phys_width,
                ..
            } => {
                let off = p.0.checked_sub(p_origin.0)?;
                let (px, py) = (off % phys_width, off / phys_width);
                (px < shape.width && py < shape.height).then(|| VirtCoreId(py * shape.width + px))
            }
        }
    }

    /// SRAM storage cost in bits (the Figure 19 routing-table bar).
    pub fn storage_bits(&self) -> u64 {
        match self {
            RoutingTable::Standard { entries, .. } => entries.len() as u64 * RT_ENTRY_BITS,
            RoutingTable::Mesh2d { .. } => RT_MESH_ENTRY_BITS,
        }
    }

    /// Cycles for the hyper-mode controller to install this table
    /// (availability queries + entry writes — the Figure 11 cost).
    pub fn config_cycles(&self) -> u64 {
        match self {
            RoutingTable::Standard { .. } => controller::rt_config_cycles(self.core_count()),
            RoutingTable::Mesh2d { .. } => controller::rt_config_cycles_compact(self.core_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh_table() -> RoutingTable {
        // Figure 4's vNPU1: a 2x2 virtual mesh at physical origin 0 on a
        // 3-wide physical mesh: v0->p0 v1->p1 v2->p3 v3->p4.
        RoutingTable::mesh2d(
            VmId(1),
            PhysCoreId(0),
            MeshShape {
                width: 2,
                height: 2,
            },
            3,
        )
    }

    #[test]
    fn figure4_mesh_lookup() {
        let t = mesh_table();
        assert_eq!(t.lookup(VirtCoreId(0)), Some(PhysCoreId(0)));
        assert_eq!(t.lookup(VirtCoreId(1)), Some(PhysCoreId(1)));
        assert_eq!(t.lookup(VirtCoreId(2)), Some(PhysCoreId(3)));
        assert_eq!(t.lookup(VirtCoreId(3)), Some(PhysCoreId(4)));
        assert_eq!(t.lookup(VirtCoreId(4)), None);
    }

    #[test]
    fn standard_lookup() {
        let t = RoutingTable::from_dense(VmId(2), &[1, 2, 4, 5]);
        assert_eq!(t.lookup(VirtCoreId(0)), Some(PhysCoreId(1)));
        assert_eq!(t.lookup(VirtCoreId(3)), Some(PhysCoreId(5)));
        assert_eq!(t.lookup(VirtCoreId(9)), None);
        assert_eq!(t.core_count(), 4);
    }

    #[test]
    fn inverse_lookup_roundtrip() {
        for t in [
            mesh_table(),
            RoutingTable::from_dense(VmId(0), &[6, 2, 9, 4]),
        ] {
            for v in 0..t.core_count() {
                let p = t.lookup(VirtCoreId(v)).unwrap();
                assert_eq!(t.lookup_phys(p), Some(VirtCoreId(v)));
            }
        }
    }

    #[test]
    fn inverse_lookup_foreign_core() {
        let t = mesh_table();
        assert_eq!(t.lookup_phys(PhysCoreId(2)), None); // outside the window
        assert_eq!(t.lookup_phys(PhysCoreId(8)), None);
    }

    #[test]
    fn compact_form_saves_storage() {
        let mesh = RoutingTable::mesh2d(
            VmId(0),
            PhysCoreId(0),
            MeshShape {
                width: 4,
                height: 4,
            },
            6,
        );
        let standard = RoutingTable::from_dense(VmId(0), &(0..16).collect::<Vec<_>>());
        assert_eq!(mesh.entry_count(), 1);
        assert_eq!(standard.entry_count(), 16);
        assert!(mesh.storage_bits() < standard.storage_bits() / 4);
    }

    #[test]
    fn config_cost_scales_with_cores() {
        let small = RoutingTable::from_dense(VmId(0), &[0]);
        let big = RoutingTable::from_dense(VmId(0), &(0..8).collect::<Vec<_>>());
        assert!(big.config_cycles() > small.config_cycles());
        // And the compact form is cheaper to configure.
        let mesh = RoutingTable::mesh2d(
            VmId(0),
            PhysCoreId(0),
            MeshShape {
                width: 4,
                height: 2,
            },
            6,
        );
        assert!(mesh.config_cycles() < big.config_cycles());
    }

    #[test]
    fn vmid_preserved() {
        assert_eq!(mesh_table().vmid(), VmId(1));
    }
}
