//! **vNPU** — topology-aware virtualization for inter-core connected NPUs.
//!
//! This crate is the reproduction of the ISCA'25 paper's contribution: it
//! layers virtual NPUs — each with its own *virtual topology*, guest memory
//! space and bandwidth budget — on top of the physical machine modelled by
//! [`vnpu_sim`], using three mechanisms:
//!
//! * **vRouter** ([`routing_table`], [`vrouter`]) — routing tables mapping
//!   virtual core IDs to physical ones, in either the standard per-entry
//!   organization or the compact base-plus-shape form for regular meshes;
//!   an instruction router in the NPU controller; and a per-core NoC
//!   router that rewrites destinations and can confine packets to the
//!   virtual topology with per-hop direction overrides (*NoC
//!   non-interference*).
//! * **vChunk** ([`vchunk`], [`meta`]) — per-core range translation over
//!   the hypervisor's buddy-allocated HBM blocks, plus access counters and
//!   bandwidth caps; meta-tables live in the SRAM *meta-zone* written only
//!   by the hyper-mode controller.
//! * **Topology mapping** ([`hypervisor`]) — virtual-NPU core allocation
//!   by exact match, zig-zag, or minimum topology edit distance
//!   (re-exported from [`vnpu_topo::mapping`]).
//!
//! The comparative systems of §6 are here too: [`mig`] (fixed-partition
//! MIG-style NPU with TDM fallback) and [`uvm`] (unified-virtual-memory
//! NPUs without interconnect virtualization), plus the [`hwcost`] model
//! reproducing the Figure 19 FPGA resource analysis.
//!
//! Above the single chip, [`cluster`] scales the same machinery to a
//! fleet: a [`cluster::Cluster`] owns N hypervisors (heterogeneous chip
//! models allowed) behind one admission queue, with pluggable
//! [`cluster::ChipPlacement`] policies and a mapping cache shared across
//! chips (keys carry each chip's topology fingerprint, so entries never
//! alias). Admission ordering itself is the open
//! [`admission::AdmissionPolicy`] trait — FIFO, smallest-first,
//! retry-after-free, backfill and aging ship in-crate. Fleet operations
//! compose on top: [`plan`] makes every mutation a costed, atomically
//! committable transaction, and [`drain`] turns whole-chip maintenance
//! evacuation into a budgeted pipeline over those transactions.
//!
//! # Quickstart
//!
//! ```
//! use vnpu::hypervisor::Hypervisor;
//! use vnpu::VnpuRequest;
//! use vnpu_sim::SocConfig;
//!
//! # fn main() -> Result<(), vnpu::VnpuError> {
//! let mut hv = Hypervisor::new(SocConfig::sim());
//! let vm = hv.create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))?;
//! let vnpu = hv.vnpu(vm)?;
//! assert_eq!(vnpu.core_count(), 4);
//! assert_eq!(vnpu.mapping().edit_distance(), 0); // empty chip: exact match
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod cluster;
pub mod drain;
pub mod hwcost;
pub mod hypervisor;
pub mod meta;
pub mod mig;
pub mod mmio;
pub mod plan;
pub mod pool;
pub mod routing_table;
pub mod uvm;
pub mod vchunk;
pub mod vnpu;
pub mod vrouter;

mod ids;

pub use admission::{
    AdmissionEvent, AdmissionOutcome, AdmissionPolicy, AdmissionQueue, Aging, Backfill,
    FailureAction, Fifo, FitHint, FragmentationStats, PendingView, RequestId, RetryAfterFree,
    SmallestFirst,
};
pub use cluster::{
    BestFitFragmentation, ChipPlacement, ChipSnapshot, Cluster, ClusterAdmissionEvent,
    ClusterAdmissionOutcome, ClusterVmId, FirstFit, LeastLoaded,
};
pub use drain::{CheapestFirstDrain, ChipSchedState, DrainMove, DrainPolicy, DrainStep};
pub use hypervisor::Hypervisor;
pub use ids::{PhysCoreId, VirtCoreId, VmId};
pub use plan::{
    CommitReceipt, Defragmenter, GreedyDefrag, MigrationTarget, PlacementTxn, PlanOp, PlannedOp,
    ReconfigBudget, ReconfigCost,
};
pub use routing_table::RoutingTable;
pub use vnpu::{VirtualNpu, VnpuRequest};
pub use vrouter::VRouterNoc;

use std::fmt;
use vnpu_mem::MemError;
use vnpu_sim::SimError;
use vnpu_topo::TopoError;

/// Errors produced by the virtualization layer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VnpuError {
    /// Core allocation failed (insufficient or unsatisfiable topology).
    Mapping(TopoError),
    /// Guest memory allocation or table construction failed.
    Memory(MemError),
    /// The underlying simulation rejected a binding or run.
    Sim(SimError),
    /// Referenced virtual NPU does not exist.
    UnknownVm(VmId),
    /// A cluster operation referenced a chip index outside the fleet.
    UnknownChip {
        /// The offending chip index.
        chip: usize,
        /// Chips in the cluster.
        count: usize,
    },
    /// A virtual core ID outside the virtual NPU was referenced.
    VirtCoreOutOfRange {
        /// The offending virtual core.
        vcore: VirtCoreId,
        /// Cores in the virtual NPU.
        count: u32,
    },
    /// The request asked for zero cores or zero memory.
    EmptyRequest,
    /// A [`plan::PlacementTxn`] no longer matches the live hypervisor
    /// state (the free region, HBM occupancy, VM numbering or the
    /// plan-generation chain changed between plan and commit). The
    /// commit applied nothing.
    StalePlan {
        /// Which validation failed.
        detail: &'static str,
    },
    /// A core was released more times than it was acquired (double
    /// release) — previously masked by a saturating subtraction.
    OverRelease {
        /// The physical core whose user count would go negative.
        core: u32,
    },
    /// Meta-tables exceed the SRAM meta-zone budget.
    MetaZoneOverflow {
        /// Bytes required.
        required: u64,
        /// Bytes available.
        capacity: u64,
    },
    /// A drain-lifecycle rule was violated: placing on (or migrating
    /// onto) a draining chip, or an operation invalid for the chip's
    /// current [`drain::ChipSchedState`].
    Drain {
        /// The chip the operation was about.
        chip: usize,
        /// Which rule was violated.
        detail: &'static str,
    },
    /// The operation touched a physical resource marked faulted by the
    /// hardware-fault layer: the hypervisor refuses to hand out a dead
    /// core until it is repaired.
    Faulted {
        /// The faulted physical core.
        core: u32,
    },
    /// No MIG partition is free.
    NoPartition,
    /// An MMIO access violated the PF/VF protection rules (§5.1).
    MmioDenied {
        /// The requesting VM.
        vm: VmId,
        /// Offended register offset.
        offset: u64,
    },
}

impl fmt::Display for VnpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VnpuError::Mapping(e) => write!(f, "core mapping failed: {e}"),
            VnpuError::Memory(e) => write!(f, "memory virtualization failed: {e}"),
            VnpuError::Sim(e) => write!(f, "simulation error: {e}"),
            VnpuError::UnknownVm(vm) => write!(f, "unknown virtual NPU {vm}"),
            VnpuError::UnknownChip { chip, count } => {
                write!(f, "chip index {chip} out of range ({count} chips)")
            }
            VnpuError::VirtCoreOutOfRange { vcore, count } => {
                write!(f, "virtual core {vcore} out of range ({count} cores)")
            }
            VnpuError::EmptyRequest => write!(f, "request must ask for at least one core and byte"),
            VnpuError::StalePlan { detail } => {
                write!(f, "placement plan is stale ({detail}); nothing was applied")
            }
            VnpuError::OverRelease { core } => {
                write!(f, "core {core} released more times than it was acquired")
            }
            VnpuError::MetaZoneOverflow { required, capacity } => {
                write!(
                    f,
                    "meta-zone overflow: need {required} bytes, have {capacity}"
                )
            }
            VnpuError::Drain { chip, detail } => {
                write!(f, "drain lifecycle violation on chip {chip}: {detail}")
            }
            VnpuError::Faulted { core } => {
                write!(f, "physical core {core} is marked faulted")
            }
            VnpuError::NoPartition => write!(f, "no free MIG partition"),
            VnpuError::MmioDenied { vm, offset } => {
                write!(f, "{vm} denied MMIO access at offset {offset:#x}")
            }
        }
    }
}

impl std::error::Error for VnpuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VnpuError::Mapping(e) => Some(e),
            VnpuError::Memory(e) => Some(e),
            VnpuError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopoError> for VnpuError {
    fn from(e: TopoError) -> Self {
        VnpuError::Mapping(e)
    }
}

impl From<MemError> for VnpuError {
    fn from(e: MemError) -> Self {
        VnpuError::Memory(e)
    }
}

impl From<SimError> for VnpuError {
    fn from(e: SimError) -> Self {
        VnpuError::Sim(e)
    }
}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, VnpuError>;
