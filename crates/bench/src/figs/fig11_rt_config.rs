//! **Figure 11** — configuration overhead of the routing table with
//! different numbers of NPU cores.
//!
//! Paper result: the total routing-table setup (availability query +
//! entry writes) is a few hundred cycles at 8 cores and grows linearly —
//! negligible against virtual-NPU creation.

use crate::print_table;
use vnpu::routing_table::RoutingTable;
use vnpu::{PhysCoreId, VmId};
use vnpu_sim::controller;
use vnpu_topo::MeshShape;

/// Sweeps core counts; cheap enough to run identically in both modes.
pub fn run(_quick: bool) {
    let mut rows = Vec::new();
    for cores in 1..=8u32 {
        let standard = RoutingTable::from_dense(VmId(0), &(0..cores).collect::<Vec<_>>());
        let compact = RoutingTable::mesh2d(
            VmId(0),
            PhysCoreId(0),
            MeshShape {
                width: cores,
                height: 1,
            },
            8,
        );
        rows.push(vec![
            cores.to_string(),
            standard.config_cycles().to_string(),
            compact.config_cycles().to_string(),
            controller::rt_config_cycles(cores).to_string(),
        ]);
    }
    print_table(
        "Figure 11: routing-table configuration cost (clocks) vs. #NPU cores",
        &["cores", "standard RT", "compact (mesh) RT", "model"],
        &rows,
    );
    let c8 = controller::rt_config_cycles(8);
    println!(
        "\n8-core standard configuration = {c8} clocks (paper: ~300; 'can be neglected \
         during the virtual NPU creation')."
    );
    assert!(
        (150..450).contains(&c8),
        "Fig11 shape: a few hundred cycles"
    );
}
