//! The hypervisor: owner of all physical NPU resources (§5.2).
//!
//! The paper modifies KVM so that only the hypervisor can program the
//! hyper-mode NPU controller: it allocates cores with a topology-mapping
//! strategy, allocates HBM with a buddy system, builds the routing table
//! and the range translation table, and deploys both into meta-zones. This
//! module is that logic as a library: [`Hypervisor::create_vnpu`] performs
//! the whole provisioning pipeline and accounts the controller cycles it
//! would cost (the Figure 11 configuration overhead).

use crate::admission::{
    AdmissionEvent, AdmissionOutcome, AdmissionPolicy, AdmissionQueue, AdmissionTick, FitHint,
    FragmentationStats, RequestId, TickVerdict,
};
use crate::ids::{VirtCoreId, VmId};
use crate::meta::MetaZoneLayout;
use crate::mmio::{MmioSpace, PfReg, Requester};
use crate::plan::{
    CommitReceipt, MigrationTarget, PlacementTxn, PlanOp, PlannedOp, ReconfigBudget, ReconfigCost,
};
use crate::routing_table::RoutingTable;
use crate::vnpu::{VirtualNpu, VnpuRequest, GUEST_VA_BASE};
use crate::{Result, VnpuError};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use vnpu_mem::buddy::{Block, BuddyAllocator};
use vnpu_mem::rtt::{rtt_deploy_cycles, RttEntry};
use vnpu_mem::{Perm, PhysAddr, VirtAddr};
use vnpu_sim::SocConfig;
use vnpu_topo::cache::{labeled_hash, CacheStats, FreeSet, MappingCache};
use vnpu_topo::mapping::{Mapper, Mapping, PlacementCache, Strategy};
use vnpu_topo::{NodeId, Topology};

/// Candidate-enumeration cap for [`Hypervisor::fit_hint_in`] probes:
/// hints are advisory, so the probe budget stays well below a real
/// placement attempt's.
const FIT_PROBE_CANDIDATE_CAP: usize = 200;

/// Default HBM capacity managed by the hypervisor (the paper's SIM config
/// pairs the chip with tens of GB of HBM).
pub const DEFAULT_HBM_BYTES: u64 = 16 << 30;

/// Minimum buddy block (also the RTT entry granularity floor).
pub const MIN_BLOCK_BYTES: u64 = 1 << 20;

/// Largest single buddy block the hypervisor requests per RTT entry;
/// bigger guest windows become multiple entries.
pub const MAX_BLOCK_BYTES: u64 = 256 << 20;

/// The resource owner and meta-table manager for one physical NPU.
#[derive(Debug)]
pub struct Hypervisor {
    cfg: SocConfig,
    topo: Arc<Topology>,
    /// The chip's `labeled_hash` fingerprint, computed once so per-request
    /// mappers don't re-hash the whole topology before a cache lookup.
    phys_key: u64,
    core_users: Vec<u32>,
    /// The free-core region (`core_users[i] == 0`), maintained
    /// incrementally so the mapping hot path never rebuilds it.
    free_set: FreeSet,
    buddy: BuddyAllocator,
    vnpus: BTreeMap<VmId, VirtualNpu>,
    next_vm: u32,
    config_cycles: u64,
    mmio: MmioSpace,
    /// Memoized mapping results keyed by (request, strategy, free region).
    cache: MappingCache,
    /// Queued create requests awaiting placement.
    admissions: AdmissionQueue,
    /// Monotone count of vNPU destructions (drives retry-after-free).
    free_events: u64,
    /// Memoized *fit-hint probe* results, kept separate from the
    /// placement cache so advisory probes never inflate the
    /// placement-memoization statistics ([`Hypervisor::cache_stats`])
    /// that serving reports and benches assert on.
    hint_cache: MappingCache,
    /// Reconfiguration generation, folded into every mapping-cache key:
    /// hardware changes the topology fingerprint cannot see (hybrid-core
    /// scaling alters heterogeneous match costs) bump this counter so
    /// previously cached strategies expire instead of replaying stale
    /// placements.
    topo_generation: u64,
    /// Plan-generation hash chain: every committed [`PlacementTxn`] (and
    /// every [`Hypervisor::invalidate_plans`]) advances it, so a
    /// transaction planned before another commit can never apply against
    /// state it did not see — [`Hypervisor::commit`] rejects it as
    /// [`VnpuError::StalePlan`]. 0 = no commit yet.
    plan_generation: u64,
    /// Per-core fault mask maintained by [`Hypervisor::set_core_faulted`]:
    /// a faulted core is held *occupied* in the free region (so every
    /// placement path — mapping, fit hints, snapshots, fragmentation —
    /// excludes it automatically) without touching `core_users`, and a
    /// tenant releasing it does not return it to the free pool.
    faulted: Vec<bool>,
    /// Undirected NoC links marked faulted (endpoints stored sorted).
    /// Links carry no occupancy, but the audit layer cross-checks live
    /// tenants against them and routing costs degrade while any is set.
    faulted_links: BTreeSet<(u32, u32)>,
}

impl Hypervisor {
    /// Creates a hypervisor over a physical NPU with the default HBM size.
    pub fn new(cfg: SocConfig) -> Self {
        Self::with_hbm_bytes(cfg, DEFAULT_HBM_BYTES)
    }

    /// Creates a hypervisor with an explicit HBM capacity.
    pub fn with_hbm_bytes(cfg: SocConfig, hbm_bytes: u64) -> Self {
        let mut topo = Topology::mesh2d(cfg.mesh_width, cfg.mesh_height);
        // Annotate distance to the memory interfaces (west edge) so that
        // heterogeneous mapping costs can use it.
        let interfaces: Vec<NodeId> = (0..cfg.mesh_height)
            .map(|row| NodeId(row * cfg.mesh_width))
            .collect();
        topo.annotate_mem_distance(&interfaces);
        let n = cfg.core_count() as usize;
        let mut mmio = MmioSpace::new();
        mmio.write_pf(Requester::Hypervisor, PfReg::HyperEnable, 1)
            .expect("hypervisor owns the PF");
        let phys_key = labeled_hash(&topo);
        Hypervisor {
            topo: Arc::new(topo),
            phys_key,
            core_users: vec![0; n],
            free_set: FreeSet::all_free(n),
            buddy: BuddyAllocator::new(PhysAddr(0x8_0000_0000), hbm_bytes, MIN_BLOCK_BYTES),
            vnpus: BTreeMap::new(),
            next_vm: 0,
            config_cycles: 0,
            mmio,
            cache: MappingCache::default(),
            admissions: AdmissionQueue::default(),
            free_events: 0,
            hint_cache: MappingCache::default(),
            topo_generation: 0,
            plan_generation: 0,
            faulted: vec![false; n],
            faulted_links: BTreeSet::new(),
            cfg,
        }
    }

    /// The mapper for this chip, bound to the precomputed topology
    /// fingerprint and the current reconfiguration generation.
    fn mapper(&self) -> Mapper<'_> {
        Mapper::with_phys_key(&self.topo, self.phys_key).at_generation(self.topo_generation)
    }

    /// Takes one user reference on a core, updating the free region when
    /// the core transitions free → used. A faulted core is already held
    /// occupied by the fault mask, so the transition does not touch the
    /// free region again.
    fn acquire_core(&mut self, core: u32) {
        let users = &mut self.core_users[core as usize];
        *users += 1;
        if *users == 1 && !self.faulted[core as usize] {
            self.free_set.occupy(NodeId(core));
        }
    }

    /// Drops one user reference on a core, updating the free region when
    /// the core transitions used → free.
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::OverRelease`] when the core has no user — a
    /// double release, which previously was silently masked by a
    /// saturating subtraction.
    fn release_core(&mut self, core: u32) -> Result<()> {
        let users = &mut self.core_users[core as usize];
        if *users == 0 {
            return Err(VnpuError::OverRelease { core });
        }
        *users -= 1;
        if *users == 0 && !self.faulted[core as usize] {
            self.free_set.release(NodeId(core));
            // Any used→free transition is a retry signal, whether it came
            // from destroy_vnpu or an administrative release_cores — a
            // retry-after-free request must not stall behind capacity
            // freed outside a vNPU teardown. A *faulted* core is neither:
            // it stays out of the free region (and is no retry signal)
            // until repaired.
            self.free_events += 1;
        }
        Ok(())
    }

    /// The controller's MMIO register space (PF + per-tenant VFs).
    pub fn mmio(&self) -> &MmioSpace {
        &self.mmio
    }

    /// Mutable MMIO access — hyper-mode configuration or guest doorbells
    /// (access rules are enforced per call by [`MmioSpace`]).
    pub fn mmio_mut(&mut self) -> &mut MmioSpace {
        &mut self.mmio
    }

    /// The SoC configuration.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The physical topology (memory-distance annotated).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Currently free physical cores, ascending.
    pub fn free_cores(&self) -> Vec<u32> {
        self.free_set.nodes().into_iter().map(|n| n.0).collect()
    }

    /// The free-core region (incrementally maintained).
    pub fn free_set(&self) -> &FreeSet {
        &self.free_set
    }

    /// Per-core user counts, indexed by physical core ID: 0 = free,
    /// 1 = exclusively owned, ≥ 2 = temporally shared (or reserved on
    /// top of an owner via [`Hypervisor::reserve_cores`]). Read-only —
    /// this is the occupancy ground truth the `vnpu_audit` fleet
    /// auditor cross-checks against tenant mappings and the free set.
    pub fn core_users(&self) -> &[u32] {
        &self.core_users
    }

    /// Number of free cores.
    pub fn free_core_count(&self) -> u32 {
        self.free_set.free_count() as u32
    }

    /// Mapping-cache effectiveness counters (hits, misses, evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Free HBM bytes.
    pub fn hbm_free_bytes(&self) -> u64 {
        self.buddy.free_bytes()
    }

    /// Total managed HBM bytes.
    pub fn hbm_total_bytes(&self) -> u64 {
        self.buddy.total_bytes()
    }

    /// Monotone count of resource-freeing events — core used→free
    /// transitions (from vNPU teardown *or* administrative core release)
    /// and vNPU destructions (which also free HBM). This is the
    /// retry-after-free signal.
    pub fn free_events(&self) -> u64 {
        self.free_events
    }

    /// Fraction of physical cores currently allocated.
    pub fn core_utilization(&self) -> f64 {
        1.0 - f64::from(self.free_core_count()) / f64::from(self.cfg.core_count())
    }

    /// Controller cycles spent configuring meta-tables so far (Figure 11).
    pub fn total_config_cycles(&self) -> u64 {
        self.config_cycles
    }

    /// The reconfiguration generation mapping-cache keys are bound to.
    pub fn topology_generation(&self) -> u64 {
        self.topo_generation
    }

    /// Declares a hardware reconfiguration the topology fingerprint
    /// cannot see — hybrid-core scaling
    /// ([`vnpu_sim::machine::Machine::set_core_scales`]) changes
    /// heterogeneous match costs without touching the graph. Every
    /// mapping memoized before the bump silently expires (its key carries
    /// the old generation).
    ///
    /// The bare increment is sound for this hypervisor's own cache. When
    /// several *identical-model* chips share one cache, two chips bumped
    /// the same number of times after *different* reconfigs would alias —
    /// chips paired with a machine should instead mirror the machine's
    /// hardware-state hash chain via
    /// [`Hypervisor::set_topology_generation`] (the serve layer's
    /// `set_core_scales` does).
    pub fn bump_topology_generation(&mut self) {
        self.topo_generation += 1;
    }

    /// Adopts an externally tracked reconfiguration counter — when the
    /// chip is paired with a [`vnpu_sim::machine::Machine`], its
    /// [`vnpu_sim::machine::Machine::topology_generation`] is the ground
    /// truth (it is bumped inside `set_core_scales` itself and cannot
    /// drift), and the pairing layer mirrors it here after every
    /// reconfig.
    pub fn set_topology_generation(&mut self, generation: u64) {
        self.topo_generation = generation;
    }

    // ------------------------------------------------------------------
    // Hardware-fault masking (the `vnpu_fault` layer's hypervisor hooks).
    // ------------------------------------------------------------------

    /// Marks a physical core faulted (or repairs it). A faulted core is
    /// held *occupied* in the free region without touching user counts,
    /// so every placement path — mapping candidates, fit hints,
    /// snapshots, fragmentation — excludes it automatically; tenants
    /// still pinned on it keep their user references until recovery
    /// moves or retires them, and a release while faulted does not
    /// return the core to the free pool. Repairing a core with no users
    /// frees it and counts as a retry-after-free event. Either
    /// transition invalidates outstanding placement plans (they were
    /// costed against a differently-healthy chip). Returns whether the
    /// mask changed (the call is idempotent).
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::VirtCoreOutOfRange`] for a core outside the
    /// chip.
    pub fn set_core_faulted(&mut self, core: u32, faulted: bool) -> Result<bool> {
        let count = self.cfg.core_count();
        if core >= count {
            return Err(VnpuError::VirtCoreOutOfRange {
                vcore: VirtCoreId(core),
                count,
            });
        }
        if self.faulted[core as usize] == faulted {
            return Ok(false);
        }
        self.faulted[core as usize] = faulted;
        if self.core_users[core as usize] == 0 {
            if faulted {
                self.free_set.occupy(NodeId(core));
            } else {
                self.free_set.release(NodeId(core));
                self.free_events += 1;
            }
        }
        self.invalidate_plans();
        Ok(true)
    }

    /// Whether a core is currently marked faulted (out-of-range = false).
    pub fn core_faulted(&self, core: u32) -> bool {
        self.faulted.get(core as usize).copied().unwrap_or(false)
    }

    /// Currently faulted cores, ascending.
    pub fn faulted_cores(&self) -> Vec<u32> {
        self.faulted
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Number of currently faulted cores.
    pub fn faulted_core_count(&self) -> u32 {
        self.faulted.iter().filter(|&&f| f).count() as u32
    }

    /// Faulted cores currently *unowned* — held out of the free region by
    /// the fault mask alone. Leak accounting subtracts these: they are
    /// dead hardware, not leaked tenant state (an owned faulted core is
    /// already accounted to its owner).
    pub fn masked_core_count(&self) -> u32 {
        self.faulted
            .iter()
            .zip(&self.core_users)
            .filter(|&(&f, &users)| f && users == 0)
            .count() as u32
    }

    /// Whether any core or link fault is currently active.
    pub fn has_faults(&self) -> bool {
        !self.faulted_links.is_empty() || self.faulted.iter().any(|&f| f)
    }

    /// Marks an undirected NoC link faulted (or repairs it). Links carry
    /// no core occupancy — the mask exists so detection and audit can
    /// cross-check live tenants against dead links; the paired
    /// [`vnpu_sim::machine::Machine`] models the timing and packet-drop
    /// consequences. Either transition invalidates outstanding plans.
    /// Returns whether the mask changed.
    pub fn set_link_faulted(&mut self, a: u32, b: u32, faulted: bool) -> bool {
        let key = (a.min(b), a.max(b));
        let changed = if faulted {
            self.faulted_links.insert(key)
        } else {
            self.faulted_links.remove(&key)
        };
        if changed {
            self.invalidate_plans();
        }
        changed
    }

    /// Whether the undirected link `a`–`b` is marked faulted.
    pub fn link_faulted(&self, a: u32, b: u32) -> bool {
        self.faulted_links.contains(&(a.min(b), a.max(b)))
    }

    /// Currently faulted undirected links, endpoints sorted, ascending.
    pub fn faulted_links(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.faulted_links.iter().copied()
    }

    /// The faulted cores as [`NodeId`]s — the exclusion list remap
    /// widening must never re-offer.
    fn faulted_nodes(&self) -> Vec<NodeId> {
        self.faulted
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of live virtual NPUs.
    pub fn vnpu_count(&self) -> usize {
        self.vnpus.len()
    }

    /// Live virtual NPUs, ascending by VM ID.
    pub fn vnpus(&self) -> impl Iterator<Item = (&VmId, &VirtualNpu)> {
        self.vnpus.iter()
    }

    /// Looks up a virtual NPU.
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::UnknownVm`] for stale IDs.
    pub fn vnpu(&self, vm: VmId) -> Result<&VirtualNpu> {
        self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))
    }

    /// Provisions a virtual NPU: maps cores, allocates memory, builds and
    /// "deploys" the routing and range-translation tables. Mapping goes
    /// through this hypervisor's own [`MappingCache`]; chips managed by a
    /// [`crate::cluster::Cluster`] use
    /// [`Hypervisor::create_vnpu_in`] with the cluster's shared cache
    /// instead.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::EmptyRequest`] — zero cores or zero memory.
    /// * [`VnpuError::Mapping`] — no core allocation satisfies the
    ///   strategy (e.g. topology lock-in under
    ///   [`vnpu_topo::mapping::Strategy::exact_only`]).
    /// * [`VnpuError::Memory`] — HBM exhausted.
    pub fn create_vnpu(&mut self, req: VnpuRequest) -> Result<VmId> {
        let mut cache = std::mem::take(&mut self.cache);
        let result = self.create_vnpu_in(req, &mut cache);
        self.cache = cache;
        result
    }

    /// [`Hypervisor::create_vnpu`] with an explicit (possibly shared)
    /// [`MappingCache`]. A [`crate::cluster::Cluster`] passes one cache to
    /// every chip it owns; entries cannot alias across chips because the
    /// key carries each chip's topology fingerprint and reconfiguration
    /// generation.
    ///
    /// # Errors
    ///
    /// As for [`Hypervisor::create_vnpu`].
    pub fn create_vnpu_in<C: PlacementCache>(
        &mut self,
        req: VnpuRequest,
        cache: &mut C,
    ) -> Result<VmId> {
        if req.core_count() == 0 || req.memory_bytes() == 0 {
            return Err(VnpuError::EmptyRequest);
        }
        // 1. Core allocation via the topology-mapping strategy, memoized
        //    through the mapping cache (the request topology + free-region
        //    fingerprint identify the answer). With temporal sharing (§7
        //    over-provisioning), the available set is widened with the
        //    least-loaded busy cores; their current tenants will be
        //    time-division-multiplexed with this one. The widened set is
        //    its own cacheable region — its fingerprint differs from the
        //    plain free set's.
        let widened = self.widened_for(&req);
        let available = widened.as_ref().unwrap_or(&self.free_set);
        let mapping = cache.map(
            &self.mapper(),
            available,
            req.topology(),
            req.strategy_ref(),
        )?;

        // 2. Guest memory: buddy blocks mapped 1:1 into RTT entries.
        let (entries, blocks) = self.allocate_memory(req.memory_bytes())?;
        let mem_bytes: u64 = entries.iter().map(|e| e.size).sum();

        // 3. Routing table: compact form when the allocation is an exact
        //    axis-aligned mesh window, standard otherwise.
        let vm = VmId(self.next_vm);
        let routing_table = self.build_routing_table(vm, req.topology(), &mapping);

        // 4. Meta-zone budget check per core.
        let layout = MetaZoneLayout {
            noc_rt_entries: u64::from(req.core_count()),
            direction_entries: if req.wants_noc_isolation() {
                // Worst case: every pair stores a full path.
                u64::from(req.core_count()) * u64::from(req.core_count())
            } else {
                0
            },
            rtt_entries: entries.len() as u64,
        };
        if let Err(e) = layout.check(self.cfg.scratchpad_bytes) {
            for b in &blocks {
                let _ = self.buddy.free(b.addr);
            }
            return Err(e);
        }

        // 5. Deploy: mark cores used, account controller configuration.
        for &n in mapping.phys_nodes() {
            self.acquire_core(n.0);
        }
        self.config_cycles += routing_table.config_cycles();
        self.config_cycles += rtt_deploy_cycles(entries.len());
        self.next_vm += 1;
        let vnpu = VirtualNpu::new(
            vm,
            Arc::clone(&self.topo),
            mapping,
            routing_table,
            entries,
            blocks,
            mem_bytes,
            &req,
        );
        self.vnpus.insert(vm, vnpu);
        Ok(vm)
    }

    /// The temporal-sharing widening of the free set for `req`: when the
    /// request opts into §7 over-provisioning and the plain free region is
    /// too small, the least-loaded busy cores are treated as additionally
    /// available (their tenants will be time-division-multiplexed).
    /// `None` when the plain free set is the region to map against.
    fn widened_for(&self, req: &VnpuRequest) -> Option<FreeSet> {
        if req.wants_temporal_sharing() && self.free_set.free_count() < req.core_count() as usize {
            let mut set = self.free_set.clone();
            let mut busy: Vec<(u32, u32)> = self
                .core_users
                .iter()
                .enumerate()
                .filter(|&(i, &u)| u > 0 && !self.faulted[i])
                .map(|(i, &u)| (u, i as u32))
                .collect();
            busy.sort_unstable();
            for (_, core) in busy {
                if set.free_count() >= req.core_count() as usize {
                    break;
                }
                set.release(NodeId(core));
            }
            Some(set)
        } else {
            None
        }
    }

    /// The exact free region a [`Hypervisor::create_vnpu_in`] for `req`
    /// would map against right now — the plain free set, or its
    /// temporal-sharing widening. Speculative admission probes clone this
    /// so an off-thread `map_in` computes precisely the value the
    /// sequential merge would.
    pub fn availability_for(&self, req: &VnpuRequest) -> FreeSet {
        self.widened_for(req)
            .unwrap_or_else(|| self.free_set.clone())
    }

    /// A clone of the shared physical-topology handle — cheap
    /// (`Arc`-bump), so worker threads can own the topology a probe maps
    /// against without copying the graph.
    pub fn topology_arc(&self) -> Arc<Topology> {
        Arc::clone(&self.topo)
    }

    /// The chip's precomputed [`labeled_hash`] fingerprint (the `phys`
    /// component of every cache key for this chip).
    pub fn phys_key(&self) -> u64 {
        self.phys_key
    }

    /// Administratively reserves specific physical cores (hyper-mode
    /// operation: maintenance, pinned system services, or reproducing a
    /// pre-occupied chip state as in the paper's Figure 17/18 setups).
    /// Already-reserved cores are ignored.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::VirtCoreOutOfRange`] — an index outside the chip.
    /// * [`VnpuError::Faulted`] — a core currently marked faulted; dead
    ///   hardware cannot be reserved (nothing is reserved).
    pub fn reserve_cores(&mut self, cores: &[u32]) -> Result<()> {
        let count = self.cfg.core_count();
        for &c in cores {
            if c >= count {
                return Err(VnpuError::VirtCoreOutOfRange {
                    vcore: VirtCoreId(c),
                    count,
                });
            }
            if self.faulted[c as usize] {
                return Err(VnpuError::Faulted { core: c });
            }
        }
        for &c in cores {
            self.acquire_core(c);
        }
        Ok(())
    }

    /// Releases cores previously taken with [`Hypervisor::reserve_cores`].
    ///
    /// The call is transactional: it validates every index *and* every
    /// user count up front, so a failing call changes nothing.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::VirtCoreOutOfRange`] — an index outside the chip.
    /// * [`VnpuError::OverRelease`] — a core released more times than it
    ///   was acquired (counting duplicates within this call).
    pub fn release_cores(&mut self, cores: &[u32]) -> Result<()> {
        let count = self.cfg.core_count();
        let mut releases = vec![0u32; count as usize];
        for &c in cores {
            if c >= count {
                return Err(VnpuError::VirtCoreOutOfRange {
                    vcore: VirtCoreId(c),
                    count,
                });
            }
            releases[c as usize] += 1;
            if releases[c as usize] > self.core_users[c as usize] {
                return Err(VnpuError::OverRelease { core: c });
            }
        }
        for &c in cores {
            self.release_core(c).expect("validated above");
        }
        Ok(())
    }

    /// Tears down a virtual NPU, releasing cores and memory.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::UnknownVm`] — stale ID.
    /// * [`VnpuError::OverRelease`] — a core of this vNPU no longer has a
    ///   user reference (an earlier [`Hypervisor::release_cores`] misuse);
    ///   the vNPU is left untouched.
    pub fn destroy_vnpu(&mut self, vm: VmId) -> Result<()> {
        let vnpu = self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))?;
        if let Some(n) = vnpu
            .mapping()
            .phys_nodes()
            .iter()
            .find(|n| self.core_users[n.index()] == 0)
        {
            return Err(VnpuError::OverRelease { core: n.0 });
        }
        let vnpu = self.vnpus.remove(&vm).expect("looked up above");
        for &n in vnpu.mapping().phys_nodes() {
            self.release_core(n.0).expect("validated above");
        }
        for b in vnpu.blocks() {
            self.buddy
                .free(b.addr)
                .expect("hypervisor-owned block frees cleanly");
        }
        self.free_events += 1;
        Ok(())
    }

    /// Builds per-core services for binding into a machine — convenience
    /// over [`VirtualNpu::services`].
    ///
    /// # Errors
    ///
    /// Propagates lookup and construction failures.
    pub fn services(&self, vm: VmId, vcore: VirtCoreId) -> Result<vnpu_sim::machine::CoreServices> {
        self.vnpu(vm)?.services(vcore)
    }

    /// Queues a create request for placement by a later admission tick.
    /// Requests that can *never* fit (more cores than the chip, more
    /// memory than the HBM) are still queued; the first tick rejects them.
    pub fn submit(&mut self, req: VnpuRequest) -> RequestId {
        self.admissions.push(req)
    }

    /// Number of requests waiting for placement.
    pub fn pending_count(&self) -> usize {
        self.admissions.len()
    }

    /// The admission queue (policy, attempt budget, queued IDs).
    pub fn admissions(&self) -> &AdmissionQueue {
        &self.admissions
    }

    /// Replaces the admission ordering policy with a trait object —
    /// any [`AdmissionPolicy`] implementation, including ones defined
    /// outside this crate.
    pub fn set_admission_policy_obj(&mut self, policy: std::sync::Arc<dyn AdmissionPolicy>) {
        self.admissions.set_policy(policy);
    }

    /// Caps placement attempts per queued request (see
    /// [`AdmissionQueue::set_max_attempts`]).
    pub fn set_admission_max_attempts(&mut self, max_attempts: Option<u32>) {
        self.admissions.set_max_attempts(max_attempts);
    }

    /// Runs one admission tick: attempts queued requests in policy order,
    /// placing each through the same transactional
    /// [`Hypervisor::create_vnpu`] pipeline (and therefore through the
    /// mapping cache). Returns the tick's *terminal* decisions —
    /// admissions and rejections; requests that merely stay queued produce
    /// no event.
    ///
    /// Rejection happens when a request cannot possibly fit the chip
    /// (cores or memory exceed the hardware) or when its attempt budget is
    /// exhausted. What happens after a non-terminal failure is the
    /// policy's call ([`crate::admission::FailureAction`]): head-of-line
    /// policies stop the
    /// tick, skip-ahead policies continue, backfill policies continue for
    /// strictly smaller requests only.
    pub fn process_admissions(&mut self) -> Vec<AdmissionEvent> {
        let mut cache = std::mem::take(&mut self.cache);
        let events = self.process_admissions_in(&mut cache);
        self.cache = cache;
        events
    }

    /// [`Hypervisor::process_admissions`] with an explicit (possibly
    /// shared) [`MappingCache`] — the form a
    /// [`crate::cluster::Cluster`]-managed chip uses.
    pub fn process_admissions_in(&mut self, cache: &mut MappingCache) -> Vec<AdmissionEvent> {
        let mut events = Vec::new();
        let mut tick = AdmissionTick::new();
        for id in self.admissions.attempt_order(self.free_events) {
            let Some(req) = self.admissions.request(id) else {
                // A policy may return stale or duplicate IDs; ignore them.
                continue;
            };
            if tick.skips(&req.view()) {
                continue;
            }
            // A failure is terminal (reject now, never retry) when the
            // request can't fit the hardware even on an idle chip. The
            // classification only applies to *failed* attempts: if a
            // future placement path (sharding, over-provisioning) lets
            // such a request place after all, the admission succeeds
            // normally.
            let terminal = req.req.core_count() == 0
                || req.req.memory_bytes() == 0
                || req.req.core_count() > self.cfg.core_count()
                || req.req.memory_bytes() > self.buddy.total_bytes();
            let request = req.req.clone();
            match self.create_vnpu_in(request, cache) {
                Ok(vm) => {
                    self.admissions.remove(id);
                    events.push(AdmissionEvent {
                        id,
                        outcome: AdmissionOutcome::Admitted(vm),
                        config_cycles_total: self.config_cycles,
                        fit_hint: None,
                    });
                }
                Err(err) => {
                    match tick.on_failure(&mut self.admissions, id, self.free_events, terminal) {
                        TickVerdict::Reject => {
                            let fit_hint = match &err {
                                VnpuError::Mapping(vnpu_topo::TopoError::NoCandidate) => {
                                    self.fit_hint()
                                }
                                _ => None,
                            };
                            events.push(AdmissionEvent {
                                id,
                                outcome: AdmissionOutcome::Rejected(err),
                                config_cycles_total: self.config_cycles,
                                fit_hint,
                            });
                        }
                        TickVerdict::Defer => {}
                        TickVerdict::EndTick => break,
                    }
                }
            }
        }
        events
    }

    /// The largest request shape that would place on the *current* free
    /// region, probed largest-first with near-square mesh shapes through
    /// the given cache — so repeated rejections against an unchanged
    /// free region replay the memoized exhaustion proofs instead of
    /// re-enumerating. `None` when nothing fits (no free cores, or every
    /// probe fails).
    ///
    /// Pass a *dedicated* hint cache (as [`Hypervisor::fit_hint`] and the
    /// cluster do), not the placement cache: probes are advisory and
    /// would otherwise distort the placement-memoization hit rate.
    pub fn fit_hint_in(&self, cache: &mut MappingCache) -> Option<FitHint> {
        // Probes enumerate *connected* candidates, so nothing larger than
        // the largest connected free component can succeed — start there
        // instead of burning guaranteed-failure enumerations from the
        // total free count.
        let largest_island = self.fragmentation().largest_free_component;
        self.fit_hint_in_bounded(cache, largest_island)
    }

    /// [`Hypervisor::fit_hint_in`] with the chip's largest connected free
    /// component already known (callers that just computed
    /// [`Hypervisor::fragmentation`] pass it in to avoid a second
    /// free-region scan). Probing starts at `largest_island` because
    /// larger connected candidates cannot exist.
    pub fn fit_hint_in_bounded(
        &self,
        cache: &mut MappingCache,
        largest_island: usize,
    ) -> Option<FitHint> {
        let free = self.free_set.free_count() as u32;
        if free == 0 || largest_island == 0 {
            return None;
        }
        let mapper = self.mapper();
        let strategy = Strategy::similar_topology()
            .threads(1)
            .candidate_cap(FIT_PROBE_CANDIDATE_CAP);
        for cores in (1..=(largest_island as u32).min(free)).rev() {
            let probe = crate::vnpu::near_mesh_topology(cores);
            if mapper
                .map_cached(&self.free_set, &probe, &strategy, cache)
                .is_ok()
            {
                // Soundness of the emitted hint, re-proved in debug
                // builds: the advertised shape must map against the
                // *current* free set through a fresh (cache-free)
                // attempt, so a stale memoized success can never leak
                // out as an unplaceable advice.
                debug_assert!(
                    mapper.map_in(&self.free_set, &probe, &strategy).is_ok(),
                    "fit hint advertises {cores} cores but a fresh probe \
                     cannot place that shape on the current free set"
                );
                let width = probe
                    .mesh_shape()
                    .map_or_else(|| (cores as f64).sqrt().ceil() as u32, |shape| shape.width);
                return Some(FitHint {
                    cores,
                    width,
                    height: cores.div_ceil(width.max(1)),
                });
            }
        }
        None
    }

    /// [`Hypervisor::fit_hint_in`] against this hypervisor's own
    /// dedicated hint cache (placement-cache statistics stay untouched).
    pub fn fit_hint(&mut self) -> Option<FitHint> {
        let mut cache = std::mem::take(&mut self.hint_cache);
        let hint = self.fit_hint_in(&mut cache);
        self.hint_cache = cache;
        hint
    }

    /// The per-tick fragmentation picture: free-core connectivity and
    /// buddy external fragmentation (the two resources whose fragmentation
    /// gates admission).
    pub fn fragmentation(&self) -> FragmentationStats {
        let free_nodes = self.free_set.nodes();
        let components = self.topo.subset_components(&free_nodes);
        let free_cores = free_nodes.len();
        let largest = components.first().copied().unwrap_or(0);
        let free_bytes = self.buddy.free_bytes();
        let largest_block = self.buddy.largest_free_block();
        FragmentationStats {
            free_cores: free_cores as u32,
            free_components: components.len(),
            largest_free_component: largest,
            free_connectivity: if free_cores == 0 {
                1.0
            } else {
                largest as f64 / free_cores as f64
            },
            hbm_free_bytes: free_bytes,
            hbm_largest_free_block: largest_block,
            hbm_external_fragmentation: if free_bytes == 0 {
                0.0
            } else {
                1.0 - largest_block as f64 / free_bytes as f64
            },
        }
    }

    // ------------------------------------------------------------------
    // Transactional placement plans (see [`crate::plan`]).
    // ------------------------------------------------------------------

    /// The plan-generation chain [`PlacementTxn`]s validate against; see
    /// [`Hypervisor::commit`]. Advanced by every successful commit and by
    /// [`Hypervisor::invalidate_plans`].
    pub fn plan_generation(&self) -> u64 {
        self.plan_generation
    }

    /// Administratively advances the plan-generation chain, rendering
    /// every outstanding [`PlacementTxn`] stale. Use when hypervisor
    /// state is about to change outside the transaction engine (e.g. a
    /// maintenance drain) and half-planned reshapes must not land on it.
    pub fn invalidate_plans(&mut self) {
        self.advance_plan_generation(0xDEAD_BEEF);
    }

    fn advance_plan_generation(&mut self, salt: u64) {
        let mut h = DefaultHasher::new();
        self.plan_generation.hash(&mut h);
        self.next_vm.hash(&mut h);
        self.free_set.fingerprint().hash(&mut h);
        salt.hash(&mut h);
        // `| 1` keeps 0 reserved for "no commit yet".
        self.plan_generation = h.finish() | 1;
    }

    /// An order-sensitive digest of every observable piece of hypervisor
    /// state the transaction engine may touch: core user counts, the
    /// free region, HBM occupancy, every live vNPU's placement and
    /// memory plan, VM numbering, configuration-cycle and free-event
    /// counters, and both generation chains. Two calls return the same
    /// value iff the state is identical — the "failed commit mutates
    /// nothing" invariant is asserted by comparing digests.
    pub fn state_digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.core_users.hash(&mut h);
        self.free_set.fingerprint().hash(&mut h);
        self.free_set.free_count().hash(&mut h);
        self.buddy.free_bytes().hash(&mut h);
        self.buddy.largest_free_block().hash(&mut h);
        for (vm, vnpu) in &self.vnpus {
            vm.0.hash(&mut h);
            for n in vnpu.mapping().phys_nodes() {
                n.0.hash(&mut h);
            }
            for e in vnpu.rtt_entries() {
                (e.va.value(), e.pa.value(), e.size).hash(&mut h);
            }
            for b in vnpu.memory_blocks() {
                (b.addr.value(), b.size).hash(&mut h);
            }
            vnpu.mem_bytes().hash(&mut h);
            vnpu.routing_table().entry_count().hash(&mut h);
        }
        self.next_vm.hash(&mut h);
        self.config_cycles.hash(&mut h);
        self.free_events.hash(&mut h);
        self.topo_generation.hash(&mut h);
        self.plan_generation.hash(&mut h);
        self.faulted.hash(&mut h);
        self.faulted_links.hash(&mut h);
        h.finish()
    }

    /// Probes a remap-under-pin for `vm` against an explicit free region:
    /// the tenant's own cores are treated as free (it vacates them by
    /// moving) within `free`. Defragmentation policies call this with
    /// their *simulated* free region so successive accepted moves see the
    /// compacted state; pass a dedicated hint cache so advisory probes
    /// never distort placement-cache statistics.
    ///
    /// # Errors
    ///
    /// [`VnpuError::UnknownVm`] for stale IDs, otherwise as for
    /// [`vnpu_topo::mapping::Mapper::map_in`].
    pub fn probe_remap_in(
        &self,
        vm: VmId,
        strategy: &Strategy,
        free: &FreeSet,
        cache: &mut MappingCache,
    ) -> Result<Mapping> {
        let vnpu = self.vnpu(vm)?;
        let widened = free.with_released_except(vnpu.mapping().phys_nodes(), &self.faulted_nodes());
        Ok(self
            .mapper()
            .map_cached(&widened, vnpu.virt_topology(), strategy, cache)?)
    }

    /// Plans a transaction over this hypervisor's own cache — see
    /// [`Hypervisor::plan_in`].
    ///
    /// # Errors
    ///
    /// As for [`Hypervisor::plan_in`].
    pub fn plan(&mut self, ops: &[PlanOp]) -> Result<PlacementTxn> {
        let mut cache = std::mem::take(&mut self.cache);
        let result = self.plan_in(ops, &mut cache);
        self.cache = cache;
        result
    }

    /// Evaluates `ops` against a snapshot of the chip without mutating
    /// anything: every op is resolved (mappings computed through `cache`,
    /// memory splits simulated on a buddy clone, meta-zone budgets
    /// checked) and priced with a [`ReconfigCost`]. Ops apply to the
    /// snapshot in order, so a plan may destroy one tenant and create
    /// into the freed region. The returned [`PlacementTxn`] commits
    /// atomically via [`Hypervisor::commit_in`].
    ///
    /// Planned `Create` ops do not widen onto busy cores — temporal
    /// sharing (§7 over-provisioning) remains a direct
    /// [`Hypervisor::create_vnpu`] concern.
    ///
    /// # Errors
    ///
    /// The first op that cannot be planned fails the whole plan:
    /// [`VnpuError::EmptyRequest`], [`VnpuError::Mapping`],
    /// [`VnpuError::Memory`], [`VnpuError::MetaZoneOverflow`] or
    /// [`VnpuError::UnknownVm`] (also for VMs destroyed earlier in the
    /// same plan).
    pub fn plan_in<C: PlacementCache>(
        &self,
        ops: &[PlanOp],
        cache: &mut C,
    ) -> Result<PlacementTxn> {
        self.plan_with(ops, None, cache)
    }

    /// [`Hypervisor::plan_in`] under a [`ReconfigBudget`]: migration ops
    /// are planned in order until the next one would exceed the budget,
    /// at which point planning stops and the affordable prefix is
    /// returned (possibly empty). Create/destroy ops are not budgeted.
    ///
    /// # Errors
    ///
    /// As for [`Hypervisor::plan_in`].
    pub fn plan_budgeted_in<C: PlacementCache>(
        &self,
        ops: &[PlanOp],
        budget: &ReconfigBudget,
        cache: &mut C,
    ) -> Result<PlacementTxn> {
        self.plan_with(ops, Some(budget), cache)
    }

    /// Computes a remap-under-pin for one tenant against an explicit
    /// free region: the new mapping, its routing table and its cost, or
    /// `None` when the best mapping is the current one. This is the
    /// *single* source of migration mapping/cost logic —
    /// [`Hypervisor::plan_with`] runs it against the plan's simulated
    /// free region and [`Hypervisor::migrate_vnpu_in`] against the live
    /// one, so the simulate and apply paths cannot drift.
    fn plan_remap<C: PlacementCache>(
        &self,
        vm: VmId,
        virt: &Topology,
        own: &[NodeId],
        strategy: &Strategy,
        free: &FreeSet,
        cache: &mut C,
    ) -> Result<Option<(Mapping, RoutingTable, ReconfigCost)>> {
        // Remap-under-pin treats the tenant's own cores as free — except
        // the faulted ones, which the move exists to escape.
        let widened = free.with_released_except(own, &self.faulted_nodes());
        let mapping = cache.map(&self.mapper(), &widened, virt, strategy)?;
        if mapping.phys_nodes() == own {
            return Ok(None);
        }
        let routing = self.build_routing_table(vm, virt, &mapping);
        let data = own.len() as u64 * self.cfg.scratchpad_bytes;
        let cost = ReconfigCost::for_move(routing.config_cycles(), 0, data);
        Ok(Some((mapping, routing, cost)))
    }

    fn plan_with<C: PlacementCache>(
        &self,
        ops: &[PlanOp],
        budget: Option<&ReconfigBudget>,
        cache: &mut C,
    ) -> Result<PlacementTxn> {
        let mut sim = SimCores {
            users: self.core_users.clone(),
            free: self.free_set.clone(),
            faulted: &self.faulted,
        };
        let mut sim_buddy = self.buddy.clone();
        let mut sim_next_vm = self.next_vm;
        // Positions of tenants as evolved by earlier ops in this plan.
        let mut moved_cores: HashMap<VmId, Vec<NodeId>> = HashMap::new();
        let mut moved_blocks: HashMap<VmId, Vec<Block>> = HashMap::new();
        let mut destroyed: HashSet<VmId> = HashSet::new();
        let mut planned: Vec<PlannedOp> = Vec::new();
        let mut total = ReconfigCost::default();
        let mut migrations = 0usize;

        let live = |vm: VmId, destroyed: &HashSet<VmId>| -> Result<&VirtualNpu> {
            if destroyed.contains(&vm) {
                return Err(VnpuError::UnknownVm(vm));
            }
            self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))
        };

        for op in ops {
            let cost = match op {
                PlanOp::Create(req) => {
                    if req.core_count() == 0 || req.memory_bytes() == 0 {
                        return Err(VnpuError::EmptyRequest);
                    }
                    let mapping = cache.map(
                        &self.mapper(),
                        &sim.free,
                        req.topology(),
                        req.strategy_ref(),
                    )?;
                    let (entries, _blocks) =
                        allocate_memory_from(&mut sim_buddy, req.memory_bytes())?;
                    let routing =
                        self.build_routing_table(VmId(sim_next_vm), req.topology(), &mapping);
                    let layout = MetaZoneLayout {
                        noc_rt_entries: u64::from(req.core_count()),
                        direction_entries: if req.wants_noc_isolation() {
                            u64::from(req.core_count()) * u64::from(req.core_count())
                        } else {
                            0
                        },
                        rtt_entries: entries.len() as u64,
                    };
                    layout.check(self.cfg.scratchpad_bytes)?;
                    for &n in mapping.phys_nodes() {
                        sim.acquire(n);
                    }
                    sim_next_vm += 1;
                    ReconfigCost {
                        routing_cycles: routing.config_cycles(),
                        rtt_cycles: rtt_deploy_cycles(entries.len()),
                        data_move_bytes: 0,
                        paused_cycles: 0,
                    }
                }
                PlanOp::Destroy(vm) => {
                    let vnpu = live(*vm, &destroyed)?;
                    let cores = moved_cores
                        .get(vm)
                        .cloned()
                        .unwrap_or_else(|| vnpu.mapping().phys_nodes().to_vec());
                    let blocks = moved_blocks
                        .get(vm)
                        .cloned()
                        .unwrap_or_else(|| vnpu.memory_blocks().to_vec());
                    for &n in &cores {
                        sim.release(n)?;
                    }
                    for b in &blocks {
                        sim_buddy
                            .free(b.addr)
                            .expect("planned teardown frees live blocks");
                    }
                    destroyed.insert(*vm);
                    ReconfigCost::default()
                }
                PlanOp::Migrate {
                    vm,
                    to: MigrationTarget::Remap(strategy),
                } => {
                    let vnpu = live(*vm, &destroyed)?;
                    let own = moved_cores
                        .get(vm)
                        .cloned()
                        .unwrap_or_else(|| vnpu.mapping().phys_nodes().to_vec());
                    match self.plan_remap(
                        *vm,
                        vnpu.virt_topology(),
                        &own,
                        strategy,
                        &sim.free,
                        cache,
                    )? {
                        None => ReconfigCost::default(),
                        Some((mapping, _routing, cost)) => {
                            for &n in &own {
                                sim.release(n)?;
                            }
                            for &n in mapping.phys_nodes() {
                                sim.acquire(n);
                            }
                            moved_cores.insert(*vm, mapping.phys_nodes().to_vec());
                            cost
                        }
                    }
                }
                PlanOp::Migrate {
                    vm,
                    to: MigrationTarget::CompactMemory,
                } => {
                    let vnpu = live(*vm, &destroyed)?;
                    let old = moved_blocks
                        .get(vm)
                        .cloned()
                        .unwrap_or_else(|| vnpu.memory_blocks().to_vec());
                    match plan_compaction(&mut sim_buddy, &old)? {
                        None => ReconfigCost::default(),
                        Some((new_blocks, _entries, cost)) => {
                            moved_blocks.insert(*vm, new_blocks);
                            cost
                        }
                    }
                }
            };
            if let Some(b) = budget {
                if matches!(op, PlanOp::Migrate { .. }) && !cost.is_zero() {
                    if !b.admits(&total, migrations, &cost) {
                        break;
                    }
                    migrations += 1;
                }
            }
            total = total.plus(cost);
            planned.push(PlannedOp {
                op: op.clone(),
                cost,
            });
        }
        Ok(PlacementTxn {
            ops: planned,
            free_fingerprint: self.free_set.fingerprint(),
            free_count: self.free_set.free_count(),
            hbm_free_bytes: self.buddy.free_bytes(),
            next_vm: self.next_vm,
            plan_generation: self.plan_generation,
            total,
        })
    }

    /// Commits a transaction through this hypervisor's own cache — see
    /// [`Hypervisor::commit_in`].
    ///
    /// # Errors
    ///
    /// As for [`Hypervisor::commit_in`].
    pub fn commit(&mut self, txn: &PlacementTxn) -> Result<CommitReceipt> {
        let mut cache = std::mem::take(&mut self.cache);
        let result = self.commit_in(txn, &mut cache);
        self.cache = cache;
        result
    }

    /// Atomically applies a planned transaction: first validates that the
    /// chip still looks exactly as it did at plan time (free-region
    /// fingerprint and count, HBM occupancy, VM numbering, and the
    /// plan-generation chain), then applies every op in order — creating
    /// through the normal provisioning pipeline, re-mapping migrated
    /// tenants via the shared [`MappingCache`], re-deploying routing and
    /// RTT state, releasing old cores. On success the plan-generation
    /// chain advances (outstanding plans become stale). On *any* failure
    /// — staleness or a mid-apply error — the hypervisor's observable
    /// state is byte-identical to before the call
    /// ([`Hypervisor::state_digest`]).
    ///
    /// # Errors
    ///
    /// * [`VnpuError::StalePlan`] — the chip changed since the plan.
    /// * Any provisioning error from an op (the commit rolls back).
    pub fn commit_in<C: PlacementCache>(
        &mut self,
        txn: &PlacementTxn,
        cache: &mut C,
    ) -> Result<CommitReceipt> {
        if txn.plan_generation != self.plan_generation {
            return Err(VnpuError::StalePlan {
                detail: "plan generation advanced since planning",
            });
        }
        if txn.free_fingerprint != self.free_set.fingerprint()
            || txn.free_count != self.free_set.free_count()
        {
            return Err(VnpuError::StalePlan {
                detail: "free region changed since planning",
            });
        }
        if txn.hbm_free_bytes != self.buddy.free_bytes() {
            return Err(VnpuError::StalePlan {
                detail: "HBM occupancy changed since planning",
            });
        }
        if txn.next_vm != self.next_vm {
            return Err(VnpuError::StalePlan {
                detail: "VM numbering advanced since planning",
            });
        }
        let snapshot = (
            self.core_users.clone(),
            self.free_set.clone(),
            self.buddy.clone(),
            self.vnpus.clone(),
            self.next_vm,
            self.config_cycles,
            self.free_events,
        );
        let mut receipt = CommitReceipt::default();
        let mut apply = || -> Result<()> {
            for p in &txn.ops {
                match &p.op {
                    PlanOp::Create(req) => {
                        let vm = self.create_vnpu_in(req.clone(), cache)?;
                        receipt.created.push(vm);
                        receipt.total = receipt.total.plus(p.cost);
                    }
                    PlanOp::Destroy(vm) => {
                        self.destroy_vnpu(*vm)?;
                        receipt.destroyed.push(*vm);
                    }
                    PlanOp::Migrate { vm, to } => {
                        let moved = match to {
                            MigrationTarget::Remap(strategy) => {
                                self.migrate_vnpu_in(*vm, strategy, cache)?
                            }
                            MigrationTarget::CompactMemory => self.compact_vnpu_memory(*vm)?,
                        };
                        if let Some(cost) = moved {
                            receipt.migrated.push((*vm, cost));
                            receipt.total = receipt.total.plus(cost);
                        }
                    }
                }
            }
            Ok(())
        };
        match apply() {
            Ok(()) => {
                self.advance_plan_generation(txn.ops.len() as u64);
                Ok(receipt)
            }
            Err(e) => {
                let (core_users, free_set, buddy, vnpus, next_vm, config_cycles, free_events) =
                    snapshot;
                self.core_users = core_users;
                self.free_set = free_set;
                self.buddy = buddy;
                self.vnpus = vnpus;
                self.next_vm = next_vm;
                self.config_cycles = config_cycles;
                self.free_events = free_events;
                Err(e)
            }
        }
    }

    /// Live-migrates `vm`'s cores: re-maps its virtual topology under pin
    /// (own cores count as free), releases the old cores, acquires the
    /// new ones and re-deploys the routing table, charging the
    /// configuration cycles. Returns `None` when the best mapping is the
    /// current one (nothing moves, nothing is charged). Only called from
    /// [`Hypervisor::commit_in`], whose snapshot guarantees atomicity.
    fn migrate_vnpu_in<C: PlacementCache>(
        &mut self,
        vm: VmId,
        strategy: &Strategy,
        cache: &mut C,
    ) -> Result<Option<ReconfigCost>> {
        let vnpu = self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))?;
        if let Some(n) = vnpu
            .mapping()
            .phys_nodes()
            .iter()
            .find(|n| self.core_users[n.index()] == 0)
        {
            return Err(VnpuError::OverRelease { core: n.0 });
        }
        let own: Vec<NodeId> = vnpu.mapping().phys_nodes().to_vec();
        let virt = vnpu.virt_topology().clone();
        let Some((mapping, routing, cost)) =
            self.plan_remap(vm, &virt, &own, strategy, &self.free_set, cache)?
        else {
            return Ok(None);
        };
        for &n in &own {
            self.release_core(n.0).expect("validated above");
        }
        for &n in mapping.phys_nodes() {
            self.acquire_core(n.0);
        }
        self.config_cycles += cost.routing_cycles;
        let vnpu = self.vnpus.get_mut(&vm).expect("looked up above");
        vnpu.redeploy_cores(mapping, routing);
        Ok(Some(cost))
    }

    /// Compacts `vm`'s HBM: frees its buddy blocks, re-allocates the same
    /// sizes (the allocator hands out lowest addresses first, so holes
    /// squeeze out) and re-deploys its RTT, charging the entry writes.
    /// Returns `None` when the allocator hands back the identical blocks.
    /// Only called from [`Hypervisor::commit_in`] (snapshot atomicity).
    fn compact_vnpu_memory(&mut self, vm: VmId) -> Result<Option<ReconfigCost>> {
        let vnpu = self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))?;
        let old: Vec<Block> = vnpu.memory_blocks().to_vec();
        let Some((new_blocks, entries, cost)) = plan_compaction(&mut self.buddy, &old)? else {
            return Ok(None);
        };
        self.config_cycles += cost.rtt_cycles;
        let vnpu = self.vnpus.get_mut(&vm).expect("looked up above");
        vnpu.redeploy_memory(entries, new_blocks);
        Ok(Some(cost))
    }

    fn allocate_memory(&mut self, bytes: u64) -> Result<(Vec<RttEntry>, Vec<Block>)> {
        allocate_memory_from(&mut self.buddy, bytes)
    }

    /// Detects an axis-aligned window allocation and emits the compact
    /// mesh table, else the standard per-entry table.
    fn build_routing_table(
        &self,
        vm: VmId,
        virt_topology: &Topology,
        mapping: &Mapping,
    ) -> RoutingTable {
        let v2p: Vec<u32> = mapping.phys_nodes().iter().map(|n| n.0).collect();
        if mapping.edit_distance() == 0 {
            if let Some(shape) = virt_topology.mesh_shape() {
                let w = self.cfg.mesh_width;
                let origin = v2p[0];
                let window = v2p.iter().enumerate().all(|(v, &p)| {
                    let vx = v as u32 % shape.width;
                    let vy = v as u32 / shape.width;
                    p == origin + vy * w + vx
                });
                if window {
                    return RoutingTable::mesh2d(vm, crate::PhysCoreId(origin), shape, w);
                }
            }
        }
        RoutingTable::from_dense(vm, &v2p)
    }
}

/// Splits a guest-memory request into buddy blocks mapped 1:1 into RTT
/// entries, rolling back partial allocations on exhaustion. Works on any
/// allocator so [`Hypervisor::plan_in`] can simulate the exact split on a
/// clone.
fn allocate_memory_from(
    buddy: &mut BuddyAllocator,
    bytes: u64,
) -> Result<(Vec<RttEntry>, Vec<Block>)> {
    let mut entries: Vec<RttEntry> = Vec::new();
    let mut blocks: Vec<Block> = Vec::new();
    let mut va = VirtAddr(GUEST_VA_BASE);
    let mut remaining = bytes;
    while remaining > 0 {
        let ask = remaining.clamp(MIN_BLOCK_BYTES, MAX_BLOCK_BYTES);
        let block = match buddy.alloc(ask) {
            Ok(b) => b,
            Err(e) => {
                // Roll back partial allocations.
                for b in &blocks {
                    let _ = buddy.free(b.addr);
                }
                return Err(VnpuError::Memory(e));
            }
        };
        entries.push(RttEntry::new(va, block.addr, block.size, Perm::RW));
        va = va.offset(block.size);
        remaining = remaining.saturating_sub(block.size);
        blocks.push(block);
    }
    Ok((entries, blocks))
}

/// Plan-time simulation of the hypervisor's core bookkeeping: user
/// counts plus the derived free region, mirroring
/// `acquire_core`/`release_core` *exactly* — including temporal sharing,
/// where a shared core stays occupied until its last user leaves. The
/// plan must evolve the same way the commit will, or a plan could
/// succeed whose commit fails with no intervening state change.
struct SimCores<'a> {
    users: Vec<u32>,
    free: FreeSet,
    /// The live fault mask: a faulted core is pinned occupied in the free
    /// region exactly as `acquire_core`/`release_core` pin it, so a plan
    /// can never free a dead core into its simulated region either.
    faulted: &'a [bool],
}

impl SimCores<'_> {
    fn acquire(&mut self, n: NodeId) {
        let users = &mut self.users[n.index()];
        *users += 1;
        if *users == 1 && !self.faulted[n.index()] {
            self.free.occupy(n);
        }
    }

    fn release(&mut self, n: NodeId) -> Result<()> {
        let users = &mut self.users[n.index()];
        if *users == 0 {
            return Err(VnpuError::OverRelease { core: n.0 });
        }
        *users -= 1;
        if *users == 0 && !self.faulted[n.index()] {
            self.free.release(n);
        }
        Ok(())
    }
}

/// Frees a tenant's buddy blocks and re-allocates the same sizes in
/// order (lowest-address-first, squeezing holes out), returning the new
/// blocks, the rebuilt guest-VA-contiguous RTT entries and the cost — or
/// `None` when the allocator hands back the identical blocks (net
/// no-op). The single source of compaction logic:
/// [`Hypervisor::plan_with`] runs it on the plan's buddy clone,
/// `Hypervisor::compact_vnpu_memory` on the live allocator (where the
/// mutation *is* the apply; commit's snapshot rolls back on error).
///
/// Block sizes are non-increasing (the allocation split is), so each
/// size still has a free region at least as large as the slot it just
/// vacated; an allocation failure here is a buddy bug.
/// What a (non-no-op) compaction resolves to: the re-allocated blocks,
/// the rebuilt RTT entries, and the price.
type CompactionPlan = (Vec<Block>, Vec<RttEntry>, ReconfigCost);

fn plan_compaction(buddy: &mut BuddyAllocator, old: &[Block]) -> Result<Option<CompactionPlan>> {
    for b in old {
        buddy
            .free(b.addr)
            .expect("hypervisor-owned block frees cleanly");
    }
    let mut new_blocks = Vec::with_capacity(old.len());
    for b in old {
        new_blocks.push(buddy.alloc(b.size).map_err(VnpuError::Memory)?);
    }
    if new_blocks == old {
        return Ok(None);
    }
    let mut entries = Vec::with_capacity(new_blocks.len());
    let mut va = VirtAddr(GUEST_VA_BASE);
    for b in &new_blocks {
        entries.push(RttEntry::new(va, b.addr, b.size, Perm::RW));
        va = va.offset(b.size);
    }
    let bytes: u64 = new_blocks.iter().map(|b| b.size).sum();
    let cost = ReconfigCost::for_move(0, rtt_deploy_cycles(entries.len()), bytes);
    Ok(Some((new_blocks, entries, cost)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{Backfill, RetryAfterFree, SmallestFirst};
    use crate::vchunk::MemMode;
    use std::sync::Arc;

    fn hv() -> Hypervisor {
        Hypervisor::new(SocConfig::sim()) // 6x6
    }

    #[test]
    fn create_exact_mesh_vnpu() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
        let v = h.vnpu(vm).unwrap();
        assert_eq!(v.core_count(), 9);
        assert_eq!(v.mapping().edit_distance(), 0);
        assert_eq!(v.routing_table().entry_count(), 1, "compact table expected");
        assert_eq!(h.free_core_count(), 27);
    }

    #[test]
    fn paper_lock_in_scenario_on_5x5() {
        // §4.3: 5x5 chip, two 3x3 requests. Exact-only: second fails and
        // ~64% of cores idle; similar-topology: both fit.
        let cfg = SocConfig {
            mesh_width: 5,
            mesh_height: 5,
            ..SocConfig::sim()
        };
        let mut h = Hypervisor::new(cfg.clone());
        h.create_vnpu(VnpuRequest::mesh(3, 3).strategy(Strategy::exact_only()))
            .unwrap();
        let second_exact = h.create_vnpu(VnpuRequest::mesh(3, 3).strategy(Strategy::exact_only()));
        assert!(second_exact.is_err(), "topology lock-in must occur");
        assert_eq!(h.free_core_count(), 16); // 64% of 25 wasted

        let mut h2 = Hypervisor::new(cfg);
        h2.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
        let vm2 = h2
            .create_vnpu(VnpuRequest::mesh(3, 3).strategy(Strategy::similar_topology().threads(2)))
            .unwrap();
        let v2 = h2.vnpu(vm2).unwrap();
        assert_eq!(v2.core_count(), 9);
        assert!(v2.mapping().edit_distance() > 0);
        assert_eq!(h2.free_core_count(), 7);
    }

    #[test]
    fn destroy_releases_resources() {
        let mut h = hv();
        let before_mem = h.buddy.free_bytes();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(128 << 20))
            .unwrap();
        assert_eq!(h.free_core_count(), 32);
        assert!(h.buddy.free_bytes() < before_mem);
        h.destroy_vnpu(vm).unwrap();
        assert_eq!(h.free_core_count(), 36);
        assert_eq!(h.buddy.free_bytes(), before_mem);
        assert!(matches!(h.vnpu(vm), Err(VnpuError::UnknownVm(_))));
        assert!(h.destroy_vnpu(vm).is_err());
    }

    #[test]
    fn memory_plan_covers_request_contiguously() {
        let mut h = hv();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(600 << 20))
            .unwrap();
        let v = h.vnpu(vm).unwrap();
        let entries = v.rtt_entries();
        assert!(entries.len() >= 3, "600 MB needs multiple <=256 MB blocks");
        // VA-contiguous from the base.
        let mut va = GUEST_VA_BASE;
        for e in entries {
            assert_eq!(e.va.value(), va);
            va += e.size;
        }
        assert!(v.mem_bytes() >= 600 << 20);
    }

    #[test]
    fn hbm_exhaustion_rolls_back() {
        let mut h = Hypervisor::with_hbm_bytes(SocConfig::sim(), 64 << 20);
        let free_before = h.buddy.free_bytes();
        let r = h.create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(1 << 30));
        assert!(matches!(r, Err(VnpuError::Memory(_))));
        assert_eq!(
            h.buddy.free_bytes(),
            free_before,
            "partial blocks must be freed"
        );
        assert_eq!(h.free_core_count(), 36, "no cores leaked");
    }

    #[test]
    fn empty_request_rejected() {
        let mut h = hv();
        assert!(matches!(
            h.create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(0)),
            Err(VnpuError::EmptyRequest)
        ));
    }

    #[test]
    fn services_buildable_for_every_core() {
        let mut h = hv();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 3).noc_isolation(true))
            .unwrap();
        for v in 0..6 {
            let s = h.services(vm, VirtCoreId(v)).unwrap();
            assert_eq!(s.router.name(), "vrouter-confined");
            assert!(s.translator.name().starts_with("vchunk"));
        }
        assert!(h.services(vm, VirtCoreId(6)).is_err());
    }

    #[test]
    fn mem_mode_flows_to_services() {
        let mut h = hv();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 2).mem_mode(MemMode::Page { tlb_entries: 32 }))
            .unwrap();
        let s = h.services(vm, VirtCoreId(0)).unwrap();
        assert_eq!(s.translator.name(), "iotlb-32");
    }

    #[test]
    fn config_cycles_accumulate() {
        let mut h = hv();
        assert_eq!(h.total_config_cycles(), 0);
        h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let after_one = h.total_config_cycles();
        assert!(after_one > 0);
        h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        assert!(h.total_config_cycles() > after_one);
    }

    #[test]
    fn irregular_allocation_gets_standard_table() {
        let mut h = hv();
        // First take a 6x1 row so the remaining region still has 3x3
        // windows; then occupy one interior core via a 1x1 vNPU to break
        // window alignment in that area... simplest: allocate 1x1 at core 0
        // then request 6x6-minus impossible, so ask a line of 5.
        h.create_vnpu(VnpuRequest::mesh(1, 1)).unwrap();
        let vm = h
            .create_vnpu(VnpuRequest::custom(Topology::line(5)))
            .unwrap();
        let v = h.vnpu(vm).unwrap();
        // Line of 5 on a mesh still matches exactly (a row), possibly
        // shifted; either table form is valid but lookups must be total.
        for i in 0..5 {
            assert!(v.routing_table().lookup(VirtCoreId(i)).is_some());
        }
    }

    #[test]
    fn utilization_math() {
        let mut h = hv();
        assert_eq!(h.core_utilization(), 0.0);
        h.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
        assert!((h.core_utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn reserve_and_release_cores() {
        let mut h = hv();
        h.reserve_cores(&[0, 7, 35]).unwrap();
        assert_eq!(h.free_core_count(), 33);
        assert!(!h.free_cores().contains(&7));
        h.release_cores(&[7]).unwrap();
        assert!(h.free_cores().contains(&7));
        assert!(h.reserve_cores(&[99]).is_err());
    }

    #[test]
    fn temporal_sharing_overprovisions() {
        let mut h = hv();
        // Fill the whole chip spatially.
        let first = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        assert_eq!(h.free_core_count(), 0);
        // A strict request now fails...
        assert!(h.create_vnpu(VnpuRequest::mesh(2, 2)).is_err());
        // ...but temporal sharing places it on busy cores (TDM).
        let shared = h
            .create_vnpu(VnpuRequest::mesh(2, 2).temporal_sharing(true))
            .unwrap();
        let v = h.vnpu(shared).unwrap();
        assert_eq!(v.core_count(), 4);
        // Its cores are shared with the first tenant.
        let first_cores: Vec<u32> = h
            .vnpu(first)
            .unwrap()
            .mapping()
            .phys_nodes()
            .iter()
            .map(|n| n.0)
            .collect();
        for n in h.vnpu(shared).unwrap().mapping().phys_nodes() {
            assert!(first_cores.contains(&n.0));
        }
        // Destroying both returns every core.
        h.destroy_vnpu(shared).unwrap();
        h.destroy_vnpu(first).unwrap();
        assert_eq!(h.free_core_count(), 36);
    }

    #[test]
    fn over_release_is_an_error_not_a_silent_mask() {
        // Regression: release_cores/destroy_vnpu used saturating_sub on
        // the user counts, so a double release silently zeroed state and
        // later teardown corrupted accounting. It must be a hard error.
        let mut h = hv();
        h.reserve_cores(&[3]).unwrap();
        h.release_cores(&[3]).unwrap();
        assert_eq!(
            h.release_cores(&[3]),
            Err(VnpuError::OverRelease { core: 3 })
        );
        // Duplicates inside one call count too, and the failing call is
        // transactional: nothing is released.
        h.reserve_cores(&[5]).unwrap();
        assert_eq!(
            h.release_cores(&[5, 5]),
            Err(VnpuError::OverRelease { core: 5 })
        );
        assert!(!h.free_cores().contains(&5), "failed call must not mutate");
        h.release_cores(&[5]).unwrap();
        // destroy_vnpu notices when a vNPU's core was stripped externally.
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let core = h.vnpu(vm).unwrap().mapping().phys_nodes()[0].0;
        h.release_cores(&[core]).unwrap(); // misuse: steals the vNPU's core
        assert_eq!(h.destroy_vnpu(vm), Err(VnpuError::OverRelease { core }));
        assert!(h.vnpu(vm).is_ok(), "failed destroy must keep the vNPU");
    }

    #[test]
    fn free_set_tracks_core_users_incrementally() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(3, 2)).unwrap();
        let reference: Vec<u32> = h
            .core_users
            .iter()
            .enumerate()
            .filter_map(|(i, &u)| (u == 0).then_some(i as u32))
            .collect();
        assert_eq!(h.free_cores(), reference);
        assert_eq!(h.free_set().free_count(), 30);
        h.destroy_vnpu(vm).unwrap();
        assert_eq!(h.free_set().free_count(), 36);
    }

    #[test]
    fn mapping_cache_hits_on_repeated_churn() {
        let mut h = hv();
        // Same request shape against the same free region, repeatedly.
        for _ in 0..4 {
            let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
            h.destroy_vnpu(vm).unwrap();
        }
        let stats = h.cache_stats();
        assert_eq!(stats.misses, 1, "one cold mapping");
        assert_eq!(stats.hits, 3, "subsequent identical requests must hit");
    }

    #[test]
    fn admission_fifo_blocks_head_of_line() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap(); // 6 cores left
        let big = h.submit(VnpuRequest::mesh(3, 3));
        let small = h.submit(VnpuRequest::mesh(1, 2));
        let events = h.process_admissions();
        assert!(events.is_empty(), "FIFO head cannot place, tick stops");
        assert_eq!(h.pending_count(), 2);
        let _ = (big, small);
    }

    #[test]
    fn admission_smallest_first_places_past_blocked_head() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap();
        let big = h.submit(VnpuRequest::mesh(3, 3));
        let small = h.submit(VnpuRequest::mesh(1, 2));
        h.set_admission_policy_obj(Arc::new(SmallestFirst));
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, small);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Admitted(_)));
        assert_eq!(h.pending_count(), 1, "big request stays queued");
        let _ = big;
    }

    #[test]
    fn admission_retry_after_free_waits_for_departure() {
        let mut h = hv();
        let resident = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap(); // full chip
        h.set_admission_policy_obj(Arc::new(RetryAfterFree));
        let id = h.submit(VnpuRequest::mesh(2, 2));
        assert!(h.process_admissions().is_empty());
        // Without a destroy, the next tick does not even attempt it.
        let misses_before = h.cache_stats().misses;
        assert!(h.process_admissions().is_empty());
        assert_eq!(h.cache_stats().misses, misses_before, "no re-attempt");
        h.destroy_vnpu(resident).unwrap();
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Admitted(_)));
    }

    #[test]
    fn admission_events_stamp_config_cycles_incrementally() {
        let mut h = hv();
        h.submit(VnpuRequest::mesh(2, 2));
        h.submit(VnpuRequest::mesh(2, 2));
        let before = h.total_config_cycles();
        let events = h.process_admissions();
        let after = h.total_config_cycles();
        assert_eq!(events.len(), 2);
        // Each placement deploys its own meta-tables, so the per-event
        // cumulative counters are strictly increasing and the first
        // admission's stamp must not include the second's work.
        assert!(before < events[0].config_cycles_total);
        assert!(events[0].config_cycles_total < events[1].config_cycles_total);
        assert_eq!(events[1].config_cycles_total, after);
    }

    #[test]
    fn admission_rejects_impossible_and_budget_exhausted() {
        let mut h = hv();
        let impossible = h.submit(VnpuRequest::mesh(7, 7)); // 49 > 36 cores
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, impossible);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Rejected(_)));

        h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap(); // fill the chip
        h.set_admission_max_attempts(Some(2));
        let starved = h.submit(VnpuRequest::mesh(2, 2));
        assert!(h.process_admissions().is_empty(), "attempt 1 defers");
        let events = h.process_admissions();
        assert_eq!(events.len(), 1, "attempt 2 exhausts the budget");
        assert_eq!(events[0].id, starved);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Rejected(_)));
        assert_eq!(h.pending_count(), 0);
    }

    #[test]
    fn admission_backfill_skips_only_smaller_requests() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap(); // 6 cores left
        let big = h.submit(VnpuRequest::mesh(3, 3)); // blocked head (9)
        let same = h.submit(VnpuRequest::mesh(3, 3)); // same size: held back
        let small = h.submit(VnpuRequest::mesh(1, 2)); // backfills
        h.set_admission_policy_obj(Arc::new(Backfill));
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, small);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Admitted(_)));
        assert_eq!(h.pending_count(), 2, "both 3x3 requests stay queued");
        let _ = (big, same);
    }

    #[test]
    fn plan_and_commit_create_destroy_roundtrip() {
        let mut h = hv();
        let resident = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let ops = vec![
            PlanOp::Destroy(resident),
            PlanOp::Create(VnpuRequest::mesh(3, 3)),
        ];
        let txn = h.plan(&ops).unwrap();
        assert_eq!(txn.len(), 2);
        assert_eq!(
            txn.ops()[0].cost,
            ReconfigCost::default(),
            "destroys are free"
        );
        assert!(txn.ops()[1].cost.routing_cycles > 0);
        assert!(txn.ops()[1].cost.rtt_cycles > 0);
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.destroyed, vec![resident]);
        assert_eq!(receipt.created.len(), 1);
        assert!(h.vnpu(resident).is_err());
        assert_eq!(h.vnpu(receipt.created[0]).unwrap().core_count(), 9);
        assert_eq!(h.free_core_count(), 27);
    }

    #[test]
    fn plan_sees_freed_resources_of_earlier_ops() {
        // A full chip: Create alone cannot be planned, but Destroy →
        // Create in one plan can — ops apply to the snapshot in order.
        let mut h = hv();
        let resident = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        assert!(h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).is_err());
        let txn = h
            .plan(&[
                PlanOp::Destroy(resident),
                PlanOp::Create(VnpuRequest::mesh(2, 2)),
            ])
            .unwrap();
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.created.len(), 1);
    }

    #[test]
    fn stale_plan_commits_nothing() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let txn = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        // The chip changes between plan and commit: the plan is stale.
        h.destroy_vnpu(vm).unwrap();
        let digest = h.state_digest();
        assert!(matches!(h.commit(&txn), Err(VnpuError::StalePlan { .. })));
        assert_eq!(h.state_digest(), digest, "failed commit must not mutate");
        // Injected staleness (the generation chain) is caught even when
        // the free region happens to look identical.
        let txn = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        h.invalidate_plans();
        let digest = h.state_digest();
        assert!(matches!(h.commit(&txn), Err(VnpuError::StalePlan { .. })));
        assert_eq!(h.state_digest(), digest);
        // A fresh plan against the new generation commits fine.
        let txn = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        assert_eq!(h.commit(&txn).unwrap().created.len(), 1);
    }

    #[test]
    fn commit_advances_the_plan_generation_chain() {
        let mut h = hv();
        assert_eq!(h.plan_generation(), 0);
        let a = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        let b = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        h.commit(&a).unwrap();
        assert_ne!(h.plan_generation(), 0);
        // b was planned against the pre-commit generation: stale now.
        assert!(matches!(h.commit(&b), Err(VnpuError::StalePlan { .. })));
    }

    #[test]
    fn failed_mid_commit_rolls_back_byte_identically() {
        // Plans referencing a VM twice after its destroy are rejected at
        // plan time already.
        let mut h = hv();
        let victim = h.create_vnpu(VnpuRequest::mesh(1, 1)).unwrap();
        assert!(matches!(
            h.plan(&[PlanOp::Destroy(victim), PlanOp::Destroy(victim)]),
            Err(VnpuError::UnknownVm(_))
        ));
        h.destroy_vnpu(victim).unwrap();

        // A genuine mid-apply failure: plan a full-chip turnover, then
        // sneak an administrative reservation onto one of the victim's
        // cores. The free region, HBM occupancy and VM numbering all
        // look untouched (the core was already occupied), so the
        // staleness checks pass — but the destroy no longer frees that
        // core and the create fails halfway through the commit.
        let resident = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        let txn = h
            .plan(&[
                PlanOp::Destroy(resident),
                PlanOp::Create(VnpuRequest::mesh(6, 6)),
            ])
            .unwrap();
        let core = h.vnpu(resident).unwrap().mapping().phys_nodes()[0].0;
        h.reserve_cores(&[core]).unwrap();
        let digest = h.state_digest();
        assert!(h.commit(&txn).is_err());
        assert_eq!(
            h.state_digest(),
            digest,
            "mid-commit failure must roll everything back"
        );
        assert!(
            h.vnpu(resident).is_ok(),
            "the destroyed-then-rolled-back tenant survives"
        );
        assert_eq!(h.free_core_count(), 0);
    }

    #[test]
    fn migrate_remap_under_pin_moves_the_tenant() {
        // Occupy a 6x5 block, then a 1x6 bottom row tenant; free the big
        // block so a migration can recompact the row tenant anywhere.
        let mut h = hv();
        let big = h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap();
        let row = h
            .create_vnpu(VnpuRequest::custom(Topology::line(6)))
            .unwrap();
        let before: Vec<u32> = h
            .vnpu(row)
            .unwrap()
            .mapping()
            .phys_nodes()
            .iter()
            .map(|n| n.0)
            .collect();
        h.destroy_vnpu(big).unwrap();
        let txn = h
            .plan(&[PlanOp::Migrate {
                vm: row,
                to: MigrationTarget::Remap(Strategy::similar_topology().threads(1)),
            }])
            .unwrap();
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.migration_count(), 1);
        let (vm, cost) = receipt.migrated[0];
        assert_eq!(vm, row);
        assert!(cost.routing_cycles > 0, "routing re-deployment is paid");
        assert!(cost.data_move_bytes > 0, "scratchpad state moves");
        assert!(cost.paused_cycles > cost.routing_cycles);
        let after: Vec<u32> = h
            .vnpu(row)
            .unwrap()
            .mapping()
            .phys_nodes()
            .iter()
            .map(|n| n.0)
            .collect();
        assert_ne!(before, after, "the tenant must actually move");
        // Core accounting stays exact: 6 cores used, 30 free.
        assert_eq!(h.free_core_count(), 30);
        // The routing table resolves every virtual core to the new cores.
        for v in 0..6 {
            let p = h
                .vnpu(row)
                .unwrap()
                .routing_table()
                .lookup(VirtCoreId(v))
                .unwrap();
            assert!(after.contains(&p.0));
        }
        h.destroy_vnpu(row).unwrap();
        assert_eq!(h.free_core_count(), 36, "no cores leak through migration");
    }

    #[test]
    fn plan_accounts_temporal_sharing_user_counts() {
        // Regression: the plan used to mark a destroyed tenant's cores
        // free outright, while the commit's release_core keeps a shared
        // core occupied until its *last* user leaves — so a plan could
        // succeed whose commit failed with no intervening state change.
        let mut h = hv();
        let resident = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        let shared = h
            .create_vnpu(VnpuRequest::mesh(2, 2).temporal_sharing(true))
            .unwrap();
        // Destroying only the shared tenant frees nothing (its cores are
        // still the resident's), so the follow-up create cannot be
        // planned — and therefore cannot fail at commit either.
        assert!(h
            .plan(&[
                PlanOp::Destroy(shared),
                PlanOp::Create(VnpuRequest::mesh(2, 2)),
            ])
            .is_err());
        let txn = h.plan(&[PlanOp::Destroy(shared)]).unwrap();
        h.commit(&txn).unwrap();
        assert_eq!(h.free_core_count(), 0, "shared cores stay occupied");
        // Destroying the resident in the same plan as a create works:
        // the simulation frees exactly what the commit frees.
        let txn = h
            .plan(&[
                PlanOp::Destroy(resident),
                PlanOp::Create(VnpuRequest::mesh(2, 2)),
            ])
            .unwrap();
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.created.len(), 1);
        assert_eq!(h.free_core_count(), 32);
    }

    #[test]
    fn migrate_to_same_spot_is_a_no_op() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let txn = h
            .plan(&[PlanOp::Migrate {
                vm,
                to: MigrationTarget::Remap(Strategy::similar_topology().threads(1)),
            }])
            .unwrap();
        assert!(txn.total().is_zero(), "best mapping is the current one");
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.migration_count(), 0);
        assert!(receipt.total.is_zero());
    }

    #[test]
    fn compact_memory_grows_the_largest_free_block() {
        // Three tenants with interleaved memory; destroying the middle one
        // leaves a hole that compaction squeezes out.
        let mut h = Hypervisor::with_hbm_bytes(SocConfig::sim(), 1 << 30);
        let a = h
            .create_vnpu(VnpuRequest::mesh(1, 1).mem_bytes(256 << 20))
            .unwrap();
        let b = h
            .create_vnpu(VnpuRequest::mesh(1, 2).mem_bytes(256 << 20))
            .unwrap();
        let c = h
            .create_vnpu(VnpuRequest::mesh(2, 1).mem_bytes(256 << 20))
            .unwrap();
        h.destroy_vnpu(b).unwrap();
        let frag_before = h.fragmentation().hbm_external_fragmentation;
        assert!(frag_before > 0.0, "the hole fragments free HBM");
        let txn = h
            .plan(&[PlanOp::Migrate {
                vm: c,
                to: MigrationTarget::CompactMemory,
            }])
            .unwrap();
        assert!(txn.total().rtt_cycles > 0);
        assert_eq!(txn.total().data_move_bytes, 256 << 20);
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.migration_count(), 1);
        let frag_after = h.fragmentation().hbm_external_fragmentation;
        assert!(
            frag_after < frag_before,
            "compaction must reduce buddy external fragmentation \
             ({frag_before} -> {frag_after})"
        );
        // The tenant's RTT still covers its whole VA window contiguously.
        let v = h.vnpu(c).unwrap();
        let mut va = GUEST_VA_BASE;
        for e in v.rtt_entries() {
            assert_eq!(e.va.value(), va);
            va += e.size;
        }
        h.destroy_vnpu(a).unwrap();
        h.destroy_vnpu(c).unwrap();
        assert_eq!(h.hbm_free_bytes(), 1 << 30, "no HBM leaks");
    }

    #[test]
    fn budgeted_plan_keeps_the_affordable_prefix() {
        let mut h = hv();
        // Fragment the chip: two tenants in opposite corners.
        let keep_free = [0u32, 1, 2, 6, 7, 8, 28, 29, 34, 35];
        let taken: Vec<u32> = (0..36).filter(|c| !keep_free.contains(c)).collect();
        h.reserve_cores(&taken).unwrap();
        let a = h.create_vnpu(VnpuRequest::mesh(2, 1)).unwrap();
        let b = h.create_vnpu(VnpuRequest::mesh(1, 2)).unwrap();
        let ops = vec![
            PlanOp::Migrate {
                vm: a,
                to: MigrationTarget::Remap(Strategy::similar_topology().threads(1)),
            },
            PlanOp::Migrate {
                vm: b,
                to: MigrationTarget::Remap(Strategy::similar_topology().threads(1)),
            },
        ];
        let unbudgeted = h.plan(&ops).unwrap();
        let moves = unbudgeted
            .ops()
            .iter()
            .filter(|p| !p.cost.is_zero())
            .count();
        let budget = ReconfigBudget {
            max_migrations: 1,
            ..ReconfigBudget::default()
        };
        let mut cache = MappingCache::default();
        let budgeted = h.plan_budgeted_in(&ops, &budget, &mut cache).unwrap();
        let budgeted_moves = budgeted.ops().iter().filter(|p| !p.cost.is_zero()).count();
        assert!(budgeted_moves <= 1, "budget caps migrations");
        assert!(budgeted_moves <= moves);
    }

    #[test]
    fn reconfig_generation_invalidates_mapping_cache() {
        // Regression for the ROADMAP's "mapping-cache invalidation on
        // reconfig" hazard: a hybrid-core rescale between two identical
        // requests must miss the cache — the memoized strategy was costed
        // against the old hardware.
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        h.destroy_vnpu(vm).unwrap();
        assert_eq!(h.cache_stats().misses, 1);
        h.bump_topology_generation();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        h.destroy_vnpu(vm).unwrap();
        let stats = h.cache_stats();
        assert_eq!(stats.hits, 0, "post-reconfig lookup must not hit");
        assert_eq!(stats.misses, 2);
        // Without another reconfig the new generation's entry hits.
        h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        assert_eq!(h.cache_stats().hits, 1);
    }

    #[test]
    fn terminal_no_candidate_rejection_carries_fit_hint() {
        // Two free islands — a 3x2 block (6 cores) and a 2x2 block (4
        // cores), 10 free total. A 3x3 request (9 cores) passes the count
        // check but has no *connected* candidate → NoCandidate; with a
        // budget of one attempt it is terminally rejected. The event must
        // offer the largest shape that does fit: the whole 6-core island.
        let mut h = hv();
        let keep_free = [0u32, 1, 2, 6, 7, 8, 28, 29, 34, 35];
        let taken: Vec<u32> = (0..36).filter(|c| !keep_free.contains(c)).collect();
        h.reserve_cores(&taken).unwrap();
        h.set_admission_max_attempts(Some(1));
        let id = h.submit(VnpuRequest::mesh(3, 3));
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert!(matches!(
            events[0].outcome,
            AdmissionOutcome::Rejected(VnpuError::Mapping(vnpu_topo::TopoError::NoCandidate))
        ));
        let hint = events[0].fit_hint.expect("a 6-core island fits");
        assert_eq!(hint.cores, 6, "largest fitting shape fills the big island");
        assert_eq!((hint.width, hint.height), (3, 2));
        // Admitted events never carry a hint.
        let mut h2 = hv();
        h2.submit(VnpuRequest::mesh(2, 2));
        let ev = h2.process_admissions();
        assert!(ev[0].fit_hint.is_none());
    }

    #[test]
    fn fit_hint_is_none_on_a_full_chip() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        assert_eq!(h.fit_hint(), None);
    }

    #[test]
    fn fit_hint_remains_sound_across_free_set_churn() {
        // A hint is advice the caller may act on immediately: the probe
        // that produced it must place on the *current* free set even
        // when the dedicated hint cache still holds entries probed
        // against a looser free region (the debug-build re-probe in
        // `fit_hint_in_bounded` proves this on every emission; acting on
        // the hint here proves it end to end).
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 6)).unwrap();
        let loose = h.fit_hint().expect("most of the chip is free");
        assert!(loose.cores >= 24, "a big island must be advertised");
        // Churn: release the block, then carve the free region up much
        // more tightly — stale cache entries now describe shapes the
        // current free set cannot hold.
        h.destroy_vnpu(vm).unwrap();
        let taken: Vec<u32> = (0..36).filter(|&c| c % 3 != 0 || c >= 18).collect();
        h.reserve_cores(&taken).unwrap();
        let tight = h.fit_hint().expect("free cores remain");
        assert!(
            tight.cores < loose.cores,
            "the tighter free set must shrink the hint"
        );
        // Acting on the hint verbatim must succeed: the advertised core
        // count rebuilds the exact near-mesh probe shape.
        h.create_vnpu(VnpuRequest::cores(tight.cores))
            .expect("a sound hint is placeable as advertised");
    }

    #[test]
    fn fragmentation_stats_reflect_lock_in() {
        let cfg = SocConfig {
            mesh_width: 3,
            mesh_height: 3,
            ..SocConfig::sim()
        };
        let mut h = Hypervisor::new(cfg);
        let frag = h.fragmentation();
        assert_eq!(frag.free_components, 1);
        assert!((frag.free_connectivity - 1.0).abs() < 1e-12);
        assert!(frag.hbm_external_fragmentation < 1e-12);
        // Occupy the middle row: the free region splits into two islands.
        h.reserve_cores(&[3, 4, 5]).unwrap();
        let frag = h.fragmentation();
        assert_eq!(frag.free_cores, 6);
        assert_eq!(frag.free_components, 2);
        assert_eq!(frag.largest_free_component, 3);
        assert!((frag.free_connectivity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn temporal_sharing_prefers_free_cores_first() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap(); // 30 cores busy
        let vm = h
            .create_vnpu(VnpuRequest::custom(Topology::line(6)).temporal_sharing(true))
            .unwrap();
        // Six cores were still free; sharing must not have been needed.
        let v = h.vnpu(vm).unwrap();
        for n in v.mapping().phys_nodes() {
            assert!(n.0 >= 30, "free bottom row preferred, got {n}");
        }
    }

    #[test]
    fn faulted_free_core_leaves_every_placement_path() {
        let mut h = hv();
        assert!(h.set_core_faulted(0, true).unwrap());
        assert!(!h.set_core_faulted(0, true).unwrap(), "idempotent");
        assert!(h.core_faulted(0));
        assert_eq!(h.faulted_cores(), vec![0]);
        assert_eq!(h.free_core_count(), 35);
        assert_eq!(h.core_users()[0], 0, "fault masking never touches users");
        // Placement routes around the dead core.
        let vm = h.create_vnpu(VnpuRequest::mesh(6, 6 - 1)).unwrap();
        assert!(!h
            .vnpu(vm)
            .unwrap()
            .mapping()
            .phys_nodes()
            .contains(&NodeId(0)));
        // Reservation refuses dead hardware outright.
        assert!(matches!(
            h.reserve_cores(&[0]),
            Err(VnpuError::Faulted { core: 0 })
        ));
        assert!(matches!(
            h.set_core_faulted(99, true),
            Err(VnpuError::VirtCoreOutOfRange { .. })
        ));
        // Repair returns the core and signals retry-after-free.
        let events = h.free_events();
        assert!(h.set_core_faulted(0, false).unwrap());
        assert_eq!(h.free_core_count(), 6);
        assert_eq!(h.free_events(), events + 1);
    }

    #[test]
    fn faulted_owned_core_is_not_freed_by_teardown() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let dead = h.vnpu(vm).unwrap().mapping().phys_nodes()[0].0;
        h.set_core_faulted(dead, true).unwrap();
        assert_eq!(h.free_core_count(), 32, "owned core: free set unchanged");
        let events = h.free_events();
        h.destroy_vnpu(vm).unwrap();
        // Three healthy cores came back; the dead one stayed out.
        assert_eq!(h.free_core_count(), 35);
        assert!(!h.free_set().contains(NodeId(dead)));
        // destroy bumps once per vNPU + once per healthy used→free core.
        assert_eq!(h.free_events(), events + 4);
        h.set_core_faulted(dead, false).unwrap();
        assert_eq!(h.free_core_count(), 36);
    }

    #[test]
    fn fault_transitions_invalidate_outstanding_plans() {
        let mut h = hv();
        let txn = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        h.set_core_faulted(7, true).unwrap();
        assert!(matches!(h.commit(&txn), Err(VnpuError::StalePlan { .. })));
        let txn = h.plan(&[PlanOp::Create(VnpuRequest::mesh(2, 2))]).unwrap();
        assert!(h.set_link_faulted(0, 1, true));
        assert!(!h.set_link_faulted(1, 0, true), "undirected, idempotent");
        assert!(h.link_faulted(1, 0));
        assert_eq!(h.faulted_links().collect::<Vec<_>>(), vec![(0, 1)]);
        assert!(matches!(h.commit(&txn), Err(VnpuError::StalePlan { .. })));
    }

    #[test]
    fn remap_under_pin_escapes_the_faulted_core() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let dead = h.vnpu(vm).unwrap().mapping().phys_nodes()[0].0;
        h.set_core_faulted(dead, true).unwrap();
        let txn = h
            .plan(&[PlanOp::Migrate {
                vm,
                to: MigrationTarget::Remap(Strategy::similar_topology().threads(1)),
            }])
            .unwrap();
        let receipt = h.commit(&txn).unwrap();
        assert_eq!(receipt.migrated.len(), 1, "a move must happen");
        let nodes = h.vnpu(vm).unwrap().mapping().phys_nodes();
        assert!(!nodes.contains(&NodeId(dead)), "dead core escaped");
        assert_eq!(h.core_users()[dead as usize], 0);
        assert!(!h.free_set().contains(NodeId(dead)), "still masked");
    }
}
