//! **Ablation (§7)** — "For graph workloads such as GNNs, which require
//! large graph datasets and involve random information retrieval, our
//! range-translation design may not be ideal. For these types of
//! workloads, employing traditional page-level translation is
//! recommended."
//!
//! A synthetic GNN gather stream (uniform random feature fetches over a
//! large graph) is replayed against both translators. The range TLB's
//! sequential-scan miss path degenerates on random addresses, while a
//! page TLB pays one bounded walk per miss — reproducing the paper's own
//! caveat.

use crate::print_table;
use vnpu::vchunk::{build_translator, MemMode};
use vnpu_mem::proptest_lite::Rng;
use vnpu_mem::rtt::RttEntry;
use vnpu_mem::{Perm, PhysAddr, TranslationCosts, VirtAddr};

/// Replays random and sequential gather streams against both
/// translators. The random-favors-pages / sequential-favors-ranges
/// assertions are structural and hold at any stream length.
pub fn run(quick: bool) {
    let accesses: u64 = if quick { 2_000 } else { 20_000 };
    // 64 ranges of 1 MiB each: a 64 MiB feature store.
    let entries: Vec<RttEntry> = (0..64u64)
        .map(|i| {
            RttEntry::new(
                VirtAddr(0x1000_0000 + i * (1 << 20)),
                PhysAddr(0x8000_0000 + i * (1 << 20)),
                1 << 20,
                Perm::R,
            )
        })
        .collect();
    let costs = TranslationCosts::default();
    let mut range = build_translator(&entries, MemMode::Range { tlb_entries: 4 }, costs).unwrap();
    let mut page = build_translator(&entries, MemMode::Page { tlb_entries: 32 }, costs).unwrap();

    // GNN gather: random 256-byte feature reads.
    let mut rng = Rng::new(0x5eed_0000_1234);
    let span = 64u64 * (1 << 20) - 256;
    for _ in 0..accesses {
        let off = rng.below(span);
        let va = VirtAddr(0x1000_0000 + off);
        range.translate(va, 256, Perm::R).unwrap();
        page.translate(va, 256, Perm::R).unwrap();
    }

    let rs = range.stats();
    let ps = page.stats();
    print_table(
        "Ablation (§7): random GNN gathers — range vs page translation",
        &[
            "mechanism",
            "lookups",
            "miss rate",
            "probe reads",
            "stall cycles",
        ],
        &[
            vec![
                range.name(),
                rs.lookups.to_string(),
                format!("{:.0}%", 100.0 * rs.misses as f64 / rs.lookups as f64),
                rs.probe_reads.to_string(),
                rs.cycles.to_string(),
            ],
            vec![
                page.name(),
                ps.lookups.to_string(),
                format!("{:.0}%", 100.0 * ps.misses as f64 / ps.lookups as f64),
                ps.probe_reads.to_string(),
                ps.cycles.to_string(),
            ],
        ],
    );
    println!(
        "\nOn random accesses the range walker scans ~half the table per miss \
         ({:.1} probes/miss), so page translation wins — exactly the §7 caveat; \
         the hypervisor should provision GNN tenants with page-mode services \
         (`MemMode::Page`).",
        rs.probe_reads as f64 / rs.misses.max(1) as f64
    );
    assert!(
        rs.cycles > ps.cycles,
        "random access must favor page translation ({} vs {})",
        rs.cycles,
        ps.cycles
    );
    // And the converse sanity: sequential streams favor ranges.
    range.reset_stats();
    page.reset_stats();
    for i in 0..accesses {
        let va = VirtAddr(0x1000_0000 + (i * 2048) % span);
        range.translate(va, 256, Perm::R).unwrap();
        page.translate(va, 256, Perm::R).unwrap();
    }
    assert!(
        range.stats().cycles < page.stats().cycles,
        "sequential streams must still favor ranges"
    );
    println!(
        "(sequential check: range {} cycles vs page {} — vChunk keeps its streaming win)",
        range.stats().cycles,
        page.stats().cycles
    );
}
