//! **vnpu_serve** — the online serving runtime over the vNPU stack.
//!
//! The paper evaluates topology-aware virtualization statically: vNPUs
//! are provisioned once, run, and the chip is torn down. This crate adds
//! the regime a production NPU pool actually operates in — *continuous
//! churn*: requests arrive over time, virtual NPUs are created and
//! destroyed under fragmentation, mappings are recomputed (or, mostly,
//! *remembered*) per arrival, and execution interleaves with placement.
//!
//! Three modules implement the loop:
//!
//! * [`arrivals`] — a deterministic seeded traffic model: Poisson-ish
//!   inter-arrival gaps, a weighted mix of virtual-topology shapes
//!   (meshes, chains, awkward core counts) and geometric lifetimes.
//! * [`scheduler`] — the runtime itself: per tick it retires expired
//!   tenants, submits arrivals to the hypervisor's admission queue
//!   ([`vnpu::admission`]), runs one admission pass (through the
//!   [`vnpu_topo::cache::MappingCache`] hot path), samples fragmentation,
//!   and executes one machine epoch with every live tenant's programs
//!   bound ([`vnpu_sim::machine::Machine::run_epoch`]).
//! * [`report`] — the [`ServeReport`]: accepted/rejected/queued counts,
//!   p50/p99 time-to-placement in controller cycles, mapping-cache hit
//!   rate, the fragmentation trajectory, and leak accounting (a correct
//!   run ends with zero cores and zero HBM bytes still allocated).
//!
//! # Example
//!
//! ```
//! use vnpu_serve::{ServeConfig, ServeRuntime};
//!
//! let report = ServeRuntime::new(ServeConfig::standard(42, 20))
//!     .run()
//!     .expect("serving runtime completes");
//! assert_eq!(report.leaked_cores, 0);
//! assert_eq!(report.leaked_hbm_bytes, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod report;
pub mod scheduler;

pub use arrivals::{Arrival, ArrivalGenerator, Shape, TrafficConfig};
pub use report::{FragSample, ServeReport};
pub use scheduler::{ServeConfig, ServeRuntime};
