//! Simulation reports: makespans, warm-up times, per-core activity traces
//! (the Figure 18 core trace), contention counters and memory traces
//! (Figure 6).

use crate::config::SocConfig;
use std::collections::HashMap;
use vnpu_mem::TranslateStats;

/// What a core was doing during a trace interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activity {
    /// Systolic-array / vector-unit busy.
    Compute,
    /// Send engine streaming packets (or UVM publish).
    Send,
    /// Blocked waiting for inbound data (receive wait / UVM read).
    RecvWait,
    /// DMA engine streaming to/from global memory.
    Dma,
}

/// Activity intervals of one physical core.
#[derive(Debug, Clone, Default)]
pub struct CoreTrace {
    intervals: Vec<(u64, u64, Activity)>,
}

impl CoreTrace {
    /// Appends an interval (no-op when empty).
    pub fn push(&mut self, start: u64, end: u64, what: Activity) {
        if end > start {
            self.intervals.push((start, end, what));
        }
    }

    /// All recorded intervals in insertion order.
    pub fn intervals(&self) -> &[(u64, u64, Activity)] {
        &self.intervals
    }

    /// Total cycles spent in `what`.
    pub fn cycles_in(&self, what: Activity) -> u64 {
        self.intervals
            .iter()
            .filter(|(_, _, a)| *a == what)
            .map(|(s, e, _)| e - s)
            .sum()
    }

    /// Compute utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.cycles_in(Activity::Compute) as f64 / horizon as f64
        }
    }
}

/// Aggregate statistics of one tenant (virtual NPU instance).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name as registered.
    pub name: String,
    /// Cycle at which the slowest thread finished its prelude — the
    /// warm-up time of §6.3.4.
    pub warmup_end: u64,
    /// Cycle at which the first thread entered its body loop.
    pub body_start: u64,
    /// Cycle at which the last thread finished.
    pub end: u64,
    /// Body iterations (max across threads).
    pub iterations: u32,
    /// Number of bound threads (virtual cores).
    pub threads: u32,
    /// Total compute-busy cycles across threads.
    pub compute_cycles: u64,
    /// Total MACs executed.
    pub macs: u64,
}

impl TenantStats {
    /// Steady-state cycles spent in the body loop.
    pub fn body_cycles(&self) -> u64 {
        self.end.saturating_sub(self.body_start.min(self.end))
    }
}

/// The full result of a [`crate::machine::Machine::run`].
#[derive(Debug, Clone)]
pub struct Report {
    cfg: SocConfig,
    makespan: u64,
    tenants: HashMap<u32, TenantStats>,
    traces: Vec<CoreTrace>,
    noc_contention: u64,
    noc_packets: u64,
    hbm_wait: u64,
    translator_stats: Vec<(u32, TranslateStats)>,
    mem_trace: Vec<(u64, u32, u64)>,
}

impl Report {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cfg: SocConfig,
        makespan: u64,
        tenants: HashMap<u32, TenantStats>,
        traces: Vec<CoreTrace>,
        noc_contention: u64,
        noc_packets: u64,
        hbm_wait: u64,
        translator_stats: Vec<(u32, TranslateStats)>,
        mem_trace: Vec<(u64, u32, u64)>,
    ) -> Self {
        Report {
            cfg,
            makespan,
            tenants,
            traces,
            noc_contention,
            noc_packets,
            hbm_wait,
            translator_stats,
            mem_trace,
        }
    }

    /// Final simulation time in cycles.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Statistics of one tenant.
    pub fn tenant(&self, id: u32) -> Option<&TenantStats> {
        self.tenants.get(&id)
    }

    /// All tenants, sorted by ID for deterministic iteration.
    pub fn tenants(&self) -> Vec<(u32, &TenantStats)> {
        let mut v: Vec<_> = self.tenants.iter().map(|(&k, s)| (k, s)).collect();
        v.sort_by_key(|(k, _)| *k);
        v
    }

    /// Inference throughput (iterations/second) of a tenant, excluding
    /// warm-up.
    pub fn fps(&self, tenant: u32) -> f64 {
        let Some(t) = self.tenants.get(&tenant) else {
            return 0.0;
        };
        let cycles = t.body_cycles();
        if cycles == 0 || t.iterations == 0 {
            return 0.0;
        }
        f64::from(t.iterations) * self.cfg.freq_hz as f64 / cycles as f64
    }

    /// Steady-state body cycles per iteration for a tenant.
    pub fn cycles_per_iteration(&self, tenant: u32) -> f64 {
        let Some(t) = self.tenants.get(&tenant) else {
            return 0.0;
        };
        if t.iterations == 0 {
            return 0.0;
        }
        t.body_cycles() as f64 / f64::from(t.iterations)
    }

    /// Warm-up time of a tenant in cycles (prelude completion).
    pub fn warmup_cycles(&self, tenant: u32) -> u64 {
        self.tenants.get(&tenant).map_or(0, |t| t.warmup_end)
    }

    /// MAC utilization of a tenant: achieved MACs over peak MACs of its
    /// cores during its body window.
    pub fn tenant_utilization(&self, tenant: u32) -> f64 {
        let Some(t) = self.tenants.get(&tenant) else {
            return 0.0;
        };
        let cycles = t.body_cycles();
        if cycles == 0 {
            return 0.0;
        }
        let peak_per_core = u64::from(self.cfg.systolic_dim) * u64::from(self.cfg.systolic_dim);
        let peak = cycles as f64 * peak_per_core as f64 * f64::from(t.threads);
        t.macs as f64 / peak
    }

    /// Activity trace of a physical core.
    pub fn core_trace(&self, core: u32) -> &CoreTrace {
        &self.traces[core as usize]
    }

    /// Cycles packets spent queued behind busy NoC links.
    pub fn noc_contention_cycles(&self) -> u64 {
        self.noc_contention
    }

    /// Total NoC packets injected.
    pub fn noc_packets(&self) -> u64 {
        self.noc_packets
    }

    /// Cycles DMA requests waited behind busy HBM channels.
    pub fn hbm_wait_cycles(&self) -> u64 {
        self.hbm_wait
    }

    /// Per-bound-thread translator statistics as `(phys_core, stats)`.
    pub fn translator_stats(&self) -> &[(u32, TranslateStats)] {
        &self.translator_stats
    }

    /// Sum of all translation stall cycles.
    pub fn translation_cycles(&self) -> u64 {
        self.translator_stats.iter().map(|(_, s)| s.cycles).sum()
    }

    /// Global-memory access trace `(cycle, core, va)` when enabled.
    pub fn mem_trace(&self) -> &[(u64, u32, u64)] {
        &self.mem_trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_accounting() {
        let mut t = CoreTrace::default();
        t.push(0, 100, Activity::Compute);
        t.push(100, 150, Activity::Send);
        t.push(150, 150, Activity::Dma); // empty, dropped
        t.push(150, 250, Activity::Compute);
        assert_eq!(t.cycles_in(Activity::Compute), 200);
        assert_eq!(t.cycles_in(Activity::Send), 50);
        assert_eq!(t.cycles_in(Activity::Dma), 0);
        assert_eq!(t.intervals().len(), 3);
        assert!((t.utilization(400) - 0.5).abs() < 1e-9);
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn tenant_body_cycles() {
        let t = TenantStats {
            name: "x".into(),
            warmup_end: 100,
            body_start: 100,
            end: 600,
            iterations: 5,
            threads: 2,
            compute_cycles: 0,
            macs: 0,
        };
        assert_eq!(t.body_cycles(), 500);
    }
}
