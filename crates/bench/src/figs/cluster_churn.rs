//! **Cluster churn** — the multi-chip serving scenario: ≥1,000 vNPU
//! create/destroy requests streamed through one cluster-level admission
//! queue over two heterogeneous chips (the paper's 6×6 SIM chip plus a
//! 4×4 sibling), with execution epochs interleaved and every placement
//! memoized in the *shared* mapping cache.
//!
//! Asserted invariants (both modes): the run is deterministic under its
//! seed (the whole [`vnpu_serve::ServeReport`], per-chip sections
//! included, reproduces bit-for-bit), both chips take load, the shared
//! cache gets hits, the drained fleet ends with zero leaked cores and
//! zero leaked HBM bytes on every chip — and swapping the
//! [`ChipPlacement`] policy changes the placement distribution without
//! breaking determinism. A third run repeats the first-fit scenario with
//! [`vnpu_serve::ServeConfig::audit`] enabled: the per-tick fleet
//! auditor must report zero findings and, auditing being read-only, the
//! report must come out byte-identical to the unaudited run's.

use std::sync::Arc;
use vnpu::cluster::{ChipPlacement, FirstFit, LeastLoaded};
use vnpu_serve::{ServeConfig, ServeReport, ServeRuntime};
use vnpu_sim::SocConfig;

/// Fixed seed: the whole request stream, admission trace and report are
/// reproducible from this value.
const SEED: u64 = 0xC1_05_7E_12;

fn small_soc() -> SocConfig {
    SocConfig {
        mesh_width: 4,
        mesh_height: 4,
        ..SocConfig::sim()
    }
}

fn churn_config(quick: bool, placement: Arc<dyn ChipPlacement>) -> ServeConfig {
    let epochs = if quick { 1_300 } else { 4_000 };
    let mut cfg = ServeConfig::cluster(SEED, epochs, vec![SocConfig::sim(), small_soc()]);
    // ~1 arrival per tick: a 1,300-epoch quick run comfortably clears
    // 1,000 requests while staying CI-fast.
    cfg.traffic.mean_interarrival_ticks = 1;
    cfg.traffic.candidate_cap = if quick { 200 } else { 400 };
    cfg.placement = placement;
    // Worker-pool width for the tick's parallel phases; the
    // `scripts/verify.sh` gate runs this bench at `VNPU_WORKERS=1` and
    // `=4` and byte-diffs the two report JSONs (modulo the report's own
    // `workers` field).
    if let Some(w) = std::env::var("VNPU_WORKERS")
        .ok()
        .and_then(|w| w.parse::<usize>().ok())
    {
        cfg.workers = w.max(1);
    }
    cfg
}

fn assert_fleet_invariants(r: &ServeReport, label: &str) {
    assert!(
        r.submitted >= 1_000,
        "{label}: churn must exceed 1,000 requests, got {}",
        r.submitted
    );
    assert_eq!(r.per_chip.len(), 2, "{label}: two chips, two sections");
    assert!(
        r.per_chip.iter().all(|c| c.accepted > 0),
        "{label}: both chips must take load: {:?}",
        r.per_chip
    );
    assert!(
        r.cache_hit_rate() > 0.0,
        "{label}: shared mapping cache must get hits: {:?}",
        r.cache
    );
    assert_eq!(r.leaked_cores, 0, "{label}: no cores may leak");
    assert_eq!(r.leaked_hbm_bytes, 0, "{label}: no HBM may leak");
    for c in &r.per_chip {
        assert_eq!(c.leaked_cores, 0, "{label}: chip{} cores leak", c.chip);
        assert_eq!(c.leaked_hbm_bytes, 0, "{label}: chip{} HBM leak", c.chip);
    }
    assert_eq!(
        r.accepted + r.rejected + r.queued_at_end,
        r.submitted,
        "{label}: every request accounted exactly once"
    );
    assert_eq!(
        r.per_chip.iter().map(|c| c.accepted).sum::<u64>(),
        r.accepted,
        "{label}: per-chip sections cover every admission"
    );
}

/// Runs the cluster churn scenario under two placement policies.
///
/// # Panics
///
/// Panics when any fleet invariant fails — the bench doubles as the
/// acceptance gate for the cluster serving stack.
pub fn run(quick: bool) {
    println!("== cluster_churn: multi-chip vNPU lifecycle under load ==\n");

    // --- First-fit, twice: byte-identical reports or bust. ---
    let first_fit = ServeRuntime::new(churn_config(quick, Arc::new(FirstFit)))
        .run()
        .expect("first-fit churn run completes");
    let again = ServeRuntime::new(churn_config(quick, Arc::new(FirstFit)))
        .run()
        .expect("first-fit churn rerun completes");
    assert_eq!(
        first_fit, again,
        "same seed must reproduce the whole report, per-chip sections included"
    );
    assert_fleet_invariants(&first_fit, "first-fit");
    println!("[first-fit]\n{}\n", first_fit.summary());

    // --- Audited first-fit: the fleet auditor runs after every tick and
    //     must stay silent, and because auditing is read-only the report
    //     is byte-identical to the unaudited run's. ---
    let mut audited_cfg = churn_config(quick, Arc::new(FirstFit));
    audited_cfg.audit = true;
    let audited = ServeRuntime::new(audited_cfg)
        .run()
        .expect("audited churn run completes");
    assert_eq!(
        audited.audit_findings, 0,
        "a healthy serving fleet audits clean on every tick"
    );
    assert_eq!(
        audited, first_fit,
        "auditing is read-only: the audited report is byte-identical"
    );
    assert_eq!(
        audited.to_json(64),
        first_fit.to_json(64),
        "auditing must not perturb the serialized report either"
    );
    println!("[first-fit, audited] zero findings, report byte-identical\n");

    // --- Least-loaded: same stream, different distribution. ---
    let least_loaded = ServeRuntime::new(churn_config(quick, Arc::new(LeastLoaded)))
        .run()
        .expect("least-loaded churn run completes");
    assert_fleet_invariants(&least_loaded, "least-loaded");
    assert_eq!(
        first_fit.submitted, least_loaded.submitted,
        "placement policy must not perturb the arrival stream"
    );
    assert_ne!(
        first_fit.per_chip[1].accepted, least_loaded.per_chip[1].accepted,
        "swapping ChipPlacement must change the placement distribution"
    );
    assert!(
        least_loaded.per_chip[1].accepted > first_fit.per_chip[1].accepted,
        "least-loaded must push more tenants onto the second chip \
         (first-fit: {}, least-loaded: {})",
        first_fit.per_chip[1].accepted,
        least_loaded.per_chip[1].accepted
    );
    println!("[least-loaded]\n{}\n", least_loaded.summary());

    // --- JSON report via the existing harness conventions. ---
    if let Some(dir) = crate::harness::report_dir() {
        let name = if quick {
            "cluster_churn.report.quick.json"
        } else {
            "cluster_churn.report.json"
        };
        let path = dir.join(name);
        if std::fs::write(&path, first_fit.to_json(64)).is_ok() {
            println!("cluster report written to {}\n", path.display());
        }
    }

    println!(
        "placement spread: chip1 took {} tenants under first-fit, {} under \
         least-loaded, of {} accepted",
        first_fit.per_chip[1].accepted, least_loaded.per_chip[1].accepted, first_fit.accepted
    );
}
