//! The vRouter: NPU instruction-router and NoC-router virtualization
//! (§4.1).
//!
//! * [`InstRouter`] models the controller-side redirection of NPU
//!   instructions from virtual to physical cores (Figure 4) — used by the
//!   Figure 11/12 micro-benchmarks and charged once per program dispatch.
//! * [`VRouterNoc`] implements [`vnpu_sim::noc::NocRouter`]: the per-core
//!   send/receive engine extension that rewrites destination core IDs
//!   through the routing table and, when *NoC isolation* is requested,
//!   walks direction-override paths confined to the virtual topology
//!   (Figure 5) instead of default dimension-order routing.

use crate::ids::{PhysCoreId, VirtCoreId};
use crate::routing_table::{RoutingTable, RT_LOOKUP_CYCLES};
use std::collections::HashMap;
use vnpu_sim::noc::NocRouter;
use vnpu_sim::{Result as SimResult, SimError};
use vnpu_topo::{route, NodeId, Topology};

/// Controller-side instruction router.
#[derive(Debug, Clone)]
pub struct InstRouter {
    table: RoutingTable,
    lookups: u64,
    cached: Option<(VirtCoreId, PhysCoreId)>,
}

impl InstRouter {
    /// Wraps a routing table.
    pub fn new(table: RoutingTable) -> Self {
        InstRouter {
            table,
            lookups: 0,
            cached: None,
        }
    }

    /// Redirects an instruction addressed to virtual core `v`, returning
    /// the physical core and the lookup cost in cycles (0 when the
    /// translation is cached from the previous instruction — §6.2.1: "if
    /// consecutive instructions are directed to the same NPU core, the
    /// subsequent instructions do not need to query the routing table
    /// again").
    pub fn redirect(&mut self, v: VirtCoreId) -> Option<(PhysCoreId, u64)> {
        if let Some((cv, cp)) = self.cached {
            if cv == v {
                return Some((cp, 0));
            }
        }
        let p = self.table.lookup(v)?;
        self.lookups += 1;
        self.cached = Some((v, p));
        Some((p, RT_LOOKUP_CYCLES))
    }

    /// Number of real (uncached) table lookups performed.
    pub fn lookup_count(&self) -> u64 {
        self.lookups
    }

    /// The underlying table.
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }
}

/// How the NoC vRouter picks paths between the virtual NPU's cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Default dimension-order routing on the physical mesh. Packets may
    /// cross cores of other virtual NPUs (*NoC interference* possible).
    Dor,
    /// Direction-override routing confined to the virtual NPU's allocated
    /// cores (paper strategy 2: "predefining the routing direction inside
    /// the routing table"). Falls back to DOR when no confined path exists
    /// (fragmented allocations).
    Confined,
}

/// Per-core NoC router for one virtual NPU.
///
/// One instance exists per bound virtual core; path lookups are cached
/// (the hypervisor precomputes directions into the core's meta-zone, so
/// steady-state routing is table-driven).
pub struct VRouterNoc {
    topo: Topology,
    v2p: Vec<u32>,
    policy: RoutePolicy,
    allowed: Vec<NodeId>,
    cached_dst: Option<u32>,
    path_cache: HashMap<(u32, u32), Vec<u32>>,
    direction_entries: u64,
    fallback_paths: u64,
}

impl std::fmt::Debug for VRouterNoc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VRouterNoc")
            .field("cores", &self.v2p.len())
            .field("policy", &self.policy)
            .finish_non_exhaustive()
    }
}

impl VRouterNoc {
    /// Creates a NoC vRouter for a virtual NPU whose virtual core `i` is
    /// backed by physical core `v2p[i]` on the given physical mesh.
    pub fn new(phys_topo: Topology, v2p: Vec<u32>, policy: RoutePolicy) -> Self {
        let allowed = v2p.iter().map(|&p| NodeId(p)).collect();
        VRouterNoc {
            topo: phys_topo,
            v2p,
            policy,
            allowed,
            cached_dst: None,
            path_cache: HashMap::new(),
            direction_entries: 0,
            fallback_paths: 0,
        }
    }

    /// Number of per-node direction entries this router has materialized
    /// (meta-zone storage accounting for [`crate::hwcost`]).
    pub fn direction_entries(&self) -> u64 {
        self.direction_entries
    }

    /// Paths that fell back to DOR because no confined route existed.
    pub fn fallback_paths(&self) -> u64 {
        self.fallback_paths
    }

    /// The route policy in force.
    pub fn policy(&self) -> RoutePolicy {
        self.policy
    }
}

impl NocRouter for VRouterNoc {
    fn resolve(&mut self, dst_program: u32) -> SimResult<(u32, u64)> {
        let Some(&p) = self.v2p.get(dst_program as usize) else {
            return Err(SimError::RouteFault {
                core: u32::MAX,
                dst: dst_program,
            });
        };
        // Destination-rewrite cache: repeated sends to the same virtual
        // core skip the routing-table read.
        if self.cached_dst == Some(dst_program) {
            return Ok((p, 0));
        }
        self.cached_dst = Some(dst_program);
        Ok((p, RT_LOOKUP_CYCLES))
    }

    fn path(&self, src_phys: u32, dst_phys: u32) -> SimResult<Vec<u32>> {
        if let Some(p) = self.path_cache.get(&(src_phys, dst_phys)) {
            return Ok(p.clone());
        }
        compute_path(&self.topo, &self.allowed, self.policy, src_phys, dst_phys).map(|(p, _)| p)
    }

    fn per_packet_overhead(&self) -> u64 {
        1 // destination-rewrite mux in the send/receive engine
    }

    fn name(&self) -> String {
        match self.policy {
            RoutePolicy::Dor => "vrouter-dor".to_owned(),
            RoutePolicy::Confined => "vrouter-confined".to_owned(),
        }
    }
}

impl VRouterNoc {
    /// Precomputes and caches all pairwise paths among the virtual NPU's
    /// cores (what the hypervisor deploys into per-core meta-zones).
    /// Returns the total number of direction entries installed.
    pub fn precompute_paths(&mut self) -> u64 {
        let cores = self.v2p.clone();
        for &a in &cores {
            for &b in &cores {
                if a == b {
                    continue;
                }
                if let Ok((path, fallback)) =
                    compute_path(&self.topo, &self.allowed, self.policy, a, b)
                {
                    if self.policy == RoutePolicy::Confined && !fallback {
                        // One direction entry per relay node (minus source).
                        self.direction_entries += path.len().saturating_sub(1) as u64;
                    }
                    if fallback {
                        self.fallback_paths += 1;
                    }
                    self.path_cache.insert((a, b), path);
                }
            }
        }
        self.direction_entries
    }
}

fn compute_path(
    topo: &Topology,
    allowed: &[NodeId],
    policy: RoutePolicy,
    src: u32,
    dst: u32,
) -> SimResult<(Vec<u32>, bool)> {
    let as_u32 = |p: Vec<NodeId>| p.into_iter().map(|n| n.0).collect::<Vec<u32>>();
    match policy {
        RoutePolicy::Dor => route::dor_path(topo, NodeId(src), NodeId(dst))
            .map(|p| (as_u32(p), false))
            .map_err(|_| SimError::RouteFault { core: src, dst }),
        RoutePolicy::Confined => {
            match route::confined_path(topo, allowed, NodeId(src), NodeId(dst)) {
                Ok(p) => Ok((as_u32(p), false)),
                // Fragmented virtual NPU: fall back to DOR across foreign
                // cores (the §4.3 performance/utilization trade-off).
                Err(_) => route::dor_path(topo, NodeId(src), NodeId(dst))
                    .map(|p| (as_u32(p), true))
                    .map_err(|_| SimError::RouteFault { core: src, dst }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VmId;
    use vnpu_topo::MeshShape;

    #[test]
    fn inst_router_caches_repeat_destinations() {
        let table = RoutingTable::mesh2d(
            VmId(1),
            PhysCoreId(0),
            MeshShape {
                width: 2,
                height: 2,
            },
            4,
        );
        let mut r = InstRouter::new(table);
        let (p1, c1) = r.redirect(VirtCoreId(3)).unwrap();
        assert_eq!(p1, PhysCoreId(5));
        assert_eq!(c1, RT_LOOKUP_CYCLES);
        let (_, c2) = r.redirect(VirtCoreId(3)).unwrap();
        assert_eq!(c2, 0, "repeat destination must hit the cache");
        let (_, c3) = r.redirect(VirtCoreId(0)).unwrap();
        assert_eq!(c3, RT_LOOKUP_CYCLES);
        assert_eq!(r.lookup_count(), 2);
        assert!(r.redirect(VirtCoreId(9)).is_none());
    }

    /// Figure 5's vNPU2: virtual cores on physical {3, 6, 7, 11} of a 4x3
    /// mesh; the route 11 -> 6 must avoid physical core 10.
    fn fig5_router(policy: RoutePolicy) -> VRouterNoc {
        let topo = Topology::mesh2d(4, 3);
        VRouterNoc::new(topo, vec![3, 6, 7, 11], policy)
    }

    #[test]
    fn confined_path_stays_inside_vnpu() {
        let r = fig5_router(RoutePolicy::Confined);
        let path = r.path(11, 6).unwrap();
        assert_eq!(path, vec![11, 7, 6]);
    }

    #[test]
    fn dor_path_crosses_foreign_core() {
        let r = fig5_router(RoutePolicy::Dor);
        let path = r.path(11, 6).unwrap();
        // DOR (X then Y): 11 is (3,2); 6 is (2,1): go west to (2,2)=10,
        // then north to 6 — crossing foreign core 10.
        assert_eq!(path, vec![11, 10, 6]);
    }

    #[test]
    fn resolve_translates_and_caches() {
        let mut r = fig5_router(RoutePolicy::Confined);
        let (p, c) = r.resolve(2).unwrap();
        assert_eq!(p, 7);
        assert_eq!(c, RT_LOOKUP_CYCLES);
        let (_, c2) = r.resolve(2).unwrap();
        assert_eq!(c2, 0);
        let (_, c3) = r.resolve(0).unwrap();
        assert_eq!(c3, RT_LOOKUP_CYCLES);
        assert!(r.resolve(4).is_err());
    }

    #[test]
    fn precompute_counts_direction_entries() {
        let mut r = fig5_router(RoutePolicy::Confined);
        let entries = r.precompute_paths();
        assert!(entries > 0);
        assert_eq!(r.fallback_paths(), 0, "fig5 vNPU2 is connected");
        // Cached path still served.
        assert_eq!(r.path(11, 6).unwrap(), vec![11, 7, 6]);
    }

    #[test]
    fn fragmented_vnpu_falls_back_to_dor() {
        // Two disconnected islands: {0} and {15} on a 4x4 mesh.
        let topo = Topology::mesh2d(4, 4);
        let mut r = VRouterNoc::new(topo, vec![0, 15], RoutePolicy::Confined);
        r.precompute_paths();
        assert!(r.fallback_paths() > 0);
        let path = r.path(0, 15).unwrap();
        assert_eq!(path.len(), 7); // DOR path exists
    }

    #[test]
    fn per_packet_overhead_is_one_cycle() {
        let r = fig5_router(RoutePolicy::Dor);
        assert_eq!(r.per_packet_overhead(), 1);
    }
}
