//! Criterion-style micro-benchmarks for the hot data-structure paths:
//! range-TLB translation, page-TLB translation, routing-table lookup,
//! graph edit distance, Hungarian assignment, and connected-subgraph
//! enumeration — running on the in-repo harness
//! ([`vnpu_bench::harness`]; the `criterion` crate is unavailable in
//! this offline workspace). Pass `-- --quick` for a sub-second pass.

use std::hint::black_box;
use vnpu::routing_table::RoutingTable;
use vnpu::{PhysCoreId, VmId};
use vnpu_bench::harness::{BatchSize, Criterion};
use vnpu_bench::{criterion_group, criterion_main};
use vnpu_mem::page::{PageTable, PageTranslator};
use vnpu_mem::rtt::{RangeTranslationTable, RangeTranslator, RttEntry};
use vnpu_mem::{Perm, PhysAddr, Translate, TranslationCosts, VirtAddr};
use vnpu_topo::mapping::{Mapper, Strategy};
use vnpu_topo::{enumerate, ged, hungarian, MeshShape, NodeId, Topology, UniformCosts};

fn bench_translation(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation");
    let entries: Vec<RttEntry> = (0..32u64)
        .map(|i| {
            RttEntry::new(
                VirtAddr(i * 0x10_0000),
                PhysAddr(i * 0x10_0000),
                0x10_0000,
                Perm::RW,
            )
        })
        .collect();
    g.bench_function("range_tlb_stream", |b| {
        b.iter_batched(
            || {
                RangeTranslator::new(
                    RangeTranslationTable::new(entries.clone()).unwrap(),
                    4,
                    TranslationCosts::default(),
                )
            },
            |mut tr| {
                for i in 0..512u64 {
                    black_box(
                        tr.translate(VirtAddr((i * 0x1_0000) % (32 * 0x10_0000)), 2048, Perm::R)
                            .unwrap(),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    let mut pt = PageTable::new(4096);
    pt.map_range(VirtAddr(0), PhysAddr(0), 32 * 0x10_0000, Perm::RW)
        .unwrap();
    g.bench_function("page_tlb_stream", |b| {
        b.iter_batched(
            || PageTranslator::new(pt.clone(), 32, TranslationCosts::default()),
            |mut tr| {
                for i in 0..512u64 {
                    black_box(
                        tr.translate(VirtAddr((i * 0x1_0000) % (32 * 0x10_0000)), 2048, Perm::R)
                            .unwrap(),
                    );
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("routing_table");
    let standard = RoutingTable::from_dense(VmId(0), &(0..36).collect::<Vec<_>>());
    let mesh = RoutingTable::mesh2d(
        VmId(0),
        PhysCoreId(7),
        MeshShape {
            width: 6,
            height: 6,
        },
        8,
    );
    g.bench_function("standard_lookup", |b| {
        b.iter(|| {
            for v in 0..36u32 {
                black_box(standard.lookup(black_box(vnpu::VirtCoreId(v))));
            }
        })
    });
    g.bench_function("mesh_lookup", |b| {
        b.iter(|| {
            for v in 0..36u32 {
                black_box(mesh.lookup(black_box(vnpu::VirtCoreId(v))));
            }
        })
    });
    g.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_mapping");
    g.sample_size(20);
    let a = Topology::mesh2d(2, 3);
    let b2 = Topology::ring(6);
    g.bench_function("ged_exact_6", |b| {
        b.iter(|| black_box(ged::ged_exact(&a, &b2, &UniformCosts)))
    });
    let big_a = Topology::mesh2d(4, 4);
    let big_b = Topology::mesh2d(8, 2);
    g.bench_function("ged_bipartite_16", |b| {
        b.iter(|| black_box(ged::ged_bipartite(&big_a, &big_b, &UniformCosts)))
    });
    let cost: Vec<Vec<u64>> = (0..32)
        .map(|i| (0..32).map(|j| ((i * 31 + j * 17) % 97) as u64).collect())
        .collect();
    g.bench_function("hungarian_32", |b| {
        b.iter(|| black_box(hungarian::solve(&cost)))
    });
    let mesh = Topology::mesh2d(5, 5);
    let free: Vec<NodeId> = mesh.nodes().collect();
    g.bench_function("enumerate_3x3_of_5x5", |b| {
        b.iter(|| {
            black_box(enumerate::connected_candidates(&mesh, &free, 9, 2000).len());
        })
    });
    let req = Topology::mesh2d(3, 3);
    let free_locked: Vec<NodeId> = mesh
        .nodes()
        .filter(|n| !(n.0 % 5 < 3 && n.0 / 5 < 3))
        .collect();
    g.bench_function("similar_mapping_locked_5x5", |b| {
        b.iter(|| {
            let m = Mapper::new(&mesh);
            black_box(
                m.map(
                    &free_locked,
                    &req,
                    &Strategy::similar_topology().threads(1).candidate_cap(2000),
                )
                .unwrap(),
            );
        })
    });
    g.finish();
}

criterion_group!(benches, bench_translation, bench_routing, bench_mapping);
criterion_main!(benches);
