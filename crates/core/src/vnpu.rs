//! The virtual-NPU abstraction: "virtual NPU cores, topology, and memory"
//! (§5.2), plus the request builder users hand to the hypervisor.

use crate::ids::{VirtCoreId, VmId};
use crate::routing_table::RoutingTable;
use crate::vchunk::{self, MemMode, BANDWIDTH_WINDOW_CYCLES};
use crate::vrouter::{RoutePolicy, VRouterNoc};
use crate::{Result, VnpuError};
use std::sync::Arc;
use vnpu_mem::buddy::Block;
use vnpu_mem::counter::AccessCounter;
use vnpu_mem::rtt::RttEntry;
use vnpu_mem::{TranslationCosts, VirtAddr};
use vnpu_sim::machine::CoreServices;
use vnpu_topo::mapping::{Mapping, Strategy};
use vnpu_topo::Topology;

/// Guest-virtual base address of every virtual NPU's memory window.
pub const GUEST_VA_BASE: u64 = 0x1000_0000;

/// A request for a virtual NPU: core count + topology + memory + policies.
///
/// Built fluently:
///
/// ```
/// use vnpu::VnpuRequest;
/// let req = VnpuRequest::mesh(3, 3)
///     .mem_bytes(256 << 20)
///     .noc_isolation(true);
/// assert_eq!(req.core_count(), 9);
/// ```
#[derive(Debug, Clone)]
pub struct VnpuRequest {
    topology: Topology,
    mem_bytes: u64,
    bandwidth_cap: Option<u64>,
    noc_isolation: bool,
    strategy: Strategy,
    mem_mode: MemMode,
    temporal_sharing: bool,
}

impl VnpuRequest {
    /// Requests a `w × h` 2D-mesh virtual topology.
    pub fn mesh(w: u32, h: u32) -> Self {
        Self::custom(Topology::mesh2d(w, h))
    }

    /// Requests `n` cores with the most-square mesh topology of exactly
    /// `n` nodes (a `w×h` factorization, or a partially-filled last row
    /// for awkward counts — mirroring the paper's Figure 16 arbitrary
    /// core-count allocations).
    pub fn cores(n: u32) -> Self {
        Self::custom(near_mesh_topology(n))
    }

    /// Requests an explicit virtual topology.
    pub fn custom(topology: Topology) -> Self {
        VnpuRequest {
            topology,
            mem_bytes: 64 << 20,
            bandwidth_cap: None,
            noc_isolation: false,
            strategy: Strategy::similar_topology(),
            mem_mode: MemMode::vchunk(),
            temporal_sharing: false,
        }
    }

    /// Sets the guest memory window size.
    pub fn mem_bytes(mut self, bytes: u64) -> Self {
        self.mem_bytes = bytes;
        self
    }

    /// Caps this virtual NPU's global-memory bandwidth (bytes per
    /// [`BANDWIDTH_WINDOW_CYCLES`] window, shared across its cores).
    pub fn bandwidth_cap(mut self, bytes_per_window: u64) -> Self {
        self.bandwidth_cap = Some(bytes_per_window);
        self
    }

    /// Requests NoC non-interference: direction-override routing confined
    /// to the virtual topology (§4.1.2 strategy 2).
    pub fn noc_isolation(mut self, on: bool) -> Self {
        self.noc_isolation = on;
        self
    }

    /// Permits temporal sharing (§7): when too few cores are free, the
    /// hypervisor may place this virtual NPU on already-allocated cores,
    /// time-division-multiplexed with their current tenants
    /// (over-provisioning). Off by default — vNPU primarily spatially
    /// shares because NPU context switches are costly.
    pub fn temporal_sharing(mut self, on: bool) -> Self {
        self.temporal_sharing = on;
        self
    }

    /// Whether temporal sharing was requested.
    pub fn wants_temporal_sharing(&self) -> bool {
        self.temporal_sharing
    }

    /// Selects the core-allocation strategy (default: similar-topology).
    pub fn strategy(mut self, strategy: Strategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Selects the memory-virtualization mode (default: vChunk with 4
    /// range-TLB entries).
    pub fn mem_mode(mut self, mode: MemMode) -> Self {
        self.mem_mode = mode;
        self
    }

    /// Number of requested cores.
    pub fn core_count(&self) -> u32 {
        self.topology.node_count() as u32
    }

    /// The requested virtual topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Requested guest memory bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// The allocation strategy.
    pub fn strategy_ref(&self) -> &Strategy {
        &self.strategy
    }

    /// Whether NoC isolation was requested.
    pub fn wants_noc_isolation(&self) -> bool {
        self.noc_isolation
    }

    /// The memory mode.
    pub fn memory_mode(&self) -> MemMode {
        self.mem_mode
    }

    /// The bandwidth cap, if any.
    pub fn bandwidth_cap_bytes(&self) -> Option<u64> {
        self.bandwidth_cap
    }
}

/// The most-square connected topology with exactly `n` nodes: a `w×h`
/// mesh when `n` factors nicely, otherwise a `w×h` mesh plus a partially
/// filled extra row (still connected, still mesh-embedded).
pub fn near_mesh_topology(n: u32) -> Topology {
    assert!(n > 0, "topology needs at least one node");
    // Best factor pair.
    let mut best = (1, n);
    let mut w = 1;
    while w * w <= n {
        if n % w == 0 {
            best = (w, n / w);
        }
        w += 1;
    }
    let (a, b) = best;
    // Accept the factorization when it is reasonably square.
    if a * 3 >= b {
        return Topology::mesh2d(b, a);
    }
    // Awkward count (e.g. prime): near-square grid with a partial last row.
    let width = (n as f64).sqrt().ceil() as u32;
    let full_rows = n / width;
    let rem = n % width;
    let mut t = Topology::empty(n as usize);
    let node = |x: u32, y: u32| y * width + x;
    for y in 0..full_rows {
        for x in 0..width {
            if x + 1 < width {
                t.add_edge(node(x, y).into(), node(x + 1, y).into())
                    .unwrap();
            }
            if y + 1 < full_rows || (y + 1 == full_rows && x < rem) {
                t.add_edge(node(x, y).into(), node(x, y + 1).into())
                    .unwrap();
            }
        }
    }
    for x in 0..rem.saturating_sub(1) {
        t.add_edge(node(x, full_rows).into(), node(x + 1, full_rows).into())
            .unwrap();
    }
    t
}

/// A provisioned virtual NPU: cores (with virtual topology), memory plan
/// and routing state, as deployed by the hypervisor.
#[derive(Debug, Clone)]
pub struct VirtualNpu {
    vm: VmId,
    virt_topology: Topology,
    phys_topology: Arc<Topology>,
    mapping: Mapping,
    routing_table: RoutingTable,
    rtt_entries: Vec<RttEntry>,
    blocks: Vec<Block>,
    mem_bytes: u64,
    mem_mode: MemMode,
    noc_isolation: bool,
    bandwidth_cap: Option<u64>,
    temporal_sharing: bool,
    strategy: Strategy,
    translation_costs: TranslationCosts,
}

impl VirtualNpu {
    /// Builds the deployed vNPU; policy-level attributes (memory mode,
    /// isolation, bandwidth cap, temporal sharing, mapping strategy) are
    /// retained from the request so migrations can reconstruct it
    /// faithfully.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        vm: VmId,
        phys_topology: Arc<Topology>,
        mapping: Mapping,
        routing_table: RoutingTable,
        rtt_entries: Vec<RttEntry>,
        blocks: Vec<Block>,
        mem_bytes: u64,
        req: &VnpuRequest,
    ) -> Self {
        VirtualNpu {
            vm,
            virt_topology: req.topology().clone(),
            phys_topology,
            mapping,
            routing_table,
            rtt_entries,
            blocks,
            mem_bytes,
            mem_mode: req.memory_mode(),
            noc_isolation: req.wants_noc_isolation(),
            bandwidth_cap: req.bandwidth_cap_bytes(),
            temporal_sharing: req.wants_temporal_sharing(),
            strategy: req.strategy_ref().clone(),
            translation_costs: TranslationCosts::default(),
        }
    }

    /// This virtual NPU's VM identifier.
    pub fn vm(&self) -> VmId {
        self.vm
    }

    /// Number of virtual cores.
    pub fn core_count(&self) -> u32 {
        self.virt_topology.node_count() as u32
    }

    /// The virtual topology as requested.
    pub fn virt_topology(&self) -> &Topology {
        &self.virt_topology
    }

    /// The virtual→physical core mapping chosen by the hypervisor.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Physical core backing a virtual core.
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::VirtCoreOutOfRange`] for bad IDs.
    pub fn phys_core(&self, v: VirtCoreId) -> Result<u32> {
        self.mapping
            .phys_nodes()
            .get(v.index())
            .map(|n| n.0)
            .ok_or(VnpuError::VirtCoreOutOfRange {
                vcore: v,
                count: self.core_count(),
            })
    }

    /// The deployed routing table.
    pub fn routing_table(&self) -> &RoutingTable {
        &self.routing_table
    }

    /// The deployed range-translation entries (VA-sorted).
    pub fn rtt_entries(&self) -> &[RttEntry] {
        &self.rtt_entries
    }

    /// Buddy blocks backing the guest memory (for hypervisor teardown).
    pub(crate) fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The buddy blocks backing this virtual NPU's guest memory, in
    /// guest-VA order — what defragmentation policies inspect to decide
    /// which tenants' memory sits highest in HBM.
    pub fn memory_blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The bandwidth cap this virtual NPU was created with, if any.
    pub fn bandwidth_cap_bytes(&self) -> Option<u64> {
        self.bandwidth_cap
    }

    /// Whether this virtual NPU was created with temporal sharing (§7
    /// over-provisioning) — migrations must preserve the semantics.
    pub fn wants_temporal_sharing(&self) -> bool {
        self.temporal_sharing
    }

    /// The core-allocation strategy this virtual NPU was created with.
    pub fn mapping_strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// Re-deploys this virtual NPU onto new physical cores after a live
    /// migration: the mapping and routing table are replaced wholesale.
    /// Caller (the hypervisor's transaction engine) owns the core
    /// bookkeeping.
    pub(crate) fn redeploy_cores(&mut self, mapping: Mapping, routing_table: RoutingTable) {
        self.mapping = mapping;
        self.routing_table = routing_table;
    }

    /// Re-deploys this virtual NPU's memory plan after an HBM compaction:
    /// same guest-VA window, new physical blocks and RTT entries. Caller
    /// owns the buddy bookkeeping.
    pub(crate) fn redeploy_memory(&mut self, rtt_entries: Vec<RttEntry>, blocks: Vec<Block>) {
        self.rtt_entries = rtt_entries;
        self.blocks = blocks;
    }

    /// Guest-VA window start.
    pub fn va_base(&self) -> VirtAddr {
        VirtAddr(GUEST_VA_BASE)
    }

    /// Guest memory window size (possibly rounded up by buddy blocks).
    pub fn mem_bytes(&self) -> u64 {
        self.mem_bytes
    }

    /// Whether NoC isolation (confined routing) is deployed.
    pub fn has_noc_isolation(&self) -> bool {
        self.noc_isolation
    }

    /// Builds the per-core services (vRouter + vChunk) for binding virtual
    /// core `v` into a [`vnpu_sim::machine::Machine`].
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range cores or unbuildable tables.
    pub fn services(&self, v: VirtCoreId) -> Result<CoreServices> {
        self.services_with(v, self.mem_mode, self.route_policy())
    }

    /// Like [`VirtualNpu::services`] but with explicit memory mode and
    /// route policy (for the Figure 14 / Figure 13 ablations).
    pub fn services_with(
        &self,
        v: VirtCoreId,
        mem_mode: MemMode,
        policy: RoutePolicy,
    ) -> Result<CoreServices> {
        self.phys_core(v)?; // range check
        let v2p: Vec<u32> = self.mapping.phys_nodes().iter().map(|n| n.0).collect();
        let mut router = VRouterNoc::new(self.phys_topology.as_ref().clone(), v2p, policy);
        if policy == RoutePolicy::Confined {
            router.precompute_paths();
        }
        let translator =
            vchunk::build_translator(&self.rtt_entries, mem_mode, self.translation_costs)?;
        let limiter = self.bandwidth_cap.map(|cap| {
            AccessCounter::new(
                BANDWIDTH_WINDOW_CYCLES,
                Some((cap / u64::from(self.core_count())).max(1)),
            )
        });
        Ok(CoreServices {
            router: Box::new(router),
            translator,
            limiter,
        })
    }

    /// The route policy implied by the isolation request.
    pub fn route_policy(&self) -> RoutePolicy {
        if self.noc_isolation {
            RoutePolicy::Confined
        } else {
            RoutePolicy::Dor
        }
    }

    /// The memory mode this virtual NPU was created with.
    pub fn memory_mode(&self) -> MemMode {
        self.mem_mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_mesh_factors() {
        for (n, w, h) in [
            (12u32, 4u32, 3u32),
            (36, 6, 6),
            (24, 6, 4),
            (9, 3, 3),
            (2, 2, 1),
        ] {
            let t = near_mesh_topology(n);
            assert_eq!(t.node_count() as u32, n);
            assert_eq!(t.mesh_shape().map(|s| (s.width, s.height)), Some((w, h)));
        }
    }

    #[test]
    fn near_mesh_prime_counts_still_connected() {
        for n in [7u32, 13, 17, 23] {
            let t = near_mesh_topology(n);
            assert_eq!(t.node_count() as u32, n);
            assert!(t.is_connected(), "partial mesh for {n} must be connected");
            assert!(t.mesh_shape().is_none());
        }
    }

    #[test]
    fn request_builder_defaults() {
        let r = VnpuRequest::mesh(2, 3);
        assert_eq!(r.core_count(), 6);
        assert_eq!(r.memory_bytes(), 64 << 20);
        assert!(!r.wants_noc_isolation());
        assert_eq!(r.memory_mode(), MemMode::vchunk());
    }

    #[test]
    fn request_builder_chains() {
        let r = VnpuRequest::cores(13)
            .mem_bytes(1 << 30)
            .bandwidth_cap(4096)
            .noc_isolation(true);
        assert_eq!(r.core_count(), 13);
        assert_eq!(r.memory_bytes(), 1 << 30);
        assert_eq!(r.bandwidth_cap_bytes(), Some(4096));
        assert!(r.wants_noc_isolation());
    }
}
