//! **Serving churn** — the dynamic-provisioning scenario the paper's
//! static experiments stop short of: ≥1,000 vNPU create/destroy requests
//! streamed through the admission scheduler with execution epochs
//! interleaved, plus a microbenchmark of the mapping hot path with and
//! without the [`MappingCache`].
//!
//! Asserted invariants (both modes): the run is deterministic under its
//! seed, the mapping cache gets hits (popular shapes against recurring
//! free regions), and the drained chip ends with zero leaked cores and
//! zero leaked HBM bytes. Full mode additionally asserts the memoized
//! hot path is measurably faster than re-running Algorithm 1 per
//! request.

use crate::harness::Criterion;
use vnpu::VnpuRequest;
use vnpu_serve::{ServeConfig, ServeRuntime};
use vnpu_topo::cache::{FreeSet, MappingCache};
use vnpu_topo::mapping::{Mapper, Strategy};
use vnpu_topo::{NodeId, Topology};

/// Fixed seed: the whole request stream, admission trace and report are
/// reproducible from this value.
const SEED: u64 = 0x5EED_1CC5;

fn churn_config(quick: bool) -> ServeConfig {
    let epochs = if quick { 1_300 } else { 4_000 };
    let mut cfg = ServeConfig::standard(SEED, epochs);
    // ~1 arrival per tick: a 1,300-epoch quick run comfortably clears
    // 1,000 requests while staying CI-fast.
    cfg.traffic.mean_interarrival_ticks = 1;
    cfg
}

/// A churn-like placement workload for the cache microbenchmark: free
/// regions cycling through a few occupancy patterns × rotating popular
/// request shapes — the steady state a serving chip revisits.
fn placement_workload() -> (Topology, Vec<(FreeSet, Topology, Strategy)>) {
    let phys = Topology::mesh2d(6, 6);
    let occupancies: [&[u32]; 4] = [
        &[0, 1, 6, 7],
        &[14, 15, 20, 21, 26, 27],
        &[4, 5, 10, 11, 33, 34, 35],
        &[],
    ];
    let shapes = [
        VnpuRequest::mesh(2, 2),
        VnpuRequest::mesh(2, 3),
        VnpuRequest::cores(5),
    ];
    let strategy = Strategy::similar_topology().threads(1).candidate_cap(400);
    let mut work = Vec::new();
    for occ in occupancies {
        let mut set = FreeSet::all_free(36);
        set.occupy_all(&occ.iter().map(|&c| NodeId(c)).collect::<Vec<_>>());
        for req in &shapes {
            work.push((set.clone(), req.topology().clone(), strategy.clone()));
        }
    }
    (phys, work)
}

/// Runs the churn scenario and the hot-path microbenchmark.
///
/// # Panics
///
/// Panics when any churn invariant fails — the bench doubles as the
/// acceptance gate for the serving runtime.
pub fn run(quick: bool) {
    println!("== serving_churn: dynamic vNPU lifecycle under load ==\n");

    // --- The churn run, twice: byte-identical reports or bust. ---
    let first = ServeRuntime::new(churn_config(quick))
        .run()
        .expect("churn run completes");
    let second = ServeRuntime::new(churn_config(quick))
        .run()
        .expect("churn rerun completes");
    assert_eq!(first, second, "same seed must reproduce the whole report");
    assert!(
        first.submitted >= 1_000,
        "churn must exceed 1,000 requests, got {}",
        first.submitted
    );
    assert!(
        first.cache_hit_rate() > 0.0,
        "mapping cache must get hits under churn: {:?}",
        first.cache
    );
    assert_eq!(first.leaked_cores, 0, "no cores may leak");
    assert_eq!(first.leaked_hbm_bytes, 0, "no HBM may leak");
    assert_eq!(
        first.accepted + first.rejected + first.queued_at_end,
        first.submitted,
        "every request accounted exactly once"
    );
    println!("{}\n", first.summary());

    // --- JSON report via the existing harness conventions. ---
    if let Some(dir) = crate::harness::report_dir() {
        let name = if quick {
            "serving_churn.report.quick.json"
        } else {
            "serving_churn.report.json"
        };
        let path = dir.join(name);
        if std::fs::write(&path, first.to_json(64)).is_ok() {
            println!("serve report written to {}\n", path.display());
        }
    }

    // --- Mapping hot path: cached vs uncached placement. ---
    let (phys, work) = placement_workload();
    let mapper = Mapper::new(&phys);
    // Verify equivalence before timing: a hit must replay the exact
    // uncached placement.
    let mut cache = MappingCache::default();
    for (set, req, strategy) in &work {
        let direct = mapper.map_in(set, req, strategy);
        let warm = mapper.map_cached(set, req, strategy, &mut cache);
        let hot = mapper.map_cached(set, req, strategy, &mut cache);
        assert_eq!(direct, warm, "cold cache pass equals direct mapping");
        assert_eq!(direct, hot, "cache hit equals direct mapping");
    }

    let mut c = Criterion::with_quick(quick);
    let mut g = c.benchmark_group("placement");
    g.bench_function("uncached", |b| {
        b.iter(|| {
            for (set, req, strategy) in &work {
                let _ = mapper.map_in(set, req, strategy);
            }
        });
    });
    g.bench_function("cached", |b| {
        let mut cache = MappingCache::default();
        // Warm once so the measurement is the steady serving state.
        for (set, req, strategy) in &work {
            let _ = mapper.map_cached(set, req, strategy, &mut cache);
        }
        b.iter(|| {
            for (set, req, strategy) in &work {
                let _ = mapper.map_cached(set, req, strategy, &mut cache);
            }
        });
    });
    g.finish();
    let uncached_ns = c.records()[0].median_ns;
    let cached_ns = c.records()[1].median_ns;
    let speedup = uncached_ns / cached_ns.max(1e-9);
    println!("\nmapping hot path: uncached / cached median = {speedup:.1}x");
    if !quick {
        assert!(
            speedup > 2.0,
            "the memoized hot path must be measurably faster (got {speedup:.2}x)"
        );
    }
    c.final_summary();
}
