//! Cross-design integration: the relative ordering of the virtualization
//! designs must hold on a common workload (the paper's overall story).

use vnpu::vchunk::MemMode;
use vnpu::vrouter::RoutePolicy;
use vnpu::{Hypervisor, VirtCoreId, VnpuRequest};
use vnpu_sim::machine::Machine;
use vnpu_sim::SocConfig;
use vnpu_workloads::compile::{compile, CommMode, CompileOptions};
use vnpu_workloads::models;

/// Runs GPT2-small on 8 cores under a given (memory mode, comm mode).
fn run(cfg: &SocConfig, mem: MemMode, comm: CommMode) -> f64 {
    let model = models::gpt2_small();
    let opts = CompileOptions {
        iterations: 8,
        comm,
        weight_va_base: vnpu::vnpu::GUEST_VA_BASE,
        ..Default::default()
    };
    let out = compile(&model, 8, cfg, &opts).expect("compile");
    let mut hv = Hypervisor::new(cfg.clone());
    let vm = hv
        .create_vnpu(VnpuRequest::mesh(4, 2).mem_bytes(1 << 30))
        .expect("create");
    let vnpu = hv.vnpu(vm).expect("vnpu");
    let mut machine = Machine::new(cfg.clone());
    let tenant = machine.add_tenant("model");
    for (v, p) in out.programs.iter().enumerate() {
        let vcore = VirtCoreId(v as u32);
        machine
            .bind_with(
                vnpu.phys_core(vcore).unwrap(),
                tenant,
                v as u32,
                p.clone(),
                vnpu.services_with(vcore, mem, RoutePolicy::Dor).unwrap(),
            )
            .unwrap();
    }
    machine.run().unwrap().fps(tenant)
}

#[test]
fn design_ordering_holds() {
    let cfg = SocConfig::sim();
    let vnpu_fps = run(&cfg, MemMode::vchunk(), CommMode::Noc);
    let uvm_fps = run(&cfg, MemMode::Page { tlb_entries: 32 }, CommMode::Uvm);
    let physical_noc = run(&cfg, MemMode::Physical, CommMode::Noc);

    // vNPU ~= ideal physical memory with NoC (vChunk is nearly free).
    assert!(
        vnpu_fps > physical_noc * 0.95,
        "vChunk must be nearly free: {vnpu_fps:.1} vs {physical_noc:.1}"
    );
    // NoC data flow beats UVM global-memory synchronization.
    assert!(
        vnpu_fps > uvm_fps * 1.2,
        "inter-core connections must win: {vnpu_fps:.1} vs {uvm_fps:.1}"
    );
}

#[test]
fn noc_isolation_does_not_cost_performance_on_regular_allocations() {
    // For a rectangular vNPU, confined routing uses the same shortest
    // paths as DOR, so isolation should be free.
    let cfg = SocConfig::sim();
    let model = models::resnet18();
    let opts = CompileOptions {
        iterations: 6,
        weight_va_base: vnpu::vnpu::GUEST_VA_BASE,
        ..Default::default()
    };
    let out = compile(&model, 9, &cfg, &opts).expect("compile");
    let run_policy = |policy| {
        let mut hv = Hypervisor::new(cfg.clone());
        let vm = hv
            .create_vnpu(VnpuRequest::mesh(3, 3).mem_bytes(256 << 20))
            .unwrap();
        let vnpu = hv.vnpu(vm).unwrap();
        let mut machine = Machine::new(cfg.clone());
        let tenant = machine.add_tenant("r18");
        for (v, p) in out.programs.iter().enumerate() {
            let vcore = VirtCoreId(v as u32);
            machine
                .bind_with(
                    vnpu.phys_core(vcore).unwrap(),
                    tenant,
                    v as u32,
                    p.clone(),
                    vnpu.services_with(vcore, MemMode::vchunk(), policy)
                        .unwrap(),
                )
                .unwrap();
        }
        machine.run().unwrap().fps(tenant)
    };
    let dor = run_policy(RoutePolicy::Dor);
    let confined = run_policy(RoutePolicy::Confined);
    let ratio = confined / dor;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "confinement on a rectangle must be free: {ratio:.3}"
    );
}
