//! Page-based translation: the conventional fixed-size-page design the
//! paper argues is a poor fit for NPU DMA bursts (§4.2), evaluated as the
//! "IOTLB-4" and "IOTLB-32" baselines of Figure 14.
//!
//! A DMA chunk access walks every page it touches; each page lookup either
//! hits the small LRU IOTLB or pays a full page-table walk, and a miss
//! stalls the whole DMA queue behind it.

use crate::translate::{Translate, TranslateStats, Translation, TranslationCosts};
use crate::{MemError, Perm, PhysAddr, Result, VirtAddr};
use std::collections::BTreeMap;

/// A flat (single-level, map-backed) page table with fixed-size pages.
///
/// The walk latency of a real multi-level table is modelled by
/// [`TranslationCosts::page_walk`] rather than by structural levels.
#[derive(Debug, Clone)]
pub struct PageTable {
    page_size: u64,
    map: BTreeMap<u64, (u64, Perm)>, // vpn -> (pfn, perm)
}

impl PageTable {
    /// Creates an empty page table with the given page size (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `page_size` is not a power of two.
    pub fn new(page_size: u64) -> Self {
        assert!(
            page_size.is_power_of_two(),
            "page size must be a power of two"
        );
        PageTable {
            page_size,
            map: BTreeMap::new(),
        }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u64 {
        self.page_size
    }

    /// Number of mapped pages.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table maps no pages.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Maps the virtual range `[va, va + len)` to consecutive physical
    /// pages starting at `pa`. Both addresses must be page-aligned; `len`
    /// is rounded up to whole pages.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidRange`] if either address is unaligned or
    /// the range overlaps an existing mapping.
    pub fn map_range(&mut self, va: VirtAddr, pa: PhysAddr, len: u64, perm: Perm) -> Result<()> {
        if va.value() % self.page_size != 0 || pa.value() % self.page_size != 0 || len == 0 {
            return Err(MemError::InvalidRange { va });
        }
        let pages = len.div_ceil(self.page_size);
        let vpn0 = va.value() / self.page_size;
        let pfn0 = pa.value() / self.page_size;
        for i in 0..pages {
            if self.map.contains_key(&(vpn0 + i)) {
                return Err(MemError::InvalidRange { va });
            }
        }
        for i in 0..pages {
            self.map.insert(vpn0 + i, (pfn0 + i, perm));
        }
        Ok(())
    }

    /// Looks up the page containing `va`.
    pub fn lookup(&self, va: VirtAddr) -> Option<(PhysAddr, Perm)> {
        let vpn = va.value() / self.page_size;
        self.map.get(&vpn).map(|&(pfn, perm)| {
            let off = va.value() % self.page_size;
            (PhysAddr(pfn * self.page_size + off), perm)
        })
    }
}

/// A small fully-associative LRU TLB over page translations (the IOTLB of
/// Figure 14; each entry caches one page).
#[derive(Debug, Clone)]
pub struct PageTlb {
    capacity: usize,
    /// (vpn, pfn, perm, last-use tick), linear scan — capacities are 4–32.
    entries: Vec<(u64, u64, Perm, u64)>,
    tick: u64,
}

impl PageTlb {
    /// Creates a TLB with the given number of entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB capacity must be positive");
        PageTlb {
            capacity,
            entries: Vec::with_capacity(capacity),
            tick: 0,
        }
    }

    /// Number of entries the TLB can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a virtual page number; refreshes LRU state on hit.
    pub fn lookup(&mut self, vpn: u64) -> Option<(u64, Perm)> {
        self.tick += 1;
        let tick = self.tick;
        for e in &mut self.entries {
            if e.0 == vpn {
                e.3 = tick;
                return Some((e.1, e.2));
            }
        }
        None
    }

    /// Inserts a translation, evicting the least-recently-used entry when
    /// full.
    pub fn insert(&mut self, vpn: u64, pfn: u64, perm: Perm) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == vpn) {
            *e = (vpn, pfn, perm, self.tick);
            return;
        }
        if self.entries.len() == self.capacity {
            let lru = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.3)
                .map(|(i, _)| i)
                .expect("TLB non-empty when full");
            self.entries.swap_remove(lru);
        }
        self.entries.push((vpn, pfn, perm, self.tick));
    }

    /// Drops all entries.
    pub fn flush(&mut self) {
        self.entries.clear();
    }
}

/// Page-table translation with an IOTLB and a walk cost model.
#[derive(Debug, Clone)]
pub struct PageTranslator {
    table: PageTable,
    tlb: PageTlb,
    costs: TranslationCosts,
    stats: TranslateStats,
}

impl PageTranslator {
    /// Wraps a populated page table with a TLB of `tlb_entries` entries.
    pub fn new(table: PageTable, tlb_entries: usize, costs: TranslationCosts) -> Self {
        PageTranslator {
            table,
            tlb: PageTlb::new(tlb_entries),
            costs,
            stats: TranslateStats::default(),
        }
    }

    /// The underlying page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the page table (hypervisor updates).
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }
}

impl Translate for PageTranslator {
    fn translate(&mut self, va: VirtAddr, len: u64, perm: Perm) -> Result<Translation> {
        if len == 0 {
            return Err(MemError::RangeOverrun { va, len });
        }
        let ps = self.table.page_size();
        let first_vpn = va.value() / ps;
        let last_vpn = (va.value() + len - 1) / ps;
        let mut cycles = 0u64;
        let mut all_hit = true;
        let mut first_pa = None;
        for vpn in first_vpn..=last_vpn {
            self.stats.lookups += 1;
            let (pfn, p) = match self.tlb.lookup(vpn) {
                Some(hit) => {
                    self.stats.hits += 1;
                    cycles += self.costs.tlb_hit;
                    hit
                }
                None => {
                    self.stats.misses += 1;
                    self.stats.probe_reads += 1;
                    all_hit = false;
                    cycles += self.costs.page_walk;
                    let page_va = VirtAddr(vpn * ps);
                    let (pa, p) = self
                        .table
                        .lookup(page_va)
                        .ok_or(MemError::TranslationFault { va: page_va })?;
                    let pfn = pa.value() / ps;
                    self.tlb.insert(vpn, pfn, p);
                    (pfn, p)
                }
            };
            if !p.contains(perm) {
                return Err(MemError::PermissionDenied {
                    va,
                    needed: perm,
                    granted: p,
                });
            }
            if vpn == first_vpn {
                first_pa = Some(PhysAddr(pfn * ps + va.value() % ps));
            }
        }
        self.stats.cycles += cycles;
        Ok(Translation {
            pa: first_pa.expect("at least one page walked"),
            cycles,
            hit: all_hit,
        })
    }

    fn name(&self) -> String {
        format!("iotlb-{}", self.tlb.capacity())
    }

    fn stats(&self) -> TranslateStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = TranslateStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_64k() -> PageTable {
        let mut t = PageTable::new(4096);
        t.map_range(VirtAddr(0x1_0000), PhysAddr(0x80_0000), 64 * 1024, Perm::RW)
            .unwrap();
        t
    }

    #[test]
    fn lookup_translates_offset() {
        let t = table_64k();
        let (pa, perm) = t.lookup(VirtAddr(0x1_2345)).unwrap();
        assert_eq!(pa, PhysAddr(0x80_2345));
        assert!(perm.contains(Perm::RW));
        assert!(t.lookup(VirtAddr(0x9_0000)).is_none());
    }

    #[test]
    fn overlap_rejected() {
        let mut t = table_64k();
        assert!(matches!(
            t.map_range(VirtAddr(0x1_4000), PhysAddr(0), 4096, Perm::R),
            Err(MemError::InvalidRange { .. })
        ));
    }

    #[test]
    fn unaligned_rejected() {
        let mut t = PageTable::new(4096);
        assert!(t
            .map_range(VirtAddr(0x123), PhysAddr(0), 4096, Perm::R)
            .is_err());
        assert!(t
            .map_range(VirtAddr(0x1000), PhysAddr(0x10), 4096, Perm::R)
            .is_err());
        assert!(t
            .map_range(VirtAddr(0x1000), PhysAddr(0x1000), 0, Perm::R)
            .is_err());
    }

    #[test]
    fn tlb_lru_eviction() {
        let mut tlb = PageTlb::new(2);
        tlb.insert(1, 101, Perm::R);
        tlb.insert(2, 102, Perm::R);
        assert!(tlb.lookup(1).is_some()); // 1 now MRU
        tlb.insert(3, 103, Perm::R); // evicts 2
        assert!(tlb.lookup(2).is_none());
        assert!(tlb.lookup(1).is_some());
        assert!(tlb.lookup(3).is_some());
    }

    #[test]
    fn translator_hit_miss_accounting() {
        let mut tr = PageTranslator::new(table_64k(), 4, TranslationCosts::default());
        // First touch: miss + walk.
        let t1 = tr.translate(VirtAddr(0x1_0000), 64, Perm::R).unwrap();
        assert!(!t1.hit);
        assert_eq!(t1.cycles, TranslationCosts::default().page_walk);
        // Same page again: hit.
        let t2 = tr.translate(VirtAddr(0x1_0040), 64, Perm::R).unwrap();
        assert!(t2.hit);
        assert_eq!(t2.cycles, TranslationCosts::default().tlb_hit);
        let s = tr.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn cross_page_access_walks_both() {
        let mut tr = PageTranslator::new(table_64k(), 4, TranslationCosts::default());
        let t = tr
            .translate(VirtAddr(0x1_0000 + 4096 - 32), 64, Perm::R)
            .unwrap();
        assert!(!t.hit);
        assert_eq!(tr.stats().lookups, 2);
        assert_eq!(t.pa, PhysAddr(0x80_0000 + 4096 - 32));
    }

    #[test]
    fn burst_of_chunks_thrashes_small_tlb() {
        // 32 pages streamed with a 4-entry TLB: every page is a miss on the
        // first iteration AND on every subsequent iteration (capacity
        // misses) — this is the Figure 14 effect.
        let mut t = PageTable::new(4096);
        t.map_range(VirtAddr(0), PhysAddr(0x100_0000), 32 * 4096, Perm::R)
            .unwrap();
        let mut tr = PageTranslator::new(t, 4, TranslationCosts::default());
        for _iter in 0..3 {
            for page in 0..32u64 {
                tr.translate(VirtAddr(page * 4096), 2048, Perm::R).unwrap();
            }
        }
        let s = tr.stats();
        assert_eq!(s.lookups, 96);
        assert_eq!(
            s.misses, 96,
            "streaming working set must thrash a 4-entry TLB"
        );
    }

    #[test]
    fn permission_enforced() {
        let mut t = PageTable::new(4096);
        t.map_range(VirtAddr(0), PhysAddr(0), 4096, Perm::R)
            .unwrap();
        let mut tr = PageTranslator::new(t, 4, TranslationCosts::default());
        assert!(matches!(
            tr.translate(VirtAddr(0), 64, Perm::W),
            Err(MemError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn fault_on_unmapped() {
        let mut tr = PageTranslator::new(PageTable::new(4096), 4, TranslationCosts::default());
        assert!(matches!(
            tr.translate(VirtAddr(0x5000), 8, Perm::R),
            Err(MemError::TranslationFault { .. })
        ));
    }

    #[test]
    fn name_reflects_capacity() {
        let tr = PageTranslator::new(PageTable::new(4096), 32, TranslationCosts::default());
        assert_eq!(tr.name(), "iotlb-32");
    }
}
