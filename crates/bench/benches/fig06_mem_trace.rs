//! **Figure 6** — the trace of accessed global-memory addresses for the
//! ResNet workload across NPU cores and iterations.
//!
//! Paper result: within one iteration each core's accessed weight
//! addresses increase monotonically (Pattern-2); across iterations the
//! same address sequence repeats (Pattern-3). These two patterns are what
//! vChunk's `RTT_CUR` and `last_v` exploit.

use vnpu_bench::print_table;
use vnpu_sim::machine::Machine;
use vnpu_sim::SocConfig;
use vnpu_workloads::compile::{compile, CompileOptions, Residency};
use vnpu_workloads::models;

const ITERATIONS: u32 = 3;
const CORES: u32 = 4;

fn main() {
    let cfg = SocConfig::fpga();
    let model = models::resnet50();
    let opts = CompileOptions {
        iterations: ITERATIONS,
        residency: Residency::Streamed,
        ..Default::default()
    };
    let out = compile(&model, CORES, &cfg, &opts).expect("compile");
    let mut machine = Machine::new(cfg.clone());
    machine.enable_mem_trace();
    let tenant = machine.add_tenant("resnet50");
    for (c, p) in out.programs.iter().enumerate() {
        machine.bind(c as u32, tenant, c as u32, p.clone()).expect("bind");
    }
    let report = machine.run().expect("run");
    let trace = report.mem_trace();
    assert!(!trace.is_empty(), "mem trace must be recorded");

    // Split per core, then per iteration (address resets mark boundaries).
    let mut rows = Vec::new();
    for core in 0..CORES {
        let accesses: Vec<(u64, u64)> = trace
            .iter()
            .filter(|(_, c, _)| *c == core)
            .map(|(t, _, va)| (*t, *va))
            .collect();
        if accesses.is_empty() {
            continue;
        }
        // Iteration boundaries: where the address strictly drops.
        let mut iterations: Vec<Vec<u64>> = vec![Vec::new()];
        for w in accesses.windows(2) {
            iterations.last_mut().unwrap().push(w[0].1);
            if w[1].1 < w[0].1 {
                iterations.push(Vec::new());
            }
        }
        iterations.last_mut().unwrap().push(accesses.last().unwrap().1);

        // Pattern-2: monotonic within each iteration.
        let monotonic = iterations
            .iter()
            .all(|it| it.windows(2).all(|w| w[1] >= w[0]));
        // Pattern-3: identical sequences across iterations.
        let repeating = iterations.windows(2).all(|w| w[0] == w[1]);
        rows.push(vec![
            format!("core {core}"),
            accesses.len().to_string(),
            iterations.len().to_string(),
            format!("{:#x}", iterations[0].first().copied().unwrap_or(0)),
            format!("{:#x}", iterations[0].last().copied().unwrap_or(0)),
            monotonic.to_string(),
            repeating.to_string(),
        ]);
        assert!(monotonic, "core {core}: Pattern-2 must hold");
        assert!(repeating, "core {core}: Pattern-3 must hold");
        assert_eq!(iterations.len() as u32, ITERATIONS, "one sweep per iteration");
    }
    print_table(
        "Figure 6: per-core global-memory access trace (ResNet-50, 3 iterations)",
        &[
            "core",
            "accesses",
            "sweeps",
            "first VA",
            "last VA",
            "monotonic",
            "repeating",
        ],
        &rows,
    );
    println!(
        "\nEvery core sweeps its weight range monotonically within an iteration and \
         repeats it across iterations — the patterns vChunk exploits (§4.2)."
    );
}
