//! Thin bench entry point; the scenario lives in
//! [`vnpu_bench::figs::fault_recovery`] so `tests/benches_smoke.rs`
//! can run it at tiny scale under `cargo test`. Pass `-- --quick` for
//! the same fast mode here.

fn main() {
    vnpu_bench::figs::fault_recovery::run(vnpu_bench::harness::quick_from_env());
}
