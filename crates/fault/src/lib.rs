//! **vnpu_fault** — seeded hardware-fault injection and recovery policy
//! for the vNPU serving stack.
//!
//! A production fleet serving millions of users must treat core and
//! NoC-link failures as first-class events, not as impossibilities the
//! topology-aware abstraction assumes away. This crate supplies the three
//! pieces the serving runtime composes into a fault → detect → recover
//! lifecycle:
//!
//! * [`FaultPlan`] — a deterministic, seedable schedule of
//!   [`FaultEvent`]s (core or undirected-link failures, each with an
//!   onset tick and an optional repair tick). The plan is pure data: the
//!   serving runtime injects each event into the chip's
//!   [`vnpu_sim::Machine`] and masks the resource in the hypervisor at
//!   the onset tick, and undoes both at the repair tick.
//! * [`FaultDetector`] — maps a failed resource to the tenants it
//!   affects via the hypervisor's live ownership state (the routing
//!   tables and core mappings the virtualization layer already
//!   maintains). Detection is conservative for link faults: any tenant
//!   owning an endpoint of a dead link is treated as affected, since its
//!   NoC traffic terminates in the failed router.
//! * [`RecoveryPolicy`] — how the hypervisor responds: remap-under-pin
//!   around the dead resource where topology edit distance allows, else
//!   an *emergency drain* of only the affected tenants (an unplanned,
//!   unbudgeted variant of the maintenance-drain pipeline), declaring a
//!   tenant lost after [`RecoveryPolicy::max_recovery_ticks`] ticks
//!   without a landing spot.
//!
//! Everything is deterministic: the same seed reproduces the same fault
//! schedule, and the recovery path runs through the same transactional
//! plan machinery as every other placement mutation — so serving reports
//! stay byte-identical across runs and worker-pool widths even with
//! faults in flight.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vnpu::{Hypervisor, VmId};
use vnpu_topo::mapping::Strategy;
use vnpu_topo::{NodeId, Topology};

/// Which hardware resource failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A physical core died: nothing can be bound to it and every tenant
    /// mapping it loses compute.
    Core {
        /// The failed physical core.
        core: u32,
    },
    /// An undirected NoC link died: packets crossing it (either
    /// direction) fault, and both endpoint routers are suspect.
    Link {
        /// One endpoint core of the failed link.
        a: u32,
        /// The other endpoint core.
        b: u32,
    },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Core { core } => write!(f, "core {core}"),
            FaultKind::Link { a, b } => write!(f, "link {a}\u{2013}{b}"),
        }
    }
}

/// One scheduled hardware failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// The chip the failure lands on.
    pub chip: usize,
    /// What fails.
    pub kind: FaultKind,
    /// The serving tick at which the failure manifests.
    pub onset_tick: u64,
    /// The tick at which field service repairs the resource (`None` =
    /// permanently dead for the run).
    pub repair_tick: Option<u64>,
}

/// A deterministic schedule of hardware failures, injected into the
/// serving loop tick by tick. Build one explicitly with
/// [`FaultPlan::core_fault`] / [`FaultPlan::link_fault`] /
/// [`FaultPlan::row_outage`], or sample one with [`FaultPlan::seeded`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (no failures — the healthy-fleet baseline).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Schedules one core failure.
    pub fn core_fault(mut self, chip: usize, core: u32, onset: u64, repair: Option<u64>) -> Self {
        self.events.push(FaultEvent {
            chip,
            kind: FaultKind::Core { core },
            onset_tick: onset,
            repair_tick: repair.filter(|&r| r > onset),
        });
        self
    }

    /// Schedules one undirected-link failure.
    pub fn link_fault(
        mut self,
        chip: usize,
        a: u32,
        b: u32,
        onset: u64,
        repair: Option<u64>,
    ) -> Self {
        self.events.push(FaultEvent {
            chip,
            kind: FaultKind::Link { a, b },
            onset_tick: onset,
            repair_tick: repair.filter(|&r| r > onset),
        });
        self
    }

    /// Schedules the headline scenario: a chip loses one whole mesh row
    /// of cores at once (cores `row*mesh_width .. (row+1)*mesh_width`) —
    /// e.g. a shared power rail or row driver failing.
    pub fn row_outage(
        mut self,
        chip: usize,
        mesh_width: u32,
        row: u32,
        onset: u64,
        repair: Option<u64>,
    ) -> Self {
        for core in row * mesh_width..(row + 1) * mesh_width {
            self = self.core_fault(chip, core, onset, repair);
        }
        self
    }

    /// Samples a deterministic random plan: `count` failures spread
    /// uniformly over `chips` (each described by its core count) and over
    /// ticks `1..horizon`, with every failure repaired `repair_after`
    /// ticks later (`None` = permanent). The same seed always produces
    /// the same plan.
    pub fn seeded(
        seed: u64,
        chips: &[u32],
        count: usize,
        horizon: u64,
        repair_after: Option<u64>,
    ) -> Self {
        let mut plan = FaultPlan::new();
        if chips.is_empty() || horizon < 2 {
            return plan;
        }
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = || {
            state = splitmix64(state);
            state
        };
        for _ in 0..count {
            let chip = (next() % chips.len() as u64) as usize;
            let cores = chips[chip].max(1);
            let core = (next() % u64::from(cores)) as u32;
            let onset = 1 + next() % (horizon - 1);
            plan = plan.core_fault(chip, core, onset, repair_after.map(|r| onset + r.max(1)));
        }
        plan
    }

    /// Every scheduled event, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Events whose failure manifests at `tick`, in insertion order.
    pub fn onsets_at(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events.iter().filter(move |e| e.onset_tick == tick)
    }

    /// Events whose repair lands at `tick`, in insertion order.
    pub fn repairs_at(&self, tick: u64) -> impl Iterator<Item = &FaultEvent> {
        self.events
            .iter()
            .filter(move |e| e.repair_tick == Some(tick))
    }

    /// The last tick at which anything happens (0 for an empty plan).
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|e| e.repair_tick.unwrap_or(e.onset_tick))
            .max()
            .unwrap_or(0)
    }
}

/// The canonical splitmix64 step — the same generator the arrival
/// streams use, re-implemented locally so the fault crate stays at the
/// bottom of the dependency DAG.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether any dimension-order route between two of `nodes` crosses the
/// undirected link `a`–`b`. The machine routes X-then-Y, so a tenant's
/// NoC traffic can transit links between cores it does not own — a
/// route-aware check is the only sound link-fault detector.
fn routes_cross_link(topo: &Topology, nodes: &[NodeId], a: u32, b: u32) -> bool {
    nodes.iter().any(|&s| {
        nodes.iter().any(|&d| {
            s != d
                && vnpu_topo::route::dor_path(topo, s, d).is_ok_and(|p| {
                    p.windows(2)
                        .any(|w| (w[0].0 == a && w[1].0 == b) || (w[0].0 == b && w[1].0 == a))
                })
        })
    })
}

/// Maps a failed resource to the tenants it affects, via the
/// hypervisor's live ownership state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultDetector;

impl FaultDetector {
    /// The tenants a failure affects, in ascending [`VmId`] order (the
    /// deterministic recovery order).
    ///
    /// * A core fault affects every tenant whose mapping includes the
    ///   core.
    /// * A link fault affects every tenant owning either endpoint core
    ///   (its NoC traffic terminates in the failed link's routers) *or*
    ///   whose dimension-order routes transit the link — routes are not
    ///   confined to the cores a tenant owns.
    pub fn affected_tenants(hv: &Hypervisor, kind: &FaultKind) -> Vec<VmId> {
        let topo = hv.topology();
        let touches = |nodes: &[NodeId]| match *kind {
            FaultKind::Core { core } => nodes.contains(&NodeId(core)),
            FaultKind::Link { a, b } => {
                nodes.contains(&NodeId(a))
                    || nodes.contains(&NodeId(b))
                    || routes_cross_link(topo, nodes, a, b)
            }
        };
        let mut affected: Vec<VmId> = hv
            .vnpus()
            .filter(|(_, v)| touches(v.mapping().phys_nodes()))
            .map(|(&vm, _)| vm)
            .collect();
        affected.sort_unstable();
        affected
    }

    /// Whether one tenant still touches *any* currently-faulted resource
    /// on its chip — the recovery loop's convergence test. A tenant that
    /// stopped being affected without moving (its fault was repaired, or
    /// it was detected conservatively off a link endpoint that healed)
    /// needs no recovery action at all.
    pub fn tenant_affected(hv: &Hypervisor, vm: VmId) -> bool {
        let Ok(vnpu) = hv.vnpu(vm) else {
            return false;
        };
        let nodes = vnpu.mapping().phys_nodes();
        let topo = hv.topology();
        hv.faulted_cores()
            .iter()
            .any(|&c| nodes.contains(&NodeId(c)))
            || hv.faulted_links().any(|(a, b)| {
                nodes.contains(&NodeId(a))
                    || nodes.contains(&NodeId(b))
                    || routes_cross_link(topo, nodes, a, b)
            })
    }
}

/// How the hypervisor responds to a detected failure.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Mapping strategy for the remap-under-pin attempt (the affected
    /// tenant's virtual topology is re-placed against the free region
    /// plus its own *healthy* cores).
    pub remap_strategy: Strategy,
    /// Ticks an affected tenant may stay pending (no remap window, no
    /// other chip with room) before it is declared lost. Bounds MTTR.
    pub max_recovery_ticks: u64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            remap_strategy: Strategy::similar_topology().threads(1).candidate_cap(200),
            max_recovery_ticks: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnpu::VnpuRequest;
    use vnpu_sim::SocConfig;

    #[test]
    fn plan_builders_schedule_and_query() {
        let plan = FaultPlan::new()
            .core_fault(0, 7, 10, Some(20))
            .link_fault(1, 0, 1, 12, None)
            .row_outage(0, 6, 2, 15, Some(30));
        assert_eq!(plan.len(), 8, "a 6-wide row is 6 core faults");
        assert_eq!(plan.onsets_at(10).count(), 1);
        assert_eq!(plan.onsets_at(15).count(), 6);
        assert_eq!(plan.repairs_at(20).count(), 1);
        assert_eq!(plan.repairs_at(30).count(), 6);
        assert_eq!(plan.onsets_at(11).count(), 0);
        assert_eq!(plan.horizon(), 30);
        let row_cores: Vec<u32> = plan
            .onsets_at(15)
            .map(|e| match e.kind {
                FaultKind::Core { core } => core,
                FaultKind::Link { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(row_cores, vec![12, 13, 14, 15, 16, 17]);
    }

    #[test]
    fn repair_before_onset_is_dropped() {
        let plan = FaultPlan::new().core_fault(0, 0, 10, Some(5));
        assert_eq!(plan.events()[0].repair_tick, None);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_range() {
        let a = FaultPlan::seeded(42, &[36, 16], 10, 100, Some(20));
        let b = FaultPlan::seeded(42, &[36, 16], 10, 100, Some(20));
        assert_eq!(a, b, "same seed, same plan");
        assert_ne!(a, FaultPlan::seeded(43, &[36, 16], 10, 100, Some(20)));
        assert_eq!(a.len(), 10);
        for e in a.events() {
            assert!(e.chip < 2);
            let FaultKind::Core { core } = e.kind else {
                panic!("seeded plans are core faults");
            };
            assert!(core < [36, 16][e.chip]);
            assert!(e.onset_tick >= 1 && e.onset_tick < 100);
            assert_eq!(e.repair_tick, Some(e.onset_tick + 20));
        }
        assert!(FaultPlan::seeded(1, &[], 5, 100, None).is_empty());
    }

    #[test]
    fn detector_names_affected_tenants_in_vm_order() {
        let mut hv = Hypervisor::new(SocConfig::sim());
        // 6x6 mesh: a 2x2 tenant lands on the first exact-match window.
        let a = hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let b = hv.create_vnpu(VnpuRequest::cores(1)).unwrap();
        let a_core = hv.vnpu(a).unwrap().mapping().phys_nodes()[0].0;
        let b_core = hv.vnpu(b).unwrap().mapping().phys_nodes()[0].0;
        assert_ne!(a_core, b_core);
        let hit = FaultDetector::affected_tenants(&hv, &FaultKind::Core { core: a_core });
        assert_eq!(hit, vec![a]);
        let hit = FaultDetector::affected_tenants(&hv, &FaultKind::Core { core: b_core });
        assert_eq!(hit, vec![b]);
        // A link fault touching one of a's cores affects a only.
        let second = hv.vnpu(a).unwrap().mapping().phys_nodes()[1].0;
        let hit = FaultDetector::affected_tenants(
            &hv,
            &FaultKind::Link {
                a: a_core,
                b: second,
            },
        );
        assert_eq!(hit, vec![a]);
        // A fault on an unowned core affects nobody.
        let free = (0..36)
            .find(|&c| {
                hv.vnpus()
                    .all(|(_, v)| !v.mapping().phys_nodes().contains(&NodeId(c)))
            })
            .unwrap();
        assert!(FaultDetector::affected_tenants(&hv, &FaultKind::Core { core: free }).is_empty());
    }

    #[test]
    fn recovery_policy_default_is_bounded() {
        let p = RecoveryPolicy::default();
        assert!(p.max_recovery_ticks > 0);
    }
}
