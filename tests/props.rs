//! Property-based invariants across the workspace, run on the in-repo
//! harness (`vnpu_mem::proptest_lite`) so the suite needs no external
//! crates. Each property keeps the invariant of the original
//! proptest-based suite; the first seven run 64 cases, the end-to-end
//! compile-and-run property 16 (it simulates whole pipelines per case).

use vnpu::admission::{AdmissionPolicy, Fifo, RetryAfterFree, SmallestFirst};
use vnpu::{Hypervisor, VmId, VnpuRequest};
use vnpu_mem::buddy::BuddyAllocator;
use vnpu_mem::page::{PageTable, PageTranslator};
use vnpu_mem::proptest_lite::{check, range, vec_of};
use vnpu_mem::rtt::{RangeTranslationTable, RangeTranslator, RttEntry};
use vnpu_mem::{prop_assert, prop_assert_eq};
use vnpu_mem::{Perm, PhysAddr, Translate, TranslationCosts, VirtAddr};
use vnpu_topo::mapping::{Mapper, Strategy};
use vnpu_topo::{canonical, enumerate, ged, NodeId, Topology, UniformCosts};

/// Buddy allocations never overlap and frees fully coalesce.
#[test]
fn buddy_no_overlap_and_full_coalesce() {
    check(
        "buddy_no_overlap_and_full_coalesce",
        64,
        vec_of(range(1u64..200_000), 1..24),
        |sizes| {
            let total = 16 << 20;
            let mut b = BuddyAllocator::new(PhysAddr(0), total, 4096);
            let mut live = Vec::new();
            for &s in sizes {
                if let Ok(block) = b.alloc(s) {
                    live.push(block);
                }
            }
            let mut sorted = live.clone();
            sorted.sort_by_key(|blk| blk.addr);
            for w in sorted.windows(2) {
                prop_assert!(w[0].addr.value() + w[0].size <= w[1].addr.value());
            }
            for blk in &live {
                b.free(blk.addr).expect("free succeeds");
            }
            prop_assert_eq!(b.free_bytes(), total);
            prop_assert_eq!(b.largest_free_block(), total);
            Ok(())
        },
    );
}

/// Range translation agrees with a linear reference map on every mapped
/// address, and faults exactly on unmapped ones.
#[test]
fn rtt_matches_reference() {
    check(
        "rtt_matches_reference",
        64,
        (
            vec_of((range(0u64..64), range(1u64..8)), 1..12),
            vec_of(range(0u64..1 << 20), 1..64),
        ),
        |(ranges, probes)| {
            // Build non-overlapping ranges from (slot, pages) pairs.
            let mut entries = Vec::new();
            let mut next_va = 0x1_0000u64;
            let mut reference: Vec<(u64, u64, u64)> = Vec::new(); // (va, size, pa)
            for (i, (gap, pages)) in ranges.iter().enumerate() {
                let va = next_va + gap * 0x1000;
                let size = pages * 0x1000;
                let pa = 0x10_0000_0000 + (i as u64) * 0x100_0000;
                entries.push(RttEntry::new(VirtAddr(va), PhysAddr(pa), size, Perm::RW));
                reference.push((va, size, pa));
                next_va = va + size;
            }
            let rtt = RangeTranslationTable::new(entries).expect("valid ranges");
            let mut tr = RangeTranslator::new(rtt, 4, TranslationCosts::default());
            for &p in probes {
                let va = 0x1_0000 + p;
                let expect = reference
                    .iter()
                    .find(|(rva, size, _)| va >= *rva && va < rva + size)
                    .map(|(rva, _, pa)| pa + (va - rva));
                // Use len=1 so range-straddling cannot trigger.
                match (tr.translate(VirtAddr(va), 1, Perm::R), expect) {
                    (Ok(t), Some(pa)) => prop_assert_eq!(t.pa.value(), pa),
                    (Err(_), None) => {}
                    (Ok(t), None) => prop_assert!(false, "phantom translation {:?}", t),
                    (Err(e), Some(_)) => prop_assert!(false, "spurious fault {}", e),
                }
            }
            Ok(())
        },
    );
}

/// Page and range translators agree wherever both are defined.
#[test]
fn page_and_range_agree() {
    check(
        "page_and_range_agree",
        64,
        (
            vec_of(range(1u64..16), 1..6),
            vec_of(range(0u64..1 << 16), 1..32),
        ),
        |(blocks, offsets)| {
            let mut entries = Vec::new();
            let mut va = 0x10_0000u64;
            for (i, &pages) in blocks.iter().enumerate() {
                let size = pages * 0x1000;
                entries.push(RttEntry::new(
                    VirtAddr(va),
                    PhysAddr(0x8000_0000 + (i as u64) * 0x10_0000),
                    size,
                    Perm::RW,
                ));
                va += size;
            }
            let span: u64 = entries.iter().map(|e| e.size).sum();
            let rtt = RangeTranslationTable::new(entries.clone()).expect("ranges");
            let mut range_tr = RangeTranslator::new(rtt, 4, TranslationCosts::default());
            let mut pt = PageTable::new(4096);
            for e in &entries {
                pt.map_range(e.va, e.pa, e.size, e.perm).expect("map");
            }
            let mut page = PageTranslator::new(pt, 8, TranslationCosts::default());
            for &off in offsets {
                let probe = VirtAddr(0x10_0000 + off % span);
                let a = range_tr.translate(probe, 1, Perm::R);
                let b = page.translate(probe, 1, Perm::R);
                match (a, b) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x.pa, y.pa),
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "translators disagree: {:?}", other),
                }
            }
            Ok(())
        },
    );
}

/// Connected-subgraph enumeration yields connected, duplicate-free,
/// right-sized candidates drawn from the free set.
#[test]
fn enumeration_soundness() {
    check(
        "enumeration_soundness",
        64,
        (
            range(2u32..5),
            range(2u32..4),
            range(2usize..6),
            range(0u32..256),
        ),
        |&(w, h, k, taken_mask)| {
            let t = Topology::mesh2d(w, h);
            let free: Vec<NodeId> = t
                .nodes()
                .filter(|n| taken_mask & (1 << (n.0 % 8)) == 0 || n.0 >= 8)
                .collect();
            let cands = enumerate::connected_candidates(&t, &free, k, 500);
            let mut seen = std::collections::HashSet::new();
            for c in &cands {
                prop_assert_eq!(c.len(), k);
                prop_assert!(t.is_connected_subset(c));
                prop_assert!(c.iter().all(|n| free.contains(n)));
                prop_assert!(seen.insert(c.clone()));
            }
            Ok(())
        },
    );
}

/// GED is zero iff isomorphic (small graphs), and the bipartite
/// heuristic never reports below the exact distance.
#[test]
fn ged_axioms() {
    check(
        "ged_axioms",
        64,
        (
            vec_of((range(0u32..5), range(0u32..5)), 0..8),
            vec_of((range(0u32..5), range(0u32..5)), 0..8),
        ),
        |(edges_a, edges_b)| {
            let build = |edges: &[(u32, u32)]| {
                let mut t = Topology::empty(5);
                for &(a, b) in edges {
                    if a != b {
                        let _ = t.add_edge(NodeId(a), NodeId(b));
                    }
                }
                t
            };
            let a = build(edges_a);
            let b = build(edges_b);
            let exact = ged::ged_exact(&a, &b, &UniformCosts);
            let approx = ged::ged_bipartite(&a, &b, &UniformCosts);
            prop_assert!(approx.cost >= exact.cost);
            let iso = canonical::are_isomorphic(&a, &b);
            prop_assert_eq!(exact.cost == 0, iso, "GED=0 iff isomorphic");
            // Symmetry for uniform costs.
            let rev = ged::ged_exact(&b, &a, &UniformCosts);
            prop_assert_eq!(exact.cost, rev.cost);
            Ok(())
        },
    );
}

/// Any successful mapping is injective, right-sized, inside the free
/// set, and connected unless fragmentation was allowed.
#[test]
fn mapping_invariants() {
    check(
        "mapping_invariants",
        64,
        (
            vec_of(range(0u32..25), 0..10),
            range(1u32..4),
            range(1u32..3),
        ),
        |(taken, req_w, req_h)| {
            let phys = Topology::mesh2d(5, 5);
            let free: Vec<NodeId> = phys.nodes().filter(|n| !taken.contains(&n.0)).collect();
            let req = Topology::mesh2d(*req_w, *req_h);
            let mapper = Mapper::new(&phys);
            let strategy = Strategy::similar_topology().threads(1).candidate_cap(500);
            if let Ok(m) = mapper.map(&free, &req, &strategy) {
                prop_assert_eq!(m.phys_nodes().len(), req.node_count());
                let mut seen = std::collections::HashSet::new();
                for n in m.phys_nodes() {
                    prop_assert!(free.contains(n));
                    prop_assert!(seen.insert(*n));
                }
                prop_assert!(m.is_connected());
            }
            Ok(())
        },
    );
}

/// WL canonical keys are isomorphism invariants under relabeling.
#[test]
fn canonical_key_relabel_invariant() {
    check(
        "canonical_key_relabel_invariant",
        64,
        (
            vec_of((range(0u32..6), range(0u32..6)), 1..10),
            range(0u64..1000),
        ),
        |(edges, perm_seed)| {
            let mut a = Topology::empty(6);
            for &(x, y) in edges {
                if x != y {
                    let _ = a.add_edge(NodeId(x), NodeId(y));
                }
            }
            // Deterministic permutation from the seed.
            let mut perm: Vec<u32> = (0..6).collect();
            let mut s = *perm_seed;
            for i in (1..6usize).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (s >> 33) as usize % (i + 1);
                perm.swap(i, j);
            }
            let mut b = Topology::empty(6);
            for &(x, y) in edges {
                if x != y {
                    let _ = b.add_edge(NodeId(perm[x as usize]), NodeId(perm[y as usize]));
                }
            }
            prop_assert_eq!(canonical::canonical_key(&a), canonical::canonical_key(&b));
            Ok(())
        },
    );
}

/// Compiled workloads always pair sends with receives and the machine
/// runs them to completion deterministically.
#[test]
fn compile_and_run_arbitrary_chains() {
    use vnpu_sim::isa::Kernel;
    use vnpu_sim::machine::Machine;
    use vnpu_sim::SocConfig;
    use vnpu_workloads::compile::{compile, CompileOptions};
    use vnpu_workloads::graph::{GraphBuilder, LayerKind};

    check(
        "compile_and_run_arbitrary_chains",
        16,
        (vec_of(range(16u32..128), 2..8), range(2u32..5)),
        |(layer_sizes, cores)| {
            let mut b = GraphBuilder::new();
            for (i, &s) in layer_sizes.iter().enumerate() {
                b.chain(
                    format!("l{i}"),
                    LayerKind::Fc,
                    Kernel::Matmul { m: s, k: s, n: s },
                    u64::from(s) * u64::from(s),
                    u64::from(s) * u64::from(s),
                );
            }
            let g = b.build("chain").expect("graph");
            let cfg = SocConfig::fpga();
            let out = compile(
                &g,
                *cores,
                &cfg,
                &CompileOptions {
                    iterations: 3,
                    ..Default::default()
                },
            )
            .expect("compile");
            let run = || {
                let mut m = Machine::new(cfg.clone());
                let t = m.add_tenant("chain");
                for (c, p) in out.programs.iter().enumerate() {
                    m.bind(c as u32, t, c as u32, p.clone()).expect("bind");
                }
                m.run().expect("run").makespan()
            };
            let a = run();
            prop_assert!(a > 0);
            prop_assert_eq!(a, run(), "determinism");
            Ok(())
        },
    );
}

/// Buddy-allocator + hypervisor churn invariant: any random interleaving
/// of vNPU creates and destroys (mixed shapes, sizes and admission
/// policies) ends — after destroying the survivors — with every core
/// free, all HBM returned, and the buddy fully coalesced back into its
/// maximal block. No cores or memory may leak through any interleaving.
#[test]
fn hypervisor_churn_leaves_no_residue() {
    use vnpu_sim::SocConfig;
    check(
        "hypervisor_churn_leaves_no_residue",
        64,
        (
            vec_of((range(0u32..8), range(0u32..4)), 4..40),
            range(0u32..3),
        ),
        |(ops, policy_pick)| {
            let hbm = 2 << 30;
            let mut hv = Hypervisor::with_hbm_bytes(SocConfig::sim(), hbm);
            let policy: std::sync::Arc<dyn AdmissionPolicy> = match policy_pick {
                0 => std::sync::Arc::new(Fifo),
                1 => std::sync::Arc::new(SmallestFirst),
                _ => std::sync::Arc::new(RetryAfterFree),
            };
            hv.set_admission_policy_obj(policy);
            let total_cores = hv.config().core_count();
            let free_hbm_at_start = hv.hbm_free_bytes();
            let mut live: Vec<VmId> = Vec::new();
            for &(shape, action) in ops {
                if action == 0 && !live.is_empty() {
                    // Destroy the oldest live vNPU (deterministic pick).
                    let vm = live.remove(0);
                    hv.destroy_vnpu(vm).expect("destroy live vnpu");
                    continue;
                }
                let req = match shape {
                    0 => VnpuRequest::mesh(1, 1).mem_bytes(8 << 20),
                    1 => VnpuRequest::mesh(2, 2).mem_bytes(48 << 20),
                    2 => VnpuRequest::mesh(2, 3).mem_bytes(96 << 20),
                    3 => VnpuRequest::mesh(3, 3).mem_bytes(160 << 20),
                    4 => VnpuRequest::cores(5).mem_bytes(24 << 20),
                    5 => VnpuRequest::cores(7).mem_bytes(72 << 20),
                    6 => VnpuRequest::mesh(4, 2).mem_bytes(33 << 20),
                    _ => VnpuRequest::mesh(1, 3).mem_bytes(130 << 20),
                };
                // Placement may legitimately fail under fragmentation;
                // the invariant is that failures change nothing and
                // successes are fully reversible.
                if let Ok(vm) = hv.create_vnpu(req) {
                    live.push(vm);
                }
                // Bookkeeping sanity every step: used + free == total.
                prop_assert!(hv.free_core_count() <= total_cores);
                prop_assert!(hv.hbm_free_bytes() <= free_hbm_at_start);
            }
            for vm in live {
                hv.destroy_vnpu(vm).expect("drain");
            }
            prop_assert_eq!(hv.free_core_count(), total_cores, "no leaked cores");
            prop_assert_eq!(hv.hbm_free_bytes(), free_hbm_at_start, "no leaked HBM");
            let frag = hv.fragmentation();
            prop_assert_eq!(
                frag.hbm_largest_free_block,
                free_hbm_at_start,
                "buddy must fully coalesce"
            );
            prop_assert_eq!(frag.free_components, 1, "free region is whole again");
            Ok(())
        },
    );
}

/// Transactional-plan churn invariant: any random interleaving of
/// creates, destroys, core migrations and memory compactions — all
/// driven through `Hypervisor::plan`/`commit` — leaks nothing and ends
/// fully coalesced at quiescence, and every deliberately staled commit
/// leaves the hypervisor byte-identical (`state_digest` compare).
#[test]
fn placement_plan_churn_is_transactional_and_leak_free() {
    use vnpu::plan::{MigrationTarget, PlanOp};
    use vnpu::VnpuError;
    use vnpu_sim::SocConfig;
    check(
        "placement_plan_churn_is_transactional_and_leak_free",
        48,
        vec_of((range(0u32..8), range(0u32..5)), 4..32),
        |ops| {
            let hbm = 2 << 30;
            let mut hv = Hypervisor::with_hbm_bytes(SocConfig::sim(), hbm);
            let total_cores = hv.config().core_count();
            let free_hbm_at_start = hv.hbm_free_bytes();
            let remap = || MigrationTarget::Remap(Strategy::similar_topology().threads(1));
            let mut live: Vec<VmId> = Vec::new();
            for &(shape, action) in ops {
                match action {
                    0 if !live.is_empty() => {
                        // Destroy the oldest tenant, transactionally.
                        let vm = live.remove(0);
                        let txn = hv.plan(&[PlanOp::Destroy(vm)]).expect("plan destroy");
                        let receipt = hv.commit(&txn).expect("commit destroy");
                        prop_assert_eq!(receipt.destroyed.len(), 1);
                    }
                    1 if !live.is_empty() => {
                        // Migrate the oldest tenant's cores under pin.
                        let vm = live[0];
                        let txn = hv
                            .plan(&[PlanOp::Migrate { vm, to: remap() }])
                            .expect("remap-under-pin always has its own spot");
                        hv.commit(&txn).expect("commit migrate");
                    }
                    2 if !live.is_empty() => {
                        // Compact the oldest tenant's HBM blocks.
                        let vm = live[0];
                        let txn = hv
                            .plan(&[PlanOp::Migrate {
                                vm,
                                to: MigrationTarget::CompactMemory,
                            }])
                            .expect("compaction re-allocates freed space");
                        hv.commit(&txn).expect("commit compaction");
                    }
                    _ => {
                        let req = match shape {
                            0 => VnpuRequest::mesh(1, 1).mem_bytes(8 << 20),
                            1 => VnpuRequest::mesh(2, 2).mem_bytes(48 << 20),
                            2 => VnpuRequest::mesh(2, 3).mem_bytes(96 << 20),
                            3 => VnpuRequest::mesh(3, 3).mem_bytes(160 << 20),
                            4 => VnpuRequest::cores(5).mem_bytes(24 << 20),
                            5 => VnpuRequest::cores(7).mem_bytes(72 << 20),
                            6 => VnpuRequest::mesh(4, 2).mem_bytes(33 << 20),
                            _ => VnpuRequest::mesh(1, 3).mem_bytes(130 << 20),
                        };
                        // Placement may legitimately fail under
                        // fragmentation; planned failures change nothing.
                        let Ok(txn) = hv.plan(&[PlanOp::Create(req.clone())]) else {
                            continue;
                        };
                        // Stale the plan on purpose: the failed commit
                        // must leave the hypervisor byte-identical.
                        hv.invalidate_plans();
                        let digest = hv.state_digest();
                        prop_assert!(
                            matches!(hv.commit(&txn), Err(VnpuError::StalePlan { .. })),
                            "a staled plan must be rejected"
                        );
                        prop_assert_eq!(
                            hv.state_digest(),
                            digest,
                            "failed commit must be byte-identical"
                        );
                        // Re-plan against the new generation and land it.
                        let txn = hv.plan(&[PlanOp::Create(req)]).expect("replan");
                        let receipt = hv.commit(&txn).expect("commit create");
                        live.push(receipt.created[0]);
                    }
                }
                prop_assert!(hv.free_core_count() <= total_cores);
                prop_assert!(hv.hbm_free_bytes() <= free_hbm_at_start);
            }
            // Drain every survivor in one transaction.
            if !live.is_empty() {
                let drain: Vec<PlanOp> = live.drain(..).map(PlanOp::Destroy).collect();
                let txn = hv.plan(&drain).expect("plan drain");
                hv.commit(&txn).expect("commit drain");
            }
            prop_assert_eq!(hv.free_core_count(), total_cores, "no leaked cores");
            prop_assert_eq!(hv.hbm_free_bytes(), free_hbm_at_start, "no leaked HBM");
            let frag = hv.fragmentation();
            prop_assert_eq!(
                frag.hbm_largest_free_block,
                free_hbm_at_start,
                "buddy must fully coalesce at quiescence"
            );
            prop_assert_eq!(frag.free_components, 1, "free region is whole again");
            Ok(())
        },
    );
}

/// The `Aging` policy's effective-size discount saturates at a floor of
/// one core: for *any* combination of request size, attempt count and
/// per-attempt boost — including pathological ones whose product
/// saturates `u32` — the attempt order equals sorting by
/// `(max(1, cores − attempts × boost), arrival)`, effective sizes never
/// reach zero, and an aged request never sorts strictly ahead of an
/// older request of the minimal size.
#[test]
fn aging_effective_size_floors_at_one_core() {
    use vnpu::admission::{Aging, PendingView, RequestId};
    check(
        "aging_effective_size_floors_at_one_core",
        64,
        (
            vec_of((range(1u32..64), range(0u32..u32::MAX)), 1..12),
            range(0u32..u32::MAX),
        ),
        |(reqs, boost)| {
            let aging = Aging {
                boost_per_attempt: *boost,
                reserve_after_attempts: 8,
            };
            let pending: Vec<PendingView> = reqs
                .iter()
                .enumerate()
                .map(|(i, &(cores, attempts))| PendingView {
                    id: RequestId(i as u64),
                    cores,
                    memory_bytes: 1,
                    temporal_sharing: false,
                    attempts,
                    last_failure_at_free_event: None,
                })
                .collect();
            for p in &pending {
                let eff = aging.effective_cores(p);
                prop_assert!(eff >= 1, "the discount floors at one core");
                prop_assert!(eff <= p.cores.max(1), "discounts never inflate");
            }
            let order = aging.attempt_order(&pending, 0);
            let mut reference: Vec<(u32, RequestId)> = pending
                .iter()
                .map(|p| (aging.effective_cores(p), p.id))
                .collect();
            reference.sort();
            prop_assert_eq!(
                &order,
                &reference.iter().map(|&(_, id)| id).collect::<Vec<_>>(),
                "order is exactly the floored-discount sort"
            );
            // The floor's point: an aged giant may *tie* with, but never
            // overtake, an older minimal (1-core, fresh) request.
            for minimal in pending.iter().filter(|p| p.cores == 1 && p.attempts == 0) {
                let min_pos = order.iter().position(|id| *id == minimal.id).unwrap();
                for other in pending.iter().filter(|o| o.id < minimal.id) {
                    let other_pos = order.iter().position(|id| *id == other.id).unwrap();
                    // An older request may precede the minimal one only
                    // by tying at the 1-core floor (arrival order), never
                    // by discounting *below* it.
                    if other_pos < min_pos {
                        prop_assert_eq!(
                            aging.effective_cores(other),
                            1,
                            "only a floored tie may precede a minimal request"
                        );
                    }
                }
            }
            Ok(())
        },
    );
}

/// Differential test for the mapping cache: on any free set, a cache hit
/// must return a placement identical to the uncached
/// `Strategy::similar_topology` result (successes *and* failures), and
/// the second lookup must actually be a hit.
#[test]
fn mapping_cache_matches_uncached_similar_topology() {
    use vnpu_topo::cache::{FreeSet, MappingCache};
    check(
        "mapping_cache_matches_uncached_similar_topology",
        64,
        (vec_of(range(0u32..36), 0..24), range(0u32..5)),
        |(occupied, shape)| {
            let phys = Topology::mesh2d(6, 6);
            let mut free = FreeSet::all_free(36);
            for &c in occupied {
                free.occupy(NodeId(c));
            }
            let req = match shape {
                0 => Topology::mesh2d(2, 2),
                1 => Topology::mesh2d(2, 3),
                2 => Topology::mesh2d(3, 3),
                3 => Topology::line(4),
                _ => Topology::line(6),
            };
            let strategy = Strategy::similar_topology().threads(1).candidate_cap(300);
            let mapper = Mapper::new(&phys);
            let uncached = mapper.map_in(&free, &req, &strategy);
            let mut cache = MappingCache::default();
            let cold = mapper.map_cached(&free, &req, &strategy, &mut cache);
            let hot = mapper.map_cached(&free, &req, &strategy, &mut cache);
            prop_assert_eq!(&cold, &uncached, "cold pass equals uncached");
            prop_assert_eq!(&hot, &uncached, "cache hit equals uncached");
            prop_assert_eq!(cache.stats().hits, 1, "second lookup must hit");
            if let Ok(m) = &hot {
                // Hit placements must still be valid for this free set.
                let mut seen = std::collections::HashSet::new();
                for n in m.phys_nodes() {
                    prop_assert!(free.contains(*n), "placement uses only free cores");
                    prop_assert!(seen.insert(*n), "placement is injective");
                }
            }
            Ok(())
        },
    );
}

/// The parallel fleet tick is deterministic by protocol, not by luck: the
/// same seeded cluster churn — heterogeneous chips, defrag on, audited —
/// must produce a byte-identical `ServeReport` JSON at every worker-pool
/// width (modulo the report's own `workers` field) with zero fleet-audit
/// findings. Four full runtimes per case, so the case count stays small.
#[test]
fn parallel_tick_reports_are_byte_identical_across_workers() {
    use std::sync::Arc;
    use vnpu::cluster::LeastLoaded;
    use vnpu_serve::{ServeConfig, ServeRuntime};
    use vnpu_sim::SocConfig;
    check(
        "parallel_tick_reports_are_byte_identical_across_workers",
        4,
        range(0u64..1 << 32),
        |&seed| {
            let config_for = |workers: usize| {
                let small = SocConfig {
                    mesh_width: 4,
                    mesh_height: 4,
                    ..SocConfig::sim()
                };
                let mut cfg =
                    ServeConfig::cluster(seed, 60, vec![SocConfig::sim(), small, SocConfig::sim()]);
                cfg.traffic.mean_interarrival_ticks = 1;
                cfg.traffic.candidate_cap = 120;
                cfg.placement = Arc::new(LeastLoaded);
                cfg.defrag = Some(Arc::new(vnpu::plan::GreedyDefrag::default()));
                cfg.defrag_interval = 7;
                cfg.audit = true;
                cfg.workers = workers;
                cfg
            };
            let normalize = |json: String| {
                json.lines()
                    .filter(|l| !l.contains("\"workers\""))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            let baseline = ServeRuntime::new(config_for(1))
                .run()
                .expect("sequential run completes");
            prop_assert_eq!(baseline.audit_findings, 0, "sequential run audits clean");
            let expected = normalize(baseline.to_json(usize::MAX));
            for workers in [2usize, 4, 8] {
                let report = ServeRuntime::new(config_for(workers))
                    .run()
                    .expect("parallel run completes");
                prop_assert_eq!(report.audit_findings, 0, "parallel run audits clean");
                prop_assert_eq!(
                    &normalize(report.to_json(usize::MAX)),
                    &expected,
                    "reports diverge across worker counts"
                );
            }
            Ok(())
        },
    );
}

/// Loom-lite schedule exploration: the same seeded 3-chip churn at
/// `workers = 4`, replayed under K = 8 permuted worker-pool schedules
/// with the conc probe installed, must produce byte-identical audited
/// `ServeReport` JSON, agreeing phase-digest chains, and zero `CONC-*`
/// findings from the lock traces. Nine full runtimes per case, so the
/// case count stays small.
#[test]
fn schedule_exploration_leaves_the_report_invariant() {
    use std::sync::Arc;
    use vnpu::cluster::LeastLoaded;
    use vnpu_conc::{analyze_all, compare_all, ConcMode, ScheduleSeed, TraceProbe};
    use vnpu_serve::{ServeConfig, ServeRuntime};
    use vnpu_sim::SocConfig;
    check(
        "schedule_exploration_leaves_the_report_invariant",
        2,
        range(0u64..1 << 32),
        |&seed| {
            let config_for = || {
                let small = SocConfig {
                    mesh_width: 4,
                    mesh_height: 4,
                    ..SocConfig::sim()
                };
                let mut cfg =
                    ServeConfig::cluster(seed, 60, vec![SocConfig::sim(), small, SocConfig::sim()]);
                cfg.traffic.mean_interarrival_ticks = 1;
                cfg.traffic.candidate_cap = 120;
                cfg.placement = Arc::new(LeastLoaded);
                cfg.defrag = Some(Arc::new(vnpu::plan::GreedyDefrag::default()));
                cfg.defrag_interval = 7;
                cfg.audit = true;
                cfg.workers = 4;
                cfg
            };
            let baseline = ServeRuntime::new(config_for())
                .run()
                .expect("unexplored run completes");
            prop_assert_eq!(baseline.audit_findings, 0, "unexplored run audits clean");
            let expected = baseline.to_json(usize::MAX);
            let mut traces = Vec::new();
            let mut chains = Vec::new();
            for k in 0u64..8 {
                let probe = Arc::new(TraceProbe::new());
                let mut cfg = config_for();
                let epochs = cfg.epochs;
                cfg.conc = ConcMode::exploring(probe.clone(), ScheduleSeed(k));
                // `run()` consumes the runtime; drive the loop by hand
                // so the digest chain is readable afterwards.
                let mut rt = ServeRuntime::new(cfg);
                while rt.tick_index() < epochs {
                    rt.step().expect("explored tick completes");
                }
                rt.drain().expect("explored drain completes");
                let report = rt.report();
                prop_assert_eq!(report.audit_findings, 0, "schedule {} must audit clean", k);
                prop_assert_eq!(
                    &report.to_json(usize::MAX),
                    &expected,
                    "schedule {} perturbed the report",
                    k
                );
                chains.push((
                    format!("schedule={k}"),
                    rt.digest_chain().expect("digests on").clone(),
                ));
                traces.push(probe.take_trace());
            }
            prop_assert_eq!(
                analyze_all(&traces),
                Vec::new(),
                "schedule exploration must surface zero CONC findings"
            );
            prop_assert_eq!(
                compare_all(&chains),
                Vec::new(),
                "phase digests must agree across explored schedules"
            );
            Ok(())
        },
    );
}

/// Satellite property: the fault/recovery phase keeps the parallel tick
/// deterministic. The same seeded 3-chip churn with a seeded mid-run
/// fault plan (core faults sampled over the whole fleet, each repaired
/// 9 ticks later) must produce byte-identical audited reports at
/// `workers = 1, 2, 4, 8` (modulo the report's own `workers` field),
/// leak nothing, converge its recovery queue, and leave a fleet the
/// invariant auditor signs off on.
#[test]
fn fault_churn_reports_are_byte_identical_across_workers() {
    use std::sync::Arc;
    use vnpu::cluster::LeastLoaded;
    use vnpu_fault::FaultPlan;
    use vnpu_serve::{ServeConfig, ServeRuntime};
    use vnpu_sim::SocConfig;
    check(
        "fault_churn_reports_are_byte_identical_across_workers",
        4,
        range(0u64..1 << 32),
        |&seed| {
            let config_for = |workers: usize| {
                let small = SocConfig {
                    mesh_width: 4,
                    mesh_height: 4,
                    ..SocConfig::sim()
                };
                let mut cfg =
                    ServeConfig::cluster(seed, 80, vec![SocConfig::sim(), small, SocConfig::sim()]);
                cfg.traffic.mean_interarrival_ticks = 1;
                cfg.traffic.candidate_cap = 120;
                cfg.placement = Arc::new(LeastLoaded);
                // 5 core faults sampled over the fleet in ticks 1..50,
                // each repaired 9 ticks after its onset — past the
                // 8-tick recovery deadline, so the lost-tenant path is
                // reachable alongside remap and cross-chip replacement.
                cfg.fault_plan = FaultPlan::seeded(seed, &[36, 16, 36], 5, 50, Some(9));
                cfg.workers = workers;
                cfg
            };
            let normalize = |json: String| {
                json.lines()
                    .filter(|l| !l.contains("\"workers\""))
                    .collect::<Vec<_>>()
                    .join("\n")
            };
            let mut baseline = ServeRuntime::new(config_for(1));
            for _ in 0..80 {
                baseline.step().expect("sequential fault tick");
            }
            // Recovery must converge: every detected tenant is resolved
            // (remapped, replaced, self-healed or lost) once the last
            // repair lands, and the healed fleet audits clean.
            prop_assert_eq!(
                vnpu_audit::FleetAuditor::new()
                    .audit(baseline.cluster())
                    .len(),
                0,
                "healed fleet audits clean"
            );
            baseline.drain().expect("sequential drain");
            let report = baseline.report();
            prop_assert_eq!(report.recoveries_pending, 0, "recovery converged");
            prop_assert_eq!(report.leaked_cores, 0, "no core leaks under faults");
            prop_assert_eq!(report.leaked_hbm_bytes, 0, "no HBM leaks under faults");
            prop_assert_eq!(
                report.faults_injected,
                report.faults_repaired,
                "every sampled fault repairs on schedule"
            );
            let expected = normalize(report.to_json(usize::MAX));
            for workers in [2usize, 4, 8] {
                let mut rt = ServeRuntime::new(config_for(workers));
                for _ in 0..80 {
                    rt.step().expect("parallel fault tick");
                }
                rt.drain().expect("parallel drain");
                prop_assert_eq!(
                    &normalize(rt.report().to_json(usize::MAX)),
                    &expected,
                    "fault-recovery reports diverge across worker counts"
                );
            }
            Ok(())
        },
    );
}
