//! Fleet invariant auditor: the whole-[`Cluster`] post-tick audit.
//!
//! Each serve-loop tick mutates placement state through many layers —
//! admissions, migrations, defragmentation, drains. [`audit_chip`]
//! cross-checks one chip's ground truth after the dust settles:
//! per-core user counts against the tenants claiming each core, the
//! free set (membership, count *and* fingerprint) against occupancy,
//! HBM byte conservation against the tenants' buddy blocks, and
//! drained-chip emptiness — plus the full [`crate::routing`] pass over
//! the chip's resident routing tables. [`audit_cluster`] runs it over
//! every chip; the stateful [`FleetAuditor`] additionally proves the
//! per-chip cache generation never regresses between audits.
//!
//! All passes are read-only: auditing a clean fleet leaves behavior,
//! reports and cache statistics byte-identical to not auditing it.

use crate::routing::{audit_routing, collect_tenant_routes};
use crate::{AuditFinding, Rule};
use std::collections::BTreeMap;
use vnpu::cluster::Cluster;
use vnpu::drain::ChipSchedState;
use vnpu::{Hypervisor, VmId};
use vnpu_topo::{FreeSet, NodeId};

/// Audits one chip's resource-accounting invariants. `sched` is the
/// chip's drain-lifecycle state (pass [`ChipSchedState::Schedulable`]
/// for a standalone hypervisor). Findings carry no chip index — the
/// cluster-level entry points tag it.
pub fn audit_chip(hv: &Hypervisor, sched: ChipSchedState) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    let users = hv.core_users();
    let n = users.len();

    // Ownership ground truth: which tenants claim each physical core.
    let mut owners: BTreeMap<u32, Vec<VmId>> = BTreeMap::new();
    for (&vm, v) in hv.vnpus() {
        for node in v.mapping().phys_nodes() {
            owners.entry(node.0).or_default().push(vm);
        }
    }

    // FLEET-OWN: user counts must equal the tenant claims, core by core.
    // (A count above the claims also covers cores pinned via
    // `Hypervisor::reserve_cores` without a tenant — a reservation the
    // serving path never issues, and exactly the kind of residue this
    // audit exists to surface.)
    for core in 0..n as u32 {
        let claimed = owners.get(&core).map_or(0, |o| o.len()) as u32;
        let counted = users[core as usize];
        if claimed != counted {
            let mut f = AuditFinding::error(
                Rule::FleetCoreOwnership,
                format!("user count is {counted} but {claimed} tenant(s) claim the core"),
            )
            .core(core);
            if let Some(o) = owners.get(&core) {
                if let Some(&vm) = o.first() {
                    f = f.vm(vm);
                }
            }
            findings.push(f);
        }
    }
    for node in owners.keys().filter(|&&c| c as usize >= n) {
        findings.push(
            AuditFinding::error(
                Rule::FleetCoreOwnership,
                "a tenant mapping names a core outside the mesh".to_string(),
            )
            .core(*node),
        );
    }

    // FLEET-SHARE: multi-owner cores require unanimous temporal sharing.
    for (&core, vms) in &owners {
        if vms.len() < 2 {
            continue;
        }
        let opted_out: Vec<VmId> = vms
            .iter()
            .filter(|&&vm| {
                hv.vnpu(vm)
                    .map(|v| !v.wants_temporal_sharing())
                    .unwrap_or(true)
            })
            .copied()
            .collect();
        if let Some(&vm) = opted_out.first() {
            let names: Vec<String> = vms.iter().map(|v| v.to_string()).collect();
            findings.push(
                AuditFinding::error(
                    Rule::FleetSharedCore,
                    format!(
                        "core shared by {} but {} tenant(s) never opted into temporal sharing",
                        names.join(", "),
                        opted_out.len()
                    ),
                )
                .vm(vm)
                .core(core),
            );
        }
    }

    // FLEET-FREE: the free set must mirror `users == 0 && !faulted`
    // exactly — a faulted core is pinned occupied regardless of users.
    let free = hv.free_set();
    let mut truly_free: Vec<NodeId> = Vec::new();
    for core in 0..n as u32 {
        let faulted = hv.core_faulted(core);
        let vacant = users[core as usize] == 0 && !faulted;
        if vacant {
            truly_free.push(NodeId(core));
        }
        if free.contains(NodeId(core)) != vacant {
            findings.push(
                AuditFinding::error(
                    Rule::FleetFreeSetDrift,
                    if vacant {
                        "core has no users but the free set marks it occupied".to_string()
                    } else if faulted {
                        "core is faulted but the free set marks it free".to_string()
                    } else {
                        "core has users but the free set marks it free".to_string()
                    },
                )
                .core(core),
            );
        }
    }
    if free.free_count() != truly_free.len() {
        findings.push(AuditFinding::error(
            Rule::FleetFreeSetDrift,
            format!(
                "free set counts {} cores but {} have zero users",
                free.free_count(),
                truly_free.len()
            ),
        ));
    }
    let expected_fp = FreeSet::from_free_nodes(n, &truly_free).fingerprint();
    if free.fingerprint() != expected_fp {
        findings.push(AuditFinding::error(
            Rule::FleetFreeSetDrift,
            format!(
                "free-set fingerprint {:#x} does not match occupancy fingerprint {:#x}",
                free.fingerprint(),
                expected_fp
            ),
        ));
    }

    // FLEET-HBM: allocated bytes must be exactly the tenants' blocks.
    let allocated = hv.hbm_total_bytes() - hv.hbm_free_bytes();
    let tenant_bytes: u64 = hv
        .vnpus()
        .map(|(_, v)| v.memory_blocks().iter().map(|b| b.size).sum::<u64>())
        .sum();
    if allocated != tenant_bytes {
        findings.push(AuditFinding::error(
            Rule::FleetHbmAccounting,
            format!(
                "buddy allocator holds {allocated} bytes but tenant blocks sum to \
                 {tenant_bytes} — {} byte(s) leaked or double-counted",
                allocated.abs_diff(tenant_bytes)
            ),
        ));
    }

    // FLEET-DRAIN: maintenance requires an empty chip.
    if sched == ChipSchedState::Drained && hv.vnpu_count() > 0 {
        let mut f = AuditFinding::error(
            Rule::FleetDrainedResidue,
            format!(
                "chip is drained (under maintenance) but still holds {} tenant(s)",
                hv.vnpu_count()
            ),
        );
        if let Some((&vm, _)) = hv.vnpus().next() {
            f = f.vm(vm);
        }
        findings.push(f);
    }

    // FAULT-MAP / FAULT-FREE: dead cores must be off-limits — no live
    // tenant may (still) map one, and none may be advertised free. A
    // tenant on a dead core is expected *transiently* while recovery is
    // converging; persisting across audits means recovery stalled.
    for core in hv.faulted_cores() {
        if free.contains(NodeId(core)) {
            findings.push(
                AuditFinding::error(
                    Rule::FaultFreeCore,
                    "faulted core is advertised in the free region".to_string(),
                )
                .core(core),
            );
        }
        for &vm in owners.get(&core).map_or(&[][..], |o| o.as_slice()) {
            findings.push(
                AuditFinding::error(
                    Rule::FaultMappedCore,
                    "live tenant still maps a faulted core".to_string(),
                )
                .vm(vm)
                .core(core),
            );
        }
    }

    // FAULT-LINK: a tenant owning an endpoint of a dead link may still
    // route around it, but its traffic terminates in the failed routers —
    // worth surfacing while recovery decides whether to move it.
    for (a, b) in hv.faulted_links() {
        for (&vm, v) in hv.vnpus() {
            let nodes = v.mapping().phys_nodes();
            let endpoint = if nodes.contains(&NodeId(a)) {
                Some(a)
            } else if nodes.contains(&NodeId(b)) {
                Some(b)
            } else {
                None
            };
            if let Some(core) = endpoint {
                findings.push(
                    AuditFinding::warning(
                        Rule::FaultLinkEndpoint,
                        format!("live tenant owns an endpoint of faulted link {a}\u{2013}{b}"),
                    )
                    .vm(vm)
                    .core(core),
                );
            }
        }
    }

    // The routing pass over this chip's resident tables.
    findings.extend(audit_routing(
        hv.topology(),
        &collect_tenant_routes(hv),
        false,
    ));

    findings
}

/// Audits every chip of a cluster, tagging findings with the chip
/// index. Stateless — for the cache-generation monotonicity rule use a
/// [`FleetAuditor`].
pub fn audit_cluster(cluster: &Cluster) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for i in 0..cluster.chip_count() {
        let sched = cluster
            .drain_state(i)
            .unwrap_or(ChipSchedState::Schedulable);
        findings.extend(
            audit_chip(cluster.chip(i), sched)
                .into_iter()
                .map(|f| f.on_chip(i)),
        );
    }
    findings
}

/// Stateful cluster auditor: everything [`audit_cluster`] checks, plus
/// cross-audit invariants — each chip's reconfiguration (mapping-cache)
/// generation must never *revert* between successive audits, or cached
/// placements could replay against hardware state they never saw.
///
/// Generations are hash chains (reconfigs *and* fault events fold into
/// them), so numeric order is meaningless; a regression is the chain
/// returning to pristine (0) after history existed, or replaying any
/// previously observed value — a healthy chain only ever extends.
#[derive(Debug, Default)]
pub struct FleetAuditor {
    /// Last observed topology generation, per chip index.
    last_topo_gen: BTreeMap<usize, u64>,
    /// Every generation ever observed, per chip index — the replay
    /// detector. Bounded by the number of reconfig/fault events in the
    /// run, not by its length.
    seen_topo_gens: BTreeMap<usize, std::collections::BTreeSet<u64>>,
}

impl FleetAuditor {
    /// A fresh auditor with no generation history.
    pub fn new() -> Self {
        FleetAuditor::default()
    }

    /// Runs the full fleet audit and advances the generation history.
    pub fn audit(&mut self, cluster: &Cluster) -> Vec<AuditFinding> {
        let mut findings = audit_cluster(cluster);
        for i in 0..cluster.chip_count() {
            let gen = cluster.chip(i).topology_generation();
            if let Some(&last) = self.last_topo_gen.get(&i) {
                let replayed = gen != last
                    && self
                        .seen_topo_gens
                        .get(&i)
                        .is_some_and(|seen| seen.contains(&gen));
                if (gen == 0 && last != 0) || replayed {
                    findings.push(
                        AuditFinding::error(
                            Rule::FleetGenerationRegressed,
                            format!(
                                "reconfiguration generation reverted: {last} \u{2192} {gen} \
                                 (previously observed state)"
                            ),
                        )
                        .on_chip(i),
                    );
                }
            }
            self.last_topo_gen.insert(i, gen);
            self.seen_topo_gens.entry(i).or_default().insert(gen);
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnpu::VnpuRequest;
    use vnpu_sim::SocConfig;

    fn rules(findings: &[AuditFinding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    fn busy_chip() -> Hypervisor {
        let mut hv = Hypervisor::new(SocConfig::sim());
        hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        hv.create_vnpu(VnpuRequest::mesh(3, 2).mem_bytes(32 << 20))
            .unwrap();
        hv.create_vnpu(VnpuRequest::cores(1)).unwrap();
        hv
    }

    #[test]
    fn healthy_chip_audits_clean() {
        let findings = audit_chip(&busy_chip(), ChipSchedState::Schedulable);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn chip_stays_clean_across_churn() {
        let mut hv = busy_chip();
        let vm = hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        hv.destroy_vnpu(vm).unwrap();
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn temporal_sharing_tenants_do_not_trip_the_share_rule() {
        let mut hv = Hypervisor::new(SocConfig::sim());
        // Fill the chip, then over-provision with temporal sharing.
        let (w, h) = {
            let s = hv.topology().mesh_shape().unwrap();
            (s.width, s.height)
        };
        hv.create_vnpu(VnpuRequest::mesh(w, h)).unwrap();
        hv.create_vnpu(VnpuRequest::mesh(2, 2).temporal_sharing(true))
            .unwrap();
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        // The exclusive first tenant shares cores with the opted-in
        // second: that is exactly a broken exclusivity promise.
        assert!(
            rules(&findings).contains(&Rule::FleetSharedCore),
            "{findings:?}"
        );
        // But two tenants that BOTH opted in are fine.
        let mut hv2 = Hypervisor::new(SocConfig::sim());
        hv2.create_vnpu(VnpuRequest::mesh(w, h).temporal_sharing(true))
            .unwrap();
        hv2.create_vnpu(VnpuRequest::mesh(2, 2).temporal_sharing(true))
            .unwrap();
        let findings = audit_chip(&hv2, ChipSchedState::Schedulable);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn reserved_cores_surface_as_ownership_findings() {
        let mut hv = Hypervisor::new(SocConfig::sim());
        hv.reserve_cores(&[0, 1]).unwrap();
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        let own: Vec<&AuditFinding> = findings
            .iter()
            .filter(|f| f.rule == Rule::FleetCoreOwnership)
            .collect();
        assert_eq!(own.len(), 2, "{findings:?}");
        assert_eq!(own[0].core, Some(0));
        assert_eq!(own[1].core, Some(1));
    }

    #[test]
    fn drained_residue_is_flagged() {
        let hv = busy_chip();
        let findings = audit_chip(&hv, ChipSchedState::Drained);
        assert!(
            rules(&findings).contains(&Rule::FleetDrainedResidue),
            "{findings:?}"
        );
        // The same tenants on a merely *draining* chip are fine.
        let findings = audit_chip(&hv, ChipSchedState::Draining);
        assert!(
            !rules(&findings).contains(&Rule::FleetDrainedResidue),
            "{findings:?}"
        );
    }

    #[test]
    fn cluster_audit_tags_the_chip() {
        let mut cluster = Cluster::new(vec![SocConfig::sim(), SocConfig::sim()]);
        cluster.create_on(1, VnpuRequest::mesh(2, 2)).unwrap();
        cluster.begin_drain(1).unwrap();
        // Force the drained state with residue by auditing chip 1 as
        // drained directly through the cluster path: drain it for real.
        let findings = audit_cluster(&cluster);
        assert!(
            findings.is_empty(),
            "draining with tenants is legal: {findings:?}"
        );
    }

    #[test]
    fn fleet_auditor_accepts_monotone_generations() {
        let mut cluster = Cluster::new(vec![SocConfig::sim()]);
        let mut auditor = FleetAuditor::new();
        assert!(auditor.audit(&cluster).is_empty());
        let id = cluster.create_on(0, VnpuRequest::mesh(2, 2)).unwrap();
        assert!(auditor.audit(&cluster).is_empty());
        cluster.destroy(id).unwrap();
        assert!(auditor.audit(&cluster).is_empty());
    }

    #[test]
    fn faulted_cores_surface_map_and_free_findings() {
        let mut hv = Hypervisor::new(SocConfig::sim());
        let vm = hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let owned = hv.vnpu(vm).unwrap().mapping().phys_nodes()[0].0;
        // Fault an *owned* core: the tenant still maps it → FAULT-MAP,
        // but the free set stays consistent (no FLEET/FAULT-FREE).
        hv.set_core_faulted(owned, true).unwrap();
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        assert_eq!(
            rules(&findings),
            vec![Rule::FaultMappedCore],
            "{findings:?}"
        );
        assert_eq!(findings[0].vm, Some(vm));
        assert_eq!(findings[0].core, Some(owned));
        // After the tenant leaves, the dead core must stay masked; the
        // hypervisor holds it occupied, so the audit is clean again.
        hv.destroy_vnpu(vm).unwrap();
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        assert!(findings.is_empty(), "{findings:?}");
        // Repair: fully healthy.
        hv.set_core_faulted(owned, false).unwrap();
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn faulted_link_endpoint_is_a_warning() {
        let mut hv = Hypervisor::new(SocConfig::sim());
        let vm = hv.create_vnpu(VnpuRequest::mesh(2, 1)).unwrap();
        let nodes: Vec<u32> = hv
            .vnpu(vm)
            .unwrap()
            .mapping()
            .phys_nodes()
            .iter()
            .map(|n| n.0)
            .collect();
        hv.set_link_faulted(nodes[0], nodes[1], true);
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        let hits: Vec<&AuditFinding> = findings
            .iter()
            .filter(|f| f.rule == Rule::FaultLinkEndpoint)
            .collect();
        assert_eq!(hits.len(), 1, "{findings:?}");
        assert_eq!(hits[0].severity, crate::Severity::Warning);
        assert_eq!(hits[0].vm, Some(vm));
        // A faulted link nobody touches reports nothing.
        hv.set_link_faulted(nodes[0], nodes[1], false);
        hv.set_link_faulted(34, 35, true);
        let findings = audit_chip(&hv, ChipSchedState::Schedulable);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn fleet_auditor_accepts_fault_hash_chain_jumps() {
        // Fault events evolve the generation hash chain in numerically
        // arbitrary directions; the auditor must accept every fresh
        // value and reject only reverts to an already-seen state.
        let mut cluster = Cluster::new(vec![SocConfig::sim()]);
        let mut auditor = FleetAuditor::new();
        assert!(auditor.audit(&cluster).is_empty());
        let mut seen = vec![cluster.chip(0).topology_generation()];
        for core in 0..8 {
            cluster.chip_mut(0).set_topology_generation(1_000 + core);
            assert!(
                auditor.audit(&cluster).is_empty(),
                "fresh generations are never regressions"
            );
            seen.push(1_000 + core);
        }
        // Replaying an old generation is exactly the bug the rule exists
        // to catch.
        cluster.chip_mut(0).set_topology_generation(seen[3]);
        let findings = auditor.audit(&cluster);
        assert!(
            rules(&findings).contains(&Rule::FleetGenerationRegressed),
            "{findings:?}"
        );
    }

    #[test]
    fn fleet_auditor_flags_generation_regression() {
        let cluster = Cluster::new(vec![SocConfig::sim()]);
        let mut auditor = FleetAuditor::new();
        // Seed history with a fabricated future generation, then audit
        // the real (lower) one: the regression must be reported.
        auditor.last_topo_gen.insert(0, u64::MAX);
        let findings = auditor.audit(&cluster);
        let hit = findings
            .iter()
            .find(|f| f.rule == Rule::FleetGenerationRegressed)
            .expect("regression must be reported");
        assert_eq!(hit.chip, Some(0));
    }
}
