//! **Figure 15** — vNPU vs. UVM-based virtual NPUs, single-instance and
//! multi-instance.
//!
//! Paper result: single-instance, vNPU's virtual-topology routing gives a
//! 2.29× speedup for the Transformer block over UVM (which synchronizes
//! through global memory) but only ~5.4% for the ResNet block (data-flow
//! bubbles); multi-instance, UVM suffers ~24% degradation from global
//! memory contention while vNPU's inter-core connections keep
//! interference negligible.

use crate::{bind_design, print_table, Design};
use vnpu::{Hypervisor, VnpuRequest};
use vnpu_sim::machine::Machine;
use vnpu_sim::SocConfig;
use vnpu_workloads::compile::{compile, CompileOptions};
use vnpu_workloads::models;
use vnpu_workloads::ModelGraph;

const CORES_PER_INSTANCE: u32 = 4;

/// Transformer blocks are tensor/pipeline-parallel across the instance's
/// 4 cores (communication on every boundary). ResNet blocks run
/// data-parallel — one replica per core, each pulling its input frame
/// from global memory every iteration — the deployment under which the
/// paper's ResNet numbers (UVM ≈ vNPU) make sense, since residual blocks
/// have no inter-core traffic then.
fn compile_block(
    model: &ModelGraph,
    cfg: &SocConfig,
    iterations: u32,
) -> Vec<vnpu_sim::isa::Program> {
    if model.name().starts_with("resnet_block") {
        return data_parallel_programs(model, CORES_PER_INSTANCE, iterations);
    }
    let opts = CompileOptions {
        iterations,
        weight_va_base: vnpu::vnpu::GUEST_VA_BASE,
        ..Default::default()
    };
    compile(model, CORES_PER_INSTANCE, cfg, &opts)
        .expect("compile")
        .programs
}

/// One full-model replica per core; each iteration DMA-loads the input
/// frame, then runs every layer locally.
fn data_parallel_programs(
    model: &ModelGraph,
    cores: u32,
    iterations: u32,
) -> Vec<vnpu_sim::isa::Program> {
    use vnpu_sim::isa::{Instr, Program};
    let base = vnpu::vnpu::GUEST_VA_BASE;
    let input_bytes = model.layers()[0].out_bytes.max(1024);
    let total_weights: u64 = model.total_weight_bytes();
    (0..cores)
        .map(|c| {
            let mut va = base + u64::from(c) * (total_weights + input_bytes + 0x1_0000);
            let mut prelude = Vec::new();
            for l in model.layers() {
                if l.weight_bytes > 0 {
                    prelude.push(Instr::DmaLoad {
                        va: vnpu_mem::VirtAddr(va),
                        bytes: l.weight_bytes,
                    });
                    va += l.weight_bytes;
                }
            }
            let mut body = vec![Instr::DmaLoad {
                va: vnpu_mem::VirtAddr(va),
                bytes: input_bytes,
            }];
            body.extend(model.layers().iter().map(|l| Instr::Compute(l.kernel)));
            Program::looped(prelude, body, iterations).with_footprint(total_weights)
        })
        .collect()
}

/// Single-instance cycles per iteration under one design.
fn single(cfg: &SocConfig, model: &ModelGraph, design: Design, iterations: u32) -> f64 {
    let programs = compile_block(model, cfg, iterations);
    let mut machine = Machine::new(cfg.clone());
    let mut hv = Hypervisor::new(cfg.clone());
    let vm = hv
        .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))
        .expect("vNPU");
    let tenant = bind_design(&mut machine, &hv, vm, &programs, design, model.name());
    machine.run().expect("run").cycles_per_iteration(tenant)
}

/// Multi-instance: two co-located instances; returns both tenants'
/// cycles/iteration under contention.
fn multi(
    cfg: &SocConfig,
    a: &ModelGraph,
    b: &ModelGraph,
    design: Design,
    iterations: u32,
) -> (f64, f64) {
    let progs_a = compile_block(a, cfg, iterations);
    let progs_b = compile_block(b, cfg, iterations);
    let mut machine = Machine::new(cfg.clone());
    let mut hv = Hypervisor::new(cfg.clone());
    let vm_a = hv
        .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))
        .expect("vNPU A");
    let vm_b = hv
        .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))
        .expect("vNPU B");
    let ta = bind_design(&mut machine, &hv, vm_a, &progs_a, design, a.name());
    let tb = bind_design(&mut machine, &hv, vm_b, &progs_b, design, b.name());
    let report = machine.run().expect("run");
    (
        report.cycles_per_iteration(ta),
        report.cycles_per_iteration(tb),
    )
}

/// Runs both halves of Figure 15; `quick` trims blocks and iterations.
pub fn run(quick: bool) {
    let cfg = SocConfig::sim();
    let iterations = if quick { 2 } else { 8 };
    let blocks = if quick {
        vec![
            models::transformer_block(64, 16),
            models::resnet_block(16, 64),
        ]
    } else {
        vec![
            models::transformer_block(128, 16),
            models::transformer_block(64, 16),
            models::resnet_block(16, 64),
            models::resnet_block(20, 32),
        ]
    };
    // --- Single instance ---
    let mut rows = Vec::new();
    let mut tf_speedups = Vec::new();
    let mut rn_speedups = Vec::new();
    for model in &blocks {
        let v = single(&cfg, model, Design::Vnpu, iterations);
        let u = single(&cfg, model, Design::Uvm { iotlb: 32 }, iterations);
        assert!(v > 0.0 && u > 0.0, "both designs must make progress");
        let speedup = u / v.max(1.0);
        if model.name().starts_with("transformer") {
            tf_speedups.push(speedup);
        } else {
            rn_speedups.push(speedup);
        }
        rows.push(vec![
            model.name().to_owned(),
            format!("{v:.0}"),
            format!("{u:.0}"),
            format!("{speedup:.2}x"),
        ]);
    }
    print_table(
        "Figure 15 (single-instance): clocks per iteration",
        &["workload", "vNPU", "UVM", "vNPU speedup"],
        &rows,
    );

    // --- Multi instance: transformer + resnet concurrently ---
    let tf = &blocks[0];
    let rn = blocks
        .iter()
        .find(|m| m.name().starts_with("resnet_block"))
        .expect("a resnet block");
    let mut rows = Vec::new();
    let mut uvm_degr = 0.0f64;
    let mut vnpu_degr = 0.0f64;
    for (label, design) in [("vNPU", Design::Vnpu), ("UVM", Design::Uvm { iotlb: 32 })] {
        let solo_tf = single(&cfg, tf, design, iterations);
        let solo_rn = single(&cfg, rn, design, iterations);
        let (multi_tf, multi_rn) = multi(&cfg, tf, rn, design, iterations);
        let degr_tf = multi_tf / solo_tf.max(1.0) - 1.0;
        let degr_rn = multi_rn / solo_rn.max(1.0) - 1.0;
        let avg = 0.5 * (degr_tf + degr_rn);
        match label {
            "UVM" => uvm_degr = avg,
            _ => vnpu_degr = avg,
        }
        rows.push(vec![
            label.to_owned(),
            format!("{solo_tf:.0}"),
            format!("{multi_tf:.0}"),
            format!("{:.1}%", 100.0 * degr_tf),
            format!("{solo_rn:.0}"),
            format!("{multi_rn:.0}"),
            format!("{:.1}%", 100.0 * degr_rn),
        ]);
    }
    print_table(
        "Figure 15 (multi-instance): interference of co-located instances",
        &[
            "design", "tf solo", "tf multi", "tf degr", "rn solo", "rn multi", "rn degr",
        ],
        &rows,
    );

    let tf_avg = tf_speedups.iter().sum::<f64>() / tf_speedups.len() as f64;
    let rn_avg = rn_speedups.iter().sum::<f64>() / rn_speedups.len() as f64;
    println!(
        "\nTransformer-block speedup vNPU/UVM = {tf_avg:.2}x (paper: 2.29x); \
         ResNet-block = {rn_avg:.2}x (paper: ~1.05x)."
    );
    println!(
        "Multi-instance degradation: UVM {:.1}% (paper ~24%), vNPU {:.1}% (paper ~0%).",
        100.0 * uvm_degr,
        100.0 * vnpu_degr
    );
    if !quick {
        assert!(
            tf_avg > 1.5,
            "vNPU must clearly beat UVM on transformer blocks"
        );
        assert!(rn_avg < tf_avg, "ResNet blocks benefit less (bubbles)");
        assert!(rn_avg > 0.9, "vNPU must not lose on ResNet blocks");
        assert!(
            uvm_degr > vnpu_degr + 0.03,
            "UVM must suffer visibly more interference"
        );
        assert!(vnpu_degr < 0.05, "vNPU interference must stay negligible");
    }
}
