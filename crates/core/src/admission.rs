//! Admission control for the online serving regime: queued virtual-NPU
//! requests, pluggable ordering policies, and the per-tick fragmentation
//! metrics the scheduler steers by.
//!
//! The paper evaluates *static* provisioning — every vNPU exists before
//! the workload runs. A serving deployment instead sees a stream of
//! create/destroy requests under fragmentation, where placement can fail
//! *now* and succeed *after the next departure*. This module gives the
//! [`crate::Hypervisor`] that lifecycle: [`Hypervisor::submit`] enqueues a
//! request, [`Hypervisor::process_admissions`] runs one admission tick
//! under the configured [`AdmissionPolicy`], and every attempt remains
//! transactional (a failed placement changes nothing, exactly as a failed
//! [`Hypervisor::create_vnpu`] rolls back its partial allocations).
//!
//! [`AdmissionPolicy`] is an open, object-safe trait — NeuroVM-style
//! dynamic virtualization layers want pluggable allocation policies, not
//! a closed enum. Five implementations ship: [`Fifo`], [`SmallestFirst`],
//! [`RetryAfterFree`], [`Backfill`] (conservative backfilling past a
//! blocked head) and [`Aging`] (smallest-first with head-of-line
//! reservation for starved requests). The legacy closed
//! `AdmissionPolicyKind` enum and its deprecated
//! `Hypervisor::set_admission_policy` shim have been removed — construct
//! the trait objects directly.
//!
//! [`Hypervisor::submit`]: crate::Hypervisor::submit
//! [`Hypervisor::process_admissions`]: crate::Hypervisor::process_admissions
//! [`Hypervisor::create_vnpu`]: crate::Hypervisor::create_vnpu

use crate::ids::VmId;
use crate::vnpu::VnpuRequest;
use crate::VnpuError;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Identifier of a queued admission request (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// Read-only snapshot of one queued request, handed to
/// [`AdmissionPolicy`] implementations. `RequestId`s are assigned in
/// arrival order, so `id` doubles as the arrival rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingView {
    /// The request's queue identifier (arrival-ordered).
    pub id: RequestId,
    /// Cores the request asks for.
    pub cores: u32,
    /// Guest-memory bytes the request asks for.
    pub memory_bytes: u64,
    /// Whether the request accepts temporal sharing (§7): placement may
    /// widen onto busy cores, so core-availability filters must not
    /// assume `cores` free cores are required.
    pub temporal_sharing: bool,
    /// Failed placement attempts so far.
    pub attempts: u32,
    /// Value of the free-event counter at the last failed attempt
    /// (`None` until the first failure).
    pub last_failure_at_free_event: Option<u64>,
}

/// What the admission engine does after a queued request fails to place
/// (non-terminally) during a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureAction {
    /// Stop the tick — head-of-line blocking.
    Block,
    /// Keep attempting the remaining requests in order.
    Continue,
    /// Keep going, but only for requests strictly smaller (fewer cores)
    /// than the given bound — backfilling: small requests may slip past
    /// the blocked head. There is no capacity reservation, so backfilled
    /// requests *can* consume cores the head is waiting for and delay it;
    /// pair with an attempt budget or an aging policy when head
    /// starvation matters.
    BackfillBelow(u32),
}

/// How the admission queue orders and retries placement attempts.
///
/// Object-safe so deployments can ship their own policies; the queue
/// holds policies as `Arc<dyn AdmissionPolicy>` and never mutates them —
/// a policy's decisions must be pure functions of the queue snapshot, or
/// determinism (and report reproducibility) breaks.
pub trait AdmissionPolicy: fmt::Debug + Send + Sync {
    /// Short name for reports and debugging.
    fn name(&self) -> &'static str;

    /// The requests to attempt this tick, in order. `pending` is the
    /// queue in arrival order; `free_events` is the owner's monotone
    /// resource-freeing counter (drives retry-after-free style policies).
    /// IDs not currently queued are ignored by the engine.
    fn attempt_order(&self, pending: &[PendingView], free_events: u64) -> Vec<RequestId>;

    /// Called after `failed` (attempt count already updated) failed
    /// non-terminally; decides whether the tick continues.
    fn after_failure(&self, failed: &PendingView) -> FailureAction;
}

/// Strict arrival order with head-of-line blocking: a tick stops at the
/// first request that fails to place.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn attempt_order(&self, pending: &[PendingView], _free_events: u64) -> Vec<RequestId> {
        pending.iter().map(|p| p.id).collect()
    }

    fn after_failure(&self, _failed: &PendingView) -> FailureAction {
        FailureAction::Block
    }
}

/// Attempt the smallest (fewest-core) request first each tick, skipping
/// over failures — trades head-of-line blocking for possible starvation
/// of large requests.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmallestFirst;

impl AdmissionPolicy for SmallestFirst {
    fn name(&self) -> &'static str {
        "smallest-first"
    }

    fn attempt_order(&self, pending: &[PendingView], _free_events: u64) -> Vec<RequestId> {
        let mut ids: Vec<(u32, RequestId)> = pending.iter().map(|p| (p.cores, p.id)).collect();
        // Stable under equal sizes: arrival order breaks ties because
        // `RequestId`s are assigned in arrival order.
        ids.sort();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    fn after_failure(&self, _failed: &PendingView) -> FailureAction {
        FailureAction::Continue
    }
}

/// Arrival order, but a request that has already failed is only
/// re-attempted after at least one resource-freeing event since its last
/// attempt (nothing was freed, so retrying would burn an enumeration for
/// the same answer — though the mapping cache would memoize it anyway).
#[derive(Debug, Clone, Copy, Default)]
pub struct RetryAfterFree;

impl AdmissionPolicy for RetryAfterFree {
    fn name(&self) -> &'static str {
        "retry-after-free"
    }

    fn attempt_order(&self, pending: &[PendingView], free_events: u64) -> Vec<RequestId> {
        pending
            .iter()
            .filter(|p| match p.last_failure_at_free_event {
                None => true,
                Some(at) => free_events > at,
            })
            .map(|p| p.id)
            .collect()
    }

    fn after_failure(&self, _failed: &PendingView) -> FailureAction {
        FailureAction::Block
    }
}

/// Backfilling: arrival order, and when a request fails the tick
/// continues only for *strictly smaller* requests — they slip into the
/// gaps the blocked head cannot use right now (same-or-larger requests
/// are held back). No capacity is *reserved* for the head, so a steady
/// stream of small arrivals can still delay or starve it; cap the
/// damage with [`AdmissionQueue::set_max_attempts`] or switch to
/// [`Aging`], whose reservation threshold exists for exactly this.
#[derive(Debug, Clone, Copy, Default)]
pub struct Backfill;

impl AdmissionPolicy for Backfill {
    fn name(&self) -> &'static str {
        "backfill"
    }

    fn attempt_order(&self, pending: &[PendingView], _free_events: u64) -> Vec<RequestId> {
        pending.iter().map(|p| p.id).collect()
    }

    fn after_failure(&self, failed: &PendingView) -> FailureAction {
        FailureAction::BackfillBelow(failed.cores)
    }
}

/// Smallest-first with aging: every failed attempt shrinks a request's
/// *effective* size by [`Aging::boost_per_attempt`], so a starved large
/// request eventually sorts ahead of fresh small ones; once it has
/// failed [`Aging::reserve_after_attempts`] times it additionally gains
/// head-of-line reservation (its failure blocks the tick, so younger
/// requests can no longer eat every departure ahead of it).
#[derive(Debug, Clone, Copy)]
pub struct Aging {
    /// Effective-size discount per failed attempt (cores).
    pub boost_per_attempt: u32,
    /// Failed attempts after which the request blocks the tick on
    /// failure, reserving freed capacity for itself.
    pub reserve_after_attempts: u32,
}

impl Default for Aging {
    fn default() -> Self {
        Aging {
            boost_per_attempt: 1,
            reserve_after_attempts: 8,
        }
    }
}

impl Aging {
    /// A request's discounted effective size, saturating at a floor of
    /// **1 core**: a pathological attempt count (or a huge
    /// `boost_per_attempt`) discounts any request at most down to the
    /// size of the smallest possible request, so an aged giant ties with
    /// — never underflows past — genuinely smaller queued requests (ties
    /// still break by arrival order).
    pub fn effective_cores(&self, p: &PendingView) -> u32 {
        p.cores
            .saturating_sub(p.attempts.saturating_mul(self.boost_per_attempt))
            .max(1)
    }
}

impl AdmissionPolicy for Aging {
    fn name(&self) -> &'static str {
        "aging"
    }

    fn attempt_order(&self, pending: &[PendingView], _free_events: u64) -> Vec<RequestId> {
        let mut ids: Vec<(u32, RequestId)> = pending
            .iter()
            .map(|p| (self.effective_cores(p), p.id))
            .collect();
        // Ties (equal effective size) break by arrival order via the ID.
        ids.sort();
        ids.into_iter().map(|(_, id)| id).collect()
    }

    fn after_failure(&self, failed: &PendingView) -> FailureAction {
        if failed.attempts >= self.reserve_after_attempts {
            FailureAction::Block
        } else {
            FailureAction::Continue
        }
    }
}

/// The largest request shape that would place *right now*, attached to
/// terminal rejections so a tenant (or an auto-scaling client) can
/// resubmit something that fits instead of blindly retrying. Probed
/// through the mapping cache, so repeated rejections against an
/// unchanged free region reuse the memoized exhaustion proofs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FitHint {
    /// Cores of the fitting shape.
    pub cores: u32,
    /// Mesh width of the probed near-square shape.
    pub width: u32,
    /// Mesh height of the probed near-square shape (`width × height ≥
    /// cores`; the last row may be partial for awkward counts).
    pub height: u32,
}

/// Terminal outcome of one queued request during an admission tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Placed; the request's virtual NPU is live.
    Admitted(VmId),
    /// Permanently rejected (impossible request, or attempt budget spent).
    Rejected(VnpuError),
}

/// One terminal admission decision, as returned by
/// [`crate::Hypervisor::process_admissions`]. Requests still queued after
/// the tick produce no event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// The request this decision is about.
    pub id: RequestId,
    /// What happened to it.
    pub outcome: AdmissionOutcome,
    /// The hypervisor's cumulative meta-table configuration cycle counter
    /// ([`crate::Hypervisor::total_config_cycles`]) at the instant this
    /// decision was made, so a scheduler can stamp each placement with
    /// only the configuration work accrued *up to that event* rather than
    /// charging every admission in a tick for the whole tick's work.
    pub config_cycles_total: u64,
    /// On a terminal rejection for want of a candidate
    /// ([`VnpuError::Mapping`] with
    /// [`vnpu_topo::TopoError::NoCandidate`]): the largest request shape
    /// that *would* currently fit, if any. `None` on admissions and on
    /// rejections with other causes.
    pub fit_hint: Option<FitHint>,
}

#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub id: RequestId,
    pub req: VnpuRequest,
    pub attempts: u32,
    /// Value of the hypervisor's free-event counter at the last failed
    /// attempt (`None` until the first failure).
    pub last_failure_at_free_event: Option<u64>,
}

impl PendingRequest {
    pub(crate) fn view(&self) -> PendingView {
        PendingView {
            id: self.id,
            cores: self.req.core_count(),
            memory_bytes: self.req.memory_bytes(),
            temporal_sharing: self.req.wants_temporal_sharing(),
            attempts: self.attempts,
            last_failure_at_free_event: self.last_failure_at_free_event,
        }
    }
}

/// The pending-request queue with its policy and attempt budget.
#[derive(Debug)]
pub struct AdmissionQueue {
    pending: VecDeque<PendingRequest>,
    policy: Arc<dyn AdmissionPolicy>,
    max_attempts: Option<u32>,
    next_id: u64,
}

impl Default for AdmissionQueue {
    fn default() -> Self {
        Self::new(Arc::new(Fifo))
    }
}

impl AdmissionQueue {
    /// An empty queue under `policy` with an unlimited attempt budget.
    pub fn new(policy: Arc<dyn AdmissionPolicy>) -> Self {
        AdmissionQueue {
            pending: VecDeque::new(),
            policy,
            max_attempts: None,
            next_id: 0,
        }
    }

    /// Caps placement attempts per request; a request failing its
    /// `max_attempts`-th attempt is rejected. `None` retries forever.
    pub fn set_max_attempts(&mut self, max_attempts: Option<u32>) {
        self.max_attempts = max_attempts.map(|m| m.max(1));
    }

    /// The active ordering policy.
    pub fn policy(&self) -> &Arc<dyn AdmissionPolicy> {
        &self.policy
    }

    /// Replaces the ordering policy (queued requests are kept).
    pub fn set_policy(&mut self, policy: Arc<dyn AdmissionPolicy>) {
        self.policy = policy;
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// IDs currently queued, in arrival order.
    pub fn queued_ids(&self) -> Vec<RequestId> {
        self.pending.iter().map(|p| p.id).collect()
    }

    /// Snapshots of the queued requests, in arrival order.
    pub fn views(&self) -> Vec<PendingView> {
        self.pending.iter().map(|p| p.view()).collect()
    }

    /// The attempt budget.
    pub fn max_attempts(&self) -> Option<u32> {
        self.max_attempts
    }

    pub(crate) fn push(&mut self, req: VnpuRequest) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(PendingRequest {
            id,
            req,
            attempts: 0,
            last_failure_at_free_event: None,
        });
        id
    }

    /// The IDs to attempt this tick, in policy order. `free_events` is
    /// the owner's monotone resource-freeing counter.
    pub(crate) fn attempt_order(&self, free_events: u64) -> Vec<RequestId> {
        self.policy.attempt_order(&self.views(), free_events)
    }

    /// The policy's verdict on continuing the tick after `id` failed
    /// non-terminally (call after [`AdmissionQueue::mark_failed`]).
    pub(crate) fn failure_action(&self, id: RequestId) -> FailureAction {
        match self.request(id) {
            Some(p) => self.policy.after_failure(&p.view()),
            None => FailureAction::Continue,
        }
    }

    pub(crate) fn request(&self, id: RequestId) -> Option<&PendingRequest> {
        self.pending.iter().find(|p| p.id == id)
    }

    pub(crate) fn remove(&mut self, id: RequestId) -> Option<PendingRequest> {
        let idx = self.pending.iter().position(|p| p.id == id)?;
        self.pending.remove(idx)
    }

    /// Records a failed attempt; returns `true` when the attempt budget is
    /// now spent (caller rejects the request).
    pub(crate) fn mark_failed(&mut self, id: RequestId, free_events: u64) -> bool {
        let Some(p) = self.pending.iter_mut().find(|p| p.id == id) else {
            return false;
        };
        p.attempts += 1;
        p.last_failure_at_free_event = Some(free_events);
        self.max_attempts.is_some_and(|m| p.attempts >= m)
    }
}

/// What the shared tick engine decided about a request whose placement
/// attempt just failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TickVerdict {
    /// Terminal: the request was removed from the queue; the caller
    /// emits a rejection event.
    Reject,
    /// The request stays queued; the tick keeps attempting others.
    Defer,
    /// The request stays queued and the tick ends now (head-of-line
    /// blocking).
    EndTick,
}

/// Per-tick bookkeeping shared by the single-chip
/// ([`crate::Hypervisor::process_admissions`]) and cluster
/// ([`crate::cluster::Cluster::process_admissions`]) admission engines,
/// so their semantics cannot diverge: backfill narrowing, attempt
/// accounting, terminal/budget rejection, and [`FailureAction`]
/// dispatch all live here. The callers own only what genuinely differs —
/// where a request is attempted and what a rejection event carries.
#[derive(Debug, Default)]
pub(crate) struct AdmissionTick {
    /// Once a policy answers [`FailureAction::BackfillBelow`], only
    /// strictly smaller requests are attempted for the rest of the tick
    /// (the bound only ever tightens).
    backfill_limit: Option<u32>,
}

impl AdmissionTick {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Whether backfill narrowing skips this request outright.
    pub(crate) fn skips(&self, view: &PendingView) -> bool {
        self.backfill_limit.is_some_and(|limit| view.cores >= limit)
    }

    /// Accounts a failed attempt and decides how the tick proceeds; on
    /// [`TickVerdict::Reject`] the request has been removed.
    pub(crate) fn on_failure(
        &mut self,
        queue: &mut AdmissionQueue,
        id: RequestId,
        free_events: u64,
        terminal: bool,
    ) -> TickVerdict {
        let budget_spent = queue.mark_failed(id, free_events);
        if terminal || budget_spent {
            queue.remove(id);
            return TickVerdict::Reject;
        }
        match queue.failure_action(id) {
            FailureAction::Block => TickVerdict::EndTick,
            FailureAction::Continue => TickVerdict::Defer,
            FailureAction::BackfillBelow(limit) => {
                self.backfill_limit = Some(self.backfill_limit.map_or(limit, |l| l.min(limit)));
                TickVerdict::Defer
            }
        }
    }
}

/// A point-in-time fragmentation picture of the hypervisor's resources,
/// exposed per admission tick so the serving layer can chart how close the
/// chip is to topology lock-in (§4.3) while traffic churns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentationStats {
    /// Free physical cores.
    pub free_cores: u32,
    /// Connected components of the free-core region (0 when none free).
    pub free_components: usize,
    /// Size of the largest connected free component.
    pub largest_free_component: usize,
    /// Largest free component over all free cores, in `[0, 1]`; 1.0 when
    /// the free region is a single island (or empty — nothing is
    /// stranded).
    pub free_connectivity: f64,
    /// Free HBM bytes.
    pub hbm_free_bytes: u64,
    /// Largest single free buddy block.
    pub hbm_largest_free_block: u64,
    /// Buddy external fragmentation: `1 − largest_free_block/free_bytes`
    /// (0.0 when no memory is free — nothing is fragmented).
    pub hbm_external_fragmentation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(policy: Arc<dyn AdmissionPolicy>) -> AdmissionQueue {
        AdmissionQueue::new(policy)
    }

    #[test]
    fn fifo_orders_by_arrival_and_blocks() {
        let mut queue = q(Arc::new(Fifo));
        let a = queue.push(VnpuRequest::mesh(3, 3));
        let b = queue.push(VnpuRequest::mesh(1, 1));
        assert_eq!(queue.attempt_order(0), vec![a, b]);
        assert_eq!(queue.failure_action(a), FailureAction::Block);
    }

    #[test]
    fn smallest_first_orders_by_core_count_then_arrival() {
        let mut queue = q(Arc::new(SmallestFirst));
        let big = queue.push(VnpuRequest::mesh(3, 3));
        let small_a = queue.push(VnpuRequest::mesh(1, 2));
        let small_b = queue.push(VnpuRequest::mesh(2, 1));
        // 2-core requests first (arrival order between them), then 9-core.
        assert_eq!(queue.attempt_order(0), vec![small_a, small_b, big]);
        assert_eq!(queue.failure_action(small_a), FailureAction::Continue);
    }

    #[test]
    fn retry_after_free_skips_until_a_destroy() {
        let mut queue = q(Arc::new(RetryAfterFree));
        let a = queue.push(VnpuRequest::mesh(2, 2));
        assert_eq!(queue.attempt_order(0), vec![a]);
        assert!(!queue.mark_failed(a, 0));
        // No free event since the failure: not retried.
        assert!(queue.attempt_order(0).is_empty());
        // After a destroy the request is eligible again.
        assert_eq!(queue.attempt_order(1), vec![a]);
    }

    #[test]
    fn backfill_lets_only_smaller_requests_past_a_blocked_head() {
        let mut queue = q(Arc::new(Backfill));
        let big = queue.push(VnpuRequest::mesh(3, 3));
        let same = queue.push(VnpuRequest::mesh(3, 3));
        let small = queue.push(VnpuRequest::mesh(1, 2));
        assert_eq!(queue.attempt_order(0), vec![big, same, small]);
        queue.mark_failed(big, 0);
        // The engine narrows to requests strictly below the failed size.
        assert_eq!(queue.failure_action(big), FailureAction::BackfillBelow(9));
    }

    #[test]
    fn aging_promotes_starved_requests_and_eventually_reserves() {
        let aging = Aging {
            boost_per_attempt: 2,
            reserve_after_attempts: 3,
        };
        let mut queue = q(Arc::new(aging));
        let big = queue.push(VnpuRequest::mesh(2, 3)); // 6 cores
        let small = queue.push(VnpuRequest::mesh(2, 2)); // 4 cores
        assert_eq!(queue.attempt_order(0), vec![small, big]);
        // Two failures discount the big request to an effective 2 cores:
        // it now sorts ahead of the fresh 4-core request.
        queue.mark_failed(big, 0);
        queue.mark_failed(big, 0);
        assert_eq!(queue.attempt_order(0), vec![big, small]);
        assert_eq!(queue.failure_action(big), FailureAction::Continue);
        // A third failure reaches the reservation threshold.
        queue.mark_failed(big, 0);
        assert_eq!(queue.failure_action(big), FailureAction::Block);
    }

    #[test]
    fn aging_discount_floors_at_one_core() {
        // Regression: a pathological attempt count used to discount a
        // request's effective size to 0 cores, sorting an aged giant
        // strictly ahead of genuinely smaller (even 1-core) requests.
        // The discount now floors at 1 core, so the giant *ties* with the
        // smallest possible request and arrival order breaks the tie.
        let aging = Aging {
            boost_per_attempt: u32::MAX,
            reserve_after_attempts: 8,
        };
        let mut queue = q(Arc::new(aging));
        let tiny = queue.push(VnpuRequest::mesh(1, 1)); // 1 core, arrives first
        let giant = queue.push(VnpuRequest::mesh(3, 3)); // 9 cores

        // One attempt × u32::MAX boost saturates the discount. Effective
        // sizes: tiny = 1 (fresh), giant = max(1, 9 − sat) = 1 — equal,
        // so arrival order keeps tiny first.
        queue.mark_failed(giant, 0);
        assert_eq!(queue.attempt_order(0), vec![tiny, giant]);
        let view = queue.request(giant).unwrap().view();
        assert_eq!(aging.effective_cores(&view), 1, "floor, not underflow");
    }

    #[test]
    fn attempt_budget_trips_after_max() {
        let mut queue = q(Arc::new(Fifo));
        queue.set_max_attempts(Some(2));
        let a = queue.push(VnpuRequest::mesh(2, 2));
        assert!(!queue.mark_failed(a, 0));
        assert!(
            queue.mark_failed(a, 1),
            "second failure exhausts the budget"
        );
        queue.remove(a).unwrap();
        assert!(queue.is_empty());
    }
}
