//! Cross-crate integration tests for the cluster layer: multi-chip
//! placement determinism, shared-mapping-cache isolation across
//! heterogeneous chips, and the step-driven serve loop over a fleet.

use std::sync::Arc;
use vnpu::admission::{Backfill, SmallestFirst};
use vnpu::cluster::{
    BestFitFragmentation, ChipPlacement, Cluster, ClusterAdmissionOutcome, ClusterVmId, FirstFit,
    LeastLoaded,
};
use vnpu::drain::ChipSchedState;
use vnpu::{Hypervisor, VnpuRequest};
use vnpu_serve::{ServeConfig, ServeRuntime};
use vnpu_sim::SocConfig;
use vnpu_topo::cache::FreeSet;
use vnpu_topo::mapping::Mapper;
use vnpu_topo::NodeId;

fn small_soc() -> SocConfig {
    SocConfig {
        mesh_width: 4,
        mesh_height: 4,
        ..SocConfig::sim()
    }
}

fn hetero_cluster() -> Cluster {
    Cluster::new(vec![SocConfig::sim(), small_soc()])
}

/// The deterministic request mix used by the placement-trace tests.
fn request_mix(i: u64) -> VnpuRequest {
    match i % 5 {
        0 => VnpuRequest::mesh(2, 2).mem_bytes(32 << 20),
        1 => VnpuRequest::mesh(2, 3).mem_bytes(64 << 20),
        2 => VnpuRequest::mesh(3, 3).mem_bytes(48 << 20),
        3 => VnpuRequest::cores(5).mem_bytes(16 << 20),
        _ => VnpuRequest::mesh(1, 2).mem_bytes(24 << 20),
    }
}

/// Runs a fixed create/destroy script against a fresh cluster and
/// returns the full placement trace (chip + physical cores per request).
fn placement_trace(placement: Arc<dyn ChipPlacement>) -> Vec<(usize, Vec<u32>)> {
    let mut cl = hetero_cluster();
    cl.set_placement(placement);
    let mut trace = Vec::new();
    let mut live: Vec<ClusterVmId> = Vec::new();
    for i in 0..60u64 {
        cl.submit(request_mix(i));
        for ev in cl.process_admissions() {
            if let ClusterAdmissionOutcome::Admitted(id) = ev.outcome {
                let cores: Vec<u32> = cl
                    .vnpu(id)
                    .unwrap()
                    .mapping()
                    .phys_nodes()
                    .iter()
                    .map(|n| n.0)
                    .collect();
                trace.push((id.chip, cores));
                live.push(id);
            }
        }
        // Deterministic churn: every third step retires the oldest.
        if i % 3 == 2 && !live.is_empty() {
            let id = live.remove(0);
            cl.destroy(id).unwrap();
        }
    }
    for id in live {
        cl.destroy(id).unwrap();
    }
    assert_eq!(cl.free_cores(), cl.total_cores(), "no leaked cores");
    trace
}

#[test]
fn first_fit_placement_trace_is_deterministic() {
    let a = placement_trace(Arc::new(FirstFit));
    let b = placement_trace(Arc::new(FirstFit));
    assert_eq!(a, b, "same script, same policy: identical placements");
    assert!(!a.is_empty());
}

#[test]
fn swapping_placement_changes_distribution_not_determinism() {
    let first_fit = placement_trace(Arc::new(FirstFit));
    let least_loaded = placement_trace(Arc::new(LeastLoaded));
    let least_loaded2 = placement_trace(Arc::new(LeastLoaded));
    assert_eq!(least_loaded, least_loaded2, "each policy is deterministic");
    let on_chip1 = |t: &[(usize, Vec<u32>)]| t.iter().filter(|(c, _)| *c == 1).count();
    assert_ne!(
        on_chip1(&first_fit),
        on_chip1(&least_loaded),
        "policies must distribute placements differently"
    );
}

#[test]
fn shared_cache_never_serves_hits_across_heterogeneous_chips() {
    // Alternate identical requests across a 6x6 and a 4x4 chip on idle
    // free regions: with distinct phys_keys the shared cache must keep
    // the chips apart, and every placement must be byte-identical to the
    // chip's own uncached mapping (a cross-chip leak would hand the 4x4
    // chip a 6x6 placement with out-of-range or misrouted cores).
    let mut cl = hetero_cluster();
    for round in 0..3 {
        let mut ids = Vec::new();
        for chip in 0..2 {
            let req = VnpuRequest::mesh(2, 2).mem_bytes(32 << 20);
            let id = cl.create_on(chip, req).unwrap();
            ids.push(id);
        }
        for id in ids {
            let hv = cl.chip(id.chip);
            let placed: Vec<NodeId> = cl.vnpu(id).unwrap().mapping().phys_nodes().to_vec();
            // Recompute directly on this chip's topology with the same
            // free region (the vNPU's own cores released first).
            let mut free = FreeSet::from_free_nodes(
                hv.config().core_count() as usize,
                &hv.free_cores()
                    .iter()
                    .map(|&c| NodeId(c))
                    .collect::<Vec<_>>(),
            );
            free.release_all(&placed);
            let direct = Mapper::new(hv.topology())
                .map_in(
                    &free,
                    cl.vnpu(id).unwrap().virt_topology(),
                    &vnpu_topo::mapping::Strategy::similar_topology().threads(1),
                )
                .unwrap();
            assert_eq!(
                direct.phys_nodes(),
                placed.as_slice(),
                "round {round}: {id} placement must equal the chip-local mapping"
            );
            for n in &placed {
                assert!(
                    n.0 < cl.chip(id.chip).config().core_count(),
                    "{id}: core {n} outside its chip"
                );
            }
        }
        // Identical chips would have shared; heterogeneous must not:
        // after round 0 each chip legitimately hits its *own* entry (two
        // hits per later round), and nothing more.
        assert_eq!(
            cl.cache_stats().hits,
            2 * round,
            "round {round}: no cross-chip hit may occur"
        );
        for id in [0, 1] {
            let vms: Vec<_> = cl.chip(id).vnpus().map(|(vm, _)| *vm).collect();
            for vm in vms {
                cl.destroy(ClusterVmId { chip: id, vm }).unwrap();
            }
        }
    }
}

#[test]
fn cluster_serve_runs_are_deterministic_with_first_fit() {
    let cfg = || {
        let mut c = ServeConfig::cluster(31, 60, vec![SocConfig::sim(), small_soc()]);
        c.traffic.candidate_cap = 200;
        c
    };
    let a = ServeRuntime::new(cfg()).run().unwrap();
    let b = ServeRuntime::new(cfg()).run().unwrap();
    assert_eq!(a, b, "seeded cluster runs must reproduce exactly");
    assert_eq!(a.per_chip.len(), 2);
    assert_eq!(a.leaked_cores, 0);
    assert_eq!(a.leaked_hbm_bytes, 0);
    assert!(a.accepted > 0);
}

#[test]
fn step_driven_cluster_loop_with_policy_swaps_matches_itself() {
    let cfg = || {
        let mut c = ServeConfig::cluster(13, 0, vec![SocConfig::sim(), small_soc()]);
        c.traffic.candidate_cap = 200;
        c
    };
    let drive = || {
        let mut rt = ServeRuntime::new(cfg());
        for _ in 0..30 {
            rt.step().unwrap();
        }
        rt.set_admission_policy(Arc::new(Backfill));
        rt.set_placement(Arc::new(BestFitFragmentation));
        for _ in 0..30 {
            rt.step().unwrap();
        }
        rt.set_admission_policy(Arc::new(SmallestFirst));
        for _ in 0..20 {
            rt.step().unwrap();
        }
        rt.drain().unwrap();
        rt.report()
    };
    let a = drive();
    let b = drive();
    assert_eq!(a, b, "policy swaps at epoch boundaries stay deterministic");
    assert_eq!(a.leaked_cores, 0);
    assert_eq!(a.leaked_hbm_bytes, 0);
    assert_eq!(a.epochs, 80);
}

#[test]
fn identical_chip_models_share_mapping_work() {
    // The shared cache is the point of the cluster: two chips of the
    // same model hit each other's entries for identical (request, free
    // region) tuples.
    let mut cl = Cluster::new(vec![SocConfig::sim(), SocConfig::sim()]);
    cl.create_on(0, VnpuRequest::mesh(3, 3)).unwrap();
    cl.create_on(1, VnpuRequest::mesh(3, 3)).unwrap();
    let stats = cl.cache_stats();
    assert_eq!(stats.misses, 1, "only the first placement maps");
    assert_eq!(stats.hits, 1, "the twin chip reuses it");
}

#[test]
fn reconfig_on_one_chip_does_not_invalidate_the_fleet() {
    let mut cl = Cluster::new(vec![SocConfig::sim(), SocConfig::sim()]);
    let a = cl.create_on(0, VnpuRequest::mesh(2, 2)).unwrap();
    cl.destroy(a).unwrap();
    let b = cl.create_on(1, VnpuRequest::mesh(2, 2)).unwrap();
    cl.destroy(b).unwrap();
    let hits_before = cl.cache_stats().hits;
    cl.chip_mut(0).bump_topology_generation();
    // Chip 0 must re-map; chip 1 must still hit.
    cl.create_on(0, VnpuRequest::mesh(2, 2)).unwrap();
    assert_eq!(cl.cache_stats().hits, hits_before);
    cl.create_on(1, VnpuRequest::mesh(2, 2)).unwrap();
    assert_eq!(cl.cache_stats().hits, hits_before + 1);
}

#[test]
fn heterogeneous_hypervisors_with_custom_hbm() {
    // with_chips accepts pre-built hypervisors with per-chip HBM sizes.
    let cl = Cluster::with_chips(vec![
        Hypervisor::with_hbm_bytes(SocConfig::sim(), 8 << 30),
        Hypervisor::with_hbm_bytes(small_soc(), 2 << 30),
    ]);
    assert_eq!(cl.chip_count(), 2);
    assert_eq!(cl.chip(0).hbm_total_bytes(), 8 << 30);
    assert_eq!(cl.chip(1).hbm_total_bytes(), 2 << 30);
    assert_eq!(cl.total_cores(), 36 + 16);
}

#[test]
fn fleet_fit_hint_skips_drained_chips_and_recovers_on_undrain() {
    // Satellite coverage: under a partial drain the fleet hint must
    // never advertise a window on the unschedulable chip, and the hint
    // cache must not replay pre-drain exhaustion proofs once the chip
    // comes back bigger.
    let mut cl = hetero_cluster(); // chip 0: 6x6 (36), chip 1: 4x4 (16)
    assert_eq!(
        cl.fit_hint().map(|h| h.cores),
        Some(36),
        "idle fleet: the big chip's full window is the hint"
    );
    // Load chip 0 down to a small window, so its pre-drain hints (and
    // exhaustion proofs for everything larger) enter the hint cache.
    let resident = cl.create_on(0, VnpuRequest::mesh(6, 5)).unwrap(); // 6 free
    let pre_drain = cl.fit_hint().expect("something still fits");
    assert!(pre_drain.cores <= 16, "chip 1's idle window wins now");

    cl.begin_drain(0).unwrap();
    let during = cl.fit_hint().expect("chip 1 is still schedulable");
    assert!(
        during.cores <= 16,
        "a draining chip's window must never be advertised: {during:?}"
    );
    // Fill chip 1 almost completely: the only remaining fleet hint is
    // tiny — and must still never name drained chip 0's 6-core island.
    let filler = cl.create_on(1, VnpuRequest::mesh(4, 3)).unwrap();
    let tiny = cl.fit_hint().expect("4 cores remain on chip 1");
    assert!(
        tiny.cores <= 4,
        "the hint is bounded by the schedulable chip: {tiny:?}"
    );

    // Evacuate chip 0 (its tenant is too big for chip 1, so destroy it —
    // an operator cancelling the tenant — and complete the drain).
    cl.destroy(resident).unwrap();
    cl.complete_drain(0).unwrap();
    assert_eq!(cl.fit_hint().map(|h| h.cores), Some(4), "still masked");

    // Hand the chip back: the fleet hint must immediately reflect the
    // *post-drain* free region (36 cores), not any pre-drain proof that
    // only 6 cores fit there.
    cl.undrain(0).unwrap();
    assert_eq!(
        cl.fit_hint().map(|h| h.cores),
        Some(36),
        "undrain restores the full window — stale exhaustion proofs must not shadow it"
    );
    cl.destroy(filler).unwrap();
    assert_eq!(cl.free_cores(), cl.total_cores(), "no leaks");
}

#[test]
fn serve_runtime_rejections_carry_no_drained_chip_hints() {
    // A serving fleet with one chip draining: every fit hint attached to
    // a rejection (and every probe of the fleet hint) stays within the
    // schedulable chips' capacity.
    let mut cfg = ServeConfig::cluster(31, 60, vec![SocConfig::sim(), small_soc()]);
    cfg.traffic.candidate_cap = 200;
    let mut rt = ServeRuntime::new(cfg);
    for _ in 0..10 {
        rt.step().unwrap();
    }
    rt.begin_drain(0).unwrap();
    for _ in 0..50 {
        let ev = rt.step().unwrap();
        assert!(
            ev.admitted.iter().all(|id| id.chip != 0),
            "no placement may land on the draining chip"
        );
        for (_, hint) in &ev.rejected {
            if let Some(h) = hint {
                assert!(
                    h.cores <= 16,
                    "a rejection hint must not advertise the draining 6x6 chip: {h:?}"
                );
            }
        }
        if let Some(h) = rt.fleet_fit_hint() {
            assert!(h.cores <= 16, "fleet probe must skip the draining chip");
        }
    }
    rt.drain().unwrap();
    let r = rt.report();
    assert_eq!(r.leaked_cores, 0);
    assert_eq!(r.leaked_hbm_bytes, 0);
    assert_eq!(
        r.per_chip[0].sched,
        ChipSchedState::Draining,
        "chip 0 still draining at report"
    );
}

#[test]
fn fit_hints_and_snapshots_exclude_faulted_cores() {
    // Satellite coverage for the fault layer: a dead core must vanish
    // from every capacity surface — the chip snapshot, `fits`, the
    // fleet fit hint and its cache — and come back whole on repair.
    let mut cl = hetero_cluster(); // chip 0: 6x6 (36), chip 1: 4x4 (16)
    assert_eq!(
        cl.fit_hint().map(|h| h.cores),
        Some(36),
        "idle fleet: the big chip's full window is the hint"
    );

    // A whole row of chip 0 dies. Every surface must shrink at once.
    for core in 6..12 {
        assert!(cl.fault_core(0, core).unwrap(), "fresh fault");
    }
    let snap = cl.snapshot_of(0);
    assert_eq!(snap.faulted_cores, 6, "the snapshot names the dead row");
    assert_eq!(snap.free_cores, 30, "dead cores are not free");
    assert!(
        snap.largest_free_component <= 30,
        "dead cores are not reachable free capacity"
    );
    assert!(
        !snap.fits_raw(31, 0, false),
        "a spatial request larger than the healthy region must not fit"
    );
    assert!(
        !snap.fits_raw(31, 0, true),
        "dead cores cannot be time-shared either"
    );
    assert!(snap.fits_raw(30, 0, false), "the healthy region still fits");
    let wounded = cl.fit_hint().expect("the fleet still has windows");
    assert!(
        wounded.cores <= 30,
        "no hint may advertise dead capacity: {wounded:?}"
    );

    // Placement respects the mask: a 6x6 mesh no longer fits anywhere.
    assert!(
        cl.create_on(0, VnpuRequest::mesh(6, 6)).is_err(),
        "the full-chip request must bounce off the faulted row"
    );

    // Repair restores the full window immediately — fault-era
    // exhaustion proofs must not shadow the healed capacity.
    for core in 6..12 {
        assert!(cl.repair_core(0, core).unwrap(), "fresh repair");
    }
    assert_eq!(cl.snapshot_of(0).faulted_cores, 0);
    assert_eq!(
        cl.fit_hint().map(|h| h.cores),
        Some(36),
        "repair restores the full window"
    );
    let healed = cl.create_on(0, VnpuRequest::mesh(6, 6)).unwrap();
    cl.destroy(healed).unwrap();
    assert_eq!(cl.free_cores(), cl.total_cores(), "no leaks");
}

/// `Aging`'s documented bounded-wait guarantee, proved against an
/// adversarial arrival stream: a full-chip request stuck behind an
/// endless supply of fresh small requests (each tick one small tenant
/// departs and a new small request arrives to eat the freed slot) must
/// still admit within the documented bound. With
/// `boost_per_attempt = b` the large request overtakes `s`-core rivals
/// after at most `ceil((L - s) / b)` failed attempts (its effective
/// size then sorts ahead); once past `reserve_after_attempts` every
/// further failure blocks the tick, so each departure accrues to the
/// head instead of the fresh arrivals — at most one tick per resident
/// small tenant until the chip is clear. Bound:
/// `ceil((L - s) / b) + residents + 1` ticks from submission.
#[test]
fn aging_bounds_large_request_wait_under_adversarial_small_stream() {
    use vnpu::admission::Aging;

    let mut cl = Cluster::new(vec![SocConfig::sim()]); // 6x6 = 36 cores
    cl.set_admission_policy(Arc::new(Aging {
        boost_per_attempt: 4,
        reserve_after_attempts: 6,
    }));
    cl.set_max_attempts(None); // starvation must resolve, not time out

    // Fill the chip with nine 4-core tenants.
    let mut live_smalls: Vec<ClusterVmId> = Vec::new();
    for _ in 0..9 {
        cl.submit(VnpuRequest::mesh(2, 2));
    }
    for ev in cl.process_admissions() {
        match ev.outcome {
            ClusterAdmissionOutcome::Admitted(id) => live_smalls.push(id),
            ClusterAdmissionOutcome::Rejected(_) => panic!("fill must admit"),
        }
    }
    assert_eq!(live_smalls.len(), 9, "the chip starts full");

    // The starving giant arrives — nothing is free, the first attempt
    // fails silently (deferred, not rejected: no attempt cap is set).
    let big = cl.submit(VnpuRequest::mesh(6, 6));
    assert!(
        cl.process_admissions().is_empty(),
        "a deferred attempt emits no event"
    );

    // Adversarial churn: every tick one small departs and a fresh small
    // arrives to snatch the freed slot.
    let bound = (36u64 - 4).div_ceil(4) + 9 + 1;
    let mut admitted_at = None;
    for tick in 1..=2 * bound {
        if let Some(id) = live_smalls.pop() {
            cl.destroy(id).unwrap();
        }
        cl.submit(VnpuRequest::mesh(2, 2));
        for ev in cl.process_admissions() {
            match ev.outcome {
                ClusterAdmissionOutcome::Admitted(id) if ev.id == big => {
                    let _ = id;
                    admitted_at = Some(tick);
                }
                ClusterAdmissionOutcome::Admitted(id) => live_smalls.push(id),
                ClusterAdmissionOutcome::Rejected(_) => {
                    panic!("no request may be rejected without an attempt cap")
                }
            }
        }
        if admitted_at.is_some() {
            break;
        }
    }
    let waited = admitted_at.expect("the large request must eventually admit");
    assert!(
        waited <= bound,
        "head-of-line reservation must resolve within {bound} ticks, took {waited}"
    );
}
