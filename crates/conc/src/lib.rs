//! **vnpu_conc** — the concurrency sanitizer for the parallel fleet
//! tick.
//!
//! PR 7's "byte-identical at any worker count" contract was enforced
//! only by end-to-end report diffs: a lock-order inversion or a merge
//! that silently depends on completion order would pass as long as
//! today's schedules happened to serialize it. This crate extends the
//! audit philosophy (read-only passes, stable rule ids, mutation-proven
//! detection) into the concurrency dimension with three layers:
//!
//! 1. **Instrumented sync layer** ([`sync`]) — thin [`sync::Mutex`] /
//!    [`sync::Lock`] wrappers adopted by every lock site in the
//!    workspace (the worker pool's shared receiver, the sharded mapping
//!    cache's per-shard locks, the per-chip hint caches). Each wrapper
//!    carries its [`sites::Site`] label and an optional [`ConcProbe`];
//!    with no probe installed the wrappers are a pure pass-through —
//!    **no atomics and no allocation** on the lock path, just one plain
//!    `Option` load and branch — so production runs pay nothing.
//! 2. **Trace analyses** ([`analysis`]) — over the per-thread
//!    acquisition/release traces a [`probe::TraceProbe`] records:
//!    lock-order rank inversions and acquisition-graph cycles
//!    (`CONC-ORDER`), locks held across worker-pool job submission
//!    (`CONC-HOLD`), and shard-lock ownership that drifts with worker
//!    identity instead of staying a pure function of the key hash
//!    (`CONC-SHARD`, checked within and *across* traces taken at
//!    different pool widths).
//! 3. **Schedule explorer + determinism sanitizer** ([`sched`],
//!    [`digest`]) — a seeded permutation schedule replays pool batches
//!    under K permuted interleavings (job pickup order is the
//!    instrumented yield point), while the serve loop records a
//!    per-tick, per-chip, per-phase digest chain (admission merge,
//!    drain/defrag apply, execution fold). Comparing chains pinpoints
//!    the *first* divergent `(tick, phase, chip)` (`CONC-DET`) instead
//!    of leaving a whole-report diff to bisect.
//!
//! Findings are [`ConcFinding`]s under four stable rule ids
//! (`CONC-ORDER`, `CONC-HOLD`, `CONC-SHARD`, `CONC-DET`); `vnpu_audit`
//! carries the same ids in its [`Rule`] catalogue and converts
//! `ConcFinding`s into `AuditFinding`s, so concurrency findings flow
//! through the same reporting channel as the PLAN/ROUTE/FLEET passes.
//! Like those passes, this crate proves itself by mutation: the
//! workspace's `conc_mutations` suite checks that a completion-order
//! merge, a worker-derived shard map and an inverted lock pair are each
//! flagged while the shipped code audits clean at widths 1/2/4/8.
//!
//! [`Rule`]: ConcRule

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

pub mod analysis;
pub mod digest;
pub mod probe;
pub mod sched;
pub mod sites;
pub mod sync;

pub use analysis::{
    analyze_all, analyze_hold_across_submit, analyze_lock_order, analyze_shard_order,
};
pub use digest::{compare_all, compare_chains, Digest, DigestChain, DigestEntry, Phase};
pub use probe::{ConcProbe, EventKind, Trace, TraceEvent, TraceProbe};
pub use sched::ScheduleSeed;
pub use sites::{Site, SiteId};

/// The concurrency rules this crate checks. Every rule has a stable
/// string id (mirrored by `vnpu_audit::Rule`'s CONC entries) used in
/// reports and CI gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum ConcRule {
    /// A lock was acquired against the registry's canonical rank order
    /// (or the acquisition graph built from traces has a cycle) —
    /// a potential deadlock.
    LockOrder,
    /// A thread submitted a worker-pool batch while holding an
    /// instrumented lock — workers that need the same lock deadlock
    /// against the submitter, and the batch serializes at best.
    HoldAcrossSubmit,
    /// A sharded lock's owner drifted for the same key: shard choice
    /// derives from worker identity or pool width instead of being a
    /// pure function of the key hash.
    ShardOrder,
    /// Two runs that must agree diverged; the finding names the first
    /// divergent `(tick, phase, chip)` of the digest chains.
    Determinism,
}

impl ConcRule {
    /// The stable rule id used in reports and the README catalogue.
    pub fn id(self) -> &'static str {
        match self {
            ConcRule::LockOrder => "CONC-ORDER",
            ConcRule::HoldAcrossSubmit => "CONC-HOLD",
            ConcRule::ShardOrder => "CONC-SHARD",
            ConcRule::Determinism => "CONC-DET",
        }
    }
}

impl fmt::Display for ConcRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// How bad a concurrency finding is — mirrors `vnpu_audit::Severity` so
/// conversions are lossless without a dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConcSeverity {
    /// A hazard worth knowing about, not a proven violation.
    Warning,
    /// A violated concurrency invariant.
    Error,
}

impl fmt::Display for ConcSeverity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConcSeverity::Warning => "warning",
            ConcSeverity::Error => "error",
        })
    }
}

/// One concurrency finding: rule, severity, the offending chip when one
/// is identifiable (determinism findings), and a human-readable detail
/// naming the witness (sites, threads, tick/phase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcFinding {
    /// The rule that fired.
    pub rule: ConcRule,
    /// How bad it is.
    pub severity: ConcSeverity,
    /// Offending chip index, when one is identifiable.
    pub chip: Option<usize>,
    /// Human-readable witness (lock sites, thread, tick/phase, ...).
    pub detail: String,
}

impl ConcFinding {
    /// An error-severity finding.
    pub fn error(rule: ConcRule, detail: String) -> Self {
        ConcFinding {
            rule,
            severity: ConcSeverity::Error,
            chip: None,
            detail,
        }
    }

    /// A warning-severity finding.
    pub fn warning(rule: ConcRule, detail: String) -> Self {
        ConcFinding {
            rule,
            severity: ConcSeverity::Warning,
            chip: None,
            detail,
        }
    }

    /// Attributes the finding to a chip.
    #[must_use]
    pub fn on_chip(mut self, chip: usize) -> Self {
        self.chip = Some(chip);
        self
    }
}

impl fmt::Display for ConcFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.severity)?;
        if let Some(chip) = self.chip {
            write!(f, " chip{chip}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Concurrency-instrumentation switches for a serve run, carried on
/// `ServeConfig`. The default (`probe: None`, `schedule: None`,
/// `phase_digests: false`) is the production configuration: every
/// instrumented code path degenerates to a plain `Option` check.
#[derive(Clone, Default)]
pub struct ConcMode {
    /// The probe every instrumented lock and the worker pool report to;
    /// `None` (the default) records nothing and costs nothing.
    pub probe: Option<Arc<dyn ConcProbe>>,
    /// Seeded schedule perturbation: permutes worker-pool batch
    /// submission (and inline execution) order at the pool's
    /// instrumented yield point, so K seeds explore K interleavings.
    pub schedule: Option<ScheduleSeed>,
    /// Record the per-tick / per-chip / per-phase [`DigestChain`] on the
    /// serve runtime, for cross-run [`compare_chains`] checks.
    pub phase_digests: bool,
}

impl ConcMode {
    /// Instrumentation for one exploration run: the given probe, the
    /// given schedule seed, digests on.
    pub fn exploring(probe: Arc<dyn ConcProbe>, schedule: ScheduleSeed) -> Self {
        ConcMode {
            probe: Some(probe),
            schedule: Some(schedule),
            phase_digests: true,
        }
    }

    /// Probe + digests without schedule perturbation (the natural
    /// schedule, observed).
    pub fn probed(probe: Arc<dyn ConcProbe>) -> Self {
        ConcMode {
            probe: Some(probe),
            schedule: None,
            phase_digests: true,
        }
    }
}

impl fmt::Debug for ConcMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcMode")
            .field("probe", &self.probe.as_ref().map(|_| "installed"))
            .field("schedule", &self.schedule)
            .field("phase_digests", &self.phase_digests)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique_and_stable() {
        let rules = [
            ConcRule::LockOrder,
            ConcRule::HoldAcrossSubmit,
            ConcRule::ShardOrder,
            ConcRule::Determinism,
        ];
        let ids: std::collections::BTreeSet<&str> = rules.iter().map(|r| r.id()).collect();
        assert_eq!(ids.len(), rules.len(), "duplicate rule id");
        for id in ids {
            assert!(id.starts_with("CONC-"), "{id}");
        }
    }

    #[test]
    fn finding_display_names_rule_severity_and_chip() {
        let f = ConcFinding::error(ConcRule::Determinism, "tick 3 diverged".into()).on_chip(2);
        let s = f.to_string();
        assert!(s.contains("[CONC-DET]"), "{s}");
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("chip2"), "{s}");
        assert!(s.contains("tick 3 diverged"), "{s}");
    }

    #[test]
    fn conc_mode_default_is_fully_off() {
        let mode = ConcMode::default();
        assert!(mode.probe.is_none());
        assert!(mode.schedule.is_none());
        assert!(!mode.phase_digests);
        let dbg = format!("{mode:?}");
        assert!(dbg.contains("probe: None"), "{dbg}");
    }
}
