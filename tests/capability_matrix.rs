//! Table 1 as executable claims: vNPU is a full-virtualization design
//! whose hypervisor isolates instruction routing, memory, *and*
//! interconnection, with an (effectively) unlimited number of virtual
//! accelerators — unlike MIG's fixed partitions.

use vnpu::mig::MigPartitioner;
use vnpu::vchunk::MemMode;
use vnpu::{Hypervisor, VirtCoreId, VnpuRequest};
use vnpu_mem::{Perm, VirtAddr};
use vnpu_sim::SocConfig;
use vnpu_topo::mapping::Strategy;

#[test]
fn instruction_virtualization_guests_see_virtual_ids() {
    // Guests program virtual core IDs; the vRouter translates. A guest
    // cannot name a physical core outside its own virtual NPU.
    let mut hv = Hypervisor::new(SocConfig::sim());
    let _first = hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
    let vm = hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
    let vnpu = hv.vnpu(vm).unwrap();
    let mut services = vnpu.services(VirtCoreId(0)).unwrap();
    // Virtual IDs 0..3 resolve; 4+ (which would be other tenants'
    // physical cores) fault.
    for v in 0..4u32 {
        let (p, _) = services.router.resolve(v).unwrap();
        assert!(vnpu.mapping().phys_nodes().iter().any(|n| n.0 == p));
    }
    assert!(services.router.resolve(4).is_err());
    assert!(services.router.resolve(99).is_err());
}

#[test]
fn memory_virtualization_guests_cannot_escape_their_ranges() {
    let mut hv = Hypervisor::new(SocConfig::sim());
    let vm_a = hv
        .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))
        .unwrap();
    let vm_b = hv
        .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))
        .unwrap();
    let a = hv.vnpu(vm_a).unwrap();
    let b = hv.vnpu(vm_b).unwrap();
    // Physical ranges are disjoint.
    for ea in a.rtt_entries() {
        for eb in b.rtt_entries() {
            let a_end = ea.pa.value() + ea.size;
            let b_end = eb.pa.value() + eb.size;
            assert!(
                a_end <= eb.pa.value() || b_end <= ea.pa.value(),
                "tenant memory overlaps"
            );
        }
    }
    // Accesses beyond the guest window fault.
    let mut tr = a.services(VirtCoreId(0)).unwrap().translator;
    assert!(tr
        .translate(a.va_base().offset(a.mem_bytes() + 4096), 64, Perm::R)
        .is_err());
    assert!(tr.translate(VirtAddr(0), 64, Perm::R).is_err());
}

#[test]
fn interconnection_virtualization_confines_paths() {
    // With NoC isolation requested, every pairwise path stays inside the
    // virtual NPU's cores (the Table 1 "Interconnection: Yes" row).
    let mut hv = Hypervisor::new(SocConfig::sim());
    // Fragment the free region so the second tenant gets an irregular set.
    hv.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
    let vm = hv
        .create_vnpu(
            VnpuRequest::custom(vnpu_topo::Topology::line(5))
                .noc_isolation(true)
                .strategy(Strategy::similar_topology().candidate_cap(2000)),
        )
        .unwrap();
    let vnpu = hv.vnpu(vm).unwrap();
    let own: Vec<u32> = vnpu.mapping().phys_nodes().iter().map(|n| n.0).collect();
    let services = vnpu.services(VirtCoreId(0)).unwrap();
    for &src in &own {
        for &dst in &own {
            if src == dst {
                continue;
            }
            let path = services.router.path(src, dst).unwrap();
            for hop in &path {
                assert!(
                    own.contains(hop),
                    "isolated vNPU path {src}->{dst} crosses foreign core {hop}"
                );
            }
        }
    }
}

#[test]
fn unlimited_virtual_accelerators_vs_migs_fixed_partitions() {
    let cfg = SocConfig::sim();
    // MIG: exactly two partitions, then NoPartition.
    let mut mig = MigPartitioner::standard(&cfg);
    assert!(mig.allocate(4).is_ok());
    assert!(mig.allocate(4).is_ok());
    assert!(mig.allocate(4).is_err(), "MIG caps the tenant count");

    // vNPU: as many tenants as cores.
    let mut hv = Hypervisor::new(cfg);
    let mut created = 0;
    while hv
        .create_vnpu(VnpuRequest::mesh(1, 1).mem_bytes(1 << 20))
        .is_ok()
    {
        created += 1;
    }
    assert_eq!(created, 36, "one single-core tenant per physical core");
}

#[test]
fn full_virtualization_guest_programs_are_design_agnostic() {
    // The same compiled program binds under vChunk, IOTLB, or physical
    // memory services without modification (guests are unaware of the
    // virtualization mechanism — "full virtualization").
    let mut hv = Hypervisor::new(SocConfig::sim());
    let vm = hv
        .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(64 << 20))
        .unwrap();
    let vnpu = hv.vnpu(vm).unwrap();
    for mode in [
        MemMode::Physical,
        MemMode::vchunk(),
        MemMode::Page { tlb_entries: 32 },
    ] {
        let mut s = vnpu
            .services_with(VirtCoreId(0), mode, vnpu.route_policy())
            .unwrap();
        if mode == MemMode::Physical {
            continue; // identity translator accepts anything
        }
        let t = s
            .translator
            .translate(vnpu.va_base(), 2048, Perm::R)
            .unwrap();
        // Both real translators agree on the physical mapping.
        assert_eq!(
            t.pa,
            vnpu.rtt_entries()[0].pa,
            "translators must agree on the plan"
        );
    }
}
