//! NoC routing static analysis: deadlock freedom and inter-tenant link
//! isolation, proven from the resident tenants' routing tables and the
//! physical mesh link graph.
//!
//! The pass reconstructs the exact per-flow paths the vRouters would
//! take — dimension-order (X-then-Y) for plain tenants, confined
//! shortest paths (with the router's documented DOR fallback) for
//! tenants that requested NoC isolation — and then checks three
//! properties:
//!
//! * **Table soundness** — every routing-table entry resolves to the
//!   physical core the tenant's mapping actually granted (`ROUTE-TABLE`).
//! * **Isolation** — no physical link carries traffic of two tenants
//!   when either of them was promised NoC isolation (`ROUTE-ISO`), and
//!   no confined tenant's path escapes its own cores (`ROUTE-CONF`).
//!   Strict mode additionally reports *any* cross-tenant link sharing
//!   (`ROUTE-SHARE`, warning): ordinary DOR fleets share links by
//!   design, so that rule is informational.
//! * **Deadlock freedom** — the channel-dependency graph over directed
//!   mesh links (one edge per consecutive hop pair of any flow) is
//!   acyclic (`ROUTE-CDG`). X-then-Y routing is provably acyclic; the
//!   check covers confined direction-override paths, where a cycle is a
//!   genuine wormhole-deadlock hazard.

use crate::{AuditFinding, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use vnpu::{Hypervisor, VirtCoreId, VmId};
use vnpu_topo::route::{confined_path, dor_path};
use vnpu_topo::{NodeId, Topology};

/// A directed physical mesh link `from → to` (adjacent cores).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Link {
    /// Upstream core.
    pub from: u32,
    /// Downstream core.
    pub to: u32,
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}\u{2192}p{}", self.from, self.to)
    }
}

/// One tenant's routing facts, as extracted from the hypervisor (or
/// hand-built by tests). All fields are public so property tests can
/// construct corrupted instances directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantRoutes {
    /// The tenant.
    pub vm: VmId,
    /// Whether the tenant was promised NoC isolation (confined routing).
    pub isolated: bool,
    /// Physical core backing each virtual core, in virtual-core order,
    /// *as the routing table resolves it* — what packets actually target.
    pub table_cores: Vec<u32>,
    /// Physical cores the tenant's mapping grants, in virtual-core
    /// order — the ownership ground truth the table must agree with.
    pub owned_cores: Vec<u32>,
}

/// Extracts [`TenantRoutes`] for every resident tenant of a chip, in
/// VM-ID order. Virtual cores whose routing-table lookup fails are
/// dropped from `table_cores`, which [`audit_routing`] reports as a
/// table/mapping mismatch.
pub fn collect_tenant_routes(hv: &Hypervisor) -> Vec<TenantRoutes> {
    hv.vnpus()
        .map(|(&vm, v)| TenantRoutes {
            vm,
            isolated: v.has_noc_isolation(),
            table_cores: (0..v.core_count())
                .filter_map(|i| v.routing_table().lookup(VirtCoreId(i)).map(|p| p.0))
                .collect(),
            owned_cores: v.mapping().phys_nodes().iter().map(|n| n.0).collect(),
        })
        .collect()
}

/// The paths this tenant's all-pairs traffic takes on the physical
/// mesh, as node-ID sequences. Unroutable pairs are skipped (the
/// confined router's DOR fallback is modeled, so an isolated tenant
/// with a disconnected region yields DOR paths — which the escape rule
/// then flags).
fn tenant_paths(topo: &Topology, t: &TenantRoutes) -> Vec<Vec<u32>> {
    let owned: Vec<NodeId> = t.owned_cores.iter().map(|&c| NodeId(c)).collect();
    let mut paths = Vec::new();
    for &src in &t.table_cores {
        for &dst in &t.table_cores {
            if src == dst {
                continue;
            }
            let path = if t.isolated {
                confined_path(topo, &owned, NodeId(src), NodeId(dst))
                    .or_else(|_| dor_path(topo, NodeId(src), NodeId(dst)))
            } else {
                dor_path(topo, NodeId(src), NodeId(dst))
            };
            if let Ok(p) = path {
                paths.push(p.iter().map(|n| n.0).collect());
            }
        }
    }
    paths
}

/// The directed links a path traverses.
fn path_links(path: &[u32]) -> impl Iterator<Item = Link> + '_ {
    path.windows(2).map(|w| Link {
        from: w[0],
        to: w[1],
    })
}

/// Searches the channel-dependency graph of the given paths for a
/// cycle. Nodes are directed links; every consecutive hop pair of a
/// path contributes a dependency edge. Returns one witness cycle (as
/// the link sequence, first link repeated at the end) or `None` when
/// the graph is acyclic — i.e. the routing function is deadlock-free
/// for these flows.
pub fn find_cdg_cycle(paths: &[Vec<u32>]) -> Option<Vec<Link>> {
    let mut deps: BTreeMap<Link, BTreeSet<Link>> = BTreeMap::new();
    for path in paths {
        let links: Vec<Link> = path_links(path).collect();
        for w in links.windows(2) {
            deps.entry(w[0]).or_default().insert(w[1]);
            deps.entry(w[1]).or_default();
        }
        for &l in &links {
            deps.entry(l).or_default();
        }
    }
    // Iterative three-color DFS with an explicit parent stack so a
    // witness cycle can be reconstructed.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: BTreeMap<Link, Color> = deps.keys().map(|&l| (l, Color::White)).collect();
    let nodes: Vec<Link> = deps.keys().copied().collect();
    for &start in &nodes {
        if color[&start] != Color::White {
            continue;
        }
        // Stack of (node, next-neighbor-index); `trail` mirrors the gray
        // chain for cycle extraction.
        let mut stack: Vec<(Link, usize)> = vec![(start, 0)];
        color.insert(start, Color::Gray);
        let mut trail: Vec<Link> = vec![start];
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs: Vec<Link> = deps[&node].iter().copied().collect();
            if *idx < succs.len() {
                let next = succs[*idx];
                *idx += 1;
                match color[&next] {
                    Color::White => {
                        color.insert(next, Color::Gray);
                        stack.push((next, 0));
                        trail.push(next);
                    }
                    Color::Gray => {
                        // Found a back edge: the cycle is the trail from
                        // `next` onward, closed with `next` again.
                        let from = trail.iter().position(|&l| l == next).unwrap_or(0);
                        let mut cycle: Vec<Link> = trail[from..].to_vec();
                        cycle.push(next);
                        return Some(cycle);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
                trail.pop();
            }
        }
    }
    None
}

/// Runs the routing static analysis over a set of tenants on the given
/// physical topology. With `strict` set, any cross-tenant link sharing
/// is additionally reported as a warning (`ROUTE-SHARE`) — useful when
/// characterizing interference, noise when auditing a plain DOR fleet.
pub fn audit_routing(topo: &Topology, tenants: &[TenantRoutes], strict: bool) -> Vec<AuditFinding> {
    let mut findings = Vec::new();

    // ROUTE-TABLE: the table must resolve exactly the granted cores.
    for t in tenants {
        if t.table_cores != t.owned_cores {
            let mismatch = t
                .table_cores
                .iter()
                .zip(&t.owned_cores)
                .position(|(a, b)| a != b)
                .unwrap_or_else(|| t.table_cores.len().min(t.owned_cores.len()));
            let mut f = AuditFinding::error(
                Rule::RouteTableMismatch,
                format!(
                    "routing table resolves {} cores {:?} but the mapping grants {} cores \
                     {:?} (first divergence at virtual core {mismatch})",
                    t.table_cores.len(),
                    t.table_cores,
                    t.owned_cores.len(),
                    t.owned_cores
                ),
            )
            .vm(t.vm);
            if let Some(&c) = t.table_cores.get(mismatch) {
                f = f.core(c);
            }
            findings.push(f);
        }
    }

    // Reconstruct every tenant's flows once.
    let tenant_flows: Vec<(VmId, bool, Vec<Vec<u32>>)> = tenants
        .iter()
        .map(|t| (t.vm, t.isolated, tenant_paths(topo, t)))
        .collect();

    // ROUTE-CONF: a confined tenant's traffic must stay on its own cores.
    for (t, (_, _, flows)) in tenants.iter().zip(&tenant_flows) {
        if !t.isolated {
            continue;
        }
        let owned: BTreeSet<u32> = t.owned_cores.iter().copied().collect();
        let mut escaped: BTreeSet<u32> = BTreeSet::new();
        for path in flows {
            for &node in path {
                if !owned.contains(&node) {
                    escaped.insert(node);
                }
            }
        }
        for core in escaped {
            findings.push(
                AuditFinding::error(
                    Rule::RouteEscapedRegion,
                    "confined route crosses a core outside the tenant's allocation \
                     (DOR fallback in effect — isolation not actually deployed)"
                        .to_string(),
                )
                .vm(t.vm)
                .core(core),
            );
        }
    }

    // Link occupancy: which tenants put traffic on each directed link.
    let mut link_users: BTreeMap<Link, BTreeSet<VmId>> = BTreeMap::new();
    let isolated: BTreeSet<VmId> = tenants
        .iter()
        .filter(|t| t.isolated)
        .map(|t| t.vm)
        .collect();
    for (vm, _, flows) in &tenant_flows {
        for path in flows {
            for link in path_links(path) {
                link_users.entry(link).or_default().insert(*vm);
            }
        }
    }
    for (link, users) in &link_users {
        if users.len() < 2 {
            continue;
        }
        let vms: Vec<VmId> = users.iter().copied().collect();
        if let Some(&iso) = vms.iter().find(|vm| isolated.contains(vm)) {
            let others: Vec<String> = vms
                .iter()
                .filter(|&&vm| vm != iso)
                .map(|vm| vm.to_string())
                .collect();
            findings.push(
                AuditFinding::error(
                    Rule::RouteIsolationLeak,
                    format!(
                        "link {link} carries traffic of isolated tenant {iso} and of {} — \
                         NoC isolation violated",
                        others.join(", ")
                    ),
                )
                .vm(iso)
                .core(link.from),
            );
        } else if strict {
            let names: Vec<String> = vms.iter().map(|vm| vm.to_string()).collect();
            findings.push(
                AuditFinding::warning(
                    Rule::RouteSharedLink,
                    format!("link {link} is shared by {}", names.join(", ")),
                )
                .core(link.from),
            );
        }
    }

    // ROUTE-CDG: the union of all flows must be deadlock-free.
    let all_paths: Vec<Vec<u32>> = tenant_flows
        .iter()
        .flat_map(|(_, _, flows)| flows.iter().cloned())
        .collect();
    if let Some(cycle) = find_cdg_cycle(&all_paths) {
        let chain: Vec<String> = cycle.iter().map(|l| l.to_string()).collect();
        findings.push(AuditFinding::error(
            Rule::RouteDeadlockCycle,
            format!(
                "channel-dependency cycle: {} — wormhole deadlock possible",
                chain.join(" \u{2192} ")
            ),
        ));
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnpu::{Hypervisor, VnpuRequest};
    use vnpu_sim::SocConfig;

    fn rules(findings: &[AuditFinding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    fn tenant(vm: u32, isolated: bool, cores: &[u32]) -> TenantRoutes {
        TenantRoutes {
            vm: VmId(vm),
            isolated,
            table_cores: cores.to_vec(),
            owned_cores: cores.to_vec(),
        }
    }

    #[test]
    fn dor_fleet_shares_links_without_default_findings() {
        let topo = Topology::mesh2d(6, 6);
        // Two plain tenants in the same rows: DOR traffic overlaps.
        let tenants = vec![tenant(0, false, &[0, 1, 2]), tenant(1, false, &[3, 4, 5])];
        assert!(audit_routing(&topo, &tenants, false).is_empty());
        // Strict mode surfaces the sharing as warnings only.
        let strict = audit_routing(&topo, &tenants, true);
        assert!(strict.iter().all(|f| f.rule == Rule::RouteSharedLink));
    }

    #[test]
    fn overlapped_tables_name_the_shared_link() {
        let topo = Topology::mesh2d(6, 6);
        // An isolated tenant and a plain tenant whose (corrupted) table
        // routes straight through the isolated region.
        let iso = tenant(0, true, &[7, 8, 13, 14]);
        let crossing = tenant(1, false, &[6, 9]); // DOR 6->7->8->9
        let findings = audit_routing(&topo, &[iso, crossing], false);
        let leak = findings
            .iter()
            .find(|f| f.rule == Rule::RouteIsolationLeak)
            .expect("isolation leak must be reported");
        assert_eq!(leak.vm, Some(VmId(0)));
        assert!(
            leak.detail.contains("p7\u{2192}p8"),
            "the exact link must be named: {}",
            leak.detail
        );
        assert!(
            leak.detail.contains("vm1"),
            "the other tenant must be named: {}",
            leak.detail
        );
    }

    #[test]
    fn single_core_tenants_are_trivially_clean() {
        let topo = Topology::mesh2d(6, 6);
        let tenants = vec![tenant(0, true, &[0]), tenant(1, true, &[35])];
        assert!(audit_routing(&topo, &tenants, true).is_empty());
    }

    #[test]
    fn mesh_wrap_pair_is_clean_under_dor_but_escapes_when_confined() {
        let topo = Topology::mesh2d(6, 6);
        // Cores 5 and 6 are consecutive IDs but NOT mesh-adjacent (5 ends
        // row 0, 6 starts row 1): DOR legally crosses the row.
        let plain = vec![tenant(0, false, &[5, 6])];
        assert!(audit_routing(&topo, &plain, false).is_empty());
        // The same wrap pair promised isolation has no confined path, so
        // the router falls back to DOR — the audit must expose that the
        // promise is not actually kept.
        let confined = vec![tenant(0, true, &[5, 6])];
        let findings = audit_routing(&topo, &confined, false);
        assert!(
            rules(&findings).contains(&Rule::RouteEscapedRegion),
            "{findings:?}"
        );
    }

    #[test]
    fn adjacent_disjoint_rectangles_audit_clean() {
        let topo = Topology::mesh2d(6, 6);
        // Two isolated 2x2 rectangles sharing a border but no cores.
        let left = tenant(0, true, &[0, 1, 6, 7]);
        let right = tenant(1, true, &[2, 3, 8, 9]);
        let findings = audit_routing(&topo, &[left, right], false);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn table_mapping_mismatch_is_flagged() {
        let topo = Topology::mesh2d(6, 6);
        let mut t = tenant(0, false, &[0, 1, 2, 3]);
        t.table_cores[2] = 14; // table points somewhere the mapping never granted
        let findings = audit_routing(&topo, &[t], false);
        let hit = findings
            .iter()
            .find(|f| f.rule == Rule::RouteTableMismatch)
            .expect("mismatch must be reported");
        assert_eq!(hit.vm, Some(VmId(0)));
        assert_eq!(hit.core, Some(14));
    }

    #[test]
    fn crafted_turn_cycle_is_a_deadlock_finding() {
        // Four L-shaped flows around the 2x2 block {0,1,6,7} of a 6-wide
        // mesh, each turning into the next — the textbook CDG cycle.
        let paths = vec![vec![0, 1, 7], vec![1, 7, 6], vec![7, 6, 0], vec![6, 0, 1]];
        let cycle = find_cdg_cycle(&paths).expect("cycle must be found");
        assert!(cycle.len() >= 4);
        assert_eq!(cycle.first(), cycle.last());
        // And through the full audit it surfaces as ROUTE-CDG: a tenant
        // whose table order induces those flows cannot exist via the
        // shortest-path router, so drive the checker directly.
        let topo = Topology::mesh2d(6, 6);
        let t = tenant(0, true, &[0, 1, 6, 7]);
        let findings = audit_routing(&topo, &[t], false);
        assert!(
            !rules(&findings).contains(&Rule::RouteDeadlockCycle),
            "the real confined router must remain deadlock-free: {findings:?}"
        );
    }

    #[test]
    fn dor_is_deadlock_free_by_construction() {
        let topo = Topology::mesh2d(6, 6);
        let everyone = tenant(0, false, &(0..36).collect::<Vec<u32>>());
        let findings = audit_routing(&topo, &[everyone], false);
        assert!(
            !rules(&findings).contains(&Rule::RouteDeadlockCycle),
            "X-then-Y routing is provably acyclic: {findings:?}"
        );
    }

    #[test]
    fn live_hypervisor_fleet_collects_and_audits_clean() {
        let mut hv = Hypervisor::new(SocConfig::sim());
        hv.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        hv.create_vnpu(VnpuRequest::mesh(3, 2).noc_isolation(true))
            .unwrap();
        hv.create_vnpu(VnpuRequest::cores(1)).unwrap();
        let tenants = collect_tenant_routes(&hv);
        assert_eq!(tenants.len(), 3);
        assert!(tenants.iter().all(|t| t.table_cores == t.owned_cores));
        let findings = audit_routing(hv.topology(), &tenants, false);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
