//! Per-virtual-NPU memory access counting and bandwidth limiting.
//!
//! "vChunk implements an Access Counter to locally track its memory access
//! counts during the monitored time window ... The NPU controller can set
//! the maximum memory bandwidth for different virtual NPUs according to
//! user's requirements" (§4.2). Without the limit, co-located virtual NPUs
//! contend on HBM (the interference measured in Figure 15's multi-instance
//! UVM bars).

/// Sliding-window byte counter with an optional per-window budget.
///
/// Time is in core cycles (the caller's clock domain).
#[derive(Debug, Clone)]
pub struct AccessCounter {
    window_cycles: u64,
    budget_per_window: Option<u64>,
    window_start: u64,
    used_in_window: u64,
    total_bytes: u64,
    total_accesses: u64,
    throttle_events: u64,
    throttle_cycles: u64,
}

impl AccessCounter {
    /// Creates a counter with the given monitoring window; `budget` is the
    /// maximum bytes admitted per window (`None` = unlimited).
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles == 0`.
    pub fn new(window_cycles: u64, budget: Option<u64>) -> Self {
        assert!(window_cycles > 0, "window must be positive");
        AccessCounter {
            window_cycles,
            budget_per_window: budget,
            window_start: 0,
            used_in_window: 0,
            total_bytes: 0,
            total_accesses: 0,
            throttle_events: 0,
            throttle_cycles: 0,
        }
    }

    /// Unlimited counter (records statistics only).
    pub fn unlimited(window_cycles: u64) -> Self {
        Self::new(window_cycles, None)
    }

    /// Records an access of `bytes` at time `now` and returns the number of
    /// cycles the access must be delayed to respect the bandwidth budget
    /// (0 when admitted immediately).
    ///
    /// An access larger than a whole window's budget is spread over
    /// multiple windows (delayed to the start of the window in which its
    /// final byte fits).
    pub fn record(&mut self, now: u64, bytes: u64) -> u64 {
        self.total_accesses += 1;
        self.total_bytes += bytes;
        self.roll_to(now);
        let Some(budget) = self.budget_per_window else {
            self.used_in_window += bytes;
            return 0;
        };
        if self.used_in_window + bytes <= budget {
            self.used_in_window += bytes;
            return 0;
        }
        // Delay into the window where the remaining budget fits.
        let deficit = self.used_in_window + bytes - budget;
        let windows_ahead = deficit.div_ceil(budget.max(1));
        let admit_at = self.window_start + windows_ahead * self.window_cycles;
        let delay = admit_at - now;
        self.window_start = admit_at;
        self.used_in_window = deficit - (windows_ahead - 1) * budget.max(1);
        self.throttle_events += 1;
        self.throttle_cycles += delay;
        delay
    }

    fn roll_to(&mut self, now: u64) {
        if now >= self.window_start + self.window_cycles {
            let advanced = (now - self.window_start) / self.window_cycles;
            self.window_start += advanced * self.window_cycles;
            self.used_in_window = 0;
        }
    }

    /// Total bytes recorded.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total accesses recorded.
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Number of accesses that were delayed.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    /// Total delay imposed, in cycles.
    pub fn throttle_cycles(&self) -> u64 {
        self.throttle_cycles
    }

    /// Configured budget per window in bytes, if limited.
    pub fn budget_per_window(&self) -> Option<u64> {
        self.budget_per_window
    }

    /// Achieved bandwidth in bytes/cycle over `[0, now]`.
    pub fn achieved_bandwidth(&self, now: u64) -> f64 {
        if now == 0 {
            0.0
        } else {
            self.total_bytes as f64 / now as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_delays() {
        let mut c = AccessCounter::unlimited(1000);
        for t in 0..100u64 {
            assert_eq!(c.record(t * 10, 1 << 20), 0);
        }
        assert_eq!(c.total_bytes(), 100 << 20);
        assert_eq!(c.throttle_events(), 0);
    }

    #[test]
    fn within_budget_no_delay() {
        let mut c = AccessCounter::new(1000, Some(4096));
        assert_eq!(c.record(0, 2048), 0);
        assert_eq!(c.record(10, 2048), 0);
    }

    #[test]
    fn over_budget_delays_to_next_window() {
        let mut c = AccessCounter::new(1000, Some(4096));
        assert_eq!(c.record(0, 4096), 0);
        let delay = c.record(100, 2048);
        assert_eq!(delay, 900, "must wait for the next window boundary");
        assert_eq!(c.throttle_events(), 1);
    }

    #[test]
    fn window_roll_resets_usage() {
        let mut c = AccessCounter::new(1000, Some(4096));
        assert_eq!(c.record(0, 4096), 0);
        // Next window: budget refreshed.
        assert_eq!(c.record(1500, 4096), 0);
    }

    #[test]
    fn giant_access_spreads_windows() {
        let mut c = AccessCounter::new(1000, Some(1024));
        // 4 KiB access with 1 KiB/window: needs ~3 extra windows.
        let delay = c.record(0, 4096);
        assert!(delay >= 2000, "got {delay}");
        // Subsequent access must observe the shifted window accounting.
        let d2 = c.record(delay, 1024);
        assert!(d2 > 0 || c.throttle_events() >= 1);
    }

    #[test]
    fn bandwidth_accounting() {
        let mut c = AccessCounter::unlimited(100);
        c.record(0, 500);
        c.record(100, 500);
        assert_eq!(c.achieved_bandwidth(1000), 1.0);
        assert_eq!(c.achieved_bandwidth(0), 0.0);
    }

    #[test]
    fn throttled_counter_halves_effective_bandwidth() {
        // Two identical streams, one capped at half rate: the capped one
        // must accumulate delay roughly equal to the stream time.
        let mut unlimited = AccessCounter::unlimited(1000);
        let mut capped = AccessCounter::new(1000, Some(2048));
        let mut t_un = 0u64;
        let mut t_cap = 0u64;
        for _ in 0..64 {
            t_un += 100;
            unlimited.record(t_un, 4096);
            t_cap += 100;
            t_cap += capped.record(t_cap, 4096);
        }
        assert!(
            t_cap > t_un * 3 / 2,
            "capped stream must run slower: {t_cap} vs {t_un}"
        );
    }
}
