//! Hardware resource cost model — the Figure 19 FPGA synthesis analysis,
//! rebuilt analytically.
//!
//! We cannot synthesize RTL in this reproduction, so resources are
//! estimated from a bit-level inventory of the added state plus standard
//! FPGA mapping rules (1 FF per state bit; 1 LUT per ~2 combinational
//! bit-ops such as comparators/muxes; wide SRAM-backed tables map to
//! LUTRAMs at 64 bits each). The *baseline* tile/controller sizes come
//! from published Gemmini FPGA reports (a 16×16 int8 Gemmini tile
//! synthesizes to roughly 60k LUTs / 40k FFs on Xilinx parts). The claim
//! under test is Figure 19's: both vNPU (vRouter + vChunk) and Kim's UVM
//! (IOTLB + MMU) cost only ≈2% extra Total LUTs/FFs, and a 128-entry
//! routing table needs minimal FF storage with near-zero LUTs.

use crate::routing_table::RT_ENTRY_BITS;
use vnpu_mem::rtt::RANGE_TLB_ENTRY_BITS;

/// FPGA resource bundle (the four bars of Figure 19).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FpgaResources {
    /// Total LUTs (logic + memory LUTs).
    pub total_luts: u64,
    /// Logic-only LUTs.
    pub logic_luts: u64,
    /// LUTs used as distributed RAM.
    pub lutrams: u64,
    /// Flip-flops.
    pub ffs: u64,
}

impl FpgaResources {
    /// Element-wise sum.
    pub fn plus(self, other: FpgaResources) -> FpgaResources {
        FpgaResources {
            total_luts: self.total_luts + other.total_luts,
            logic_luts: self.logic_luts + other.logic_luts,
            lutrams: self.lutrams + other.lutrams,
            ffs: self.ffs + other.ffs,
        }
    }

    /// Percentage overhead of `self` relative to `base`, per metric, in
    /// the Figure 19 bar order `[total, logic, lutram, ff]`.
    pub fn percent_of(self, base: FpgaResources) -> [f64; 4] {
        let pct = |add: u64, b: u64| {
            if b == 0 {
                0.0
            } else {
                100.0 * add as f64 / b as f64
            }
        };
        [
            pct(self.total_luts, base.total_luts),
            pct(self.logic_luts, base.logic_luts),
            pct(self.lutrams, base.lutrams),
            pct(self.ffs, base.ffs),
        ]
    }
}

/// Baseline NPU core (Gemmini-like 16×16 tile) resources.
pub fn baseline_core() -> FpgaResources {
    FpgaResources {
        total_luts: 62_000,
        logic_luts: 57_000,
        lutrams: 5_000,
        ffs: 42_000,
    }
}

/// Baseline NPU controller resources.
pub fn baseline_controller() -> FpgaResources {
    FpgaResources {
        total_luts: 18_000,
        logic_luts: 16_500,
        lutrams: 1_500,
        ffs: 12_000,
    }
}

/// Estimates resources for a block of `state_bits` of registers plus
/// `logic_ops` bit-level combinational operations and `table_bits` of
/// SRAM-like storage.
fn estimate(state_bits: u64, logic_ops: u64, table_bits: u64) -> FpgaResources {
    let logic_luts = logic_ops.div_ceil(2);
    let lutrams = table_bits.div_ceil(64);
    FpgaResources {
        total_luts: logic_luts + lutrams,
        logic_luts,
        lutrams,
        ffs: state_bits,
    }
}

/// vNPU additions to the NPU controller: the instruction vRouter —
/// VMID/core-ID comparators, the translation mux, table walk FSM, plus a
/// cached translation register.
pub fn vnpu_controller_overhead(rt_entries: u64) -> FpgaResources {
    // FSM + cached entry + request latches.
    let state = 220;
    // Comparators on VMID(8) + vCoreID(16), output mux 16b, shape math.
    let logic = 700;
    let table = rt_entries * RT_ENTRY_BITS;
    estimate(state, logic, table)
}

/// vNPU additions per NPU core: NoC vRouter (destination rewrite, direction
/// lookup) + vChunk (range TLB, RTT walker, access counter).
pub fn vnpu_core_overhead(range_tlb_entries: u64) -> FpgaResources {
    // vRouter: rewrite register + direction FSM.
    let vrouter = estimate(180, 520, 0);
    // vChunk: range TLB entries are CAM-like (comparators per entry), the
    // walker FSM, RTT_CUR/BASE/END registers, 32-bit access counter.
    let cam_logic = range_tlb_entries * 96; // two 48-bit bound compares
    let vchunk = estimate(
        range_tlb_entries * u64::from(RANGE_TLB_ENTRY_BITS) + 140,
        cam_logic + 400,
        0,
    );
    vrouter.plus(vchunk)
}

/// Kim's (AuRORA-style UVM) additions per core: IOTLB + page-walk MMU.
pub fn kim_core_overhead(iotlb_entries: u64) -> FpgaResources {
    // IOTLB entries: VPN(36)+PFN(36)+perm — CAM compare per entry; page
    // walker FSM is larger than a range walker (multi-level).
    let cam_logic = iotlb_entries * 72;
    estimate(iotlb_entries * 76 + 260, cam_logic + 760, 0)
}

/// Kim's additions to the controller (UVM fault handling, queues).
pub fn kim_controller_overhead() -> FpgaResources {
    estimate(300, 800, 0)
}

/// Standalone routing-table storage cost (the Figure 19 right-most group:
/// "a 128-entry configuration requires minimal FF resources ... with LUT
/// requirements nearly zero").
pub fn routing_table_cost(entries: u64) -> FpgaResources {
    FpgaResources {
        total_luts: entries / 16, // addressing only
        logic_luts: entries / 16,
        lutrams: 0,
        ffs: entries * RT_ENTRY_BITS,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig19_overheads_are_about_two_percent() {
        let ctrl = vnpu_controller_overhead(128).percent_of(baseline_controller());
        let core = vnpu_core_overhead(4).percent_of(baseline_core());
        // Total LUTs and FFs within "about 2%" (we accept < 10% which is
        // the figure's y-axis range).
        assert!(ctrl[0] < 10.0, "controller total LUTs {:.1}%", ctrl[0]);
        assert!(ctrl[3] < 10.0, "controller FFs {:.1}%", ctrl[3]);
        assert!(core[0] < 5.0, "core total LUTs {:.1}%", core[0]);
        assert!(core[3] < 5.0, "core FFs {:.1}%", core[3]);
        // And non-trivial (the hardware is not free).
        assert!(core[0] > 0.1);
    }

    #[test]
    fn vnpu_and_kim_are_comparable() {
        // "Both configurations require only an additional 2% of Total LUTs
        // and FFs": neither design dominates the other by more than ~3x.
        let v = vnpu_core_overhead(4);
        let k = kim_core_overhead(32);
        let ratio = v.total_luts as f64 / k.total_luts as f64;
        assert!((0.2..5.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn routing_table_ff_dominated() {
        let rt = routing_table_cost(128);
        assert_eq!(rt.ffs, 128 * RT_ENTRY_BITS);
        assert!(rt.total_luts < rt.ffs / 100, "LUTs must be nearly zero");
    }

    #[test]
    fn percent_math() {
        let add = FpgaResources {
            total_luts: 10,
            logic_luts: 5,
            lutrams: 5,
            ffs: 20,
        };
        let base = FpgaResources {
            total_luts: 1000,
            logic_luts: 500,
            lutrams: 500,
            ffs: 1000,
        };
        assert_eq!(add.percent_of(base), [1.0, 1.0, 1.0, 2.0]);
        assert_eq!(add.percent_of(FpgaResources::default()), [0.0; 4]);
    }

    #[test]
    fn plus_sums() {
        let a = vnpu_core_overhead(4);
        let b = vnpu_controller_overhead(16);
        let s = a.plus(b);
        assert_eq!(s.ffs, a.ffs + b.ffs);
        assert_eq!(s.total_luts, a.total_luts + b.total_luts);
    }

    #[test]
    fn bigger_tlb_costs_more() {
        assert!(kim_core_overhead(32).total_luts > kim_core_overhead(4).total_luts);
        assert!(vnpu_core_overhead(16).ffs > vnpu_core_overhead(4).ffs);
    }
}
