//! NoC non-interference, hands on: the Figure 5 scenario where default
//! dimension-order routing would push one tenant's packets through
//! another tenant's cores, and the direction-override fix.
//!
//! ```sh
//! cargo run --example noc_interference
//! ```

use vnpu::vrouter::{RoutePolicy, VRouterNoc};
use vnpu_sim::noc::NocRouter;
use vnpu_topo::{route, NodeId, Topology};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's Figure 5: a 4x3 physical mesh; vNPU2 owns the irregular
    // set {3, 6, 7, 11}.
    let topo = Topology::mesh2d(4, 3);
    let vnpu2 = vec![3u32, 6, 7, 11];
    println!("physical mesh 4x3; vNPU2 owns cores {vnpu2:?}");

    // Virtual core 3 (physical 11) sends to virtual core 1 (physical 6).
    let dor = VRouterNoc::new(topo.clone(), vnpu2.clone(), RoutePolicy::Dor);
    let confined = VRouterNoc::new(topo.clone(), vnpu2.clone(), RoutePolicy::Confined);

    let dor_path = dor.path(11, 6)?;
    let confined_path = confined.path(11, 6)?;
    println!("\nDOR path 11 -> 6:      {dor_path:?}");
    println!("confined path 11 -> 6: {confined_path:?}");

    let allowed: Vec<NodeId> = vnpu2.iter().map(|&p| NodeId(p)).collect();
    let foreign: Vec<u32> = dor_path
        .iter()
        .filter(|&&n| !vnpu2.contains(&n))
        .copied()
        .collect();
    println!(
        "\nDOR crosses foreign core(s) {foreign:?} — that is the paper's 'NoC \
         interference'. The confined path stays inside the virtual topology: {}",
        confined_path.iter().all(|n| vnpu2.contains(n)),
    );

    // The direction entries the hypervisor would install per relay node.
    let path_nodes: Vec<NodeId> = confined_path.iter().map(|&n| NodeId(n)).collect();
    let directions = route::path_directions(&topo, &path_nodes)?;
    println!("\nrouting-table direction entries for this flow:");
    for (node, dir) in directions {
        println!("  at core {}: forward {dir}", node.0);
    }

    assert!(route::dor_confined(&topo, &allowed, NodeId(11), NodeId(7)));
    println!(
        "\n(for pairs whose DOR route already stays inside the set, e.g. 11 -> 7, no \
         override is needed)"
    );
    Ok(())
}
