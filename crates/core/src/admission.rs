//! Admission control for the online serving regime: queued virtual-NPU
//! requests, pluggable ordering policies, and the per-tick fragmentation
//! metrics the scheduler steers by.
//!
//! The paper evaluates *static* provisioning — every vNPU exists before
//! the workload runs. A serving deployment instead sees a stream of
//! create/destroy requests under fragmentation, where placement can fail
//! *now* and succeed *after the next departure*. This module gives the
//! [`crate::Hypervisor`] that lifecycle: [`Hypervisor::submit`] enqueues a
//! request, [`Hypervisor::process_admissions`] runs one admission tick
//! under the configured [`AdmissionPolicy`], and every attempt remains
//! transactional (a failed placement changes nothing, exactly as a failed
//! [`Hypervisor::create_vnpu`] rolls back its partial allocations).
//!
//! [`Hypervisor::submit`]: crate::Hypervisor::submit
//! [`Hypervisor::process_admissions`]: crate::Hypervisor::process_admissions

use crate::ids::VmId;
use crate::vnpu::VnpuRequest;
use crate::VnpuError;
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a queued admission request (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req{}", self.0)
    }
}

/// How the admission queue orders and retries placement attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Strict arrival order with head-of-line blocking: a tick stops at
    /// the first request that fails to place.
    #[default]
    Fifo,
    /// Attempt the smallest (fewest-core) request first each tick,
    /// skipping over failures — trades head-of-line blocking for possible
    /// starvation of large requests.
    SmallestFirst,
    /// Arrival order, but a request that has already failed is only
    /// re-attempted after at least one vNPU has been destroyed since its
    /// last attempt (nothing was freed, so retrying would burn an
    /// enumeration for the same answer — though the mapping cache would
    /// memoize it anyway).
    RetryAfterFree,
}

/// Terminal outcome of one queued request during an admission tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// Placed; the request's virtual NPU is live.
    Admitted(VmId),
    /// Permanently rejected (impossible request, or attempt budget spent).
    Rejected(VnpuError),
}

/// One terminal admission decision, as returned by
/// [`crate::Hypervisor::process_admissions`]. Requests still queued after
/// the tick produce no event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// The request this decision is about.
    pub id: RequestId,
    /// What happened to it.
    pub outcome: AdmissionOutcome,
    /// The hypervisor's cumulative meta-table configuration cycle counter
    /// ([`crate::Hypervisor::total_config_cycles`]) at the instant this
    /// decision was made, so a scheduler can stamp each placement with
    /// only the configuration work accrued *up to that event* rather than
    /// charging every admission in a tick for the whole tick's work.
    pub config_cycles_total: u64,
}

#[derive(Debug)]
pub(crate) struct PendingRequest {
    pub id: RequestId,
    pub req: VnpuRequest,
    pub attempts: u32,
    /// Value of the hypervisor's free-event counter at the last failed
    /// attempt (`None` until the first failure).
    pub last_failure_at_free_event: Option<u64>,
}

/// The pending-request queue with its policy and attempt budget.
#[derive(Debug)]
pub struct AdmissionQueue {
    pending: VecDeque<PendingRequest>,
    policy: AdmissionPolicy,
    max_attempts: Option<u32>,
    next_id: u64,
}

impl Default for AdmissionQueue {
    fn default() -> Self {
        Self::new(AdmissionPolicy::default())
    }
}

impl AdmissionQueue {
    /// An empty queue under `policy` with an unlimited attempt budget.
    pub fn new(policy: AdmissionPolicy) -> Self {
        AdmissionQueue {
            pending: VecDeque::new(),
            policy,
            max_attempts: None,
            next_id: 0,
        }
    }

    /// Caps placement attempts per request; a request failing its
    /// `max_attempts`-th attempt is rejected. `None` retries forever.
    pub fn set_max_attempts(&mut self, max_attempts: Option<u32>) {
        self.max_attempts = max_attempts.map(|m| m.max(1));
    }

    /// The active ordering policy.
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Replaces the ordering policy (queued requests are kept).
    pub fn set_policy(&mut self, policy: AdmissionPolicy) {
        self.policy = policy;
    }

    /// Queued request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// IDs currently queued, in arrival order.
    pub fn queued_ids(&self) -> Vec<RequestId> {
        self.pending.iter().map(|p| p.id).collect()
    }

    /// The attempt budget.
    pub fn max_attempts(&self) -> Option<u32> {
        self.max_attempts
    }

    pub(crate) fn push(&mut self, req: VnpuRequest) -> RequestId {
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(PendingRequest {
            id,
            req,
            attempts: 0,
            last_failure_at_free_event: None,
        });
        id
    }

    /// The IDs to attempt this tick, in policy order. `free_events` is the
    /// hypervisor's monotone destroy counter (drives `RetryAfterFree`).
    pub(crate) fn attempt_order(&self, free_events: u64) -> Vec<RequestId> {
        match self.policy {
            AdmissionPolicy::Fifo => self.pending.iter().map(|p| p.id).collect(),
            AdmissionPolicy::SmallestFirst => {
                let mut ids: Vec<(u32, RequestId)> = self
                    .pending
                    .iter()
                    .map(|p| (p.req.core_count(), p.id))
                    .collect();
                // Stable under equal sizes: arrival order breaks ties
                // because `RequestId`s are assigned in arrival order.
                ids.sort();
                ids.into_iter().map(|(_, id)| id).collect()
            }
            AdmissionPolicy::RetryAfterFree => self
                .pending
                .iter()
                .filter(|p| match p.last_failure_at_free_event {
                    None => true,
                    Some(at) => free_events > at,
                })
                .map(|p| p.id)
                .collect(),
        }
    }

    /// Whether a failed attempt under this policy ends the tick
    /// (head-of-line blocking).
    pub(crate) fn blocks_on_failure(&self) -> bool {
        matches!(
            self.policy,
            AdmissionPolicy::Fifo | AdmissionPolicy::RetryAfterFree
        )
    }

    pub(crate) fn request(&self, id: RequestId) -> Option<&PendingRequest> {
        self.pending.iter().find(|p| p.id == id)
    }

    pub(crate) fn remove(&mut self, id: RequestId) -> Option<PendingRequest> {
        let idx = self.pending.iter().position(|p| p.id == id)?;
        self.pending.remove(idx)
    }

    /// Records a failed attempt; returns `true` when the attempt budget is
    /// now spent (caller rejects the request).
    pub(crate) fn mark_failed(&mut self, id: RequestId, free_events: u64) -> bool {
        let Some(p) = self.pending.iter_mut().find(|p| p.id == id) else {
            return false;
        };
        p.attempts += 1;
        p.last_failure_at_free_event = Some(free_events);
        self.max_attempts.is_some_and(|m| p.attempts >= m)
    }
}

/// A point-in-time fragmentation picture of the hypervisor's resources,
/// exposed per admission tick so the serving layer can chart how close the
/// chip is to topology lock-in (§4.3) while traffic churns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FragmentationStats {
    /// Free physical cores.
    pub free_cores: u32,
    /// Connected components of the free-core region (0 when none free).
    pub free_components: usize,
    /// Size of the largest connected free component.
    pub largest_free_component: usize,
    /// Largest free component over all free cores, in `[0, 1]`; 1.0 when
    /// the free region is a single island (or empty — nothing is
    /// stranded).
    pub free_connectivity: f64,
    /// Free HBM bytes.
    pub hbm_free_bytes: u64,
    /// Largest single free buddy block.
    pub hbm_largest_free_block: u64,
    /// Buddy external fragmentation: `1 − largest_free_block/free_bytes`
    /// (0.0 when no memory is free — nothing is fragmented).
    pub hbm_external_fragmentation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(policy: AdmissionPolicy) -> AdmissionQueue {
        AdmissionQueue::new(policy)
    }

    #[test]
    fn fifo_orders_by_arrival() {
        let mut queue = q(AdmissionPolicy::Fifo);
        let a = queue.push(VnpuRequest::mesh(3, 3));
        let b = queue.push(VnpuRequest::mesh(1, 1));
        assert_eq!(queue.attempt_order(0), vec![a, b]);
        assert!(queue.blocks_on_failure());
    }

    #[test]
    fn smallest_first_orders_by_core_count_then_arrival() {
        let mut queue = q(AdmissionPolicy::SmallestFirst);
        let big = queue.push(VnpuRequest::mesh(3, 3));
        let small_a = queue.push(VnpuRequest::mesh(1, 2));
        let small_b = queue.push(VnpuRequest::mesh(2, 1));
        // 2-core requests first (arrival order between them), then 9-core.
        assert_eq!(queue.attempt_order(0), vec![small_a, small_b, big]);
        assert!(!queue.blocks_on_failure());
    }

    #[test]
    fn retry_after_free_skips_until_a_destroy() {
        let mut queue = q(AdmissionPolicy::RetryAfterFree);
        let a = queue.push(VnpuRequest::mesh(2, 2));
        assert_eq!(queue.attempt_order(0), vec![a]);
        assert!(!queue.mark_failed(a, 0));
        // No free event since the failure: not retried.
        assert!(queue.attempt_order(0).is_empty());
        // After a destroy the request is eligible again.
        assert_eq!(queue.attempt_order(1), vec![a]);
    }

    #[test]
    fn attempt_budget_trips_after_max() {
        let mut queue = q(AdmissionPolicy::Fifo);
        queue.set_max_attempts(Some(2));
        let a = queue.push(VnpuRequest::mesh(2, 2));
        assert!(!queue.mark_failed(a, 0));
        assert!(
            queue.mark_failed(a, 1),
            "second failure exhausts the budget"
        );
        queue.remove(a).unwrap();
        assert!(queue.is_empty());
    }
}
