//! The simulated NPU instruction set and per-core programs.
//!
//! This mirrors the IPU-style programming model of §3.1: every tensor and
//! compute vertex is pinned to a specific core (`setTileMapping`), data
//! moves between cores with explicit send/receive (the `Copy` primitive
//! over the on-chip network), and weights stream from global memory via
//! DMA. Core IDs inside instructions are *program-level* ("virtual") IDs;
//! the machine resolves them through the bound router (identity for
//! bare-metal, the vRouter under virtualization).

use vnpu_mem::VirtAddr;

/// A compute kernel with an analytic timing model (see [`crate::compute`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Dense matrix multiply `M×K · K×N`.
    Matmul {
        /// Rows of the left operand.
        m: u32,
        /// Contraction dimension.
        k: u32,
        /// Columns of the right operand.
        n: u32,
    },
    /// 2D convolution lowered to im2col matmul.
    Conv {
        /// Input feature-map height (= width; square maps).
        hw: u32,
        /// Input channels.
        in_ch: u32,
        /// Output channels.
        out_ch: u32,
        /// Square kernel size.
        kernel: u32,
        /// Stride.
        stride: u32,
    },
    /// Element-wise vector operation over `elems` elements.
    Vector {
        /// Element count.
        elems: u64,
    },
}

impl Kernel {
    /// Multiply-accumulate count of the kernel (for utilization metrics).
    pub fn macs(&self) -> u64 {
        match *self {
            Kernel::Matmul { m, k, n } => u64::from(m) * u64::from(k) * u64::from(n),
            Kernel::Conv {
                hw,
                in_ch,
                out_ch,
                kernel,
                stride,
            } => {
                let out = out_dim(hw, kernel, stride);
                u64::from(out)
                    * u64::from(out)
                    * u64::from(in_ch)
                    * u64::from(out_ch)
                    * u64::from(kernel)
                    * u64::from(kernel)
            }
            Kernel::Vector { elems } => elems,
        }
    }
}

/// Output spatial dimension of a (valid-padding) convolution.
pub fn out_dim(hw: u32, kernel: u32, stride: u32) -> u32 {
    ((hw.saturating_sub(kernel)) / stride.max(1)) + 1
}

/// One instruction of a per-core program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// DMA a weight/input chunk stream from global memory into the
    /// scratchpad.
    DmaLoad {
        /// Guest-virtual source address.
        va: VirtAddr,
        /// Bytes to transfer.
        bytes: u64,
    },
    /// DMA scratchpad contents back to global memory.
    DmaStore {
        /// Guest-virtual destination address.
        va: VirtAddr,
        /// Bytes to transfer.
        bytes: u64,
    },
    /// Occupy the tile's compute units with a kernel.
    Compute(Kernel),
    /// Stream `bytes` over the NoC to program-level core `dst`.
    Send {
        /// Destination core (program-level ID).
        dst: u32,
        /// Payload bytes.
        bytes: u64,
        /// Flow tag for matching the receive.
        tag: u32,
    },
    /// Block until `bytes` tagged `tag` have arrived from program-level
    /// core `src`.
    Recv {
        /// Source core (program-level ID).
        src: u32,
        /// Payload bytes expected.
        bytes: u64,
        /// Flow tag.
        tag: u32,
    },
    /// UVM-baseline producer: write an activation to global memory and
    /// publish it under `tag` (memory-synchronization broadcast).
    GlobalWrite {
        /// Guest-virtual destination.
        va: VirtAddr,
        /// Bytes written.
        bytes: u64,
        /// Publication tag.
        tag: u32,
    },
    /// UVM-baseline consumer: wait for `tag` then read `bytes` from global
    /// memory.
    GlobalRead {
        /// Guest-virtual source.
        va: VirtAddr,
        /// Bytes read.
        bytes: u64,
        /// Publication tag.
        tag: u32,
    },
    /// Synchronize all threads of the same tenant carrying the same id.
    Barrier {
        /// Barrier identifier.
        id: u32,
    },
    /// Idle for a fixed number of cycles (testing / modelling fixed work).
    Delay {
        /// Cycles to stall.
        cycles: u64,
    },
}

impl Instr {
    /// Convenience constructor for [`Instr::Send`].
    pub fn send(dst: u32, bytes: u64, tag: u32) -> Self {
        Instr::Send { dst, bytes, tag }
    }

    /// Convenience constructor for [`Instr::Recv`].
    pub fn recv(src: u32, bytes: u64, tag: u32) -> Self {
        Instr::Recv { src, bytes, tag }
    }

    /// Convenience constructor for [`Instr::DmaLoad`].
    pub fn dma_load(va: u64, bytes: u64) -> Self {
        Instr::DmaLoad {
            va: VirtAddr(va),
            bytes,
        }
    }

    /// Convenience constructor for [`Instr::Compute`] with a matmul.
    pub fn matmul(m: u32, k: u32, n: u32) -> Self {
        Instr::Compute(Kernel::Matmul { m, k, n })
    }
}

/// A per-core program: a prelude executed once (weight loading — its
/// completion defines the warm-up time of Figure 16), then a body repeated
/// `iterations` times (the steady-state loop of the ML task).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Instructions run once before the loop (typically `DmaLoad`s).
    pub prelude: Vec<Instr>,
    /// Instructions repeated every iteration.
    pub body: Vec<Instr>,
    /// Number of body iterations.
    pub iterations: u32,
    /// Declared scratchpad footprint in bytes (validated at bind time).
    pub footprint_bytes: u64,
}

impl Program {
    /// A program with an empty prelude that runs `body` exactly once.
    pub fn once(body: Vec<Instr>) -> Self {
        Program {
            prelude: Vec::new(),
            body,
            iterations: 1,
            footprint_bytes: 0,
        }
    }

    /// A program with a prelude and a repeated body.
    pub fn looped(prelude: Vec<Instr>, body: Vec<Instr>, iterations: u32) -> Self {
        Program {
            prelude,
            body,
            iterations,
            footprint_bytes: 0,
        }
    }

    /// Sets the declared scratchpad footprint (builder style).
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_bytes = bytes;
        self
    }

    /// Total number of dynamic instructions.
    pub fn dynamic_len(&self) -> u64 {
        self.prelude.len() as u64 + self.body.len() as u64 * u64::from(self.iterations)
    }

    /// Whether the program contains no instructions at all.
    pub fn is_empty(&self) -> bool {
        self.prelude.is_empty() && (self.body.is_empty() || self.iterations == 0)
    }

    /// Total MACs executed across all iterations (utilization accounting).
    pub fn total_macs(&self) -> u64 {
        let per_iter: u64 = self
            .body
            .iter()
            .map(|i| match i {
                Instr::Compute(k) => k.macs(),
                _ => 0,
            })
            .sum();
        let pre: u64 = self
            .prelude
            .iter()
            .map(|i| match i {
                Instr::Compute(k) => k.macs(),
                _ => 0,
            })
            .sum();
        pre + per_iter * u64::from(self.iterations)
    }

    /// Total bytes DMA-loaded in the prelude (the warm-up transfer volume).
    pub fn prelude_dma_bytes(&self) -> u64 {
        self.prelude
            .iter()
            .map(|i| match i {
                Instr::DmaLoad { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_macs() {
        assert_eq!(Kernel::Matmul { m: 2, k: 3, n: 4 }.macs(), 24);
        // 3x3 conv, 32x32 input, 16->16 channels, stride 1: 30x30 output.
        let c = Kernel::Conv {
            hw: 32,
            in_ch: 16,
            out_ch: 16,
            kernel: 3,
            stride: 1,
        };
        assert_eq!(c.macs(), 30 * 30 * 16 * 16 * 9);
    }

    #[test]
    fn out_dim_math() {
        assert_eq!(out_dim(32, 3, 1), 30);
        assert_eq!(out_dim(32, 3, 2), 15);
        assert_eq!(out_dim(7, 7, 1), 1);
        assert_eq!(out_dim(2, 3, 1), 1); // saturating
    }

    #[test]
    fn program_counts() {
        let p = Program::looped(
            vec![Instr::dma_load(0, 1024)],
            vec![Instr::matmul(8, 8, 8), Instr::send(1, 64, 0)],
            10,
        );
        assert_eq!(p.dynamic_len(), 1 + 20);
        assert_eq!(p.total_macs(), 512 * 10);
        assert_eq!(p.prelude_dma_bytes(), 1024);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_program() {
        assert!(Program::default().is_empty());
        assert!(Program::once(vec![]).is_empty());
        let no_iters = Program::looped(vec![], vec![Instr::Delay { cycles: 1 }], 0);
        assert!(no_iters.is_empty());
    }
}
