//! Trace analyses: lock order, hold-across-submit, shard consistency.
//!
//! All three passes are pure functions over recorded [`Trace`]s — they
//! never touch the live structures, never panic on malformed traces
//! (unmatched releases are ignored), and report [`ConcFinding`]s under
//! the stable `CONC-*` rule ids. The lock-order pass combines the
//! static registry's rank declarations (intended order) with a dynamic
//! acquisition graph built from the traces (observed order), so it
//! catches both "this thread violated the declared order" and "two
//! threads disagree about the order" even when no declared rank is
//! violated.

use std::collections::{BTreeMap, BTreeSet};

use crate::probe::{EventKind, Trace, TraceEvent};
use crate::{ConcFinding, ConcRule};

/// A held lock instance: `(site id, shard)` plus context for messages.
#[derive(Debug, Clone, Copy)]
struct Held {
    site_id: u32,
    shard: u32,
    rank: u32,
    label: &'static str,
}

type Node = (u32, u32);

fn node_name(nodes: &BTreeMap<Node, &'static str>, node: Node) -> String {
    let label = nodes.get(&node).copied().unwrap_or("?");
    format!("{label}[{}]", node.1)
}

/// Checks every acquisition in `trace` against the declared rank order
/// and against the acquisition graph the trace itself induces.
///
/// Findings (`CONC-ORDER`):
/// - an acquisition whose site rank is **below** a lock already held by
///   the same thread (declared-order inversion);
/// - a same-site sharded acquisition whose shard index is not strictly
///   ascending (shard-order inversion, the classic multi-shard deadlock);
/// - a cycle in the cross-thread acquisition graph (two threads that
///   take the same pair of locks in opposite orders), reported with the
///   witnessing cycle path.
pub fn analyze_lock_order(trace: &Trace) -> Vec<ConcFinding> {
    let mut findings: Vec<ConcFinding> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut push = |findings: &mut Vec<ConcFinding>, detail: String| {
        if seen.insert(detail.clone()) {
            findings.push(ConcFinding::error(ConcRule::LockOrder, detail));
        }
    };

    // Per-thread held stacks, plus the union acquisition graph:
    // an edge (A,a) -> (B,b) for every B acquired while A was held.
    let mut held: BTreeMap<u64, Vec<Held>> = BTreeMap::new();
    let mut edges: BTreeSet<(Node, Node)> = BTreeSet::new();
    let mut nodes: BTreeMap<Node, &'static str> = BTreeMap::new();

    for event in &trace.events {
        match event.kind {
            EventKind::Acquired => {
                let stack = held.entry(event.thread).or_default();
                let entering = Held {
                    site_id: event.site.id.0,
                    shard: event.shard,
                    rank: event.site.rank,
                    label: event.site.label,
                };
                let to = (entering.site_id, entering.shard);
                nodes.insert(to, entering.label);
                for holding in stack.iter() {
                    let from = (holding.site_id, holding.shard);
                    edges.insert((from, to));
                    if entering.site_id == holding.site_id {
                        if !event.site.sharded || entering.shard <= holding.shard {
                            push(
                                &mut findings,
                                format!(
                                    "thread {:#x} acquired {}[{}] while holding {}[{}]: \
                                     same-site acquisitions must use strictly ascending shard order",
                                    event.thread,
                                    entering.label,
                                    entering.shard,
                                    holding.label,
                                    holding.shard,
                                ),
                            );
                        }
                    } else if entering.rank < holding.rank {
                        push(
                            &mut findings,
                            format!(
                                "thread {:#x} acquired {} (rank {}) while holding {} (rank {}): \
                                 declared lock order is ascending rank",
                                event.thread,
                                entering.label,
                                entering.rank,
                                holding.label,
                                holding.rank,
                            ),
                        );
                    }
                }
                stack.push(entering);
            }
            EventKind::Released => {
                if let Some(stack) = held.get_mut(&event.thread) {
                    if let Some(pos) = stack
                        .iter()
                        .rposition(|h| h.site_id == event.site.id.0 && h.shard == event.shard)
                    {
                        stack.remove(pos);
                    }
                }
            }
            EventKind::Submit => {}
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        let path: Vec<String> = cycle.iter().map(|&n| node_name(&nodes, n)).collect();
        push(
            &mut findings,
            format!(
                "acquisition graph has a cycle (threads disagree on lock order): {}",
                path.join(" -> "),
            ),
        );
    }

    findings
}

/// DFS cycle detection over the acquisition graph; returns one
/// witnessing cycle (closed path) if any exists.
fn find_cycle(edges: &BTreeSet<(Node, Node)>) -> Option<Vec<Node>> {
    let mut adjacency: BTreeMap<Node, Vec<Node>> = BTreeMap::new();
    for &(from, to) in edges {
        adjacency.entry(from).or_default().push(to);
        adjacency.entry(to).or_default();
    }
    // 0 = unvisited, 1 = on the current DFS path, 2 = done.
    let mut color: BTreeMap<Node, u8> = BTreeMap::new();
    let mut path: Vec<Node> = Vec::new();

    fn dfs(
        node: Node,
        adjacency: &BTreeMap<Node, Vec<Node>>,
        color: &mut BTreeMap<Node, u8>,
        path: &mut Vec<Node>,
    ) -> Option<Vec<Node>> {
        color.insert(node, 1);
        path.push(node);
        for &next in adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[]) {
            match color.get(&next).copied().unwrap_or(0) {
                0 => {
                    if let Some(cycle) = dfs(next, adjacency, color, path) {
                        return Some(cycle);
                    }
                }
                1 => {
                    let start = path.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle = path[start..].to_vec();
                    cycle.push(next);
                    return Some(cycle);
                }
                _ => {}
            }
        }
        path.pop();
        color.insert(node, 2);
        None
    }

    let starts: Vec<Node> = adjacency.keys().copied().collect();
    for node in starts {
        if color.get(&node).copied().unwrap_or(0) == 0 {
            if let Some(cycle) = dfs(node, &adjacency, &mut color, &mut path) {
                return Some(cycle);
            }
        }
    }
    None
}

/// Flags worker-pool batch submissions made while the submitting thread
/// held any instrumented lock (`CONC-HOLD`). Workers that need the same
/// lock would deadlock against the submitter waiting on results; at
/// best the batch serializes behind the hold.
pub fn analyze_hold_across_submit(trace: &Trace) -> Vec<ConcFinding> {
    let mut findings = Vec::new();
    let mut held: BTreeMap<u64, Vec<&TraceEvent>> = BTreeMap::new();
    for event in &trace.events {
        match event.kind {
            EventKind::Acquired => held.entry(event.thread).or_default().push(event),
            EventKind::Released => {
                if let Some(stack) = held.get_mut(&event.thread) {
                    if let Some(pos) = stack
                        .iter()
                        .rposition(|h| h.site.id == event.site.id && h.shard == event.shard)
                    {
                        stack.remove(pos);
                    }
                }
            }
            EventKind::Submit => {
                if let Some(stack) = held.get(&event.thread) {
                    if !stack.is_empty() {
                        let holding: Vec<String> = stack
                            .iter()
                            .map(|h| format!("{}[{}]", h.site.label, h.shard))
                            .collect();
                        findings.push(ConcFinding::error(
                            ConcRule::HoldAcrossSubmit,
                            format!(
                                "thread {:#x} submitted a pool batch of {} job(s) while holding {}",
                                event.thread,
                                event.tag.unwrap_or(0),
                                holding.join(", "),
                            ),
                        ));
                    }
                }
            }
        }
    }
    findings
}

/// Checks that for every sharded site, the shard a key maps to is a
/// pure function of the key hash (`CONC-SHARD`). Takes *multiple*
/// traces — the interesting drift (a shard count derived from the pool
/// width) only shows up when the same key is observed under different
/// worker counts, so callers record one trace per width and analyze
/// them together.
pub fn analyze_shard_order(traces: &[Trace]) -> Vec<ConcFinding> {
    let mut findings = Vec::new();
    // (site id, key tag) -> (shard, trace index it was first seen in).
    let mut owner: BTreeMap<(u32, u64), (u32, usize)> = BTreeMap::new();
    let mut flagged: BTreeSet<(u32, u64)> = BTreeSet::new();
    for (trace_idx, trace) in traces.iter().enumerate() {
        for event in &trace.events {
            if event.kind != EventKind::Acquired || !event.site.sharded {
                continue;
            }
            let Some(tag) = event.tag else { continue };
            let key = (event.site.id.0, tag);
            match owner.get(&key) {
                None => {
                    owner.insert(key, (event.shard, trace_idx));
                }
                Some(&(shard, first_idx)) if shard != event.shard => {
                    if flagged.insert(key) {
                        findings.push(ConcFinding::error(
                            ConcRule::ShardOrder,
                            format!(
                                "{}: key {tag:#018x} mapped to shard {shard} (trace {first_idx}) \
                                 but shard {} (trace {trace_idx}): shard choice must be a pure \
                                 function of the key hash, independent of worker count",
                                event.site.label, event.shard,
                            ),
                        ));
                    }
                }
                Some(_) => {}
            }
        }
    }
    findings
}

/// Runs every trace analysis: lock order and hold-across-submit per
/// trace, shard consistency across all traces. The one-stop entry the
/// CI gate and benches call.
pub fn analyze_all(traces: &[Trace]) -> Vec<ConcFinding> {
    let mut findings = Vec::new();
    for trace in traces {
        findings.extend(analyze_lock_order(trace));
        findings.extend(analyze_hold_across_submit(trace));
    }
    findings.extend(analyze_shard_order(traces));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{ConcProbe, TraceProbe};
    use crate::sites::{CACHE_SHARD, HINT_CACHE, POOL_RX};

    fn trace(build: impl FnOnce(&TraceProbe)) -> Trace {
        let probe = TraceProbe::new();
        build(&probe);
        probe.take_trace()
    }

    #[test]
    fn well_ordered_trace_is_clean() {
        let t = trace(|p| {
            p.on_acquired(&POOL_RX, 0, None);
            p.on_release(&POOL_RX, 0);
            p.on_acquired(&CACHE_SHARD, 1, Some(10));
            p.on_acquired(&HINT_CACHE, 0, None);
            p.on_release(&HINT_CACHE, 0);
            p.on_release(&CACHE_SHARD, 1);
            p.on_submit(4);
        });
        assert!(analyze_lock_order(&t).is_empty());
        assert!(analyze_hold_across_submit(&t).is_empty());
    }

    #[test]
    fn rank_inversion_is_flagged() {
        let t = trace(|p| {
            p.on_acquired(&HINT_CACHE, 0, None);
            p.on_acquired(&CACHE_SHARD, 2, Some(9));
            p.on_release(&CACHE_SHARD, 2);
            p.on_release(&HINT_CACHE, 0);
        });
        let findings = analyze_lock_order(&t);
        assert!(
            findings
                .iter()
                .any(|f| f.rule == ConcRule::LockOrder && f.detail.contains("rank")),
            "{findings:?}"
        );
    }

    #[test]
    fn descending_shard_order_is_flagged_ascending_is_clean() {
        let bad = trace(|p| {
            p.on_acquired(&CACHE_SHARD, 5, Some(1));
            p.on_acquired(&CACHE_SHARD, 2, Some(2));
            p.on_release(&CACHE_SHARD, 2);
            p.on_release(&CACHE_SHARD, 5);
        });
        assert!(!analyze_lock_order(&bad).is_empty());
        let good = trace(|p| {
            p.on_acquired(&CACHE_SHARD, 2, Some(2));
            p.on_acquired(&CACHE_SHARD, 5, Some(1));
            p.on_release(&CACHE_SHARD, 5);
            p.on_release(&CACHE_SHARD, 2);
        });
        assert!(analyze_lock_order(&good).is_empty());
    }

    #[test]
    fn opposite_order_across_threads_is_a_cycle() {
        // Two threads, no declared-rank violation visible to either
        // alone (same site, but acquired in opposite shard orders so
        // the union graph has a cycle). Simulate two threads by
        // recording from a spawned thread.
        let probe = std::sync::Arc::new(TraceProbe::new());
        probe.on_acquired(&HINT_CACHE, 0, None);
        probe.on_acquired(&HINT_CACHE, 1, None);
        probe.on_release(&HINT_CACHE, 1);
        probe.on_release(&HINT_CACHE, 0);
        let p = std::sync::Arc::clone(&probe);
        std::thread::spawn(move || {
            p.on_acquired(&HINT_CACHE, 1, None);
            p.on_acquired(&HINT_CACHE, 0, None);
            p.on_release(&HINT_CACHE, 0);
            p.on_release(&HINT_CACHE, 1);
        })
        .join()
        .unwrap();
        let findings = analyze_lock_order(&probe.take_trace());
        assert!(
            findings.iter().any(|f| f.detail.contains("cycle"))
                || findings.iter().any(|f| f.detail.contains("ascending")),
            "{findings:?}"
        );
    }

    #[test]
    fn submit_under_lock_is_flagged() {
        let t = trace(|p| {
            p.on_acquired(&CACHE_SHARD, 0, Some(3));
            p.on_submit(8);
            p.on_release(&CACHE_SHARD, 0);
        });
        let findings = analyze_hold_across_submit(&t);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, ConcRule::HoldAcrossSubmit);
        assert!(
            findings[0].detail.contains("8 job(s)"),
            "{}",
            findings[0].detail
        );
    }

    #[test]
    fn submit_after_release_is_clean() {
        let t = trace(|p| {
            p.on_acquired(&CACHE_SHARD, 0, Some(3));
            p.on_release(&CACHE_SHARD, 0);
            p.on_submit(8);
        });
        assert!(analyze_hold_across_submit(&t).is_empty());
    }

    #[test]
    fn shard_drift_across_traces_is_flagged() {
        let width4 = trace(|p| {
            p.on_acquired(&CACHE_SHARD, 3, Some(0xBEEF));
            p.on_release(&CACHE_SHARD, 3);
        });
        let width8 = trace(|p| {
            p.on_acquired(&CACHE_SHARD, 7, Some(0xBEEF));
            p.on_release(&CACHE_SHARD, 7);
        });
        let findings = analyze_shard_order(&[width4.clone(), width8]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, ConcRule::ShardOrder);
        assert!(analyze_shard_order(&[width4.clone(), width4]).is_empty());
    }

    #[test]
    fn analyze_all_composes_every_pass() {
        let t = trace(|p| {
            p.on_acquired(&HINT_CACHE, 0, None);
            p.on_submit(1);
            p.on_release(&HINT_CACHE, 0);
        });
        let findings = analyze_all(&[t]);
        assert!(findings
            .iter()
            .any(|f| f.rule == ConcRule::HoldAcrossSubmit));
    }
}
