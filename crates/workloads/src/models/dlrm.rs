//! DLRM — the recommendation model of the Figure 3 motivation: embedding
//! lookups plus small MLPs, i.e. memory-heavy and compute-light, the
//! worst-case FLOPS utilization on a large NPU.

use super::DTYPE_BYTES;
use crate::graph::{GraphBuilder, LayerKind, ModelGraph};
use vnpu_sim::isa::Kernel;

/// DLRM with 8 embedding tables and the standard bottom/top MLPs.
pub fn dlrm() -> ModelGraph {
    let mut b = GraphBuilder::new();
    // Bottom MLP over dense features: 13 -> 512 -> 256 -> 64.
    let bot1 = b.chain(
        "bot_mlp1",
        LayerKind::Fc,
        Kernel::Matmul {
            m: 1,
            k: 13,
            n: 512,
        },
        13 * 512 * DTYPE_BYTES,
        512 * DTYPE_BYTES,
    );
    let _ = bot1;
    b.chain(
        "bot_mlp2",
        LayerKind::Fc,
        Kernel::Matmul {
            m: 1,
            k: 512,
            n: 256,
        },
        512 * 256 * DTYPE_BYTES,
        256 * DTYPE_BYTES,
    );
    let bot3 = b.chain(
        "bot_mlp3",
        LayerKind::Fc,
        Kernel::Matmul {
            m: 1,
            k: 256,
            n: 64,
        },
        256 * 64 * DTYPE_BYTES,
        64 * DTYPE_BYTES,
    );
    // Embedding tables: 8 tables of 1M rows x 64 dims (lookups are pure
    // memory traffic; the kernel is a tiny gather).
    let mut embeds = vec![bot3];
    for i in 0..8 {
        let e = b.push(
            format!("embed{i}"),
            LayerKind::Embed,
            Kernel::Vector { elems: 64 },
            1_000_000 * 64 * DTYPE_BYTES / 8, // tables sharded per core
            64 * DTYPE_BYTES,
            vec![],
        );
        embeds.push(e);
    }
    // Feature interaction: pairwise dots of 9 vectors of 64 dims.
    let interact = b.push(
        "interact",
        LayerKind::Elementwise,
        Kernel::Matmul { m: 9, k: 64, n: 9 },
        0,
        (9 * 9 + 64) * DTYPE_BYTES,
        embeds,
    );
    // Top MLP: 512 -> 256 -> 1.
    let top1 = b.push(
        "top_mlp1",
        LayerKind::Fc,
        Kernel::Matmul {
            m: 1,
            k: 145,
            n: 512,
        },
        145 * 512 * DTYPE_BYTES,
        512 * DTYPE_BYTES,
        vec![interact],
    );
    let top2 = b.push(
        "top_mlp2",
        LayerKind::Fc,
        Kernel::Matmul {
            m: 1,
            k: 512,
            n: 256,
        },
        512 * 256 * DTYPE_BYTES,
        256 * DTYPE_BYTES,
        vec![top1],
    );
    b.push(
        "top_mlp3",
        LayerKind::Fc,
        Kernel::Matmul { m: 1, k: 256, n: 1 },
        256 * DTYPE_BYTES,
        DTYPE_BYTES,
        vec![top2],
    );
    b.build("dlrm").expect("dlrm graph is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlrm_is_memory_heavy_compute_light() {
        let g = dlrm();
        // Embedding weights dominate; MACs are tiny.
        assert!(g.total_weight_bytes() > 50_000_000);
        assert!(g.total_macs() < 2_000_000);
    }

    #[test]
    fn dlrm_structure() {
        let g = dlrm();
        assert_eq!(g.len(), 3 + 8 + 1 + 3);
        // The interaction layer joins 9 inputs.
        let interact = g
            .layers()
            .iter()
            .find(|l| l.name == "interact")
            .expect("interact layer");
        assert_eq!(interact.deps.len(), 9);
    }
}
