//! Shared harness code for the figure/table benchmarks.
//!
//! Each bench target under `benches/` reproduces one table or figure of
//! the paper. This library provides everything they need so the repo is
//! self-contained offline:
//!
//! * the plumbing in this root module — binding compiled workloads onto
//!   machines under the various virtualization designs (vNPU, UVM, MIG,
//!   bare-metal) and uniform table printing;
//! * [`figs`] — the core loop of every figure/table bench, parameterized
//!   by a `quick` flag so `tests/benches_smoke.rs` can exercise each one
//!   at tiny scale under `cargo test`;
//! * [`harness`] — the in-repo Criterion-style micro-benchmark harness
//!   (the `criterion` crate is unavailable offline).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figs;
pub mod harness;

use vnpu::mig::MigAllocation;
use vnpu::uvm;
use vnpu::vchunk::MemMode;
use vnpu::vrouter::{RoutePolicy, VRouterNoc};
use vnpu::{Hypervisor, VirtCoreId, VmId};
use vnpu_mem::translate::PhysicalTranslator;
use vnpu_sim::isa::Program;
use vnpu_sim::machine::{CoreServices, Machine, TenantId};
use vnpu_sim::noc::NocRouter;
use vnpu_sim::{Report, SocConfig};
use vnpu_topo::{route, NodeId, Topology};

/// Which virtualization design services a binding — the comparative
/// systems of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// vNPU: vRouter + vChunk, with the virtual NPU's own policies.
    Vnpu,
    /// vNPU with explicit memory mode / route policy (ablations).
    VnpuWith(MemMode, RoutePolicy),
    /// UVM baseline: page-based IOTLB translation, DOR routing.
    Uvm {
        /// IOTLB entries.
        iotlb: usize,
    },
    /// Bare metal: core-ID remapping only, no virtualization hardware
    /// (the §6.3.3 overhead comparison).
    BareMetal,
}

/// Binds every virtual core of a provisioned virtual NPU into `machine`
/// under the given design, returning the tenant ID.
///
/// `programs[v]` is bound to physical core `mapping.phys_of(v)`. For the
/// UVM design, NoC programs should be pre-rewritten with
/// [`vnpu::uvm::uvm_program`].
///
/// # Panics
///
/// Panics on binding failures (bench-harness context).
pub fn bind_design(
    machine: &mut Machine,
    hv: &Hypervisor,
    vm: VmId,
    programs: &[Program],
    design: Design,
    name: &str,
) -> TenantId {
    let vnpu = hv.vnpu(vm).expect("vm exists");
    let tenant = machine.add_tenant(name);
    for (v, program) in programs.iter().enumerate() {
        let vcore = VirtCoreId(v as u32);
        let phys = vnpu.phys_core(vcore).expect("vcore in range");
        let services = match design {
            Design::Vnpu => vnpu.services(vcore).expect("services build"),
            Design::VnpuWith(mode, policy) => vnpu
                .services_with(vcore, mode, policy)
                .expect("services build"),
            Design::Uvm { iotlb } => uvm::services(vnpu, vcore, iotlb).expect("services build"),
            Design::BareMetal => CoreServices {
                router: Box::new(RemapRouter::new(
                    hv.config(),
                    vnpu.mapping().phys_nodes().iter().map(|n| n.0).collect(),
                )),
                translator: Box::new(PhysicalTranslator::new()),
                limiter: None,
            },
        };
        let program = match design {
            Design::Uvm { .. } => uvm::uvm_program(vnpu, v as u32, program),
            _ => program.clone(),
        };
        machine
            .bind_with(phys, tenant, v as u32, program, services)
            .expect("bind");
    }
    tenant
}

/// Binds a MIG allocation: programs indexed by virtual core, physical
/// cores from the allocation (TDM sharing allowed). Cores keep inter-core
/// connections inside the partition (DOR routing), with no translation
/// hardware.
pub fn bind_mig(
    machine: &mut Machine,
    cfg: &SocConfig,
    alloc: &MigAllocation,
    programs: &[Program],
    name: &str,
) -> TenantId {
    let tenant = machine.add_tenant(name);
    for (v, program) in programs.iter().enumerate() {
        let phys = alloc.assignment()[v];
        let services = CoreServices {
            router: Box::new(RemapRouter::new(cfg, alloc.assignment().to_vec())),
            translator: Box::new(PhysicalTranslator::new()),
            limiter: None,
        };
        machine
            .bind_with(phys, tenant, v as u32, program.clone(), services)
            .expect("bind");
    }
    tenant
}

/// A cost-free core-ID remapping router (bare-metal / MIG): virtual core
/// `v` lives on `v2p[v]`; paths are plain DOR.
#[derive(Debug, Clone)]
pub struct RemapRouter {
    topo: Topology,
    v2p: Vec<u32>,
}

impl RemapRouter {
    /// Creates the router over the machine's mesh.
    pub fn new(cfg: &SocConfig, v2p: Vec<u32>) -> Self {
        RemapRouter {
            topo: Topology::mesh2d(cfg.mesh_width, cfg.mesh_height),
            v2p,
        }
    }
}

impl NocRouter for RemapRouter {
    fn resolve(&mut self, dst_program: u32) -> vnpu_sim::Result<(u32, u64)> {
        self.v2p
            .get(dst_program as usize)
            .map(|&p| (p, 0))
            .ok_or(vnpu_sim::SimError::RouteFault {
                core: u32::MAX,
                dst: dst_program,
            })
    }

    fn path(&self, src_phys: u32, dst_phys: u32) -> vnpu_sim::Result<Vec<u32>> {
        route::dor_path(&self.topo, NodeId(src_phys), NodeId(dst_phys))
            .map(|p| p.into_iter().map(|n| n.0).collect())
            .map_err(|_| vnpu_sim::SimError::RouteFault {
                core: src_phys,
                dst: dst_phys,
            })
    }

    fn name(&self) -> String {
        "remap".to_owned()
    }
}

/// Convenience: a second `VRouterNoc` construction helper for ad-hoc
/// virtual NPUs in micro-benches (no hypervisor).
pub fn adhoc_vrouter(cfg: &SocConfig, v2p: Vec<u32>, policy: RoutePolicy) -> VRouterNoc {
    VRouterNoc::new(
        Topology::mesh2d(cfg.mesh_width, cfg.mesh_height),
        v2p,
        policy,
    )
}

/// Prints a fixed-width table with a title, headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a throughput (iterations/s) with 1 decimal.
pub fn fps(report: &Report, tenant: TenantId) -> String {
    format!("{:.1}", report.fps(tenant))
}

/// Formats a ratio like "1.92x".
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_owned()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnpu::VnpuRequest;
    use vnpu_sim::isa::Instr;

    #[test]
    fn bind_design_end_to_end() {
        let cfg = SocConfig::sim();
        let mut hv = Hypervisor::new(cfg.clone());
        let vm = hv.create_vnpu(VnpuRequest::mesh(2, 1)).unwrap();
        let programs = vec![
            Program::once(vec![Instr::send(1, 2048, 0)]),
            Program::once(vec![Instr::recv(0, 2048, 0)]),
        ];
        for design in [Design::Vnpu, Design::Uvm { iotlb: 32 }, Design::BareMetal] {
            let mut m = Machine::new(cfg.clone());
            let t = bind_design(&mut m, &hv, vm, &programs, design, "x");
            let r = m.run().unwrap();
            assert!(r.tenant(t).unwrap().end > 0, "{design:?}");
        }
    }

    #[test]
    fn bind_mig_with_tdm() {
        let cfg = SocConfig::sim48();
        let mut mig = vnpu::mig::MigPartitioner::standard(&cfg);
        let alloc = mig.allocate(36).unwrap();
        assert!(alloc.is_tdm());
        let programs: Vec<Program> = (0..36)
            .map(|_| Program::once(vec![Instr::matmul(64, 64, 64)]))
            .collect();
        let mut m = Machine::new(cfg.clone());
        let t = bind_mig(&mut m, &cfg, &alloc, &programs, "mig");
        let r = m.run().unwrap();
        assert!(r.tenant(t).unwrap().end > 0);
    }

    #[test]
    fn remap_router_paths() {
        let cfg = SocConfig::fpga();
        let mut r = RemapRouter::new(&cfg, vec![3, 5]);
        assert_eq!(r.resolve(1).unwrap(), (5, 0));
        assert!(r.resolve(2).is_err());
        assert_eq!(r.path(0, 1).unwrap(), vec![0, 1]);
    }
}
