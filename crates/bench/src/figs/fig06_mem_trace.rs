//! **Figure 6** — the trace of accessed global-memory addresses for the
//! ResNet workload across NPU cores and iterations.
//!
//! Paper result: within one iteration each core's accessed weight
//! addresses increase monotonically (Pattern-2); across iterations the
//! same address sequence repeats (Pattern-3). These two patterns are what
//! vChunk's `RTT_CUR` and `last_v` exploit.

use crate::print_table;
use vnpu_sim::machine::Machine;
use vnpu_sim::SocConfig;
use vnpu_workloads::compile::{compile, CompileOptions, Residency};
use vnpu_workloads::models;

/// Replays the streamed model and checks Pattern-2/Pattern-3; the
/// pattern assertions are invariants and hold at any scale.
pub fn run(quick: bool) {
    let iterations: u32 = if quick { 2 } else { 3 };
    let cores: u32 = if quick { 2 } else { 4 };
    let cfg = SocConfig::fpga();
    let model = if quick {
        models::resnet18()
    } else {
        models::resnet50()
    };
    let opts = CompileOptions {
        iterations,
        residency: Residency::Streamed,
        ..Default::default()
    };
    let out = compile(&model, cores, &cfg, &opts).expect("compile");
    let mut machine = Machine::new(cfg.clone());
    machine.enable_mem_trace();
    let tenant = machine.add_tenant(model.name());
    for (c, p) in out.programs.iter().enumerate() {
        machine
            .bind(c as u32, tenant, c as u32, p.clone())
            .expect("bind");
    }
    let report = machine.run().expect("run");
    let trace = report.mem_trace();
    assert!(!trace.is_empty(), "mem trace must be recorded");

    // Split per core, then per iteration (address resets mark boundaries).
    let mut rows = Vec::new();
    for core in 0..cores {
        let accesses: Vec<(u64, u64)> = trace
            .iter()
            .filter(|(_, c, _)| *c == core)
            .map(|(t, _, va)| (*t, *va))
            .collect();
        if accesses.is_empty() {
            continue;
        }
        // Iteration boundaries: where the address strictly drops.
        let mut iters: Vec<Vec<u64>> = vec![Vec::new()];
        for w in accesses.windows(2) {
            iters.last_mut().unwrap().push(w[0].1);
            if w[1].1 < w[0].1 {
                iters.push(Vec::new());
            }
        }
        iters.last_mut().unwrap().push(accesses.last().unwrap().1);

        // Pattern-2: monotonic within each iteration.
        let monotonic = iters.iter().all(|it| it.windows(2).all(|w| w[1] >= w[0]));
        // Pattern-3: identical sequences across iterations.
        let repeating = iters.windows(2).all(|w| w[0] == w[1]);
        rows.push(vec![
            format!("core {core}"),
            accesses.len().to_string(),
            iters.len().to_string(),
            format!("{:#x}", iters[0].first().copied().unwrap_or(0)),
            format!("{:#x}", iters[0].last().copied().unwrap_or(0)),
            monotonic.to_string(),
            repeating.to_string(),
        ]);
        assert!(monotonic, "core {core}: Pattern-2 must hold");
        assert!(repeating, "core {core}: Pattern-3 must hold");
        assert_eq!(iters.len() as u32, iterations, "one sweep per iteration");
    }
    print_table(
        &format!(
            "Figure 6: per-core global-memory access trace ({}, {iterations} iterations)",
            model.name()
        ),
        &[
            "core",
            "accesses",
            "sweeps",
            "first VA",
            "last VA",
            "monotonic",
            "repeating",
        ],
        &rows,
    );
    println!(
        "\nEvery core sweeps its weight range monotonically within an iteration and \
         repeats it across iterations — the patterns vChunk exploits (§4.2)."
    );
}
