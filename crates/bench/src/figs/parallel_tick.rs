//! **Parallel tick** — the 16-chip fleet scenario that measures what the
//! worker pool buys: the same seeded churn runs at `workers = 1, 2, 4, 8`
//! and the per-width wall-clock (whole run plus the per-phase breakdown
//! from [`vnpu_serve::ServeConfig::time_phases`]) lands in
//! `BENCH_parallel_tick.json`, so the perf trajectory has a datapoint.
//!
//! Asserted invariants (both modes): every width's [`ServeReport`] is
//! byte-identical to the sequential (`workers = 1`) run's — modulo the
//! report's own `workers` field — with `ServeConfig::audit` on and zero
//! fleet-audit findings each run; the fleet actually spreads (≥ 12 of
//! 16 chips take load). The ≥ 2.5x speedup-at-4-workers claim is gated
//! on full (non-quick) scale *and* the host actually having ≥ 4 cores —
//! wall-clock is printed unconditionally either way.

use std::sync::Arc;
use std::time::Instant;
use vnpu::cluster::LeastLoaded;
use vnpu_conc::{ConcMode, DigestChain, Trace, TraceProbe};
use vnpu_serve::{ServeConfig, ServeReport, ServeRuntime};
use vnpu_sim::SocConfig;

/// Fixed seed: the whole request stream, admission trace and report are
/// reproducible from this value.
const SEED: u64 = 0x9A_7A_11_E1;

/// Worker-pool widths under test; index 0 must stay 1 (the sequential
/// baseline every other width is diffed and normalized against).
const WIDTHS: [usize; 4] = [1, 2, 4, 8];

fn fleet_config(quick: bool, workers: usize) -> ServeConfig {
    let epochs = if quick { 240 } else { 900 };
    let mut cfg = ServeConfig::cluster(SEED, epochs, vec![SocConfig::sim(); 16]);
    // Heavy standing load: ~1 arrival per tick with 30-epoch lifetimes
    // keeps a few dozen tenants resident, so most of the 16 chips run a
    // machine epoch every tick — the embarrassingly parallel part.
    cfg.traffic.mean_interarrival_ticks = 1;
    cfg.traffic.mean_lifetime_epochs = 30;
    cfg.traffic.candidate_cap = if quick { 120 } else { 200 };
    cfg.placement = Arc::new(LeastLoaded);
    cfg.workers = workers;
    cfg
}

/// The report's JSON with its `workers` line stripped — the one field
/// that legitimately varies with the pool width (same normalization the
/// `scripts/verify.sh` gate applies with `grep -v`).
fn normalized_json(r: &ServeReport) -> String {
    r.to_json(usize::MAX)
        .lines()
        .filter(|l| !l.contains("\"workers\""))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Runs the 16-chip fleet at every pool width: determinism first, then
/// wall-clock.
///
/// # Panics
///
/// Panics when any report diverges from the sequential baseline, any
/// audited run reports findings, or (full scale, ≥ 4 host cores) the
/// 4-worker run misses the 2.5x speedup claim.
pub fn run(quick: bool) {
    println!("== parallel_tick: 16-chip fleet across worker-pool widths ==\n");

    // --- Determinism: byte-identical audited reports at every width. ---
    let mut baseline: Option<ServeReport> = None;
    for workers in WIDTHS {
        let mut cfg = fleet_config(quick, workers);
        cfg.audit = true;
        let report = ServeRuntime::new(cfg).run().expect("fleet run completes");
        assert_eq!(
            report.audit_findings, 0,
            "workers={workers}: a healthy fleet audits clean on every tick"
        );
        assert_eq!(report.workers, workers, "report must carry its pool width");
        match &baseline {
            None => {
                let loaded = report.per_chip.iter().filter(|c| c.accepted > 0).count();
                assert!(
                    loaded >= 12,
                    "the scenario must spread load across the fleet: only \
                     {loaded}/16 chips took tenants"
                );
                assert_eq!(report.leaked_cores, 0, "no cores may leak");
                assert_eq!(report.leaked_hbm_bytes, 0, "no HBM may leak");
                baseline = Some(report);
            }
            Some(base) => assert_eq!(
                normalized_json(&report),
                normalized_json(base),
                "workers={workers}: report must be byte-identical to the \
                 sequential run (modulo the workers field)"
            ),
        }
    }
    let baseline = baseline.expect("widths is non-empty");
    println!(
        "[determinism] byte-identical reports at workers = {WIDTHS:?}, \
         zero audit findings, {} accepted / {} submitted\n",
        baseline.accepted, baseline.submitted
    );

    // --- Conc sanitizer pass (opt-in: VNPU_CONC_PROBE=1). ---
    if std::env::var("VNPU_CONC_PROBE").as_deref() == Ok("1") {
        conc_pass(quick, &baseline);
    }

    // --- Wall-clock per width (timed runs, audit off). ---
    let reps = if quick { 1 } else { 2 };
    let mut rows: Vec<(usize, u64, ServeReport)> = Vec::new();
    for workers in WIDTHS {
        let mut best: Option<(u64, ServeReport)> = None;
        for _ in 0..reps {
            let mut cfg = fleet_config(quick, workers);
            cfg.time_phases = true;
            let t0 = Instant::now();
            let report = ServeRuntime::new(cfg)
                .run()
                .expect("timed fleet run completes");
            let nanos = t0.elapsed().as_nanos() as u64;
            if best.as_ref().is_none_or(|(b, _)| nanos < *b) {
                best = Some((nanos, report));
            }
        }
        let (nanos, report) = best.expect("reps >= 1");
        println!(
            "workers {workers}: {:8.1} ms wall  (admission {:.1} ms, drain {:.1} ms, \
             defrag {:.1} ms, execution {:.1} ms)",
            nanos as f64 / 1e6,
            report.admission_nanos as f64 / 1e6,
            report.drain_nanos as f64 / 1e6,
            report.defrag_nanos as f64 / 1e6,
            report.execution_nanos as f64 / 1e6,
        );
        rows.push((workers, nanos, report));
    }
    let base_nanos = rows[0].1 as f64;
    for (workers, nanos, _) in &rows {
        println!(
            "  speedup at {workers} workers: {:.2}x",
            base_nanos / *nanos as f64
        );
    }

    // --- JSON artifact: the perf trajectory's datapoint. ---
    if let Some(dir) = crate::harness::report_dir() {
        let mut body = format!(
            "{{\n  \"bench\": \"parallel_tick\",\n  \"chips\": 16,\n  \
             \"epochs\": {},\n  \"quick\": {},\n  \"rows\": [",
            if quick { 240 } else { 900 },
            quick
        );
        for (i, (workers, nanos, report)) in rows.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "\n    {{\"workers\": {}, \"wall_nanos\": {}, \"speedup\": {:.3}, \
                 \"admission_nanos\": {}, \"drain_nanos\": {}, \
                 \"defrag_nanos\": {}, \"execution_nanos\": {}}}",
                workers,
                nanos,
                base_nanos / *nanos as f64,
                report.admission_nanos,
                report.drain_nanos,
                report.defrag_nanos,
                report.execution_nanos,
            ));
        }
        body.push_str("\n  ]\n}\n");
        let path = dir.join("BENCH_parallel_tick.json");
        if std::fs::write(&path, body).is_ok() {
            println!("\nper-width wall-clock written to {}", path.display());
        }
    }

    // --- The perf claim, where the hardware can express it. ---
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if !quick && cores >= 4 {
        let &(_, four_nanos, _) = rows
            .iter()
            .find(|(w, ..)| *w == 4)
            .expect("4 workers is a tested width");
        let speedup = base_nanos / four_nanos as f64;
        assert!(
            speedup >= 2.5,
            "4 workers must clear 2.5x over sequential on the 16-chip fleet, \
             got {speedup:.2}x"
        );
        println!("speedup gate: 4 workers at {speedup:.2}x >= 2.5x");
    } else {
        println!(
            "speedup gate skipped (quick = {quick}, host cores = {cores}): \
             wall-clock above is informational"
        );
    }
}

/// Re-runs every width with a [`TraceProbe`] installed and phase digests
/// on, then feeds the traces through the `vnpu_conc` analyses: the
/// instrumented reports must stay byte-identical to the uninstrumented
/// `baseline`, the lock traces must audit clean, and the per-phase
/// digest chains must agree across all widths.
///
/// # Panics
///
/// Panics when any instrumented run diverges from the baseline, any
/// `CONC-*` analysis reports a finding, or the digest chains disagree.
fn conc_pass(quick: bool, baseline: &ServeReport) {
    let mut traces: Vec<Trace> = Vec::new();
    let mut chains: Vec<(String, DigestChain)> = Vec::new();
    for workers in WIDTHS {
        let probe = Arc::new(TraceProbe::new());
        let mut cfg = fleet_config(quick, workers);
        let epochs = cfg.epochs;
        cfg.audit = true;
        cfg.conc = ConcMode::probed(probe.clone());
        // `run()` consumes the runtime, so drive the same loop by hand
        // to read the digest chain out before the runtime drops.
        let mut rt = ServeRuntime::new(cfg);
        while rt.tick_index() < epochs {
            rt.step().expect("instrumented fleet tick completes");
        }
        rt.drain().expect("instrumented fleet drains");
        let report = rt.report();
        assert_eq!(
            report.audit_findings, 0,
            "workers={workers}: instrumented fleet audits clean"
        );
        assert_eq!(
            normalized_json(&report),
            normalized_json(baseline),
            "workers={workers}: the probe must not perturb the report"
        );
        chains.push((
            format!("workers={workers}"),
            rt.digest_chain().expect("digests were enabled").clone(),
        ));
        traces.push(probe.take_trace());
    }
    let lock_findings = vnpu_conc::analyze_all(&traces);
    assert!(
        lock_findings.is_empty(),
        "shipped code must produce zero CONC findings: {lock_findings:?}"
    );
    let digest_findings = vnpu_conc::compare_all(&chains);
    assert!(
        digest_findings.is_empty(),
        "phase digests must agree across widths: {digest_findings:?}"
    );
    let events: usize = traces.iter().map(Trace::len).sum();
    println!(
        "[conc] probe pass clean at workers = {WIDTHS:?}: {events} lock \
         events traced, zero CONC findings, digest chains identical, \
         reports byte-identical to the uninstrumented baseline\n"
    );
}
