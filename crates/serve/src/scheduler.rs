//! The serving loop: departures → arrivals → cluster admission tick →
//! execution epochs, repeated, with every step deterministic under the
//! seed.
//!
//! Each *tick* of the runtime is one machine epoch per loaded chip. The
//! scheduler first retires tenants whose lifetime expired (destroying
//! their vNPUs frees cores and HBM — the fragmentation churn of §4.3),
//! then submits the tick's arrivals to the cluster's admission queue,
//! runs one admission pass under the configured [`AdmissionPolicy`] and
//! [`ChipPlacement`], and finally binds every live tenant's per-core
//! program into its chip's machine and executes the epoch. Placement
//! latency is measured in *controller cycles*: a fixed per-tick
//! scheduling overhead plus the meta-table configuration cycles the
//! hypervisors actually spend (the Figure 11 cost model), accrued
//! incrementally so each placement is charged only the configuration
//! work done up to its own admission decision.
//!
//! The runtime is **step-driven**: [`ServeRuntime::step`] advances one
//! tick and returns its [`TickEvents`], so callers can interleave
//! inspection, policy swaps ([`ServeRuntime::set_admission_policy`],
//! [`ServeRuntime::set_placement`]) and hardware reconfiguration
//! ([`ServeRuntime::set_core_scales`]) at epoch boundaries — the natural
//! hook points for the migration and defragmentation passes to come.
//! [`ServeRuntime::run`] remains as the thin batch loop: step through
//! the configured epochs, [`ServeRuntime::drain`], report.

use crate::arrivals::{Arrival, ArrivalGenerator, TrafficConfig};
use crate::report::{percentile, ChipReport, FragSample, ServeReport};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;
use vnpu::admission::{AdmissionPolicy, Fifo, FitHint, RequestId};
use vnpu::cluster::{ChipPlacement, Cluster, ClusterAdmissionOutcome, ClusterVmId, FirstFit};
use vnpu::drain::{CheapestFirstDrain, ChipSchedState, DrainPolicy};
use vnpu::plan::{Defragmenter, ReconfigBudget, ReconfigCost};
use vnpu::pool::WorkerPool;
use vnpu::{Hypervisor, VirtCoreId};
use vnpu_audit::{AuditFinding, FleetAuditor};
use vnpu_fault::{FaultDetector, FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
use vnpu_sim::isa::{Instr, Program};
use vnpu_sim::machine::{Machine, TenantId};
use vnpu_sim::SocConfig;
use vnpu_temporal::{
    CheckerConfig, RecoveryKind, TemporalChecker, TemporalFinding, TraceEvent, TraceFold,
};

/// Ticks of slack granted per admission attempt when deriving the
/// `TEMP-STARVE` bound from [`ServeConfig::max_attempts`]: a queued
/// request may be passed over for whole ticks while deeper queues
/// drain ahead of it, so the bound is per-attempt headroom, not a
/// per-tick guarantee.
const STARVE_SLACK_TICKS: u64 = 32;

/// Silent drain steps (nothing moved, nothing explicitly skipped,
/// residents remaining) tolerated before `TEMP-DRAIN` declares the
/// drain stalled.
const DRAIN_STALL_BOUND_TICKS: u64 = 16;

/// One chip of a serving deployment: its SoC model and HBM capacity.
#[derive(Debug, Clone)]
pub struct ChipSpec {
    /// The chip model.
    pub soc: SocConfig,
    /// HBM capacity managed by the chip's hypervisor.
    pub hbm_bytes: u64,
}

/// Configuration of one serving run.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The chips behind the front door (heterogeneous models allowed;
    /// at least one).
    pub chips: Vec<ChipSpec>,
    /// Ticks (= machine epochs) [`ServeRuntime::run`] simulates.
    pub epochs: u64,
    /// The seeded traffic model.
    pub traffic: TrafficConfig,
    /// Admission ordering policy (cluster-wide).
    pub policy: Arc<dyn AdmissionPolicy>,
    /// Chip-placement policy.
    pub placement: Arc<dyn ChipPlacement>,
    /// Placement attempts per request before rejection (`None` = forever).
    pub max_attempts: Option<u32>,
    /// Whether to bind and execute tenant programs each epoch (off =
    /// placement-only churn, for mapping-focused benchmarks).
    pub execute_epochs: bool,
    /// Controller cycles charged per scheduling tick (queue scan, MMIO
    /// doorbells); configuration cycles are accounted on top from the
    /// hypervisors' own meta-table cost model.
    pub tick_cycles: u64,
    /// Background defragmentation policy, run as an optional phase of
    /// every [`ServeRuntime::step`]; `None` disables the phase.
    pub defrag: Option<Arc<dyn Defragmenter>>,
    /// Reconfiguration budget per defragmentation pass (per chip).
    pub defrag_budget: ReconfigBudget,
    /// Run the defragmenter every N ticks (0 disables even when a
    /// policy is configured). The interval is anchored to the tick of
    /// the first completed admission — before any placement exists there
    /// is nothing to defragment.
    pub defrag_interval: u64,
    /// Evacuation policy for chips under an active drain
    /// ([`ServeRuntime::begin_drain`]); the maintenance phase runs one
    /// budgeted step per draining chip per tick.
    pub drain_policy: Arc<dyn DrainPolicy>,
    /// Reconfiguration budget per drain step (per chip, per epoch).
    pub drain_budget: ReconfigBudget,
    /// Run the [`vnpu_audit`] fleet invariant audit after every tick.
    /// Off by default — disabled, the phase costs nothing; enabled on a
    /// healthy fleet, the audit is read-only and leaves the run's report
    /// byte-identical. Findings accumulate on the runtime
    /// ([`ServeRuntime::audit_findings`]) and are counted in
    /// [`TickEvents::audit_findings`] and
    /// [`crate::report::ServeReport::audit_findings`].
    pub audit: bool,
    /// Include the tick's actual [`AuditFinding`]s in
    /// [`TickEvents::audit_detail`] (only meaningful with
    /// [`ServeConfig::audit`] on). Opt-in because the findings are
    /// cloned per tick; off, `audit_detail` stays empty and reports are
    /// byte-identical either way — the report only ever counts.
    pub audit_detail: bool,
    /// Run the [`vnpu_temporal`] online checker inside every step: the
    /// tick's [`TraceEvent`] stream feeds the streaming `TEMP-*`
    /// properties (liveness, convergence, conservation) as it is
    /// emitted. Off by default — disabled, no observation event is even
    /// computed; enabled on a healthy fleet, checking is read-only and
    /// leaves the run's report byte-identical. Findings accumulate on
    /// the runtime ([`ServeRuntime::temporal_findings`]) and are
    /// counted in [`TickEvents::temporal_findings`] and
    /// [`crate::report::ServeReport::temporal_findings`].
    pub temporal: bool,
    /// Record the run's full structured [`TraceEvent`] stream for
    /// offline analysis ([`ServeRuntime::trace`],
    /// [`vnpu_temporal::check_trace`]). Off by default — a long run's
    /// trace is large.
    pub record_trace: bool,
    /// Worker threads for the tick's parallel phases (admission
    /// candidate evaluation, drain/defrag planning, machine epochs).
    /// `1` — the default — is *exactly* the sequential path (no pool
    /// thread is ever spawned), and every value produces byte-identical
    /// reports; see the README's "Parallel fleet tick" section for the
    /// determinism contract.
    pub workers: usize,
    /// Collect per-phase wall-clock (admission / drain / defrag /
    /// execution) into the report via [`std::time::Instant`]. Off by
    /// default so reports stay fully deterministic run-to-run; the
    /// bench layer flips it on for perf trajectories.
    pub time_phases: bool,
    /// The seeded hardware-fault schedule injected into the run
    /// ([`vnpu_fault::FaultPlan`]); empty by default — the healthy-fleet
    /// baseline, where the recovery phase costs one branch per tick.
    pub fault_plan: FaultPlan,
    /// How the recovery phase responds to detected failures:
    /// remap-under-pin strategy and the pending-tenant deadline
    /// ([`vnpu_fault::RecoveryPolicy::max_recovery_ticks`]) after which
    /// an unplaceable tenant is declared lost.
    pub recovery: RecoveryPolicy,
    /// Concurrency instrumentation ([`vnpu_conc::ConcMode`]): an
    /// optional probe installed on every lock the runtime owns, an
    /// optional seeded schedule perturbation for the worker pool, and
    /// the per-phase determinism digest chain
    /// ([`ServeRuntime::digest_chain`]). All off by default — the
    /// production configuration, where every instrumented path is a
    /// plain `Option` check.
    pub conc: vnpu_conc::ConcMode,
}

impl ServeConfig {
    /// A standard churn scenario on one of the paper's 6×6 SIM chips:
    /// modest HBM (so memory churn matters), execution on, FIFO
    /// admission, first-fit placement.
    pub fn standard(seed: u64, epochs: u64) -> Self {
        Self::cluster(seed, epochs, vec![SocConfig::sim()])
    }

    /// A churn scenario over an explicit set of chip models (each with
    /// the standard 4 GiB serving HBM), FIFO admission, first-fit
    /// placement.
    pub fn cluster(seed: u64, epochs: u64, socs: Vec<SocConfig>) -> Self {
        ServeConfig {
            chips: socs
                .into_iter()
                .map(|soc| ChipSpec {
                    soc,
                    hbm_bytes: 4 << 30,
                })
                .collect(),
            epochs,
            traffic: TrafficConfig::standard(seed),
            policy: Arc::new(Fifo),
            placement: Arc::new(FirstFit),
            max_attempts: Some(24),
            execute_epochs: true,
            tick_cycles: 1_000,
            defrag: None,
            defrag_budget: ReconfigBudget::default(),
            defrag_interval: 1,
            drain_policy: Arc::new(CheapestFirstDrain),
            drain_budget: ReconfigBudget::default(),
            audit: false,
            audit_detail: false,
            temporal: false,
            record_trace: false,
            workers: 1,
            time_phases: false,
            fault_plan: FaultPlan::new(),
            recovery: RecoveryPolicy::default(),
            conc: vnpu_conc::ConcMode::default(),
        }
    }

    /// The [`CheckerConfig`] this config's policies imply — the exact
    /// rule bounds the online checker runs under, exposed so offline
    /// re-checks of a recorded trace ([`vnpu_temporal::check_trace`])
    /// judge it by the same policy the run was served under.
    ///
    /// `TEMP-STARVE` is bounded at [`ServeConfig::max_attempts`] ×
    /// the per-attempt slack (32 ticks; disabled for unbounded retries
    /// — no policy, no bound); `TEMP-FAULT` mirrors
    /// [`vnpu_fault::RecoveryPolicy::max_recovery_ticks`].
    pub fn temporal_checker_config(&self) -> CheckerConfig {
        CheckerConfig {
            starve_bound_ticks: self
                .max_attempts
                .map(|a| u64::from(a).saturating_mul(STARVE_SLACK_TICKS).max(1)),
            drain_stall_ticks: DRAIN_STALL_BOUND_TICKS,
            max_recovery_ticks: self.recovery.max_recovery_ticks,
            check_hints: true,
        }
    }
}

/// What one [`ServeRuntime::step`] did, for callers steering the loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TickEvents {
    /// The tick that just ran.
    pub tick: u64,
    /// Requests that arrived (and were submitted) this tick.
    pub arrivals: u64,
    /// Virtual NPUs placed this tick, in admission order.
    pub admitted: Vec<ClusterVmId>,
    /// Requests terminally rejected this tick, each with the fleet's fit
    /// hint (the largest shape that *would* have placed) when the
    /// rejection was for want of a candidate.
    pub rejected: Vec<(RequestId, Option<FitHint>)>,
    /// Tenants retired this tick.
    pub departed: u64,
    /// Requests still queued after the admission pass.
    pub queued: u64,
    /// Live migrations committed by this tick's defragmentation phase.
    pub migrations: u64,
    /// Tenants evacuated off draining chips by this tick's maintenance
    /// phase (cross-chip moves, budgeted per epoch).
    pub drain_migrations: u64,
    /// Chips that executed a machine epoch this tick.
    pub executed_chips: u32,
    /// Invariant violations the post-tick fleet audit reported (always 0
    /// when [`ServeConfig::audit`] is off).
    pub audit_findings: u64,
    /// The tick's actual audit findings, populated only under
    /// [`ServeConfig::audit_detail`] (empty otherwise, even when
    /// `audit_findings` counted some) — the structured form callers and
    /// the temporal layer consume without re-running the audit.
    pub audit_detail: Vec<AuditFinding>,
    /// Temporal-property violations the online checker proved during
    /// this step (always 0 when [`ServeConfig::temporal`] is off).
    pub temporal_findings: u64,
    /// Hardware faults whose onset landed this tick.
    pub fault_onsets: u64,
    /// Hardware faults repaired this tick.
    pub fault_repairs: u64,
    /// Affected tenants recovered this tick by an in-place
    /// remap-under-pin around the dead resource.
    pub recoveries_remapped: u64,
    /// Affected tenants recovered this tick by an emergency cross-chip
    /// re-placement.
    pub recoveries_replaced: u64,
    /// Affected tenants still awaiting a landing spot after this tick's
    /// recovery pass.
    pub recoveries_pending: u64,
    /// Affected tenants declared lost this tick (pending past the
    /// [`vnpu_fault::RecoveryPolicy::max_recovery_ticks`] deadline).
    pub tenants_lost: u64,
}

#[derive(Debug)]
struct LiveVnpu {
    id: ClusterVmId,
    tenant: TenantId,
    expires_at_epoch: u64,
}

/// The run's event channel: every state transition the loop commits is
/// emitted here exactly once as a [`TraceEvent`]. The always-on
/// [`TraceFold`] derives every run counter the report publishes from
/// that stream — nothing is incremented inline anymore — and the
/// optional online checker and trace recording consume the *same*
/// stream, so the numbers the report claims and the temporal properties
/// guarding them can never drift apart.
#[derive(Debug)]
struct TemporalSink {
    /// Always on: the single source of the report's run counters.
    fold: TraceFold,
    /// The streaming `TEMP-*` checker, under [`ServeConfig::temporal`].
    checker: Option<TemporalChecker>,
    /// The recorded stream, under [`ServeConfig::record_trace`].
    trace: Option<Vec<TraceEvent>>,
}

impl TemporalSink {
    fn emit(&mut self, ev: TraceEvent) {
        self.fold.observe(&ev);
        if let Some(checker) = self.checker.as_mut() {
            checker.observe(&ev);
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(ev);
        }
    }

    /// Whether observation-only events (pass-start snapshots, fit
    /// hints, cache samples, quiescence probes) have a consumer. The
    /// fold ignores them, so when this is `false` the loop skips even
    /// *computing* them — the disabled checker costs nothing.
    fn wants_detail(&self) -> bool {
        self.checker.is_some() || self.trace.is_some()
    }
}

/// Per-phase wall-clock accumulators (nanoseconds) — all zero unless
/// [`ServeConfig::time_phases`] is on, so timed and untimed runs differ
/// only in these fields.
#[derive(Debug, Default, Clone, Copy)]
struct PhaseNanos {
    recovery: u64,
    admission: u64,
    drain: u64,
    defrag: u64,
    execution: u64,
}

/// The serving runtime: a [`Cluster`] of hypervisor-managed chips, one
/// [`Machine`] per chip, driven through continuous churn.
#[derive(Debug)]
pub struct ServeRuntime {
    cfg: ServeConfig,
    cluster: Cluster,
    machines: Vec<Machine>,
    generator: ArrivalGenerator,
    live: BTreeMap<ClusterVmId, LiveVnpu>,
    /// Lifetime (epochs) of each queued request, by admission ID.
    queued_lifetimes: HashMap<RequestId, u64>,
    /// Controller-cycle stamp of each submission.
    submitted_at: HashMap<RequestId, u64>,
    controller_cycles: u64,
    accounted_config_cycles: u64,
    placement_cycles: Vec<u64>,
    /// Tick of the first completed admission — the anchor for
    /// [`ServeConfig::defrag_interval`] (`None` until something places).
    first_admission_tick: Option<u64>,
    fragmentation: Vec<FragSample>,
    /// The event channel every run counter and temporal property folds
    /// from; see [`TemporalSink`].
    temporal: TemporalSink,
    /// Per-chip wall-clock spent in machine epochs (nanos); stays 0
    /// unless [`ServeConfig::time_phases`] is on. Kept outside the
    /// event stream because wall-clock is nondeterministic.
    exec_nanos: Vec<u64>,
    /// Tenants detected as fault-affected and not yet recovered, each
    /// with the tick its outage was first detected. `BTreeMap` iteration
    /// order *is* the deterministic recovery order.
    pending_recovery: BTreeMap<ClusterVmId, u64>,
    tick: u64,
    /// Stateful fleet auditor (generation-monotonicity history); only
    /// consulted when [`ServeConfig::audit`] is on.
    auditor: FleetAuditor,
    /// Every finding the post-tick audits reported, in tick order.
    audit_findings: Vec<AuditFinding>,
    /// The worker pool backing the tick's parallel phases (shared with
    /// the cluster; one worker = inline sequential execution).
    pool: Arc<WorkerPool>,
    /// Per-phase wall-clock, populated only under
    /// [`ServeConfig::time_phases`].
    phase_nanos: PhaseNanos,
    /// The determinism digest chain, recorded only under
    /// [`vnpu_conc::ConcMode::phase_digests`].
    digests: Option<vnpu_conc::DigestChain>,
}

impl ServeRuntime {
    /// Builds the runtime (cluster, machines and traffic stream).
    ///
    /// # Panics
    ///
    /// Panics when the config lists no chips.
    pub fn new(cfg: ServeConfig) -> Self {
        assert!(!cfg.chips.is_empty(), "a serving runtime needs chips");
        let mut cluster = Cluster::with_chips(
            cfg.chips
                .iter()
                .map(|c| Hypervisor::with_hbm_bytes(c.soc.clone(), c.hbm_bytes))
                .collect(),
        );
        cluster.set_admission_policy(Arc::clone(&cfg.policy));
        cluster.set_placement(Arc::clone(&cfg.placement));
        cluster.set_max_attempts(cfg.max_attempts);
        let pool = Arc::new(WorkerPool::with_conc(
            cfg.workers,
            cfg.conc.probe.clone(),
            cfg.conc.schedule,
        ));
        cluster.set_worker_pool(Arc::clone(&pool));
        if cfg.conc.probe.is_some() {
            let installed = cluster.set_conc_probe(cfg.conc.probe.clone());
            debug_assert!(
                installed,
                "the shared cache is exclusively owned at construction"
            );
        }
        let machines = cfg
            .chips
            .iter()
            .map(|c| Machine::new(c.soc.clone()))
            .collect();
        let generator = ArrivalGenerator::new(cfg.traffic.clone());
        let temporal = TemporalSink {
            fold: TraceFold::new(cfg.chips.len()),
            checker: cfg
                .temporal
                .then(|| TemporalChecker::standard(cfg.temporal_checker_config())),
            trace: cfg.record_trace.then(Vec::new),
        };
        let exec_nanos = vec![0; cfg.chips.len()];
        ServeRuntime {
            cluster,
            machines,
            generator,
            live: BTreeMap::new(),
            queued_lifetimes: HashMap::new(),
            submitted_at: HashMap::new(),
            controller_cycles: 0,
            accounted_config_cycles: 0,
            placement_cycles: Vec::new(),
            first_admission_tick: None,
            fragmentation: Vec::new(),
            temporal,
            exec_nanos,
            pending_recovery: BTreeMap::new(),
            tick: 0,
            auditor: FleetAuditor::new(),
            audit_findings: Vec::new(),
            pool,
            phase_nanos: PhaseNanos::default(),
            digests: cfg.conc.phase_digests.then(vnpu_conc::DigestChain::default),
            cfg,
        }
    }

    /// The per-phase determinism digest chain recorded so far, when
    /// [`vnpu_conc::ConcMode::phase_digests`] is on (`None` otherwise).
    /// Two runs that must agree — different worker counts, different
    /// schedule seeds — are compared with [`vnpu_conc::compare_chains`],
    /// which names the first divergent `(tick, phase, chip)`.
    pub fn digest_chain(&self) -> Option<&vnpu_conc::DigestChain> {
        self.digests.as_ref()
    }

    /// Starts a phase stopwatch — `None` (free) unless
    /// [`ServeConfig::time_phases`] is on.
    fn phase_clock(&self) -> Option<Instant> {
        self.cfg.time_phases.then(Instant::now)
    }

    /// Live virtual NPUs right now.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The next tick [`ServeRuntime::step`] will run.
    pub fn tick_index(&self) -> u64 {
        self.tick
    }

    /// The cluster (for inspection: per-chip hypervisors, queue state,
    /// shared-cache statistics).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Swaps the cluster admission policy — safe at any epoch boundary;
    /// queued requests are kept.
    pub fn set_admission_policy(&mut self, policy: Arc<dyn AdmissionPolicy>) {
        self.cluster.set_admission_policy(policy);
    }

    /// Swaps the chip-placement policy — safe at any epoch boundary.
    pub fn set_placement(&mut self, placement: Arc<dyn ChipPlacement>) {
        self.cluster.set_placement(placement);
    }

    /// Takes a chip out of service for maintenance: from the next tick
    /// on, the maintenance phase runs one budgeted drain step per tick
    /// ([`ServeConfig::drain_policy`] / [`ServeConfig::drain_budget`])
    /// until the chip is empty, and no placement or fit hint ever names
    /// the chip while it drains.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::begin_drain`].
    pub fn begin_drain(&mut self, chip: usize) -> Result<(), vnpu::VnpuError> {
        self.cluster.begin_drain(chip)
    }

    /// Declares a drained chip's evacuation finished (it must be empty);
    /// the maintenance window stays open until
    /// [`ServeRuntime::undrain`].
    ///
    /// # Errors
    ///
    /// As for [`Cluster::complete_drain`].
    pub fn complete_drain(&mut self, chip: usize) -> Result<(), vnpu::VnpuError> {
        self.cluster.complete_drain(chip)
    }

    /// Hands a draining or drained chip back to the schedulers.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::undrain`].
    pub fn undrain(&mut self, chip: usize) -> Result<(), vnpu::VnpuError> {
        self.cluster.undrain(chip)
    }

    /// The chip's drain-lifecycle state.
    ///
    /// # Errors
    ///
    /// As for [`Cluster::drain_state`].
    pub fn drain_state(&self, chip: usize) -> Result<ChipSchedState, vnpu::VnpuError> {
        self.cluster.drain_state(chip)
    }

    /// The fleet-wide fit hint right now (schedulable chips only) —
    /// probing mutates only the cluster's dedicated hint cache.
    pub fn fleet_fit_hint(&mut self) -> Option<FitHint> {
        self.cluster.fit_hint()
    }

    /// Reconfigures a hybrid core (§7) on one chip, keeping the mapping
    /// cache honest: the machine bumps its own
    /// [`Machine::topology_generation`] inside `set_core_scales`, and the
    /// chip's hypervisor adopts that counter as the ground truth — so
    /// placements memoized against the old hardware expire instead of
    /// replaying (the ROADMAP's "mapping-cache invalidation on reconfig"
    /// hazard), and the two counters cannot drift.
    ///
    /// # Errors
    ///
    /// [`vnpu::VnpuError::UnknownChip`] for a bad chip index,
    /// [`vnpu::VnpuError::Sim`] for a bad core index.
    pub fn set_core_scales(
        &mut self,
        chip: usize,
        core: u32,
        matrix_pct: u32,
        vector_pct: u32,
    ) -> Result<(), vnpu::VnpuError> {
        let count = self.machines.len();
        let machine = self
            .machines
            .get_mut(chip)
            .ok_or(vnpu::VnpuError::UnknownChip { chip, count })?;
        machine
            .set_core_scales(core, matrix_pct, vector_pct)
            .map_err(vnpu::VnpuError::Sim)?;
        let generation = machine.topology_generation();
        self.cluster
            .chip_mut(chip)
            .set_topology_generation(generation);
        Ok(())
    }

    /// Runs the configured number of epochs, drains all remaining
    /// tenants, and returns the report — the batch form of the
    /// step-driven API.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures (deadlock, cycle limit) — these
    /// indicate a runtime bug, not load; placement failures are data.
    pub fn run(mut self) -> Result<ServeReport, vnpu::VnpuError> {
        while self.tick < self.cfg.epochs {
            self.step()?;
        }
        self.drain()?;
        Ok(self.report())
    }

    /// Advances one tick: departures, arrivals, one cluster admission
    /// pass, a maintenance phase (one budgeted drain step per draining
    /// chip), an optional defragmentation phase (when
    /// [`ServeConfig::defrag`] is set), a fragmentation sample, and
    /// (when enabled) one machine epoch on every chip with live
    /// tenants. Steps past
    /// `cfg.epochs` keep working — the bound only applies to
    /// [`ServeRuntime::run`].
    ///
    /// # Errors
    ///
    /// Propagates simulator failures; placement failures are data.
    pub fn step(&mut self) -> Result<TickEvents, vnpu::VnpuError> {
        let tick = self.tick;
        self.tick += 1;
        self.controller_cycles += self.cfg.tick_cycles;
        let mut events = TickEvents {
            tick,
            arrivals: 0,
            admitted: Vec::new(),
            rejected: Vec::new(),
            departed: 0,
            queued: 0,
            migrations: 0,
            drain_migrations: 0,
            executed_chips: 0,
            audit_findings: 0,
            audit_detail: Vec::new(),
            temporal_findings: 0,
            fault_onsets: 0,
            fault_repairs: 0,
            recoveries_remapped: 0,
            recoveries_replaced: 0,
            recoveries_pending: 0,
            tenants_lost: 0,
        };
        let findings_before = self
            .temporal
            .checker
            .as_ref()
            .map_or(0, |c| c.findings().len());

        // 1. Departures: tenants whose lifetime expired leave first,
        //    freeing cores/HBM for this tick's admissions.
        let expired: Vec<ClusterVmId> = self
            .live
            .values()
            .filter(|l| l.expires_at_epoch <= tick)
            .map(|l| l.id)
            .collect();
        for id in expired {
            self.retire(id, tick)?;
            events.departed += 1;
        }
        // 1b. Fault-recovery phase: this tick's scheduled onsets and
        //     repairs land (machine and hypervisor in lockstep), affected
        //     tenants are detected, and every pending tenant gets one
        //     recovery attempt — remap-under-pin, else emergency
        //     cross-chip re-placement, else it stays pending until the
        //     policy deadline declares it lost. Runs before `config_base`
        //     is read so recovery's configuration work folds into the
        //     controller clock with the departures, never into admission
        //     latency stamps.
        let t_recovery = self.phase_clock();
        self.recovery_phase(tick, &mut events)?;
        self.phase_nanos.recovery += elapsed_nanos(t_recovery);

        // Departures (and recovery) may spend configuration cycles
        // (meta-table teardown); fold them into the controller clock
        // *before* this tick's arrivals are stamped, so pre-admission
        // work never inflates their measured placement latency. Nothing
        // between here and the admission pass touches the hypervisors'
        // config-cycle counters, so `config_base` is also the pass's
        // starting point.
        let config_base = self.cluster.total_config_cycles();
        self.controller_cycles += config_base - self.accounted_config_cycles;
        self.accounted_config_cycles = config_base;

        // 2. Arrivals enter the cluster admission queue.
        let arrivals: Vec<Arrival> = self.generator.arrivals_for_tick(tick);
        for arrival in arrivals {
            let id = self.cluster.submit(arrival.request);
            self.queued_lifetimes.insert(id, arrival.lifetime_epochs);
            self.submitted_at.insert(id, self.controller_cycles);
            if self.temporal.wants_detail() {
                self.temporal.emit(TraceEvent::Arrival { tick, id: id.0 });
            }
            events.arrivals += 1;
        }

        // 3. One cluster admission pass. Configuration cycles are
        //    accounted incrementally: every decision carries the
        //    cluster-wide cumulative config-cycle counter at the moment
        //    it was made, so each placement is stamped with only the
        //    configuration work accrued up to *that* event. The pass
        //    hands back its per-chip snapshots so the defrag phase and
        //    the fragmentation sample reuse the tick's single
        //    free-region scan.
        let t_admission = self.phase_clock();
        if self.temporal.wants_detail() {
            // Pass-start snapshot of the largest schedulable island:
            // the sound upper bound TEMP-HINT checks every fit hint
            // against (free regions only shrink during the pass). The
            // pass below reuses the same memoized snapshots, so this
            // costs no extra free-region scan.
            let largest_island = self
                .cluster
                .tick_snapshots()
                .iter()
                .filter(|s| s.schedulable)
                .map(|s| s.largest_free_component)
                .max()
                .unwrap_or(0) as u32;
            self.temporal.emit(TraceEvent::AdmissionStart {
                tick,
                largest_island,
            });
        }
        let (admission_events, mut snapshots) = self.cluster.process_admissions_with_snapshots();
        if let Some(chain) = self.digests.as_mut() {
            // Fleet-level admission digest: the merged decision sequence
            // in nomination order — exactly what a completion-order
            // merge would scramble.
            let mut d = vnpu_conc::Digest::new();
            for event in &admission_events {
                d.write_u64(event.id.0);
                match &event.outcome {
                    ClusterAdmissionOutcome::Admitted(id) => {
                        d.write_u64(1);
                        d.write_u64(id.chip as u64);
                        d.write_u64(u64::from(id.vm.0));
                    }
                    ClusterAdmissionOutcome::Rejected(_) => d.write_u64(2),
                }
                d.write_u64(event.config_cycles_total);
                match event.fit_hint {
                    Some(hint) => {
                        d.write_u64(u64::from(hint.cores));
                        d.write_u64(u64::from(hint.width));
                        d.write_u64(u64::from(hint.height));
                    }
                    None => d.write_u64(0),
                }
            }
            chain.record(tick, vnpu_conc::Phase::Admission, None, d.finish());
        }
        for event in admission_events {
            let lifetime = self
                .queued_lifetimes
                .remove(&event.id)
                .expect("every queued id has a lifetime");
            let stamp = self
                .submitted_at
                .remove(&event.id)
                .expect("every queued id has a submit stamp");
            match event.outcome {
                ClusterAdmissionOutcome::Admitted(id) => {
                    self.temporal.emit(TraceEvent::Admitted {
                        tick,
                        id: event.id.0,
                        chip: id.chip,
                        vm: id.vm.0,
                    });
                    let decided_at =
                        self.controller_cycles + (event.config_cycles_total - config_base);
                    self.placement_cycles.push(decided_at.saturating_sub(stamp));
                    let name = format!("chip{}vm{}", id.chip, id.vm.0);
                    let tenant = self.machines[id.chip].add_tenant(&name);
                    self.live.insert(
                        id,
                        LiveVnpu {
                            id,
                            tenant,
                            expires_at_epoch: tick + lifetime.max(1),
                        },
                    );
                    events.admitted.push(id);
                }
                ClusterAdmissionOutcome::Rejected(_) => {
                    self.temporal.emit(TraceEvent::Rejected {
                        tick,
                        id: event.id.0,
                    });
                    if self.temporal.wants_detail() {
                        if let Some(hint) = event.fit_hint {
                            self.temporal.emit(TraceEvent::HintEmitted {
                                tick,
                                id: event.id.0,
                                cores: hint.cores,
                            });
                        }
                    }
                    events.rejected.push((event.id, event.fit_hint));
                }
            }
        }
        events.queued = self.cluster.pending_count() as u64;
        if self.first_admission_tick.is_none() && !events.admitted.is_empty() {
            self.first_admission_tick = Some(tick);
        }
        self.phase_nanos.admission += elapsed_nanos(t_admission);

        // 4. Maintenance phase: every chip under an active drain gets one
        //    budgeted evacuation step — planned against the tick's
        //    snapshots for every draining chip (in parallel when the pool
        //    is wider than one), then applied in chip order. Moved
        //    tenants keep their identity in the serving loop (lifetime,
        //    accounting) but land on the destination chip's machine,
        //    where the paid pause is charged to their next-epoch threads
        //    — the same epoch-boundary semantics as a defrag migration.
        let t_drain = self.phase_clock();
        let drain_steps =
            self.cluster
                .drain_tick(&self.cfg.drain_policy, &self.cfg.drain_budget, &snapshots)?;
        for (chip, step) in drain_steps {
            if let Some(chain) = self.digests.as_mut() {
                // Per-chip drain digest: the applied moves in plan order
                // plus the step's skip/remaining accounting.
                let mut d = vnpu_conc::Digest::new();
                for m in &step.moved {
                    d.write_u64(m.from.chip as u64);
                    d.write_u64(u64::from(m.from.vm.0));
                    d.write_u64(m.to.chip as u64);
                    d.write_u64(u64::from(m.to.vm.0));
                    d.write_u64(m.cost.routing_cycles);
                    d.write_u64(m.cost.rtt_cycles);
                    d.write_u64(m.cost.data_move_bytes);
                    d.write_u64(m.cost.paused_cycles);
                }
                d.write_u64(step.skipped as u64);
                d.write_u64(step.remaining as u64);
                chain.record(tick, vnpu_conc::Phase::Drain, Some(chip as u32), d.finish());
            }
            for m in &step.moved {
                let live = self
                    .live
                    .remove(&m.from)
                    .expect("drained tenants are live in the serving loop");
                self.machines[m.from.chip]
                    .remove_tenant(live.tenant)
                    .map_err(vnpu::VnpuError::Sim)?;
                let name = format!("chip{}vm{}", m.to.chip, m.to.vm.0);
                let tenant = self.machines[m.to.chip].adopt_tenant(&name, m.cost.paused_cycles);
                self.live.insert(
                    m.to,
                    LiveVnpu {
                        id: m.to,
                        tenant,
                        expires_at_epoch: live.expires_at_epoch,
                    },
                );
                self.temporal.emit(TraceEvent::DrainMove {
                    tick,
                    from_chip: m.from.chip,
                    from_vm: m.from.vm.0,
                    to_chip: m.to.chip,
                    to_vm: m.to.vm.0,
                    cost: m.cost,
                });
                events.drain_migrations += 1;
            }
            if self.temporal.wants_detail() {
                self.temporal.emit(TraceEvent::DrainStep {
                    tick,
                    chip,
                    moved: step.moved.len() as u64,
                    skipped: step.skipped as u64,
                    remaining: step.remaining as u64,
                });
            }
            // Refresh only the chips this step touched (source plus the
            // destinations that received a tenant) — the tick keeps its
            // one-free-region-scan-per-chip budget.
            if !step.moved.is_empty() {
                snapshots[chip] = self.cluster.snapshot_refresh(chip);
                let mut touched: Vec<usize> = step.moved.iter().map(|m| m.to.chip).collect();
                touched.sort_unstable();
                touched.dedup();
                for dest in touched {
                    snapshots[dest] = self.cluster.snapshot_refresh(dest);
                }
            }
        }
        self.phase_nanos.drain += elapsed_nanos(t_drain);

        // 5. Optional defragmentation phase: the configured policy
        //    proposes migrations per chip from the snapshot stats, the
        //    cluster plans them under the budget and commits atomically,
        //    and each migrated tenant's machine pause lands on its
        //    next-epoch threads. Committed passes refresh the chip's
        //    snapshot and book the recovered fragmentation. The interval
        //    is anchored to the first completed admission tick: before
        //    any placement exists a pass can only waste work, and an
        //    anchor of tick 0 would skew `defrag_interval`-relative
        //    accounting for traffic that starts late.
        let defrag_due = self.cfg.defrag_interval > 0
            && self
                .first_admission_tick
                .is_some_and(|t0| tick >= t0 && (tick - t0) % self.cfg.defrag_interval == 0);
        let t_defrag = self.phase_clock();
        if let Some(defrag) = self.cfg.defrag.clone() {
            if defrag_due {
                // A draining chip is being emptied, not compacted —
                // defrag_pass targets schedulable chips only, planning
                // (in parallel when the pool is wider than one) from the
                // tick's snapshots and committing in chip order.
                let receipts =
                    self.cluster
                        .defrag_pass(&defrag, &self.cfg.defrag_budget, &snapshots)?;
                for (chip, receipt) in receipts {
                    if let Some(chain) = self.digests.as_mut() {
                        // Per-chip defrag digest: the committed receipt —
                        // created/migrated/destroyed VMs and their costs
                        // in commit order.
                        let mut d = vnpu_conc::Digest::new();
                        for vm in &receipt.created {
                            d.write_u64(u64::from(vm.0));
                        }
                        for (vm, cost) in &receipt.migrated {
                            d.write_u64(u64::from(vm.0));
                            d.write_u64(cost.routing_cycles);
                            d.write_u64(cost.rtt_cycles);
                            d.write_u64(cost.data_move_bytes);
                            d.write_u64(cost.paused_cycles);
                        }
                        for vm in &receipt.destroyed {
                            d.write_u64(u64::from(vm.0));
                        }
                        chain.record(
                            tick,
                            vnpu_conc::Phase::Defrag,
                            Some(chip as u32),
                            d.finish(),
                        );
                    }
                    if receipt.migration_count() == 0 {
                        continue;
                    }
                    for (vm, cost) in &receipt.migrated {
                        let id = ClusterVmId { chip, vm: *vm };
                        if let Some(live) = self.live.get(&id) {
                            self.machines[chip]
                                .migrate_tenant(live.tenant, cost.paused_cycles)
                                .map_err(vnpu::VnpuError::Sim)?;
                        }
                        self.temporal.emit(TraceEvent::Migrated {
                            tick,
                            chip,
                            vm: vm.0,
                            cost: *cost,
                        });
                        events.migrations += 1;
                    }
                    let before = &snapshots[chip];
                    let (window_before, hbm_before) = (
                        before.largest_free_component,
                        before.hbm_external_fragmentation,
                    );
                    snapshots[chip] = self.cluster.snapshot_refresh(chip);
                    let after = &snapshots[chip];
                    let delta = hbm_before - after.hbm_external_fragmentation;
                    self.temporal.emit(TraceEvent::DefragRecovered {
                        tick,
                        chip,
                        window_cores: after.largest_free_component.saturating_sub(window_before)
                            as u64,
                        // Pre-clamped: only improvements are booked, and
                        // folding `+= 0.0` preserves byte-identity for
                        // the non-negative running sum.
                        hbm_frag_delta: if delta > 0.0 { delta } else { 0.0 },
                    });
                }
            }
        }
        self.phase_nanos.defrag += elapsed_nanos(t_defrag);
        // Fold the pass's configuration work (admissions, drain
        // evacuations *and* defrag re-deployments) into the controller
        // clock.
        let config_now = self.cluster.total_config_cycles();
        self.controller_cycles += config_now - config_base;
        self.accounted_config_cycles = config_now;

        // 6. Fragmentation sample (after admissions, maintenance and
        //    defrag, before execution), aggregated across chips from the
        //    tick's shared snapshots — no extra free-region scan.
        let free_cores: u32 = snapshots.iter().map(|s| s.free_cores).sum();
        let weighted_conn: f64 = snapshots
            .iter()
            .map(|s| s.free_connectivity * f64::from(s.free_cores))
            .sum();
        self.fragmentation.push(FragSample {
            tick,
            free_cores,
            free_components: snapshots.iter().map(|s| s.free_components).sum(),
            free_connectivity: if free_cores == 0 {
                1.0
            } else {
                weighted_conn / f64::from(free_cores)
            },
            hbm_external_fragmentation: snapshots
                .iter()
                .map(|s| s.hbm_external_fragmentation)
                .sum::<f64>()
                / snapshots.len().max(1) as f64,
            live_vnpus: self.live.len(),
        });

        // 7. Execution epochs: every chip with live tenants runs them.
        //    Machine epochs are chip-independent — embarrassingly
        //    parallel — so after a sequential bind pass the loaded
        //    machines fan out on the worker pool, and outcomes are
        //    folded back (first error raised) in chip order either way.
        let t_exec = self.phase_clock();
        if self.cfg.execute_epochs && !self.live.is_empty() {
            let mut residents_by_chip: Vec<Vec<(ClusterVmId, TenantId)>> =
                vec![Vec::new(); self.machines.len()];
            for l in self.live.values() {
                // A tenant awaiting recovery is stalled: it still maps
                // dead hardware, so binding it would fault and its NoC
                // traffic could cross a dead link. It resumes the epoch
                // after its recovery (or never, if declared lost). A
                // tenant admitted *this* tick (after the recovery phase
                // ran) gets the same direct check — the next tick's
                // sweep will queue it for recovery.
                if self.pending_recovery.contains_key(&l.id)
                    || (self.machines[l.id.chip].has_active_faults()
                        && FaultDetector::tenant_affected(self.cluster.chip(l.id.chip), l.id.vm))
                {
                    continue;
                }
                residents_by_chip[l.id.chip].push((l.id, l.tenant));
            }
            let loaded: Vec<usize> = (0..self.machines.len())
                .filter(|&c| !residents_by_chip[c].is_empty())
                .collect();
            for &chip in &loaded {
                for &(id, tenant) in &residents_by_chip[chip] {
                    bind_ring_workload(
                        &mut self.machines[chip],
                        self.cluster.chip(chip),
                        id,
                        tenant,
                    )?;
                }
            }
            // Each job owns its chip's machine for the epoch and hands it
            // back alongside the outcome.
            let mut slots: Vec<Option<Machine>> = std::mem::take(&mut self.machines)
                .into_iter()
                .map(Some)
                .collect();
            let jobs: Vec<_> = loaded
                .iter()
                .map(|&chip| {
                    let mut machine = slots[chip].take().expect("loaded chips are distinct");
                    move || {
                        let t0 = Instant::now();
                        let outcome = machine.run_epoch();
                        (machine, outcome, t0.elapsed().as_nanos() as u64)
                    }
                })
                .collect();
            let results = self.pool.run(jobs);
            let mut outcomes = Vec::with_capacity(loaded.len());
            for (&chip, (machine, outcome, nanos)) in loaded.iter().zip(results) {
                slots[chip] = Some(machine);
                outcomes.push((chip, outcome, nanos));
            }
            self.machines = slots
                .into_iter()
                .map(|s| s.expect("every machine restored"))
                .collect();
            for (chip, outcome, nanos) in outcomes {
                let report = outcome.map_err(vnpu::VnpuError::Sim)?;
                if let Some(chain) = self.digests.as_mut() {
                    // Per-chip execution digest: the epoch's makespan
                    // fold (wall-clock nanos deliberately excluded —
                    // they are nondeterministic by nature).
                    let mut d = vnpu_conc::Digest::new();
                    d.write_u64(report.makespan());
                    chain.record(
                        tick,
                        vnpu_conc::Phase::Execution,
                        Some(chip as u32),
                        d.finish(),
                    );
                }
                self.temporal.emit(TraceEvent::Executed {
                    tick,
                    chip,
                    machine_cycles: report.makespan(),
                });
                if self.cfg.time_phases {
                    self.exec_nanos[chip] += nanos;
                }
                events.executed_chips += 1;
            }
        }
        self.phase_nanos.execution += elapsed_nanos(t_exec);
        if self.temporal.wants_detail() {
            // Placement-cache conservation sample: TEMP-CACHE checks
            // hits + misses == lookups and that both series are
            // monotone across samples.
            let cache = self.cluster.cache_stats();
            self.temporal.emit(TraceEvent::CacheSample {
                tick,
                hits: cache.hits,
                misses: cache.misses,
                lookups: cache.hits + cache.misses,
            });
        }

        // 8. Optional post-tick fleet audit: every invariant the tick's
        //    phases were supposed to preserve, cross-checked read-only.
        //    Findings are data, not errors — callers (and the report)
        //    decide how hard to fail on them.
        if self.cfg.audit {
            let findings = self.auditor.audit(&self.cluster);
            events.audit_findings = findings.len() as u64;
            if self.cfg.audit_detail {
                events.audit_detail = findings.clone();
            }
            self.audit_findings.extend(findings);
        }
        events.temporal_findings = self
            .temporal
            .checker
            .as_ref()
            .map_or(0, |c| c.findings().len())
            .saturating_sub(findings_before) as u64;
        Ok(events)
    }

    /// Phase 1b of [`ServeRuntime::step`]: the fault → detect → recover
    /// lifecycle.
    ///
    /// Onsets and repairs scheduled for `tick` land on the machine first
    /// (it owns the topology-generation hash chain) and the hypervisor
    /// adopts the machine's counter — the same lockstep rule as
    /// [`ServeRuntime::set_core_scales`] — so placements memoized against
    /// the pre-fault chip expire by key. Newly affected tenants join the
    /// pending-recovery queue; every pending tenant then gets one
    /// recovery attempt in deterministic [`ClusterVmId`] order:
    /// remap-under-pin on its own chip under
    /// [`RecoveryPolicy::remap_strategy`], else an emergency cross-chip
    /// re-placement (chips in index order), else it stays pending until
    /// [`RecoveryPolicy::max_recovery_ticks`] ticks after detection, when
    /// it is retired as lost. A pending tenant whose fault is repaired
    /// under it self-heals without moving.
    fn recovery_phase(
        &mut self,
        tick: u64,
        events: &mut TickEvents,
    ) -> Result<(), vnpu::VnpuError> {
        if self.cfg.fault_plan.is_empty() && self.pending_recovery.is_empty() {
            return Ok(());
        }
        // Per-chip digest words for the tick's `Phase::Recovery` records
        // (folded at the end; only touched chips record an entry).
        let mut digest_words: BTreeMap<usize, Vec<u64>> = BTreeMap::new();
        let chip_count = self.machines.len();

        // Scheduled onsets land.
        let onsets: Vec<FaultEvent> = self.cfg.fault_plan.onsets_at(tick).copied().collect();
        for ev in onsets {
            let chip = ev.chip;
            let machine = self
                .machines
                .get_mut(chip)
                .ok_or(vnpu::VnpuError::UnknownChip {
                    chip,
                    count: chip_count,
                })?;
            let changed = match ev.kind {
                FaultKind::Core { core } => {
                    let m = machine.fault_core(core).map_err(vnpu::VnpuError::Sim)?;
                    self.cluster.fault_core(chip, core)?;
                    m
                }
                FaultKind::Link { a, b } => {
                    let m = machine.fault_link(a, b).map_err(vnpu::VnpuError::Sim)?;
                    self.cluster.fault_link(chip, a, b)?;
                    m
                }
            };
            let generation = self.machines[chip].topology_generation();
            self.cluster
                .chip_mut(chip)
                .set_topology_generation(generation);
            if !changed {
                continue; // duplicate onset: already faulted, nothing new
            }
            self.temporal.emit(TraceEvent::FaultOnset { tick, chip });
            events.fault_onsets += 1;
            let words = digest_words.entry(chip).or_default();
            words.push(1);
            match ev.kind {
                FaultKind::Core { core } => words.extend([u64::from(core), u64::MAX]),
                FaultKind::Link { a, b } => words.extend([u64::from(a), u64::from(b)]),
            }
            for vm in FaultDetector::affected_tenants(self.cluster.chip(chip), &ev.kind) {
                let id = ClusterVmId { chip, vm };
                if self.live.contains_key(&id) && !self.pending_recovery.contains_key(&id) {
                    self.pending_recovery.insert(id, tick);
                    self.temporal.emit(TraceEvent::RecoveryDetected {
                        tick,
                        chip,
                        vm: vm.0,
                    });
                }
            }
        }

        // Scheduled repairs land (machine-first, same lockstep).
        let repairs: Vec<FaultEvent> = self.cfg.fault_plan.repairs_at(tick).copied().collect();
        for ev in repairs {
            let chip = ev.chip;
            let machine = self
                .machines
                .get_mut(chip)
                .ok_or(vnpu::VnpuError::UnknownChip {
                    chip,
                    count: chip_count,
                })?;
            let changed = match ev.kind {
                FaultKind::Core { core } => {
                    let m = machine.repair_core(core).map_err(vnpu::VnpuError::Sim)?;
                    self.cluster.repair_core(chip, core)?;
                    m
                }
                FaultKind::Link { a, b } => {
                    let m = machine.repair_link(a, b).map_err(vnpu::VnpuError::Sim)?;
                    self.cluster.repair_link(chip, a, b)?;
                    m
                }
            };
            let generation = self.machines[chip].topology_generation();
            self.cluster
                .chip_mut(chip)
                .set_topology_generation(generation);
            if !changed {
                continue;
            }
            self.temporal.emit(TraceEvent::FaultRepair { tick, chip });
            events.fault_repairs += 1;
            let words = digest_words.entry(chip).or_default();
            words.push(2);
            match ev.kind {
                FaultKind::Core { core } => words.extend([u64::from(core), u64::MAX]),
                FaultKind::Link { a, b } => words.extend([u64::from(a), u64::from(b)]),
            }
        }

        // Sweep for tenants that became affected *after* the onset
        // landed: admission only masks faulted cores, so a tenant placed
        // while a link fault is active can route across the dead link
        // without owning any faulted resource at onset time. Any live
        // tenant on a chip with active faults goes back through the
        // detector so nobody keeps executing across dead hardware.
        let swept: Vec<ClusterVmId> = self
            .live
            .keys()
            .copied()
            .filter(|id| {
                self.machines[id.chip].has_active_faults()
                    && !self.pending_recovery.contains_key(id)
                    && FaultDetector::tenant_affected(self.cluster.chip(id.chip), id.vm)
            })
            .collect();
        for id in swept {
            self.pending_recovery.insert(id, tick);
            self.temporal.emit(TraceEvent::RecoveryDetected {
                tick,
                chip: id.chip,
                vm: id.vm.0,
            });
        }

        // One recovery attempt per pending tenant, in ClusterVmId order.
        let pending: Vec<(ClusterVmId, u64)> = self
            .pending_recovery
            .iter()
            .map(|(&id, &since)| (id, since))
            .collect();
        for (id, since) in pending {
            // Departed while pending: the outage resolved itself.
            if !self.live.contains_key(&id) {
                self.pending_recovery.remove(&id);
                continue;
            }
            let dt = tick - since;
            let words_key = id.chip;
            // Fault repaired under the tenant: self-healed in place.
            if !FaultDetector::tenant_affected(self.cluster.chip(id.chip), id.vm) {
                self.pending_recovery.remove(&id);
                self.temporal.emit(TraceEvent::Recovered {
                    tick,
                    chip: id.chip,
                    vm: id.vm.0,
                    kind: RecoveryKind::SelfHealed,
                    onset_tick: since,
                });
                digest_words
                    .entry(words_key)
                    .or_default()
                    .extend([3, u64::from(id.vm.0), dt]);
                continue;
            }
            // (a) Remap-under-pin around the dead resource. The plan
            //     machinery never re-offers a faulted *core*, so a
            //     committed remap provably escapes core faults — but a
            //     link-affected tenant's cores are all healthy, and the
            //     remap may land right back on the dead link's
            //     endpoints. Re-check before declaring victory; a paid
            //     remap that failed to escape falls through to the
            //     emergency re-placement.
            let mut remap_cost = None;
            if let Ok(cost) = self
                .cluster
                .recover_in_place(id, &self.cfg.recovery.remap_strategy)
            {
                let tenant = self.live.get(&id).expect("checked live").tenant;
                self.machines[id.chip]
                    .migrate_tenant(tenant, cost.paused_cycles)
                    .map_err(vnpu::VnpuError::Sim)?;
                // Paid even when the remap fails to escape a link fault
                // — TEMP-COST conserves *paid* costs, so the emission is
                // tied to the commit, not to the success check below.
                self.temporal.emit(TraceEvent::RecoveryPaid {
                    tick,
                    chip: id.chip,
                    cost,
                });
                remap_cost = Some(cost);
            }
            if let Some(cost) = remap_cost
                .filter(|_| !FaultDetector::tenant_affected(self.cluster.chip(id.chip), id.vm))
            {
                self.pending_recovery.remove(&id);
                self.temporal.emit(TraceEvent::Recovered {
                    tick,
                    chip: id.chip,
                    vm: id.vm.0,
                    kind: RecoveryKind::Remapped,
                    onset_tick: since,
                });
                events.recoveries_remapped += 1;
                digest_words.entry(words_key).or_default().extend([
                    4,
                    u64::from(id.vm.0),
                    dt,
                    cost.paused_cycles,
                ]);
                continue;
            }
            // (b) Emergency cross-chip re-placement, chips in index
            //     order (the unplanned, unbudgeted cousin of a drain
            //     evacuation).
            let mut landed: Option<(ClusterVmId, ReconfigCost)> = None;
            for dest in 0..chip_count {
                if dest == id.chip {
                    continue;
                }
                if let Ok(placed) = self.cluster.migrate_to_chip(id, dest) {
                    landed = Some(placed);
                    break;
                }
            }
            if let Some((new_id, cost)) = landed {
                let live = self.live.remove(&id).expect("checked live");
                self.machines[id.chip]
                    .remove_tenant(live.tenant)
                    .map_err(vnpu::VnpuError::Sim)?;
                let name = format!("chip{}vm{}", new_id.chip, new_id.vm.0);
                let tenant = self.machines[new_id.chip].adopt_tenant(&name, cost.paused_cycles);
                self.live.insert(
                    new_id,
                    LiveVnpu {
                        id: new_id,
                        tenant,
                        expires_at_epoch: live.expires_at_epoch,
                    },
                );
                self.pending_recovery.remove(&id);
                self.temporal.emit(TraceEvent::RecoveryPaid {
                    tick,
                    chip: id.chip,
                    cost,
                });
                // Booked against the *old* identity — the outage being
                // resolved is the one detected on the source chip.
                self.temporal.emit(TraceEvent::Recovered {
                    tick,
                    chip: id.chip,
                    vm: id.vm.0,
                    kind: RecoveryKind::Replaced,
                    onset_tick: since,
                });
                events.recoveries_replaced += 1;
                digest_words.entry(words_key).or_default().extend([
                    5,
                    u64::from(id.vm.0),
                    new_id.chip as u64,
                    u64::from(new_id.vm.0),
                    dt,
                    cost.paused_cycles,
                ]);
                continue;
            }
            // (c) Nowhere to go: lost after the deadline, else pending.
            if dt >= self.cfg.recovery.max_recovery_ticks {
                self.pending_recovery.remove(&id);
                self.temporal.emit(TraceEvent::TenantLost {
                    tick,
                    chip: id.chip,
                    vm: id.vm.0,
                    onset_tick: since,
                });
                self.retire(id, tick)?;
                events.tenants_lost += 1;
                digest_words
                    .entry(words_key)
                    .or_default()
                    .extend([6, u64::from(id.vm.0), dt]);
            } else {
                digest_words
                    .entry(words_key)
                    .or_default()
                    .extend([7, u64::from(id.vm.0), dt]);
            }
        }
        events.recoveries_pending = self.pending_recovery.len() as u64;

        // Degraded-mode accounting: a chip with any active fault at the
        // end of the phase serves this tick at the degraded router
        // penalty.
        let degraded: Vec<usize> = self
            .machines
            .iter()
            .enumerate()
            .filter(|(_, m)| m.has_active_faults())
            .map(|(chip, _)| chip)
            .collect();
        for chip in degraded {
            self.temporal.emit(TraceEvent::Degraded { tick, chip });
        }

        if let Some(chain) = self.digests.as_mut() {
            for (chip, words) in &digest_words {
                let mut d = vnpu_conc::Digest::new();
                for &w in words {
                    d.write_u64(w);
                }
                chain.record(
                    tick,
                    vnpu_conc::Phase::Recovery,
                    Some(*chip as u32),
                    d.finish(),
                );
            }
        }
        Ok(())
    }

    /// Every finding the post-tick fleet audits have reported so far, in
    /// tick order (empty unless [`ServeConfig::audit`] is on — and empty
    /// on a healthy fleet even then).
    pub fn audit_findings(&self) -> &[AuditFinding] {
        &self.audit_findings
    }

    /// Every `TEMP-*` finding the streaming temporal checker has
    /// reported so far (empty unless [`ServeConfig::temporal`] is on —
    /// and empty on a healthy run even then). The deadline-bound
    /// obligations ([`vnpu_temporal::TempRule::Starvation`],
    /// [`vnpu_temporal::TempRule::FaultDeadline`]) are only fully
    /// settled after [`ServeRuntime::drain`] finalizes the checker.
    pub fn temporal_findings(&self) -> &[TemporalFinding] {
        self.temporal.checker.as_ref().map_or(&[], |c| c.findings())
    }

    /// The recorded event stream (`None` unless
    /// [`ServeConfig::record_trace`] is on). Feed it to
    /// [`vnpu_temporal::check_trace`] for offline verification, or
    /// corrupt a copy to prove the checker catches the corruption.
    pub fn trace(&self) -> Option<&[TraceEvent]> {
        self.temporal.trace.as_deref()
    }

    /// The recorded event stream with a final
    /// [`TraceEvent::ReportClaim`] appended, restating the run counters
    /// the fold accumulated. An offline `TEMP-COST` pass then checks
    /// the claim against the per-event costs — the conservation law the
    /// report's totals must satisfy. `None` unless
    /// [`ServeConfig::record_trace`] is on.
    pub fn trace_with_claim(&self) -> Option<Vec<TraceEvent>> {
        let trace = self.temporal.trace.as_ref()?;
        let fold = &self.temporal.fold;
        let mut out = trace.clone();
        out.push(TraceEvent::ReportClaim {
            tick: self.tick,
            migrations: fold.migrations,
            drain_migrations: fold.drain_migrations,
            reconfig: fold.reconfig,
            drain_reconfig: fold.drain_reconfig,
            recovery_reconfig: fold.recovery_reconfig,
        });
        Some(out)
    }

    /// Retires every remaining tenant so leak accounting is meaningful
    /// (a correct run ends with pristine chips). Returns the number of
    /// tenants drained.
    ///
    /// # Errors
    ///
    /// Propagates teardown failures.
    pub fn drain(&mut self) -> Result<u64, vnpu::VnpuError> {
        let tick = self.tick;
        let remaining: Vec<ClusterVmId> = self.live.keys().copied().collect();
        let count = remaining.len() as u64;
        for id in remaining {
            self.retire(id, tick)?;
        }
        if self.temporal.wants_detail() {
            // End-of-run quiescence probe: after the final drain a
            // correct run holds no tenants, no occupied cores or HBM,
            // and (absent permanent faults) one free region per chip —
            // TEMP-LEAK's obligations.
            let mut leaked_cores = 0u64;
            let mut leaked_hbm_bytes = 0u64;
            let mut faulted_cores = 0u64;
            for hv in self.cluster.chips() {
                leaked_cores += u64::from(
                    hv.config().core_count() - hv.free_core_count() - hv.masked_core_count(),
                );
                leaked_hbm_bytes += hv.hbm_total_bytes() - hv.hbm_free_bytes();
                faulted_cores += u64::from(hv.faulted_core_count());
            }
            let free_components: u64 = self
                .cluster
                .tick_snapshots()
                .iter()
                .map(|s| s.free_components as u64)
                .sum();
            let live_vnpus = self.live.len() as u64;
            let chips = self.machines.len() as u64;
            self.temporal.emit(TraceEvent::Quiesced {
                tick,
                live_vnpus,
                leaked_cores,
                leaked_hbm_bytes,
                faulted_cores,
                free_components,
                chips,
            });
        }
        if let Some(checker) = self.temporal.checker.as_mut() {
            checker.finish();
        }
        Ok(count)
    }

    /// A snapshot report of the run so far. Leak accounting reflects the
    /// *current* occupancy — call [`ServeRuntime::drain`] first (as
    /// [`ServeRuntime::run`] does) for the end-of-run invariant that
    /// leaks must be zero.
    pub fn report(&self) -> ServeReport {
        let mut sorted = self.placement_cycles.clone();
        sorted.sort_unstable();
        // Every run counter below is read off the event fold — the same
        // stream the temporal checker consumes — so the report cannot
        // claim numbers the events don't support.
        let fold = &self.temporal.fold;
        let per_chip: Vec<ChipReport> = self
            .cluster
            .chips()
            .enumerate()
            .map(|(i, hv)| {
                let counters = &fold.per_chip[i];
                ChipReport {
                    chip: i,
                    mesh_width: hv.config().mesh_width,
                    mesh_height: hv.config().mesh_height,
                    accepted: counters.accepted,
                    departed: counters.departed,
                    migrations: counters.migrations,
                    drain_evacuated: counters.drain_evacuated,
                    drain_received: counters.drain_received,
                    sched: self
                        .cluster
                        .drain_state(i)
                        .unwrap_or(ChipSchedState::Schedulable),
                    residual_vnpus: hv.vnpu_count() as u64,
                    executed_epochs: counters.executed_epochs,
                    machine_cycles: counters.machine_cycles,
                    fault_onsets: counters.fault_onsets,
                    fault_repairs: counters.fault_repairs,
                    recoveries_remapped: counters.recoveries_remapped,
                    recoveries_replaced: counters.recoveries_replaced,
                    tenants_lost: counters.tenants_lost,
                    degraded_ticks: counters.degraded_ticks,
                    faulted_cores: u64::from(hv.faulted_core_count()),
                    // An unowned faulted core is dead hardware held out of
                    // the free region by the fault mask — not leaked
                    // tenant state.
                    leaked_cores: hv.config().core_count()
                        - hv.free_core_count()
                        - hv.masked_core_count(),
                    leaked_hbm_bytes: hv.hbm_total_bytes() - hv.hbm_free_bytes(),
                    exec_nanos: self.exec_nanos[i],
                }
            })
            .collect();
        ServeReport {
            seed: self.cfg.traffic.seed,
            epochs: self.tick,
            submitted: self.generator.generated(),
            accepted: fold.accepted,
            rejected: fold.rejected,
            queued_at_end: self.cluster.pending_count() as u64,
            departed: fold.departed,
            p50_placement_cycles: percentile(&sorted, 50),
            p99_placement_cycles: percentile(&sorted, 99),
            max_placement_cycles: sorted.last().copied().unwrap_or(0),
            migrations: fold.migrations,
            drain_migrations: fold.drain_migrations,
            drain_reconfig: fold.drain_reconfig,
            reconfig: fold.reconfig,
            frag_windows_recovered: fold.frag_windows_recovered,
            hbm_frag_recovered: fold.hbm_frag_recovered,
            cache: self.cluster.cache_stats(),
            fragmentation: self.fragmentation.clone(),
            executed_epochs: fold.executed_epochs,
            machine_cycles: fold.machine_cycles,
            controller_cycles: self.controller_cycles,
            leaked_cores: per_chip.iter().map(|c| c.leaked_cores).sum(),
            leaked_hbm_bytes: per_chip.iter().map(|c| c.leaked_hbm_bytes).sum(),
            audit_findings: self.audit_findings.len() as u64,
            temporal_findings: self
                .temporal
                .checker
                .as_ref()
                .map_or(0, |c| c.findings().len() as u64),
            faults_injected: fold.faults_injected,
            faults_repaired: fold.faults_repaired,
            recoveries_remapped: fold.recoveries_remapped,
            recoveries_replaced: fold.recoveries_replaced,
            recoveries_self_healed: fold.recoveries_self_healed,
            tenants_lost: fold.tenants_lost,
            recoveries_pending: self.pending_recovery.len() as u64,
            recovery_reconfig: fold.recovery_reconfig,
            degraded_ticks: fold.degraded_ticks,
            mttr_total_ticks: fold.mttr_total_ticks,
            mttr_max_ticks: fold.mttr_max_ticks,
            workers: self.cfg.workers,
            recovery_nanos: self.phase_nanos.recovery,
            admission_nanos: self.phase_nanos.admission,
            drain_nanos: self.phase_nanos.drain,
            defrag_nanos: self.phase_nanos.defrag,
            execution_nanos: self.phase_nanos.execution,
            per_chip,
        }
    }

    fn retire(&mut self, id: ClusterVmId, tick: u64) -> Result<(), vnpu::VnpuError> {
        let live = self.live.remove(&id).expect("retire() only on live vms");
        self.cluster.destroy(id)?;
        self.machines[id.chip]
            .remove_tenant(live.tenant)
            .map_err(vnpu::VnpuError::Sim)?;
        self.temporal.emit(TraceEvent::Departed {
            tick,
            chip: id.chip,
            vm: id.vm.0,
        });
        Ok(())
    }
}

/// Nanoseconds read off a phase stopwatch (0 when timing is off).
fn elapsed_nanos(clock: Option<Instant>) -> u64 {
    clock.map_or(0, |t| t.elapsed().as_nanos() as u64)
}

/// Binds one live vNPU's epoch workload: each virtual core computes and
/// forwards a small activation block around the virtual ring (vRouter +
/// vChunk services exercise the whole virtualization stack), single cores
/// just compute.
fn bind_ring_workload(
    machine: &mut Machine,
    hv: &Hypervisor,
    id: ClusterVmId,
    tenant: TenantId,
) -> Result<(), vnpu::VnpuError> {
    let vnpu = hv.vnpu(id.vm)?;
    let n = vnpu.core_count();
    for v in 0..n {
        let phys = vnpu.phys_core(VirtCoreId(v))?;
        let services = hv.services(id.vm, VirtCoreId(v))?;
        let body = if n == 1 {
            vec![Instr::matmul(16, 16, 16)]
        } else {
            let next = (v + 1) % n;
            let prev = (v + n - 1) % n;
            vec![
                Instr::matmul(16, 16, 16),
                Instr::send(next, 1024, v),
                Instr::recv(prev, 1024, prev),
            ]
        };
        machine
            .bind_with(phys, tenant, v, Program::looped(vec![], body, 1), services)
            .map_err(vnpu::VnpuError::Sim)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnpu::admission::{Aging, Backfill, RetryAfterFree, SmallestFirst};
    use vnpu::cluster::{BestFitFragmentation, LeastLoaded};

    fn quick_cfg(seed: u64) -> ServeConfig {
        let mut cfg = ServeConfig::standard(seed, 80);
        cfg.traffic.candidate_cap = 200;
        cfg
    }

    fn quick_cluster_cfg(seed: u64) -> ServeConfig {
        let small = SocConfig {
            mesh_width: 4,
            mesh_height: 4,
            ..SocConfig::sim()
        };
        let mut cfg = ServeConfig::cluster(seed, 80, vec![SocConfig::sim(), small]);
        cfg.traffic.candidate_cap = 200;
        cfg
    }

    #[test]
    fn churn_run_is_deterministic_and_leak_free() {
        let a = ServeRuntime::new(quick_cfg(11)).run().unwrap();
        let b = ServeRuntime::new(quick_cfg(11)).run().unwrap();
        assert_eq!(a, b, "same seed must reproduce the whole report");
        assert_eq!(a.leaked_cores, 0);
        assert_eq!(a.leaked_hbm_bytes, 0);
        assert!(
            a.submitted > 20,
            "traffic must actually flow: {}",
            a.submitted
        );
        assert!(a.accepted > 0);
        assert_eq!(
            a.accepted + a.rejected + a.queued_at_end,
            a.submitted,
            "every request is accounted exactly once"
        );
        assert!(a.departed >= a.accepted.saturating_sub(36), "tenants churn");
        assert!(a.executed_epochs > 0);
        assert!(a.machine_cycles > 0);
        assert_eq!(a.per_chip.len(), 1);
        assert_eq!(a.per_chip[0].accepted, a.accepted);
    }

    #[test]
    fn cluster_churn_spreads_and_stays_leak_free() {
        let mut cfg = quick_cluster_cfg(17);
        cfg.placement = Arc::new(LeastLoaded);
        let r = ServeRuntime::new(cfg).run().unwrap();
        assert_eq!(r.leaked_cores, 0);
        assert_eq!(r.leaked_hbm_bytes, 0);
        assert_eq!(r.per_chip.len(), 2);
        assert!(
            r.per_chip.iter().all(|c| c.accepted > 0),
            "least-loaded must use both chips: {:?}",
            r.per_chip
        );
        assert_eq!(
            r.per_chip.iter().map(|c| c.accepted).sum::<u64>(),
            r.accepted
        );
        assert_eq!(
            r.per_chip.iter().map(|c| c.departed).sum::<u64>(),
            r.departed
        );
    }

    #[test]
    fn step_api_matches_batch_run() {
        // Driving the loop manually must reproduce run() exactly.
        let batch = ServeRuntime::new(quick_cfg(11)).run().unwrap();
        let mut rt = ServeRuntime::new(quick_cfg(11));
        let mut total_arrivals = 0;
        for _ in 0..80 {
            let ev = rt.step().unwrap();
            total_arrivals += ev.arrivals;
        }
        rt.drain().unwrap();
        let stepped = rt.report();
        assert_eq!(batch, stepped);
        assert_eq!(total_arrivals, stepped.submitted);
    }

    #[test]
    fn mid_run_policy_swap_keeps_running_and_queue() {
        let mut rt = ServeRuntime::new(quick_cfg(7));
        for _ in 0..40 {
            rt.step().unwrap();
        }
        rt.set_admission_policy(Arc::new(SmallestFirst));
        rt.set_placement(Arc::new(BestFitFragmentation));
        for _ in 0..40 {
            rt.step().unwrap();
        }
        rt.drain().unwrap();
        let r = rt.report();
        assert_eq!(r.leaked_cores, 0);
        assert_eq!(r.leaked_hbm_bytes, 0);
        assert!(r.accepted > 0);
    }

    #[test]
    fn cache_hits_accumulate_under_churn() {
        let r = ServeRuntime::new(quick_cfg(5)).run().unwrap();
        assert!(
            r.cache.hits > 0,
            "popular shapes against recurring free regions must hit: {:?}",
            r.cache
        );
        assert!(r.cache_hit_rate() > 0.0);
    }

    #[test]
    fn placement_latency_percentiles_are_ordered() {
        let r = ServeRuntime::new(quick_cfg(9)).run().unwrap();
        assert!(r.p50_placement_cycles <= r.p99_placement_cycles);
        assert!(r.p99_placement_cycles <= r.max_placement_cycles);
        assert!(
            r.max_placement_cycles > 0,
            "placements cost controller cycles"
        );
    }

    #[test]
    fn fragmentation_trajectory_has_one_sample_per_tick() {
        let r = ServeRuntime::new(quick_cfg(3)).run().unwrap();
        assert_eq!(r.fragmentation.len(), r.epochs as usize);
        for s in &r.fragmentation {
            assert!(s.free_cores <= 36);
            assert!(s.free_connectivity >= 0.0 && s.free_connectivity <= 1.0);
            assert!(s.hbm_external_fragmentation >= 0.0 && s.hbm_external_fragmentation <= 1.0);
        }
        // Under real load the chip must not sit idle the whole run.
        assert!(r.fragmentation.iter().any(|s| s.live_vnpus > 0));
    }

    #[test]
    fn policies_all_run_leak_free() {
        let policies: Vec<Arc<dyn AdmissionPolicy>> = vec![
            Arc::new(Fifo),
            Arc::new(SmallestFirst),
            Arc::new(RetryAfterFree),
            Arc::new(Backfill),
            Arc::new(Aging::default()),
        ];
        for policy in policies {
            let name = policy.name();
            let mut cfg = quick_cfg(21);
            cfg.policy = policy;
            let r = ServeRuntime::new(cfg).run().unwrap();
            assert_eq!(r.leaked_cores, 0, "{name}");
            assert_eq!(r.leaked_hbm_bytes, 0, "{name}");
            assert!(r.accepted > 0, "{name}");
        }
    }

    #[test]
    fn placement_only_mode_skips_execution() {
        let mut cfg = quick_cfg(2);
        cfg.execute_epochs = false;
        let r = ServeRuntime::new(cfg).run().unwrap();
        assert_eq!(r.executed_epochs, 0);
        assert_eq!(r.machine_cycles, 0);
        assert!(r.accepted > 0);
    }

    #[test]
    fn defrag_phase_pays_costed_migrations_and_recovers_fragmentation() {
        use vnpu::plan::GreedyDefrag;
        let baseline = ServeRuntime::new(quick_cfg(13)).run().unwrap();
        assert_eq!(baseline.migrations, 0, "no defragmenter, no migrations");
        assert_eq!(baseline.reconfig, ReconfigCost::default());

        let mut cfg = quick_cfg(13);
        cfg.defrag = Some(Arc::new(GreedyDefrag::default()));
        let defragged = ServeRuntime::new(cfg.clone()).run().unwrap();
        let again = ServeRuntime::new(cfg).run().unwrap();
        assert_eq!(defragged, again, "defrag runs must stay deterministic");
        assert!(
            defragged.migrations > 0,
            "churn fragments the chip; the defragmenter must act"
        );
        // Every migration's cost is accounted: migrations imply paid
        // reconfiguration (meta-table cycles, moved bytes, pause time).
        assert!(defragged.reconfig.config_cycles() > 0);
        assert!(defragged.reconfig.data_move_bytes > 0);
        assert!(
            defragged.reconfig.paused_cycles >= defragged.reconfig.config_cycles(),
            "the pause covers at least the meta-table rewrites"
        );
        assert!(
            defragged.frag_windows_recovered > 0 || defragged.hbm_frag_recovered > 0.0,
            "committed passes must book recovered fragmentation"
        );
        assert_eq!(
            defragged.per_chip.iter().map(|c| c.migrations).sum::<u64>(),
            defragged.migrations,
            "per-chip sections cover every migration"
        );
        // Same arrival stream, same leak-freedom.
        assert_eq!(defragged.submitted, baseline.submitted);
        assert_eq!(defragged.leaked_cores, 0);
        assert_eq!(defragged.leaked_hbm_bytes, 0);
    }

    /// A defragmenter that proposes nothing but counts its invocations.
    #[derive(Debug, Default)]
    struct CountingDefrag(std::sync::atomic::AtomicU64);

    impl Defragmenter for CountingDefrag {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn plan(
            &self,
            _hv: &Hypervisor,
            _stats: &vnpu::admission::FragmentationStats,
            _budget: &ReconfigBudget,
            _cache: &mut vnpu_topo::cache::MappingCache,
        ) -> Vec<vnpu::plan::PlanOp> {
            self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            Vec::new()
        }
    }

    #[test]
    fn defrag_interval_is_anchored_to_the_first_admission() {
        use std::sync::atomic::Ordering;
        // Regression: `tick % defrag_interval == 0` fired at tick 0,
        // before any placement existed — a wasted pass, and it skewed
        // interval-relative accounting for traffic that starts late.
        // With no traffic at all, the defragmenter must never run.
        let counting = Arc::new(CountingDefrag::default());
        let mut cfg = quick_cfg(11);
        cfg.traffic.mean_interarrival_ticks = 1_000_000; // silence
        cfg.defrag = Some(counting.clone());
        cfg.defrag_interval = 1;
        let mut rt = ServeRuntime::new(cfg);
        for _ in 0..20 {
            rt.step().unwrap();
        }
        assert_eq!(
            counting.0.load(Ordering::SeqCst),
            0,
            "no admission ever completed, so no defrag pass may run"
        );

        // With real traffic, the interval is anchored to the first
        // completed admission tick: passes run at t0, t0+k, t0+2k, ...
        let counting = Arc::new(CountingDefrag::default());
        let mut cfg = quick_cfg(11);
        cfg.defrag = Some(counting.clone());
        cfg.defrag_interval = 3;
        let mut rt = ServeRuntime::new(cfg);
        let mut t0: Option<u64> = None;
        let mut expected = 0u64;
        for _ in 0..30 {
            let ev = rt.step().unwrap();
            if t0.is_none() && !ev.admitted.is_empty() {
                t0 = Some(ev.tick);
            }
            if let Some(t0) = t0 {
                if ev.tick >= t0 && (ev.tick - t0) % 3 == 0 {
                    expected += 1; // one pass per chip; this run has one chip
                }
            }
        }
        assert!(t0.is_some(), "traffic must place something in 30 ticks");
        assert_eq!(
            counting.0.load(Ordering::SeqCst),
            expected,
            "defrag passes fire exactly on the anchored interval"
        );
    }

    #[test]
    fn maintenance_phase_evacuates_a_draining_chip() {
        use vnpu::drain::ChipSchedState;
        // Two identical chips under least-loaded placement; after a warm
        // phase, chip 0 goes into maintenance. The maintenance phase must
        // move its tenants off (budgeted per tick), serving must continue
        // on chip 1 only, and undrain must bring chip 0 back.
        let small_budget = ReconfigBudget {
            max_migrations: 2,
            ..ReconfigBudget::default()
        };
        let mut cfg = ServeConfig::cluster(19, 200, vec![SocConfig::sim(), SocConfig::sim()]);
        cfg.traffic.candidate_cap = 200;
        cfg.traffic.mean_interarrival_ticks = 2;
        cfg.traffic.mean_lifetime_epochs = 10;
        cfg.placement = Arc::new(LeastLoaded);
        cfg.drain_budget = small_budget;
        let mut rt = ServeRuntime::new(cfg);
        // Warm until chip 0 carries a real population (≥ 3 tenants), so
        // the budgeted evacuation below takes more than one step.
        let mut warm = 0;
        while rt.cluster().chip(0).vnpu_count() < 3 {
            rt.step().unwrap();
            warm += 1;
            assert!(warm < 200, "traffic must load chip 0");
        }
        rt.begin_drain(0).unwrap();
        let mut evacuated = 0u64;
        let mut ticks = 0u64;
        while rt.cluster().chip(0).vnpu_count() > 0 {
            let ev = rt.step().unwrap();
            assert!(
                ev.drain_migrations <= 2,
                "the per-epoch budget caps evacuations: {}",
                ev.drain_migrations
            );
            assert!(
                ev.admitted.iter().all(|id| id.chip != 0),
                "no request may be placed on the draining chip"
            );
            evacuated += ev.drain_migrations;
            ticks += 1;
            assert!(ticks < 100, "the drain must converge");
        }
        assert!(
            evacuated > 0,
            "the maintenance phase must actually move tenants"
        );
        assert_eq!(
            rt.report().per_chip[0].sched,
            ChipSchedState::Draining,
            "a mid-evacuation report names the draining state"
        );
        rt.complete_drain(0).unwrap();
        assert_eq!(rt.drain_state(0), Ok(ChipSchedState::Drained));
        assert_eq!(
            rt.report().per_chip[0].sched,
            ChipSchedState::Drained,
            "a maintenance-window report names the drained state"
        );
        for _ in 0..10 {
            let ev = rt.step().unwrap();
            assert!(ev.admitted.iter().all(|id| id.chip != 0));
        }
        rt.undrain(0).unwrap();
        let mut placed_on_zero = false;
        for _ in 0..40 {
            let ev = rt.step().unwrap();
            placed_on_zero |= ev.admitted.iter().any(|id| id.chip == 0);
        }
        assert!(placed_on_zero, "an undrained chip serves again");
        rt.drain().unwrap();
        let r = rt.report();
        assert_eq!(r.leaked_cores, 0);
        assert_eq!(r.leaked_hbm_bytes, 0);
        assert_eq!(r.drain_migrations, evacuated);
        assert!(
            r.drain_reconfig.data_move_bytes > 0,
            "evacuations are costed"
        );
        assert!(
            r.drain_reconfig.paused_cycles >= r.drain_reconfig.config_cycles(),
            "the pause covers the meta-table rewrites and the copy"
        );
        assert_eq!(
            r.per_chip[0].drain_evacuated, evacuated,
            "per-chip sections carry the drain progress"
        );
        assert_eq!(r.per_chip[1].drain_received, evacuated);
        assert_eq!(r.per_chip[0].residual_vnpus, 0);
        assert_eq!(r.per_chip[0].sched, ChipSchedState::Schedulable);
        assert!(r.per_chip[0].schedulable(), "undrained at report time");
    }

    #[test]
    fn audited_run_is_clean_and_byte_identical_to_unaudited() {
        use vnpu::plan::GreedyDefrag;
        // Heavy churn with defrag on, audited: the post-tick fleet audit
        // must find nothing, and because it is read-only the report must
        // be byte-identical to the unaudited run.
        let mut cfg = quick_cfg(13);
        cfg.defrag = Some(Arc::new(GreedyDefrag::default()));
        let plain = ServeRuntime::new(cfg.clone()).run().unwrap();
        cfg.audit = true;
        let mut rt = ServeRuntime::new(cfg);
        for _ in 0..80 {
            let ev = rt.step().unwrap();
            assert_eq!(ev.audit_findings, 0, "tick {} dirty", ev.tick);
        }
        rt.drain().unwrap();
        assert!(rt.audit_findings().is_empty());
        let audited = rt.report();
        assert_eq!(audited, plain);
        assert_eq!(audited.summary(), plain.summary());
        assert_eq!(
            audited.to_json(usize::MAX),
            plain.to_json(usize::MAX),
            "auditing a healthy fleet must not perturb the run"
        );
    }

    #[test]
    fn temporal_run_is_clean_and_byte_identical_to_unchecked() {
        use vnpu::plan::GreedyDefrag;
        // Heavy churn with defrag on, temporally checked: the streaming
        // TEMP-* checker must find nothing, and because it only observes
        // the event stream the report must be byte-identical to the
        // unchecked run.
        let mut cfg = quick_cfg(13);
        cfg.defrag = Some(Arc::new(GreedyDefrag::default()));
        let plain = ServeRuntime::new(cfg.clone()).run().unwrap();
        cfg.temporal = true;
        cfg.record_trace = true;
        let mut rt = ServeRuntime::new(cfg.clone());
        for _ in 0..80 {
            let ev = rt.step().unwrap();
            assert_eq!(ev.temporal_findings, 0, "tick {} dirty", ev.tick);
        }
        rt.drain().unwrap();
        assert!(rt.temporal_findings().is_empty(), "online checker clean");
        let checked = rt.report();
        assert_eq!(checked, plain);
        assert_eq!(
            checked.to_json(usize::MAX),
            plain.to_json(usize::MAX),
            "checking a healthy run must not perturb it"
        );
        // The recorded stream replays clean offline too — including the
        // conservation pass against the report's claimed totals.
        let trace = rt.trace_with_claim().expect("record_trace is on");
        let offline = vnpu_temporal::check_trace(&trace, cfg.temporal_checker_config());
        assert!(offline.is_empty(), "offline replay clean: {offline:?}");
    }

    #[test]
    fn audit_detail_is_opt_in_and_mirrors_the_count() {
        let mut cfg = quick_cfg(17);
        cfg.audit = true;
        let mut rt = ServeRuntime::new(cfg.clone());
        for _ in 0..40 {
            let ev = rt.step().unwrap();
            assert!(
                ev.audit_detail.is_empty(),
                "detail stays empty unless audit_detail is on"
            );
        }
        rt.drain().unwrap();
        let plain = rt.report();
        cfg.audit_detail = true;
        let mut rt = ServeRuntime::new(cfg);
        for _ in 0..40 {
            let ev = rt.step().unwrap();
            assert_eq!(
                ev.audit_detail.len() as u64,
                ev.audit_findings,
                "detail mirrors the tick's finding count"
            );
        }
        rt.drain().unwrap();
        // Opting into per-tick detail must not perturb the run.
        assert_eq!(rt.report(), plain);
    }

    #[test]
    fn audit_runs_through_a_full_drain_cycle() {
        let mut cfg = ServeConfig::cluster(23, 60, vec![SocConfig::sim(), SocConfig::sim()]);
        cfg.traffic.candidate_cap = 200;
        cfg.traffic.mean_interarrival_ticks = 2;
        cfg.placement = Arc::new(LeastLoaded);
        cfg.audit = true;
        let mut rt = ServeRuntime::new(cfg);
        let mut warm = 0;
        while rt.cluster().chip(0).vnpu_count() == 0 {
            rt.step().unwrap();
            warm += 1;
            assert!(warm < 200, "traffic must load chip 0");
        }
        rt.begin_drain(0).unwrap();
        let mut ticks = 0;
        while rt.cluster().chip(0).vnpu_count() > 0 {
            rt.step().unwrap();
            ticks += 1;
            assert!(ticks < 200, "the drain must converge");
        }
        rt.complete_drain(0).unwrap();
        rt.step().unwrap();
        rt.undrain(0).unwrap();
        rt.step().unwrap();
        assert!(
            rt.audit_findings().is_empty(),
            "draining, drained and undrained fleets all audit clean: {:?}",
            rt.audit_findings()
        );
    }

    #[test]
    fn row_outage_recovers_affected_tenants_and_stays_leak_free() {
        // The headline fault scenario: chip 0 loses a whole mesh row
        // under load, with a twin chip holding spare capacity. Every
        // affected tenant must be recovered (remapped, replaced or
        // self-healed) or declared lost; the run must stay leak-free and
        // byte-identical across repeats.
        let mut cfg = ServeConfig::cluster(31, 120, vec![SocConfig::sim(), SocConfig::sim()]);
        cfg.traffic.candidate_cap = 200;
        cfg.traffic.mean_interarrival_ticks = 2;
        cfg.traffic.mean_lifetime_epochs = 20;
        cfg.placement = Arc::new(LeastLoaded);
        cfg.fault_plan = FaultPlan::new().row_outage(0, 6, 1, 40, Some(70));
        let mut rt = ServeRuntime::new(cfg.clone());
        let mut onsets = 0;
        let mut repairs = 0;
        let mut recovered = 0;
        let mut lost = 0;
        for _ in 0..120 {
            let ev = rt.step().unwrap();
            onsets += ev.fault_onsets;
            repairs += ev.fault_repairs;
            recovered += ev.recoveries_remapped + ev.recoveries_replaced;
            lost += ev.tenants_lost;
            if ev.tick > 70 {
                assert_eq!(
                    ev.recoveries_pending, 0,
                    "tick {}: recovery must have converged after the repair",
                    ev.tick
                );
            }
        }
        rt.drain().unwrap();
        let r = rt.report();
        assert_eq!(onsets, 6, "one onset per core of the row");
        assert_eq!(repairs, 6);
        assert_eq!(r.faults_injected, 6);
        assert_eq!(r.faults_repaired, 6);
        assert!(
            recovered > 0,
            "a loaded chip losing a row must displace someone"
        );
        assert_eq!(r.recoveries_remapped + r.recoveries_replaced, recovered);
        assert_eq!(r.tenants_lost, lost);
        assert_eq!(r.recoveries_pending, 0);
        assert_eq!(r.leaked_cores, 0);
        assert_eq!(r.leaked_hbm_bytes, 0);
        assert_eq!(
            r.per_chip[0].degraded_ticks, 30,
            "chip 0 is degraded exactly from onset to repair"
        );
        assert_eq!(r.per_chip[1].degraded_ticks, 0);
        assert!(
            r.mttr_max_ticks <= cfg.recovery.max_recovery_ticks,
            "the recovery deadline bounds MTTR: {}",
            r.mttr_max_ticks
        );
        assert!(
            r.recovery_reconfig.paused_cycles > 0,
            "recoveries are costed"
        );
        // The fleet audits clean once recovery has converged.
        assert!(FleetAuditor::new().audit(rt.cluster()).is_empty());
        // Same config, batch API: byte-identical report.
        let again = ServeRuntime::new(cfg).run().unwrap();
        assert_eq!(r, again);
        assert_eq!(r.to_json(usize::MAX), again.to_json(usize::MAX));
    }

    #[test]
    fn unplaceable_tenants_are_lost_at_the_deadline() {
        // A single chip packed with long-lived tenants loses a row
        // permanently: affected tenants have no remap window and no other
        // chip, so after max_recovery_ticks they are declared lost. Dead
        // cores are dead hardware, not leaks.
        let mut cfg = ServeConfig::standard(47, 80);
        cfg.traffic.candidate_cap = 200;
        cfg.traffic.mean_interarrival_ticks = 1;
        cfg.traffic.mean_lifetime_epochs = 10_000;
        cfg.fault_plan = FaultPlan::new().row_outage(0, 6, 2, 30, None);
        let mut rt = ServeRuntime::new(cfg.clone());
        for _ in 0..80 {
            rt.step().unwrap();
        }
        rt.drain().unwrap();
        let r = rt.report();
        assert!(
            r.tenants_lost > 0,
            "a packed single chip must lose someone: {}",
            r.summary()
        );
        assert_eq!(r.recoveries_pending, 0, "the deadline clears the queue");
        assert_eq!(r.per_chip[0].faulted_cores, 6, "the row stays dead");
        assert_eq!(
            r.leaked_cores, 0,
            "masked dead cores are not leaked tenant state"
        );
        assert_eq!(r.leaked_hbm_bytes, 0);
        assert!(r.degraded_ticks > 0);
        assert!(
            r.tenants_lost <= r.departed,
            "lost tenants are a subset of departures"
        );
        let again = ServeRuntime::new(cfg).run().unwrap();
        assert_eq!(r, again, "loss declarations are deterministic");
    }

    #[test]
    fn fault_on_an_unowned_core_recovers_nobody() {
        // Core 35 (the far mesh corner) faults before first-fit churn
        // reaches it: nothing is affected, the chip just runs degraded
        // until the repair, and the report carries the fault accounting.
        let mut cfg = quick_cfg(3);
        cfg.fault_plan = FaultPlan::new().core_fault(0, 35, 2, Some(6));
        let r = ServeRuntime::new(cfg.clone()).run().unwrap();
        assert_eq!(r.faults_injected, 1);
        assert_eq!(r.faults_repaired, 1);
        assert_eq!(r.recovered_tenants(), 0);
        assert_eq!(r.tenants_lost, 0);
        assert_eq!(r.degraded_ticks, 4, "degraded from onset to repair");
        assert_eq!(r.leaked_cores, 0);
        assert_eq!(r.leaked_hbm_bytes, 0);
        // The baseline (no fault plan) differs only in fault accounting
        // when nothing was displaced... but the degraded router penalty
        // slows epochs, so machine cycles may legitimately differ.
        let baseline = ServeRuntime::new(quick_cfg(3)).run().unwrap();
        assert_eq!(r.submitted, baseline.submitted);
        assert_eq!(r.accepted, baseline.accepted);
    }

    #[test]
    fn recovery_phase_digests_are_recorded_per_touched_chip() {
        let mut cfg = ServeConfig::cluster(31, 60, vec![SocConfig::sim(), SocConfig::sim()]);
        cfg.traffic.candidate_cap = 200;
        cfg.traffic.mean_interarrival_ticks = 2;
        cfg.placement = Arc::new(LeastLoaded);
        cfg.fault_plan = FaultPlan::new().row_outage(0, 6, 1, 20, Some(40));
        cfg.conc.phase_digests = true;
        let mut a = ServeRuntime::new(cfg.clone());
        for _ in 0..60 {
            a.step().unwrap();
        }
        let chain_a = a.digest_chain().expect("digests on").clone();
        assert!(
            chain_a
                .entries
                .iter()
                .any(|e| e.phase == vnpu_conc::Phase::Recovery && e.chip == Some(0)),
            "fault ticks must record recovery digests"
        );
        cfg.workers = 4;
        let mut b = ServeRuntime::new(cfg);
        for _ in 0..60 {
            b.step().unwrap();
        }
        let chain_b = b.digest_chain().expect("digests on").clone();
        assert!(
            vnpu_conc::compare_chains("w1", &chain_a, "w4", &chain_b).is_none(),
            "recovery must be phase-for-phase deterministic across workers"
        );
    }

    #[test]
    fn set_core_scales_syncs_machine_and_cache_generation() {
        // The serve-layer reconfig entry point must bump the chip's
        // mapping-cache generation in lockstep with the machine's scales,
        // so identical requests across the reconfig miss the cache.
        let mut rt = ServeRuntime::new(quick_cfg(4));
        assert_eq!(rt.cluster().chip(0).topology_generation(), 0);
        rt.set_core_scales(0, 3, 50, 200).unwrap();
        let generation = rt.cluster().chip(0).topology_generation();
        assert_ne!(generation, 0, "reconfig must change the generation");
        assert!(
            matches!(
                rt.set_core_scales(9, 0, 50, 200),
                Err(vnpu::VnpuError::UnknownChip { chip: 9, count: 1 })
            ),
            "bad chip index names the chip, not the core"
        );
        assert!(rt.set_core_scales(0, 999, 50, 200).is_err(), "bad core");
        assert_eq!(
            rt.cluster().chip(0).topology_generation(),
            generation,
            "failed reconfigs must not change the generation"
        );
    }
}
