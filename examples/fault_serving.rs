//! Fault-injection demo: a two-chip serving fleet under churn, with
//! chip 0 losing a whole mesh row of cores (and one NoC link) mid-run.
//!
//! The fault lifecycle is driven entirely by the serve loop's recovery
//! phase: the seeded `FaultPlan` lands its onsets, the `FaultDetector`
//! maps each dead resource to the tenants it affects, and the
//! `RecoveryPolicy` resolves every one — remap-under-pin on the wounded
//! chip where a window exists, emergency cross-chip re-placement
//! otherwise, self-heal if the repair beats the recovery. While any
//! fault is active the chip serves degraded (slower fault-tolerant
//! router arbitration), and a tenant with no way out is declared lost
//! at the recovery deadline — never leaked.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example fault_serving
//! ```

use std::sync::Arc;
use vnpu::cluster::LeastLoaded;
use vnpu_fault::FaultPlan;
use vnpu_serve::{ServeConfig, ServeRuntime};
use vnpu_sim::SocConfig;

fn main() {
    let onset = 40;
    let repair = 70;
    let mut cfg = ServeConfig::cluster(4022, 160, vec![SocConfig::sim(), SocConfig::sim()]);
    cfg.traffic.mean_interarrival_ticks = 2;
    cfg.traffic.mean_lifetime_epochs = 20;
    cfg.placement = Arc::new(LeastLoaded);
    // Row 1 of chip 0 (cores 6..12) dies at `onset` — a shared power
    // rail failing — plus the 24–25 NoC link; everything repairs at
    // `repair`.
    cfg.fault_plan = FaultPlan::new()
        .row_outage(0, 6, 1, onset, Some(repair))
        .link_fault(0, 24, 25, onset, Some(repair));
    let epochs = cfg.epochs;
    println!(
        "two 6x6 chips, {} epochs, seed {} — chip 0 loses mesh row 1 and \
         link 24-25 at tick {} (repaired at tick {})\n",
        epochs, cfg.traffic.seed, onset, repair
    );

    let mut rt = ServeRuntime::new(cfg);
    for _ in 0..epochs {
        let ev = rt.step().expect("serve tick");
        if ev.fault_onsets > 0 {
            println!(
                "tick {:>4}: {} fault(s) struck — {} tenant(s) queued for \
                 recovery, chip 0 degraded",
                ev.tick, ev.fault_onsets, ev.recoveries_pending,
            );
        }
        if ev.recoveries_remapped + ev.recoveries_replaced > 0 {
            println!(
                "tick {:>4}: recovered {} tenant(s) ({} remapped in place, \
                 {} re-placed cross-chip)",
                ev.tick,
                ev.recoveries_remapped + ev.recoveries_replaced,
                ev.recoveries_remapped,
                ev.recoveries_replaced,
            );
        }
        if ev.tenants_lost > 0 {
            println!(
                "tick {:>4}: {} tenant(s) lost at the recovery deadline",
                ev.tick, ev.tenants_lost
            );
        }
        if ev.fault_repairs > 0 {
            println!(
                "tick {:>4}: {} fault(s) repaired — chip 0 back to full \
                 health",
                ev.tick, ev.fault_repairs
            );
        }
    }
    rt.drain().expect("end-of-run drain");

    let report = rt.report();
    println!("\n{}", report.summary());
    assert_eq!(report.recoveries_pending, 0, "recovery converged");
    assert_eq!(report.leaked_cores, 0, "faults never leak cores");
    assert_eq!(report.leaked_hbm_bytes, 0, "faults never leak HBM");
    println!(
        "\nrecovered {} tenant(s), mttr mean {:.2} / max {} ticks, {} \
         degraded chip-ticks — zero leaks",
        report.recovered_tenants(),
        report.mean_mttr_ticks(),
        report.mttr_max_ticks,
        report.degraded_ticks,
    );
}
