//! Global-memory (HBM/DRAM) bandwidth model.
//!
//! The chip exposes `mem_interfaces` channels on the mesh edge; each core's
//! DMA engine is statically attached to one channel
//! ([`crate::config::SocConfig::interface_of`]). A channel is a
//! `busy_until` resource with `total bandwidth / interfaces` bytes per
//! cycle of service rate — so co-located tenants streaming weights contend
//! per channel, which is exactly the memory interference the UVM baseline
//! suffers in the multi-instance experiment (Figure 15) and the reason
//! warm-up time scales with the number of interfaces a virtual NPU owns
//! (Figure 16, §6.3.4).

use crate::config::SocConfig;

/// One HBM channel's state.
#[derive(Debug, Clone, Copy, Default)]
struct Channel {
    busy_until: u64,
    bytes_served: u64,
}

/// The set of HBM channels.
#[derive(Debug, Clone)]
pub struct Hbm {
    channels: Vec<Channel>,
    bytes_per_cycle: u64,
    latency: u64,
    wait_cycles: u64,
}

impl Hbm {
    /// Builds the HBM model from the SoC configuration.
    pub fn new(cfg: &SocConfig) -> Self {
        Hbm {
            channels: vec![Channel::default(); cfg.mem_interfaces as usize],
            bytes_per_cycle: cfg.bandwidth_per_interface(),
            latency: cfg.mem_latency,
            wait_cycles: 0,
        }
    }

    /// Number of channels.
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Services a `bytes`-long access on `channel` arriving at `now`;
    /// returns the completion time.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn access(&mut self, channel: u32, bytes: u64, now: u64) -> u64 {
        let ch = &mut self.channels[channel as usize];
        let start = now.max(ch.busy_until);
        self.wait_cycles += start - now;
        let service = bytes.div_ceil(self.bytes_per_cycle);
        ch.busy_until = start + service;
        ch.bytes_served += bytes;
        ch.busy_until + self.latency
    }

    /// Services a UVM (load/store path) access: unlike a DMA burst, the
    /// transfer moves at cache-line granularity and the channel is held
    /// for the full latency-bound duration — `bytes/bw +
    /// ⌈lines/mlp⌉·latency`. This is what makes memory-synchronized
    /// broadcast readers serialize (Figure 13's UVM bars).
    pub fn access_uvm(
        &mut self,
        channel: u32,
        bytes: u64,
        now: u64,
        line_bytes: u64,
        mlp: u64,
    ) -> u64 {
        let ch = &mut self.channels[channel as usize];
        let start = now.max(ch.busy_until);
        self.wait_cycles += start - now;
        let lines = bytes.div_ceil(line_bytes.max(1));
        let occupancy =
            bytes.div_ceil(self.bytes_per_cycle) + lines.div_ceil(mlp.max(1)) * self.latency;
        ch.busy_until = start + occupancy;
        ch.bytes_served += bytes;
        ch.busy_until
    }

    /// Rewinds every channel to idle for a fresh machine epoch: the
    /// `busy_until` clocks and per-epoch counters are zeroed, the channel
    /// structures are reused.
    pub fn reset_epoch(&mut self) {
        for ch in &mut self.channels {
            *ch = Channel::default();
        }
        self.wait_cycles = 0;
    }

    /// Total cycles requests waited behind busy channels.
    pub fn wait_cycles(&self) -> u64 {
        self.wait_cycles
    }

    /// Bytes served per channel.
    pub fn channel_loads(&self) -> Vec<u64> {
        self.channels.iter().map(|c| c.bytes_served).collect()
    }

    /// Service rate of one channel in bytes per cycle.
    pub fn bytes_per_cycle(&self) -> u64 {
        self.bytes_per_cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hbm() -> Hbm {
        Hbm::new(&SocConfig::fpga()) // 2 interfaces, 8 B/cyc each, 40 lat
    }

    #[test]
    fn access_time_includes_service_and_latency() {
        let mut h = hbm();
        // 2048 B at 8 B/cyc = 256 service + 40 latency.
        assert_eq!(h.access(0, 2048, 0), 296);
    }

    #[test]
    fn same_channel_serializes() {
        let mut h = hbm();
        let a = h.access(0, 2048, 0);
        let b = h.access(0, 2048, 0);
        assert_eq!(b, a + 256);
        assert_eq!(h.wait_cycles(), 256);
    }

    #[test]
    fn different_channels_parallel() {
        let mut h = hbm();
        let a = h.access(0, 2048, 0);
        let b = h.access(1, 2048, 0);
        assert_eq!(a, b);
        assert_eq!(h.wait_cycles(), 0);
    }

    #[test]
    fn loads_tracked() {
        let mut h = hbm();
        h.access(0, 100, 0);
        h.access(0, 50, 0);
        h.access(1, 7, 0);
        assert_eq!(h.channel_loads(), vec![150, 7]);
    }

    #[test]
    fn late_arrival_no_wait() {
        let mut h = hbm();
        h.access(0, 2048, 0); // busy until 256
        let done = h.access(0, 8, 1000);
        assert_eq!(done, 1041);
        assert_eq!(h.wait_cycles(), 0);
    }
}
