//! The [`ModelGraph`] representation: a DAG of layers in topological
//! order, each with an analytic kernel (timing), resident weight bytes and
//! activation output bytes.

use crate::{Result, WorkloadError};
use vnpu_sim::isa::Kernel;

/// Index of a layer inside its [`ModelGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LayerId(pub u32);

impl LayerId {
    /// The layer index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Functional category of a layer (used for reporting, not timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Convolution.
    Conv,
    /// Fully-connected / linear.
    Fc,
    /// Attention score/context matmuls.
    Attention,
    /// Normalization / activation / element-wise.
    Elementwise,
    /// Embedding lookup.
    Embed,
    /// Pooling.
    Pool,
}

/// One layer of a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layer {
    /// Human-readable name ("conv2_1", "blk3.ffn1").
    pub name: String,
    /// Category.
    pub kind: LayerKind,
    /// Timing kernel executed on the owning core.
    pub kernel: Kernel,
    /// Weight bytes that must be resident in the owning core's scratchpad.
    pub weight_bytes: u64,
    /// Bytes of the layer's output activation (what gets forwarded).
    pub out_bytes: u64,
    /// Layers whose outputs this layer consumes (must be earlier).
    pub deps: Vec<LayerId>,
}

/// A model as a topologically-ordered layer DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelGraph {
    name: String,
    layers: Vec<Layer>,
}

impl ModelGraph {
    /// Creates a graph, validating that every dependency points to an
    /// earlier layer (topological order by construction).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::EmptyModel`] or [`WorkloadError::BadDependency`].
    pub fn new(name: impl Into<String>, layers: Vec<Layer>) -> Result<Self> {
        if layers.is_empty() {
            return Err(WorkloadError::EmptyModel);
        }
        for (i, l) in layers.iter().enumerate() {
            for d in &l.deps {
                if d.index() >= i {
                    return Err(WorkloadError::BadDependency { layer: i as u32 });
                }
            }
        }
        Ok(ModelGraph {
            name: name.into(),
            layers,
        })
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Layers in topological order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the graph is empty (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer by ID.
    pub fn layer(&self, id: LayerId) -> &Layer {
        &self.layers[id.index()]
    }

    /// Total multiply-accumulates of one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.kernel.macs()).sum()
    }

    /// Total resident weight bytes.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes).sum()
    }

    /// For each layer, the list of layers that consume its output.
    pub fn consumers(&self) -> Vec<Vec<LayerId>> {
        let mut out = vec![Vec::new(); self.layers.len()];
        for (i, l) in self.layers.iter().enumerate() {
            for d in &l.deps {
                out[d.index()].push(LayerId(i as u32));
            }
        }
        out
    }

    /// Whether the dependency structure is a pure chain (each layer
    /// depends only on its predecessor) — GPT-style models are chains,
    /// ResNet is not (residual skips).
    pub fn is_chain(&self) -> bool {
        self.layers.iter().enumerate().all(|(i, l)| {
            if i == 0 {
                l.deps.is_empty()
            } else {
                l.deps == vec![LayerId(i as u32 - 1)]
            }
        })
    }
}

/// Builder convenience for assembling layer vectors.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    layers: Vec<Layer>,
}

impl GraphBuilder {
    /// New empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer and returns its ID.
    pub fn push(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        kernel: Kernel,
        weight_bytes: u64,
        out_bytes: u64,
        deps: Vec<LayerId>,
    ) -> LayerId {
        let id = LayerId(self.layers.len() as u32);
        self.layers.push(Layer {
            name: name.into(),
            kind,
            kernel,
            weight_bytes,
            out_bytes,
            deps,
        });
        id
    }

    /// Appends a layer depending on the previous one (chain style).
    pub fn chain(
        &mut self,
        name: impl Into<String>,
        kind: LayerKind,
        kernel: Kernel,
        weight_bytes: u64,
        out_bytes: u64,
    ) -> LayerId {
        let deps = if self.layers.is_empty() {
            vec![]
        } else {
            vec![LayerId(self.layers.len() as u32 - 1)]
        };
        self.push(name, kind, kernel, weight_bytes, out_bytes, deps)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelGraph::new`] validation failures.
    pub fn build(self, name: impl Into<String>) -> Result<ModelGraph> {
        ModelGraph::new(name, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> Kernel {
        Kernel::Matmul { m: 8, k: 8, n: 8 }
    }

    #[test]
    fn builder_chain() {
        let mut b = GraphBuilder::new();
        b.chain("a", LayerKind::Fc, k(), 128, 64);
        b.chain("b", LayerKind::Fc, k(), 128, 64);
        let g = b.build("m").unwrap();
        assert_eq!(g.len(), 2);
        assert!(g.is_chain());
        assert_eq!(g.total_macs(), 1024);
        assert_eq!(g.total_weight_bytes(), 256);
    }

    #[test]
    fn consumers_inverted_index() {
        let mut b = GraphBuilder::new();
        let a = b.chain("a", LayerKind::Conv, k(), 0, 64);
        let c1 = b.push("b1", LayerKind::Conv, k(), 0, 64, vec![a]);
        let c2 = b.push("b2", LayerKind::Conv, k(), 0, 64, vec![a]);
        b.push("join", LayerKind::Elementwise, k(), 0, 64, vec![c1, c2]);
        let g = b.build("m").unwrap();
        assert!(!g.is_chain());
        let cons = g.consumers();
        assert_eq!(cons[0], vec![LayerId(1), LayerId(2)]);
        assert_eq!(cons[1], vec![LayerId(3)]);
        assert_eq!(cons[3], Vec::<LayerId>::new());
    }

    #[test]
    fn forward_dependency_rejected() {
        let layers = vec![Layer {
            name: "bad".into(),
            kind: LayerKind::Fc,
            kernel: k(),
            weight_bytes: 0,
            out_bytes: 0,
            deps: vec![LayerId(0)], // self-dependency
        }];
        assert!(matches!(
            ModelGraph::new("m", layers),
            Err(WorkloadError::BadDependency { layer: 0 })
        ));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            ModelGraph::new("m", vec![]),
            Err(WorkloadError::EmptyModel)
        ));
    }
}
