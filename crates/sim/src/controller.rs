//! NPU-controller cost models: instruction dispatch (Figure 12) and
//! routing-table configuration (Figure 11).
//!
//! The controller sits at mesh node 0 (top-left corner). Instructions reach
//! cores either over a dedicated instruction bus (IBUS — fixed latency but
//! "its transmission structure lacks scalability in multi-core systems")
//! or over a separate instruction NoC whose latency grows with the hop
//! distance from the controller.

use crate::config::SocConfig;
use vnpu_topo::{NodeId, Topology};

/// How NPU instructions travel from the controller to the cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPath {
    /// Dedicated instruction bus: fixed latency, poor scalability.
    InstructionBus,
    /// Separate instruction NoC: per-hop latency from the controller node.
    InstructionNoc,
}

/// Fixed IBUS dispatch latency in cycles.
pub const IBUS_LATENCY: u64 = 12;

/// Per-hop latency of the instruction NoC (router + single-flit
/// serialization).
pub const INST_NOC_HOP: u64 = 7;

/// Base overhead of injecting an instruction into the instruction NoC.
pub const INST_NOC_BASE: u64 = 10;

/// Latency for the controller to dispatch one instruction to `core`.
pub fn dispatch_latency(cfg: &SocConfig, path: DispatchPath, core: u32) -> u64 {
    match path {
        DispatchPath::InstructionBus => IBUS_LATENCY,
        DispatchPath::InstructionNoc => {
            let topo = Topology::mesh2d(cfg.mesh_width, cfg.mesh_height);
            let hops = topo.hop_distance(NodeId(0), NodeId(core)).unwrap_or(0);
            INST_NOC_BASE + u64::from(hops) * INST_NOC_HOP
        }
    }
}

/// Cycles to check one core's availability during virtual-NPU creation.
pub const AVAILABILITY_QUERY: u64 = 9;

/// Cycles to write one routing-table entry into controller SRAM.
pub const RT_ENTRY_WRITE: u64 = 22;

/// Fixed controller-side setup cost of a routing-table configuration.
pub const RT_CONFIG_BASE: u64 = 35;

/// Total cycles to configure a routing table for `cores` virtual cores —
/// the Figure 11 micro-benchmark ("querying for core availability and
/// configuring the routing table"; a few hundred cycles at 8 cores).
pub fn rt_config_cycles(cores: u32) -> u64 {
    RT_CONFIG_BASE + u64::from(cores) * (AVAILABILITY_QUERY + RT_ENTRY_WRITE)
}

/// Cycles to configure a *compact* (mesh-shaped) routing table, which
/// stores only a base mapping and the shape regardless of core count
/// (Figure 4's "2D Mesh, 1 Entry" organization) — availability still has
/// to be queried per core.
pub fn rt_config_cycles_compact(cores: u32) -> u64 {
    RT_CONFIG_BASE + u64::from(cores) * AVAILABILITY_QUERY + RT_ENTRY_WRITE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibus_is_fixed() {
        let cfg = SocConfig::fpga();
        for core in 0..8 {
            assert_eq!(
                dispatch_latency(&cfg, DispatchPath::InstructionBus, core),
                IBUS_LATENCY
            );
        }
    }

    #[test]
    fn inst_noc_grows_with_distance() {
        let cfg = SocConfig::fpga(); // 4x2 mesh
        let near = dispatch_latency(&cfg, DispatchPath::InstructionNoc, 0);
        let far = dispatch_latency(&cfg, DispatchPath::InstructionNoc, 7);
        assert!(far > near);
        // Core 7 is at (3,1): 4 hops from node 0.
        assert_eq!(far, INST_NOC_BASE + 4 * INST_NOC_HOP);
    }

    #[test]
    fn ibus_faster_than_noc_but_both_small() {
        let cfg = SocConfig::fpga();
        for core in 1..8 {
            let noc = dispatch_latency(&cfg, DispatchPath::InstructionNoc, core);
            assert!(noc >= IBUS_LATENCY);
            assert!(noc < 100, "dispatch must stay orders below kernel times");
        }
    }

    #[test]
    fn fig11_rt_config_shape() {
        // Linear growth, a few hundred cycles at 8 cores.
        let c1 = rt_config_cycles(1);
        let c8 = rt_config_cycles(8);
        assert!(c1 < c8);
        assert!((200..400).contains(&c8), "8-core config = {c8}");
        // Perfectly linear increments.
        let inc = rt_config_cycles(2) - rt_config_cycles(1);
        for n in 2..8 {
            assert_eq!(rt_config_cycles(n + 1) - rt_config_cycles(n), inc);
        }
    }

    #[test]
    fn compact_table_cheaper() {
        assert!(rt_config_cycles_compact(8) < rt_config_cycles(8));
    }
}
