//! The single-source-of-truth fold: every counter the serve report
//! carries that describes *what happened over time* is derived here, by
//! folding the [`TraceEvent`] stream — never incremented inline in the
//! serve loop. The temporal checker evaluates its properties over the
//! same stream, so the report and the properties guarding it cannot
//! drift apart.

use crate::trace::{RecoveryKind, TraceEvent};
use vnpu::plan::ReconfigCost;

/// Per-chip slice of the fold (mirrors the per-chip report section).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ChipFold {
    /// Requests placed onto this chip.
    pub accepted: u64,
    /// Tenants destroyed on this chip.
    pub departed: u64,
    /// Defrag migrations committed on this chip.
    pub migrations: u64,
    /// Tenants evacuated off this chip while it drained.
    pub drain_evacuated: u64,
    /// Tenants this chip received from other chips' drains.
    pub drain_received: u64,
    /// Machine epochs executed on this chip.
    pub executed_epochs: u64,
    /// Simulated machine cycles on this chip.
    pub machine_cycles: u64,
    /// Fault onsets that landed on this chip.
    pub fault_onsets: u64,
    /// Faults repaired on this chip.
    pub fault_repairs: u64,
    /// Tenants this chip recovered in place.
    pub recoveries_remapped: u64,
    /// Tenants evacuated off this chip by emergency re-placement.
    pub recoveries_replaced: u64,
    /// Tenants on this chip declared lost.
    pub tenants_lost: u64,
    /// Ticks this chip served in degraded mode.
    pub degraded_ticks: u64,
}

/// Aggregated run accounting, folded from the event stream.
///
/// All fields are cumulative over the events observed so far; the fold
/// never panics — events naming an out-of-range chip are counted in the
/// fleet totals and dropped from the per-chip slices.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFold {
    /// Requests placed.
    pub accepted: u64,
    /// Requests terminally rejected.
    pub rejected: u64,
    /// Tenants destroyed (departures, including lost tenants and the
    /// end-of-run drain).
    pub departed: u64,
    /// Defrag migrations committed.
    pub migrations: u64,
    /// Summed [`ReconfigCost`] paid by defrag migrations.
    pub reconfig: ReconfigCost,
    /// Tenants evacuated off draining chips.
    pub drain_migrations: u64,
    /// Summed [`ReconfigCost`] paid by drain evacuations.
    pub drain_reconfig: ReconfigCost,
    /// Cumulative growth of largest free windows booked by defrag.
    pub frag_windows_recovered: u64,
    /// Cumulative buddy external-fragmentation reduction booked by
    /// defrag.
    pub hbm_frag_recovered: f64,
    /// Hardware-fault onsets that landed.
    pub faults_injected: u64,
    /// Hardware faults repaired.
    pub faults_repaired: u64,
    /// Tenants recovered by an in-place remap.
    pub recoveries_remapped: u64,
    /// Tenants recovered by an emergency cross-chip re-placement.
    pub recoveries_replaced: u64,
    /// Tenants whose fault was repaired under them.
    pub recoveries_self_healed: u64,
    /// Tenants declared lost at the recovery deadline.
    pub tenants_lost: u64,
    /// Summed [`ReconfigCost`] paid by recovery actions (including
    /// committed remaps that failed to escape a link fault).
    pub recovery_reconfig: ReconfigCost,
    /// Chip-ticks served in degraded mode.
    pub degraded_ticks: u64,
    /// Summed ticks-to-recover over recovered tenants.
    pub mttr_total_ticks: u64,
    /// Worst observed ticks-to-recover.
    pub mttr_max_ticks: u64,
    /// Machine epochs executed, summed over chips.
    pub executed_epochs: u64,
    /// Simulated machine cycles, summed over chips.
    pub machine_cycles: u64,
    /// Per-chip slices, in chip order.
    pub per_chip: Vec<ChipFold>,
}

impl TraceFold {
    /// An empty fold over a fleet of `chips` chips.
    pub fn new(chips: usize) -> Self {
        TraceFold {
            accepted: 0,
            rejected: 0,
            departed: 0,
            migrations: 0,
            reconfig: ReconfigCost::default(),
            drain_migrations: 0,
            drain_reconfig: ReconfigCost::default(),
            frag_windows_recovered: 0,
            hbm_frag_recovered: 0.0,
            faults_injected: 0,
            faults_repaired: 0,
            recoveries_remapped: 0,
            recoveries_replaced: 0,
            recoveries_self_healed: 0,
            tenants_lost: 0,
            recovery_reconfig: ReconfigCost::default(),
            degraded_ticks: 0,
            mttr_total_ticks: 0,
            mttr_max_ticks: 0,
            executed_epochs: 0,
            machine_cycles: 0,
            per_chip: vec![ChipFold::default(); chips],
        }
    }

    fn chip_mut(&mut self, chip: usize) -> Option<&mut ChipFold> {
        self.per_chip.get_mut(chip)
    }

    /// Folds one event into the running totals.
    pub fn observe(&mut self, ev: &TraceEvent) {
        match *ev {
            TraceEvent::Admitted { chip, .. } => {
                self.accepted += 1;
                if let Some(c) = self.chip_mut(chip) {
                    c.accepted += 1;
                }
            }
            TraceEvent::Rejected { .. } => self.rejected += 1,
            TraceEvent::Departed { chip, .. } => {
                self.departed += 1;
                if let Some(c) = self.chip_mut(chip) {
                    c.departed += 1;
                }
            }
            TraceEvent::Migrated { chip, cost, .. } => {
                self.migrations += 1;
                self.reconfig = self.reconfig.plus(cost);
                if let Some(c) = self.chip_mut(chip) {
                    c.migrations += 1;
                }
            }
            TraceEvent::DefragRecovered {
                window_cores,
                hbm_frag_delta,
                ..
            } => {
                self.frag_windows_recovered += window_cores;
                self.hbm_frag_recovered += hbm_frag_delta;
            }
            TraceEvent::DrainMove {
                from_chip,
                to_chip,
                cost,
                ..
            } => {
                self.drain_migrations += 1;
                self.drain_reconfig = self.drain_reconfig.plus(cost);
                if let Some(c) = self.chip_mut(from_chip) {
                    c.drain_evacuated += 1;
                }
                if let Some(c) = self.chip_mut(to_chip) {
                    c.drain_received += 1;
                }
            }
            TraceEvent::FaultOnset { chip, .. } => {
                self.faults_injected += 1;
                if let Some(c) = self.chip_mut(chip) {
                    c.fault_onsets += 1;
                }
            }
            TraceEvent::FaultRepair { chip, .. } => {
                self.faults_repaired += 1;
                if let Some(c) = self.chip_mut(chip) {
                    c.fault_repairs += 1;
                }
            }
            TraceEvent::RecoveryPaid { cost, .. } => {
                self.recovery_reconfig = self.recovery_reconfig.plus(cost);
            }
            TraceEvent::Recovered {
                tick,
                chip,
                kind,
                onset_tick,
                ..
            } => {
                let dt = tick.saturating_sub(onset_tick);
                self.mttr_total_ticks += dt;
                self.mttr_max_ticks = self.mttr_max_ticks.max(dt);
                match kind {
                    RecoveryKind::Remapped => {
                        self.recoveries_remapped += 1;
                        if let Some(c) = self.chip_mut(chip) {
                            c.recoveries_remapped += 1;
                        }
                    }
                    RecoveryKind::Replaced => {
                        self.recoveries_replaced += 1;
                        if let Some(c) = self.chip_mut(chip) {
                            c.recoveries_replaced += 1;
                        }
                    }
                    RecoveryKind::SelfHealed => self.recoveries_self_healed += 1,
                }
            }
            TraceEvent::TenantLost { chip, .. } => {
                self.tenants_lost += 1;
                if let Some(c) = self.chip_mut(chip) {
                    c.tenants_lost += 1;
                }
            }
            TraceEvent::Executed {
                chip,
                machine_cycles,
                ..
            } => {
                self.executed_epochs += 1;
                self.machine_cycles += machine_cycles;
                if let Some(c) = self.chip_mut(chip) {
                    c.executed_epochs += 1;
                    c.machine_cycles += machine_cycles;
                }
            }
            TraceEvent::Degraded { chip, .. } => {
                self.degraded_ticks += 1;
                if let Some(c) = self.chip_mut(chip) {
                    c.degraded_ticks += 1;
                }
            }
            // Pure observation events carry no accounting.
            TraceEvent::Arrival { .. }
            | TraceEvent::AdmissionStart { .. }
            | TraceEvent::HintEmitted { .. }
            | TraceEvent::DrainStep { .. }
            | TraceEvent::RecoveryDetected { .. }
            | TraceEvent::CacheSample { .. }
            | TraceEvent::Quiesced { .. }
            | TraceEvent::ReportClaim { .. } => {}
        }
    }

    /// Mean ticks-to-recover over every recovered tenant.
    pub fn recovered_tenants(&self) -> u64 {
        self.recoveries_remapped + self.recoveries_replaced + self.recoveries_self_healed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_books_every_dimension() {
        let cost = ReconfigCost {
            routing_cycles: 10,
            rtt_cycles: 4,
            data_move_bytes: 256,
            paused_cycles: 30,
        };
        let mut f = TraceFold::new(2);
        for ev in [
            TraceEvent::Arrival { tick: 0, id: 1 },
            TraceEvent::Admitted {
                tick: 0,
                id: 1,
                chip: 0,
                vm: 0,
            },
            TraceEvent::Rejected { tick: 1, id: 2 },
            TraceEvent::Migrated {
                tick: 2,
                chip: 0,
                vm: 0,
                cost,
            },
            TraceEvent::DrainMove {
                tick: 3,
                from_chip: 0,
                from_vm: 0,
                to_chip: 1,
                to_vm: 4,
                cost,
            },
            TraceEvent::FaultOnset { tick: 4, chip: 1 },
            TraceEvent::RecoveryDetected {
                tick: 4,
                chip: 1,
                vm: 4,
            },
            TraceEvent::RecoveryPaid {
                tick: 5,
                chip: 1,
                cost,
            },
            TraceEvent::Recovered {
                tick: 5,
                chip: 1,
                vm: 4,
                kind: RecoveryKind::Remapped,
                onset_tick: 4,
            },
            TraceEvent::FaultRepair { tick: 6, chip: 1 },
            TraceEvent::Degraded { tick: 4, chip: 1 },
            TraceEvent::Executed {
                tick: 4,
                chip: 1,
                machine_cycles: 99,
            },
            TraceEvent::Departed {
                tick: 7,
                chip: 1,
                vm: 4,
            },
        ] {
            f.observe(&ev);
        }
        assert_eq!(f.accepted, 1);
        assert_eq!(f.rejected, 1);
        assert_eq!(f.departed, 1);
        assert_eq!(f.migrations, 1);
        assert_eq!(f.reconfig, cost);
        assert_eq!(f.drain_migrations, 1);
        assert_eq!(f.per_chip[0].drain_evacuated, 1);
        assert_eq!(f.per_chip[1].drain_received, 1);
        assert_eq!(f.faults_injected, 1);
        assert_eq!(f.faults_repaired, 1);
        assert_eq!(f.recoveries_remapped, 1);
        assert_eq!(f.per_chip[1].recoveries_remapped, 1);
        assert_eq!(f.recovery_reconfig, cost);
        assert_eq!(f.mttr_total_ticks, 1);
        assert_eq!(f.mttr_max_ticks, 1);
        assert_eq!(f.degraded_ticks, 1);
        assert_eq!(f.executed_epochs, 1);
        assert_eq!(f.machine_cycles, 99);
        assert_eq!(f.recovered_tenants(), 1);
    }

    #[test]
    fn out_of_range_chips_never_panic() {
        let mut f = TraceFold::new(1);
        f.observe(&TraceEvent::Departed {
            tick: 0,
            chip: 7,
            vm: 0,
        });
        f.observe(&TraceEvent::Degraded { tick: 0, chip: 7 });
        assert_eq!(f.departed, 1, "fleet totals still count");
        assert_eq!(f.per_chip.len(), 1);
    }
}
