//! Pipeline partitioning: assign layers to virtual cores.
//!
//! The IPU programming model pins every layer to a core; for pipelined
//! inference the natural assignment is a *contiguous* partition of the
//! topologically-ordered layer list into `n` stages, minimizing the
//! heaviest stage (the pipeline bottleneck). We solve that exactly with
//! the classic linear-partition DP over per-layer cycle costs.

use crate::graph::{LayerId, ModelGraph};
use crate::{Result, WorkloadError};
use vnpu_sim::compute::kernel_cycles;
use vnpu_sim::SocConfig;

/// A pipeline partition: `stages[s]` lists the layers owned by virtual
/// core `s`, in topological order; every layer appears exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    stages: Vec<Vec<LayerId>>,
    stage_of: Vec<u32>,
}

impl Partition {
    /// Layers per stage.
    pub fn stages(&self) -> &[Vec<LayerId>] {
        &self.stages
    }

    /// Number of stages (= virtual cores used).
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether there are no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Stage owning a layer.
    pub fn stage_of(&self, layer: LayerId) -> u32 {
        self.stage_of[layer.index()]
    }

    /// Resident weight bytes of a stage.
    pub fn stage_weight_bytes(&self, graph: &ModelGraph, stage: usize) -> u64 {
        self.stages[stage]
            .iter()
            .map(|&l| graph.layer(l).weight_bytes)
            .sum()
    }

    /// Compute cycles of a stage under a SoC configuration.
    pub fn stage_cycles(&self, graph: &ModelGraph, cfg: &SocConfig, stage: usize) -> u64 {
        self.stages[stage]
            .iter()
            .map(|&l| kernel_cycles(cfg, &graph.layer(l).kernel))
            .sum()
    }

    /// The bottleneck (max) stage cycles — the pipeline's steady-state
    /// iteration interval lower bound.
    pub fn bottleneck_cycles(&self, graph: &ModelGraph, cfg: &SocConfig) -> u64 {
        (0..self.len())
            .map(|s| self.stage_cycles(graph, cfg, s))
            .max()
            .unwrap_or(0)
    }
}

/// Partitions `graph` into at most `n_stages` contiguous stages minimizing
/// the bottleneck stage's compute cycles. When the graph has fewer layers
/// than stages, one layer per stage is produced (the extra cores stay
/// idle; callers may choose to request fewer cores).
///
/// # Errors
///
/// Returns [`WorkloadError::NoCores`] if `n_stages == 0`.
pub fn partition(graph: &ModelGraph, n_stages: u32, cfg: &SocConfig) -> Result<Partition> {
    if n_stages == 0 {
        return Err(WorkloadError::NoCores);
    }
    let costs: Vec<u64> = graph
        .layers()
        .iter()
        .map(|l| kernel_cycles(cfg, &l.kernel))
        .collect();
    let n = costs.len();
    let k = (n_stages as usize).min(n);
    // prefix[i] = sum of costs[0..i]
    let mut prefix = vec![0u64; n + 1];
    for i in 0..n {
        prefix[i + 1] = prefix[i] + costs[i];
    }
    let seg = |a: usize, b: usize| prefix[b] - prefix[a]; // cost of [a, b)

    // dp[j][i] = min over partitions of first i layers into j stages of the
    // max stage cost; cut[j][i] records the last stage's start.
    let inf = u64::MAX;
    let mut dp = vec![vec![inf; n + 1]; k + 1];
    let mut cut = vec![vec![0usize; n + 1]; k + 1];
    dp[0][0] = 0;
    for j in 1..=k {
        for i in j..=n {
            // last stage = [c, i)
            for c in (j - 1)..i {
                if dp[j - 1][c] == inf {
                    continue;
                }
                let cand = dp[j - 1][c].max(seg(c, i));
                if cand < dp[j][i] {
                    dp[j][i] = cand;
                    cut[j][i] = c;
                }
            }
        }
    }
    // Recover cuts.
    let mut bounds = vec![n];
    let mut i = n;
    for j in (1..=k).rev() {
        i = cut[j][i];
        bounds.push(i);
    }
    bounds.reverse();
    debug_assert_eq!(bounds[0], 0);
    let mut stages = Vec::with_capacity(k);
    let mut stage_of = vec![0u32; n];
    for s in 0..k {
        let (a, b) = (bounds[s], bounds[s + 1]);
        let ids: Vec<LayerId> = (a..b).map(|l| LayerId(l as u32)).collect();
        for &l in &ids {
            stage_of[l.index()] = s as u32;
        }
        stages.push(ids);
    }
    Ok(Partition { stages, stage_of })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    fn cfg() -> SocConfig {
        SocConfig::sim()
    }

    #[test]
    fn every_layer_assigned_once() {
        let g = models::resnet18();
        let p = partition(&g, 9, &cfg()).unwrap();
        let mut seen = vec![false; g.len()];
        for stage in p.stages() {
            for l in stage {
                assert!(!seen[l.index()], "layer {l} assigned twice");
                seen[l.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p.len(), 9);
    }

    #[test]
    fn stages_are_contiguous_and_ordered() {
        let g = models::gpt2_small();
        let p = partition(&g, 12, &cfg()).unwrap();
        let mut last = -1i64;
        for stage in p.stages() {
            for l in stage {
                assert_eq!(l.index() as i64, last + 1);
                last = l.index() as i64;
            }
        }
    }

    #[test]
    fn dp_balances_better_than_naive_chunks() {
        let g = models::resnet34();
        let c = cfg();
        let p = partition(&g, 8, &c).unwrap();
        // Naive equal-count chunking.
        let n = g.len();
        let chunk = n.div_ceil(8);
        let naive_max: u64 = (0..8)
            .map(|s| {
                (s * chunk..((s + 1) * chunk).min(n))
                    .map(|i| vnpu_sim::compute::kernel_cycles(&c, &g.layers()[i].kernel))
                    .sum()
            })
            .max()
            .unwrap();
        assert!(p.bottleneck_cycles(&g, &c) <= naive_max);
    }

    #[test]
    fn more_stages_never_worse() {
        let g = models::resnet50();
        let c = cfg();
        let mut prev = u64::MAX;
        for n in [2u32, 4, 8, 16] {
            let p = partition(&g, n, &c).unwrap();
            let b = p.bottleneck_cycles(&g, &c);
            assert!(b <= prev, "bottleneck must not grow with stages");
            prev = b;
        }
    }

    #[test]
    fn more_stages_than_layers_caps_at_layers() {
        let g = models::transformer_block(64, 16);
        let p = partition(&g, 64, &cfg()).unwrap();
        assert_eq!(p.len(), g.len());
        assert!(p.stages().iter().all(|s| s.len() == 1));
    }

    #[test]
    fn single_stage_takes_everything() {
        let g = models::yolo_lite();
        let p = partition(&g, 1, &cfg()).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.stages()[0].len(), g.len());
        assert_eq!(
            p.bottleneck_cycles(&g, &cfg()),
            p.stage_cycles(&g, &cfg(), 0)
        );
    }

    #[test]
    fn zero_stages_rejected() {
        let g = models::yolo_lite();
        assert!(matches!(
            partition(&g, 0, &cfg()),
            Err(WorkloadError::NoCores)
        ));
    }

    #[test]
    fn stage_of_consistent() {
        let g = models::alexnet();
        let p = partition(&g, 4, &cfg()).unwrap();
        for (s, stage) in p.stages().iter().enumerate() {
            for &l in stage {
                assert_eq!(p.stage_of(l), s as u32);
            }
        }
    }
}
