//! **Figure 12** — latency of NPU instruction dispatch via the vRouter:
//! IBUS vs. per-core instruction-NoC latency, against Conv/Matmul kernel
//! execution times.
//!
//! Paper result: IBUS is shortest and fixed; NoC#1..8 varies slightly
//! with distance; both are two to three orders of magnitude below kernel
//! execution, so routing latency is negligible.

use crate::print_table;
use vnpu_sim::compute::kernel_cycles;
use vnpu_sim::controller::{dispatch_latency, DispatchPath};
use vnpu_sim::SocConfig;
use vnpu_workloads::kernels;

/// Pure cost-model arithmetic; runs identically in both modes.
pub fn run(_quick: bool) {
    let cfg = SocConfig::fpga();
    let mut rows = vec![vec![
        "IBUS".to_owned(),
        dispatch_latency(&cfg, DispatchPath::InstructionBus, 0).to_string(),
    ]];
    for core in 0..cfg.core_count() {
        rows.push(vec![
            format!("NoC#{}", core + 1),
            dispatch_latency(&cfg, DispatchPath::InstructionNoc, core).to_string(),
        ]);
    }
    let conv = kernel_cycles(&cfg, &kernels::conv_32hw_16c_16oc_3k());
    let matmul = kernel_cycles(&cfg, &kernels::matmul_128m_128k_128n());
    rows.push(vec!["Conv".to_owned(), conv.to_string()]);
    rows.push(vec!["Matmul".to_owned(), matmul.to_string()]);
    print_table(
        "Figure 12: instruction dispatch latency vs. kernel execution (clocks)",
        &["path", "clocks"],
        &rows,
    );

    let worst_noc = (0..cfg.core_count())
        .map(|c| dispatch_latency(&cfg, DispatchPath::InstructionNoc, c))
        .max()
        .unwrap();
    println!(
        "\nWorst dispatch = {worst_noc} clocks; Conv = {conv} clocks \
         ({}x) — dispatch cost is negligible, as in the paper.",
        conv / worst_noc
    );
    assert!(
        conv / worst_noc > 100,
        "kernels must dominate by 2-3 orders"
    );
    assert!(
        dispatch_latency(&cfg, DispatchPath::InstructionBus, 7)
            <= dispatch_latency(&cfg, DispatchPath::InstructionNoc, 7),
        "IBUS is the shortest fixed path"
    );
}
