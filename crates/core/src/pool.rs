//! An in-repo worker pool for sharding per-chip serve work.
//!
//! Same offline-first spirit as `vnpu_mem::proptest_lite`: plain
//! `std::thread` workers draining a shared channel — no external crates,
//! no scoped-thread tricks, no unsafe. Jobs are `'static` closures, so
//! callers *move* owned per-chip state (a `Machine`, a `Hypervisor`, a
//! hint cache) into each job and take it back out of the result, which is
//! exactly the shape the deterministic serve-loop merge wants: fan work
//! out by chip, collect results **in submission-index order**, reduce
//! sequentially.
//!
//! Determinism contract: [`WorkerPool::run`] returns results in the same
//! order as the submitted jobs regardless of which worker ran what or in
//! what order jobs finished. A pool with `workers == 1` never spawns a
//! thread at all — `run` executes jobs inline on the caller's thread, so
//! the single-worker configuration is *exactly* the sequential path, not
//! a one-thread simulation of it.
//!
//! Concurrency sanitation ([`vnpu_conc`]): the shared receiver is a
//! [`vnpu_conc::sync::Mutex`] under the `POOL_RX` site, batch
//! submissions report to an installed [`ConcProbe`], and a
//! [`ScheduleSeed`] turns the batch hand-off order into the
//! *instrumented yield point* — under a seed, jobs are released (or
//! executed inline) in a seeded permutation of the submission order, so
//! K seeds explore K interleavings while results still come back in job
//! order. All of it defaults to off: [`WorkerPool::new`] installs no
//! probe and no schedule, and the hot path then checks two plain
//! `Option`s — no atomics, no allocation (the schedule's batch counter
//! only exists inside `Option<ScheduleState>`).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use vnpu_conc::sched::permuted_indices;
use vnpu_conc::sites::POOL_RX;
use vnpu_conc::{ConcProbe, ScheduleSeed};

/// A unit of work shipped to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Typed failure from [`WorkerPool::try_run`]: what went wrong, without
/// unwinding through the caller. The pool itself stays usable after
/// either variant — a panicked job never poisons the pool, and the
/// clear-or-refuse contract is: `try_run` *clears* (reports and keeps
/// serving), `run` *refuses* (re-raises the panic on the caller).
#[derive(Debug)]
pub enum PoolError {
    /// A job panicked; `index` is its submission index and `message` the
    /// stringified payload. Remaining jobs still ran to completion.
    JobPanicked {
        /// Submission index of the first panicking job (in job order).
        index: usize,
        /// The panic payload, stringified (`&str`/`String` payloads are
        /// carried verbatim).
        message: String,
    },
    /// A worker died without reporting (its result channel closed
    /// early). `reported` of `expected` results arrived. This cannot
    /// happen through panicking jobs — those are caught and reported —
    /// so it indicates a torn-down pool.
    WorkerLost {
        /// Results that arrived before the channel closed.
        reported: usize,
        /// Results that were expected.
        expected: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::JobPanicked { index, message } => {
                write!(f, "pool job {index} panicked: {message}")
            }
            PoolError::WorkerLost { reported, expected } => write!(
                f,
                "pool worker lost: {reported} of {expected} job results reported"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// Seeded schedule perturbation state; exists only when a
/// [`ScheduleSeed`] was installed, so production pools carry no atomic.
#[derive(Debug)]
struct ScheduleState {
    seed: ScheduleSeed,
    /// Batches submitted so far — each batch gets its own permutation,
    /// deterministically derived from `(seed, batch index)`. Batches
    /// are submitted from the single coordinating thread in a
    /// deterministic order, so the counter sequence is reproducible.
    batch: AtomicU64,
}

/// A fixed-size pool of persistent worker threads.
///
/// Workers are spawned once at construction and live until the pool is
/// dropped (the job channel closes and each worker joins), so the
/// per-tick cost of fanning out is two channel hops per job, not a
/// thread spawn.
#[derive(Debug)]
pub struct WorkerPool {
    workers: usize,
    /// `None` for the inline single-worker pool (no threads to feed).
    tx: Option<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
    probe: Option<Arc<dyn ConcProbe>>,
    schedule: Option<ScheduleState>,
}

impl WorkerPool {
    /// Creates a pool of `workers` threads (clamped to at least 1),
    /// uninstrumented: no probe, no schedule perturbation.
    ///
    /// `workers == 1` creates the *inline* pool: no thread is spawned and
    /// [`WorkerPool::run`] executes jobs directly on the caller's thread.
    pub fn new(workers: usize) -> Self {
        Self::with_conc(workers, None, None)
    }

    /// Creates a pool with concurrency instrumentation. The probe is
    /// baked into the shared receiver at construction (workers never
    /// see a probe change mid-flight), and `schedule` selects the
    /// seeded batch permutation, if any.
    pub fn with_conc(
        workers: usize,
        probe: Option<Arc<dyn ConcProbe>>,
        schedule: Option<ScheduleSeed>,
    ) -> Self {
        let workers = workers.max(1);
        let schedule = schedule.map(|seed| ScheduleState {
            seed,
            batch: AtomicU64::new(0),
        });
        if workers == 1 {
            return WorkerPool {
                workers,
                tx: None,
                handles: Vec::new(),
                probe,
                schedule,
            };
        }
        let (tx, rx) = channel::<Job>();
        let mut shared = vnpu_conc::sync::Mutex::new(&POOL_RX, rx);
        shared.set_probe(probe.clone());
        let rx = Arc::new(shared);
        let handles = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                thread::spawn(move || worker_loop(&rx))
            })
            .collect();
        WorkerPool {
            workers,
            tx: Some(tx),
            handles,
            probe,
            schedule,
        }
    }

    /// Number of workers this pool was built with.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Reports a batch submission to the probe, if one is installed.
    fn note_submit(&self, jobs: usize) {
        if let Some(probe) = &self.probe {
            probe.on_submit(jobs);
        }
    }

    /// The hand-off order for a batch of `n` jobs: `None` (natural
    /// order) without a schedule, a seeded permutation under one.
    fn batch_order(&self, n: usize) -> Option<Vec<usize>> {
        let state = self.schedule.as_ref()?;
        let batch = state.batch.fetch_add(1, Ordering::Relaxed);
        let seed = ScheduleSeed(
            state
                .seed
                .0
                .wrapping_add(batch.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        Some(permuted_indices(n, seed))
    }

    /// Runs every job and returns their results **in job order**.
    ///
    /// Jobs execute concurrently on the pool's workers (inline on the
    /// caller's thread for a single-worker pool, or when there is at most
    /// one job). The caller blocks until all results are in.
    ///
    /// # Panics
    ///
    /// A panicking job does not poison the pool: the panic is caught on
    /// the worker, every remaining result is still collected, and the
    /// first panicking job's payload (in job order) is re-raised on the
    /// caller's thread. A vanished worker (see
    /// [`PoolError::WorkerLost`]) also panics; use
    /// [`WorkerPool::try_run`] for typed recovery instead.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.note_submit(jobs.len());
        let Some(tx) = self.tx.as_ref().filter(|_| jobs.len() > 1) else {
            let Some(order) = self.batch_order(jobs.len()) else {
                // No schedule installed: *exactly* the sequential path —
                // direct, uncaught, in submission order.
                return jobs.into_iter().map(|f| f()).collect();
            };
            return collect_or_unwind(run_inline_permuted(jobs, &order));
        };
        let order = self.batch_order(jobs.len());
        match run_pooled(tx, jobs, order.as_deref()) {
            Ok(slots) => collect_or_unwind(slots),
            Err(err) => panic!("{err}"),
        }
    }

    /// Like [`WorkerPool::run`], but with clear-semantics on failure:
    /// job panics and lost workers come back as typed [`PoolError`]s
    /// and the pool stays usable — this method never unwinds for a job
    /// failure and never hangs on a torn-down pool.
    pub fn try_run<T, F>(&self, jobs: Vec<F>) -> Result<Vec<T>, PoolError>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.note_submit(jobs.len());
        let Some(tx) = self.tx.as_ref().filter(|_| jobs.len() > 1) else {
            let n = jobs.len();
            let order = self
                .batch_order(n)
                .unwrap_or_else(|| (0..n).collect::<Vec<_>>());
            return collect_or_error(run_inline_permuted(jobs, &order));
        };
        let order = self.batch_order(jobs.len());
        collect_or_error(run_pooled(tx, jobs, order.as_deref())?)
    }
}

/// Executes `jobs` inline in the given permuted order, catching panics,
/// and returns outcomes slotted back into job order.
fn run_inline_permuted<T, F>(jobs: Vec<F>, order: &[usize]) -> Vec<thread::Result<T>>
where
    F: FnOnce() -> T,
{
    let mut pending: Vec<Option<F>> = jobs.into_iter().map(Some).collect();
    let mut slots: Vec<Option<thread::Result<T>>> = (0..pending.len()).map(|_| None).collect();
    for &i in order {
        let job = pending[i].take().expect("each index appears once");
        slots[i] = Some(catch_unwind(AssertUnwindSafe(job)));
    }
    slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect()
}

/// Ships `jobs` to the pool (in `order`, when given) and collects every
/// outcome in job order. `Err` only for a vanished worker — job panics
/// are `Err` entries *inside* the `Ok` vector.
fn run_pooled<T, F>(
    tx: &Sender<Job>,
    jobs: Vec<F>,
    order: Option<&[usize]>,
) -> Result<Vec<thread::Result<T>>, PoolError>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    let n = jobs.len();
    let (result_tx, result_rx) = channel::<(usize, thread::Result<T>)>();
    let mut boxed: Vec<Option<Job>> = jobs
        .into_iter()
        .enumerate()
        .map(|(i, job)| {
            let result_tx = result_tx.clone();
            let job: Job = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(job));
                // The receiver only disappears if the caller itself
                // unwound; dropping the result is then the right thing.
                let _ = result_tx.send((i, outcome));
            });
            Some(job)
        })
        .collect();
    drop(result_tx);
    let submit = |i: usize, boxed: &mut Vec<Option<Job>>| {
        let job = boxed[i].take().expect("each index submitted once");
        tx.send(job).expect("worker pool is alive while owned");
    };
    match order {
        Some(order) => {
            for &i in order {
                submit(i, &mut boxed);
            }
        }
        None => {
            for i in 0..n {
                submit(i, &mut boxed);
            }
        }
    }
    let mut slots: Vec<Option<thread::Result<T>>> = (0..n).map(|_| None).collect();
    for reported in 0..n {
        let Ok((i, outcome)) = result_rx.recv() else {
            // A worker died without reporting. Jobs never do this
            // (panics are caught above), so the pool is torn down —
            // refuse with a typed error rather than hanging.
            return Err(PoolError::WorkerLost {
                reported,
                expected: n,
            });
        };
        slots[i] = Some(outcome);
    }
    Ok(slots
        .into_iter()
        .map(|s| s.expect("all slots filled"))
        .collect())
}

/// `run`'s reduction: values in job order, or re-raise the first panic
/// (in job order; later ones are secondary casualties of the same tick).
fn collect_or_unwind<T>(slots: Vec<thread::Result<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(slots.len());
    let mut panic_payload = None;
    for slot in slots {
        match slot {
            Ok(v) => out.push(v),
            Err(p) => {
                panic_payload.get_or_insert(p);
            }
        }
    }
    if let Some(p) = panic_payload {
        resume_unwind(p);
    }
    out
}

/// `try_run`'s reduction: values in job order, or the first panic (in
/// job order) as a typed [`PoolError::JobPanicked`].
fn collect_or_error<T>(slots: Vec<thread::Result<T>>) -> Result<Vec<T>, PoolError> {
    let mut out = Vec::with_capacity(slots.len());
    let mut first_panic: Option<PoolError> = None;
    for (index, slot) in slots.into_iter().enumerate() {
        match slot {
            Ok(v) => out.push(v),
            Err(p) => {
                first_panic.get_or_insert(PoolError::JobPanicked {
                    index,
                    message: payload_message(p.as_ref()),
                });
            }
        }
    }
    match first_panic {
        Some(err) => Err(err),
        None => Ok(out),
    }
}

/// Drains jobs until the channel closes. The receiver lock is held only
/// for the `recv` — the guard drops before the job runs — so a long job
/// never blocks other workers from picking up the next one, and lock
/// traces never show jobs' own acquisitions nested under `POOL_RX`.
fn worker_loop(rx: &vnpu_conc::sync::Mutex<Receiver<Job>>) {
    loop {
        let job = rx.lock().recv().ok();
        match job {
            Some(job) => job(),
            None => break,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.tx = None;
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        for workers in [1, 2, 4, 8] {
            let pool = WorkerPool::new(workers);
            assert_eq!(pool.workers(), workers);
            let jobs: Vec<_> = (0..32u64)
                .map(|i| {
                    move || {
                        // Finish out of order on purpose.
                        if i % 3 == 0 {
                            thread::yield_now();
                        }
                        i * i
                    }
                })
                .collect();
            let got = pool.run(jobs);
            let want: Vec<u64> = (0..32).map(|i| i * i).collect();
            assert_eq!(got, want, "workers = {workers}");
        }
    }

    #[test]
    fn owned_state_moves_through_and_back() {
        // The serve loop's idiom: move owned per-chip state into jobs,
        // get it back in chip order.
        let pool = WorkerPool::new(3);
        let chips: Vec<Vec<u32>> = (0..6).map(|c| vec![c; 4]).collect();
        let returned = pool.run(
            chips
                .into_iter()
                .map(|mut chip| {
                    move || {
                        chip.push(99);
                        chip
                    }
                })
                .collect::<Vec<_>>(),
        );
        for (c, chip) in returned.iter().enumerate() {
            assert_eq!(chip.len(), 5);
            assert_eq!(chip[0], c as u32);
            assert_eq!(chip[4], 99);
        }
    }

    #[test]
    fn single_job_runs_inline_even_on_a_wide_pool() {
        let pool = WorkerPool::new(4);
        let caller = thread::current().id();
        let ran_on = pool.run(vec![move || thread::current().id()]);
        assert_eq!(ran_on, vec![caller], "one job must not pay a channel hop");
    }

    #[test]
    fn zero_workers_clamps_to_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.run(vec![|| 7]), vec![7]);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let pool = WorkerPool::new(4);
        let out: Vec<u32> = pool.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn a_panicking_job_resurfaces_without_poisoning_the_pool() {
        let pool = WorkerPool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.run(
                (0..4)
                    .map(|i| move || if i == 2 { panic!("job 2 died") } else { i })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(caught.is_err(), "the job's panic must reach the caller");
        // The pool still works afterwards.
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn try_run_reports_the_first_panic_in_job_order_and_recovers() {
        for workers in [1, 4] {
            let pool = WorkerPool::new(workers);
            let err = pool
                .try_run(
                    (0..6)
                        .map(|i| {
                            move || match i {
                                4 => panic!("late casualty"),
                                2 => panic!("job 2 died"),
                                _ => i,
                            }
                        })
                        .collect::<Vec<_>>(),
                )
                .expect_err("two jobs panicked");
            match err {
                PoolError::JobPanicked { index, message } => {
                    assert_eq!(index, 2, "first panic in job order, workers={workers}");
                    assert_eq!(message, "job 2 died");
                }
                other => panic!("unexpected error: {other}"),
            }
            // Clear semantics: the post-panic pool drains cleanly — the
            // next batch runs to completion, no hang, no stale results.
            assert_eq!(
                pool.try_run((0..8).map(|i| move || i * 3).collect::<Vec<_>>())
                    .expect("pool recovered"),
                (0..8).map(|i| i * 3).collect::<Vec<_>>(),
            );
        }
    }

    #[test]
    fn try_run_succeeds_like_run() {
        let pool = WorkerPool::new(3);
        let got = pool
            .try_run((0..10u64).map(|i| move || i + 1).collect::<Vec<_>>())
            .unwrap();
        assert_eq!(got, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_error_display_is_informative() {
        let a = PoolError::JobPanicked {
            index: 3,
            message: "boom".into(),
        };
        assert_eq!(a.to_string(), "pool job 3 panicked: boom");
        let b = PoolError::WorkerLost {
            reported: 1,
            expected: 4,
        };
        assert!(b.to_string().contains("1 of 4"), "{b}");
    }

    #[test]
    fn seeded_schedule_preserves_result_order_at_every_width() {
        for workers in [1, 2, 4] {
            for seed in 0..4u64 {
                let pool = WorkerPool::with_conc(workers, None, Some(ScheduleSeed(seed)));
                let got = pool.run((0..16u64).map(|i| move || i * 7).collect::<Vec<_>>());
                assert_eq!(
                    got,
                    (0..16).map(|i| i * 7).collect::<Vec<u64>>(),
                    "workers={workers} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn inline_schedule_permutes_execution_order() {
        // workers == 1 + seed: execution order is the seeded permutation,
        // observable through side effects — this is what lets the mutation
        // suite drive a completion-order-sensitive merge deterministically.
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        let pool = WorkerPool::with_conc(1, None, Some(ScheduleSeed(1)));
        let jobs: Vec<_> = (0..8usize)
            .map(|i| {
                let log = Arc::clone(&log);
                move || {
                    log.lock().unwrap().push(i);
                    i
                }
            })
            .collect();
        let got = pool.run(jobs);
        assert_eq!(got, (0..8).collect::<Vec<_>>(), "results stay in job order");
        let order = log.lock().unwrap().clone();
        assert_ne!(order, (0..8).collect::<Vec<_>>(), "execution was permuted");
        assert_eq!(order, permuted_indices(8, ScheduleSeed(1)));
    }

    #[test]
    fn probe_records_submissions_and_receiver_acquisitions() {
        use vnpu_conc::{EventKind, TraceProbe};
        let probe = Arc::new(TraceProbe::new());
        let pool = WorkerPool::with_conc(2, Some(probe.clone() as Arc<dyn ConcProbe>), None);
        let got = pool.run((0..4u32).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(got, vec![0, 1, 2, 3]);
        drop(pool);
        let trace = probe.take_trace();
        let submits: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Submit)
            .collect();
        assert_eq!(submits.len(), 1);
        assert_eq!(submits[0].tag, Some(4));
        assert!(
            trace
                .events
                .iter()
                .any(|e| e.kind == EventKind::Acquired
                    && e.site.id == vnpu_conc::sites::POOL_RX.id),
            "worker receiver pickups are traced"
        );
    }
}
