//! Convolutional networks: ResNet-18/34/50, AlexNet, GoogLeNet,
//! MobileNetV1, YOLO-Lite, EfficientNet-B0, and the Figure 15 ResNet
//! micro-blocks.

use super::DTYPE_BYTES;
use crate::graph::{GraphBuilder, LayerId, LayerKind, ModelGraph};
use vnpu_sim::isa::{out_dim, Kernel};

/// Emits a convolution layer; returns `(id, output spatial size)`.
#[allow(clippy::too_many_arguments)]
fn conv(
    b: &mut GraphBuilder,
    name: &str,
    hw: u32,
    in_ch: u32,
    out_ch: u32,
    k: u32,
    stride: u32,
    deps: Vec<LayerId>,
) -> (LayerId, u32) {
    let out = out_dim(hw, k, stride);
    let id = b.push(
        name,
        LayerKind::Conv,
        Kernel::Conv {
            hw,
            in_ch,
            out_ch,
            kernel: k,
            stride,
        },
        u64::from(in_ch) * u64::from(out_ch) * u64::from(k) * u64::from(k) * DTYPE_BYTES,
        u64::from(out) * u64::from(out) * u64::from(out_ch) * DTYPE_BYTES,
        deps,
    );
    (id, out)
}

/// Depthwise convolution (per-channel 3×3).
fn dwconv(
    b: &mut GraphBuilder,
    name: &str,
    hw: u32,
    ch: u32,
    stride: u32,
    deps: Vec<LayerId>,
) -> (LayerId, u32) {
    let out = out_dim(hw, 3, stride);
    let id = b.push(
        name,
        LayerKind::Conv,
        Kernel::Conv {
            hw,
            in_ch: 1,
            out_ch: ch,
            kernel: 3,
            stride,
        },
        u64::from(ch) * 9 * DTYPE_BYTES,
        u64::from(out) * u64::from(out) * u64::from(ch) * DTYPE_BYTES,
        deps,
    );
    (id, out)
}

/// 2×2 max-pool halving the spatial size.
fn pool(b: &mut GraphBuilder, name: &str, hw: u32, ch: u32, dep: LayerId) -> (LayerId, u32) {
    let out = hw / 2;
    let id = b.push(
        name,
        LayerKind::Pool,
        Kernel::Vector {
            elems: u64::from(hw) * u64::from(hw) * u64::from(ch),
        },
        0,
        u64::from(out) * u64::from(out) * u64::from(ch) * DTYPE_BYTES,
        vec![dep],
    );
    (id, out)
}

fn fc(b: &mut GraphBuilder, name: &str, in_dim: u32, out_dim_: u32, deps: Vec<LayerId>) -> LayerId {
    b.push(
        name,
        LayerKind::Fc,
        Kernel::Matmul {
            m: 1,
            k: in_dim,
            n: out_dim_,
        },
        u64::from(in_dim) * u64::from(out_dim_) * DTYPE_BYTES,
        u64::from(out_dim_) * DTYPE_BYTES,
        deps,
    )
}

fn add(b: &mut GraphBuilder, name: &str, hw: u32, ch: u32, deps: Vec<LayerId>) -> LayerId {
    b.push(
        name,
        LayerKind::Elementwise,
        Kernel::Vector {
            elems: u64::from(hw) * u64::from(hw) * u64::from(ch),
        },
        0,
        u64::from(hw) * u64::from(hw) * u64::from(ch) * DTYPE_BYTES,
        deps,
    )
}

/// One ResNet *basic* block (two 3×3 convs + residual add).
fn basic_block(
    b: &mut GraphBuilder,
    prefix: &str,
    hw: u32,
    in_ch: u32,
    out_ch: u32,
    stride: u32,
    input: LayerId,
) -> (LayerId, u32) {
    let (c1, hw1) = conv(
        b,
        &format!("{prefix}.conv1"),
        hw,
        in_ch,
        out_ch,
        3,
        stride,
        vec![input],
    );
    let (c2, hw2) = conv(
        b,
        &format!("{prefix}.conv2"),
        hw1,
        out_ch,
        out_ch,
        3,
        1,
        vec![c1],
    );
    let skip = if stride != 1 || in_ch != out_ch {
        let (proj, _) = conv(
            b,
            &format!("{prefix}.proj"),
            hw,
            in_ch,
            out_ch,
            1,
            stride,
            vec![input],
        );
        proj
    } else {
        input
    };
    let sum = add(b, &format!("{prefix}.add"), hw2, out_ch, vec![c2, skip]);
    (sum, hw2)
}

/// One ResNet *bottleneck* block (1×1, 3×3, 1×1 with 4× expansion).
fn bottleneck_block(
    b: &mut GraphBuilder,
    prefix: &str,
    hw: u32,
    in_ch: u32,
    mid_ch: u32,
    stride: u32,
    input: LayerId,
) -> (LayerId, u32) {
    let out_ch = mid_ch * 4;
    let (c1, hw1) = conv(
        b,
        &format!("{prefix}.conv1"),
        hw,
        in_ch,
        mid_ch,
        1,
        1,
        vec![input],
    );
    let (c2, hw2) = conv(
        b,
        &format!("{prefix}.conv2"),
        hw1,
        mid_ch,
        mid_ch,
        3,
        stride,
        vec![c1],
    );
    let (c3, hw3) = conv(
        b,
        &format!("{prefix}.conv3"),
        hw2,
        mid_ch,
        out_ch,
        1,
        1,
        vec![c2],
    );
    let skip = if stride != 1 || in_ch != out_ch {
        let (proj, _) = conv(
            b,
            &format!("{prefix}.proj"),
            hw,
            in_ch,
            out_ch,
            1,
            stride,
            vec![input],
        );
        proj
    } else {
        input
    };
    let sum = add(b, &format!("{prefix}.add"), hw3, out_ch, vec![c3, skip]);
    (sum, hw3)
}

fn resnet(name: &str, blocks: [u32; 4], bottleneck: bool) -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (stem, hw) = conv(&mut b, "conv1", 224, 3, 64, 7, 2, vec![]);
    let (p, mut hw) = pool(&mut b, "maxpool", hw, 64, stem);
    let mut prev = p;
    let mut in_ch = 64;
    let stage_ch = [64u32, 128, 256, 512];
    for (s, &count) in blocks.iter().enumerate() {
        for i in 0..count {
            let stride = if s > 0 && i == 0 { 2 } else { 1 };
            let prefix = format!("stage{}.{}", s + 1, i);
            let (out, new_hw) = if bottleneck {
                bottleneck_block(&mut b, &prefix, hw, in_ch, stage_ch[s], stride, prev)
            } else {
                basic_block(&mut b, &prefix, hw, in_ch, stage_ch[s], stride, prev)
            };
            prev = out;
            hw = new_hw;
            in_ch = if bottleneck {
                stage_ch[s] * 4
            } else {
                stage_ch[s]
            };
        }
    }
    fc(&mut b, "fc", in_ch, 1000, vec![prev]);
    b.build(name).expect("resnet graph is valid")
}

/// ResNet-18 (11.7 M parameters).
pub fn resnet18() -> ModelGraph {
    resnet("resnet18", [2, 2, 2, 2], false)
}

/// ResNet-34 (21.8 M parameters).
pub fn resnet34() -> ModelGraph {
    resnet("resnet34", [3, 4, 6, 3], false)
}

/// ResNet-50 (25.6 M parameters).
pub fn resnet50() -> ModelGraph {
    resnet("resnet50", [3, 4, 6, 3], true)
}

/// A standalone ResNet basic block at the given spatial size and channel
/// count — the Figure 15 micro-workloads (`16wh_64c`, `20wh_32c`).
pub fn resnet_block(hw: u32, ch: u32) -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (input, _) = conv(&mut b, "in", hw, ch, ch, 1, 1, vec![]);
    let (_, _) = basic_block(&mut b, "blk", hw, ch, ch, 1, input);
    b.build(format!("resnet_block_{hw}wh_{ch}c"))
        .expect("block graph is valid")
}

/// AlexNet (≈61 M parameters, FC-dominated).
pub fn alexnet() -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (c1, hw) = conv(&mut b, "conv1", 227, 3, 96, 11, 4, vec![]);
    let (p1, hw) = pool(&mut b, "pool1", hw, 96, c1);
    let (c2, hw) = conv(&mut b, "conv2", hw, 96, 256, 5, 1, vec![p1]);
    let (p2, hw) = pool(&mut b, "pool2", hw, 256, c2);
    let (c3, hw) = conv(&mut b, "conv3", hw, 256, 384, 3, 1, vec![p2]);
    let (c4, hw) = conv(&mut b, "conv4", hw, 384, 384, 3, 1, vec![c3]);
    let (c5, hw) = conv(&mut b, "conv5", hw, 384, 256, 3, 1, vec![c4]);
    let (p5, hw) = pool(&mut b, "pool5", hw, 256, c5);
    let flat = hw * hw * 256;
    let f6 = fc(&mut b, "fc6", flat, 4096, vec![p5]);
    let f7 = fc(&mut b, "fc7", 4096, 4096, vec![f6]);
    fc(&mut b, "fc8", 4096, 1000, vec![f7]);
    b.build("alexnet").expect("alexnet graph is valid")
}

/// One GoogLeNet inception module.
#[allow(clippy::too_many_arguments)]
fn inception(
    b: &mut GraphBuilder,
    prefix: &str,
    hw: u32,
    in_ch: u32,
    c1: u32,
    c3r: u32,
    c3: u32,
    c5r: u32,
    c5: u32,
    cp: u32,
    input: LayerId,
) -> (LayerId, u32) {
    let (b1, _) = conv(
        b,
        &format!("{prefix}.1x1"),
        hw,
        in_ch,
        c1,
        1,
        1,
        vec![input],
    );
    let (b3r, _) = conv(
        b,
        &format!("{prefix}.3x3r"),
        hw,
        in_ch,
        c3r,
        1,
        1,
        vec![input],
    );
    let (b3, hw3) = conv(b, &format!("{prefix}.3x3"), hw, c3r, c3, 3, 1, vec![b3r]);
    let (b5r, _) = conv(
        b,
        &format!("{prefix}.5x5r"),
        hw,
        in_ch,
        c5r,
        1,
        1,
        vec![input],
    );
    let (b5, _) = conv(b, &format!("{prefix}.5x5"), hw, c5r, c5, 5, 1, vec![b5r]);
    let (bp, _) = conv(
        b,
        &format!("{prefix}.poolp"),
        hw,
        in_ch,
        cp,
        1,
        1,
        vec![input],
    );
    let out_ch = c1 + c3 + c5 + cp;
    let concat = b.push(
        format!("{prefix}.concat"),
        LayerKind::Elementwise,
        Kernel::Vector {
            elems: u64::from(hw3) * u64::from(hw3) * u64::from(out_ch),
        },
        0,
        u64::from(hw3) * u64::from(hw3) * u64::from(out_ch) * DTYPE_BYTES,
        vec![b1, b3, b5, bp],
    );
    (concat, hw3)
}

/// GoogLeNet (≈7 M parameters, 9 inception modules).
pub fn googlenet() -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (c1, hw) = conv(&mut b, "conv1", 224, 3, 64, 7, 2, vec![]);
    let (p1, hw) = pool(&mut b, "pool1", hw, 64, c1);
    let (c2, hw) = conv(&mut b, "conv2", hw, 64, 192, 3, 1, vec![p1]);
    let (p2, hw) = pool(&mut b, "pool2", hw, 192, c2);
    // (in, 1x1, 3x3r, 3x3, 5x5r, 5x5, poolproj) — standard table.
    let (i3a, hw) = inception(&mut b, "3a", hw, 192, 64, 96, 128, 16, 32, 32, p2);
    let (i3b, hw) = inception(&mut b, "3b", hw, 256, 128, 128, 192, 32, 96, 64, i3a);
    let (p3, hw) = pool(&mut b, "pool3", hw, 480, i3b);
    let (i4a, hw) = inception(&mut b, "4a", hw, 480, 192, 96, 208, 16, 48, 64, p3);
    let (i4b, hw) = inception(&mut b, "4b", hw, 512, 160, 112, 224, 24, 64, 64, i4a);
    let (i4c, hw) = inception(&mut b, "4c", hw, 512, 128, 128, 256, 24, 64, 64, i4b);
    let (i4d, hw) = inception(&mut b, "4d", hw, 512, 112, 144, 288, 32, 64, 64, i4c);
    let (i4e, hw) = inception(&mut b, "4e", hw, 528, 256, 160, 320, 32, 128, 128, i4d);
    let (p4, hw) = pool(&mut b, "pool4", hw, 832, i4e);
    let (i5a, hw) = inception(&mut b, "5a", hw, 832, 256, 160, 320, 32, 128, 128, p4);
    let (i5b, _hw) = inception(&mut b, "5b", hw, 832, 384, 192, 384, 48, 128, 128, i5a);
    fc(&mut b, "fc", 1024, 1000, vec![i5b]);
    b.build("googlenet").expect("googlenet graph is valid")
}

/// MobileNetV1 (≈4.2 M parameters, depthwise-separable).
pub fn mobilenet_v1() -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (stem, mut hw) = conv(&mut b, "conv1", 224, 3, 32, 3, 2, vec![]);
    let mut prev = stem;
    let mut ch = 32u32;
    // (output channels, stride) per separable block.
    let blocks = [
        (64u32, 1u32),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (512, 1),
        (1024, 2),
        (1024, 1),
    ];
    for (i, &(out_ch, stride)) in blocks.iter().enumerate() {
        let (dw, hw1) = dwconv(&mut b, &format!("dw{i}"), hw, ch, stride, vec![prev]);
        let (pw, hw2) = conv(&mut b, &format!("pw{i}"), hw1, ch, out_ch, 1, 1, vec![dw]);
        prev = pw;
        hw = hw2;
        ch = out_ch;
    }
    fc(&mut b, "fc", 1024, 1000, vec![prev]);
    b.build("mobilenet_v1").expect("mobilenet graph is valid")
}

/// YOLO-Lite (7 small convolutions for non-GPU object detection).
pub fn yolo_lite() -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (c1, hw) = conv(&mut b, "conv1", 224, 3, 16, 3, 1, vec![]);
    let (p1, hw) = pool(&mut b, "pool1", hw, 16, c1);
    let (c2, hw) = conv(&mut b, "conv2", hw, 16, 32, 3, 1, vec![p1]);
    let (p2, hw) = pool(&mut b, "pool2", hw, 32, c2);
    let (c3, hw) = conv(&mut b, "conv3", hw, 32, 64, 3, 1, vec![p2]);
    let (p3, hw) = pool(&mut b, "pool3", hw, 64, c3);
    let (c4, hw) = conv(&mut b, "conv4", hw, 64, 128, 3, 1, vec![p3]);
    let (p4, hw) = pool(&mut b, "pool4", hw, 128, c4);
    let (c5, hw) = conv(&mut b, "conv5", hw, 128, 128, 3, 1, vec![p4]);
    let (p5, hw) = pool(&mut b, "pool5", hw, 128, c5);
    let (c6, hw) = conv(&mut b, "conv6", hw, 128, 256, 3, 1, vec![p5]);
    conv(&mut b, "conv7", hw, 256, 125, 1, 1, vec![c6]);
    b.build("yolo_lite").expect("yolo-lite graph is valid")
}

/// EfficientNet-B0, approximated as a widened MobileNet (≈5.3 M params).
/// Documented substitution: the MBConv expansion structure is folded into
/// equivalent separable blocks with matched MAC counts.
pub fn efficientnet_b0() -> ModelGraph {
    let mut b = GraphBuilder::new();
    let (stem, mut hw) = conv(&mut b, "stem", 224, 3, 32, 3, 2, vec![]);
    let mut prev = stem;
    let mut ch = 32u32;
    let blocks = [
        (16u32, 1u32),
        (24, 2),
        (24, 1),
        (40, 2),
        (40, 1),
        (80, 2),
        (80, 1),
        (80, 1),
        (112, 1),
        (112, 1),
        (192, 2),
        (192, 1),
        (192, 1),
        (320, 1),
    ];
    for (i, &(out_ch, stride)) in blocks.iter().enumerate() {
        // MBConv expand (x6) -> depthwise -> project, folded.
        let expanded = ch * 6;
        let (e, hw0) = conv(
            &mut b,
            &format!("mb{i}.expand"),
            hw,
            ch,
            expanded,
            1,
            1,
            vec![prev],
        );
        let (dw, hw1) = dwconv(&mut b, &format!("mb{i}.dw"), hw0, expanded, stride, vec![e]);
        let (pr, hw2) = conv(
            &mut b,
            &format!("mb{i}.project"),
            hw1,
            expanded,
            out_ch,
            1,
            1,
            vec![dw],
        );
        prev = pr;
        hw = hw2;
        ch = out_ch;
    }
    let (head, _) = conv(&mut b, "head", hw, ch, 1280, 1, 1, vec![prev]);
    fc(&mut b, "fc", 1280, 1000, vec![head]);
    b.build("efficientnet_b0")
        .expect("efficientnet graph is valid")
}

/// RetinaNet approximated as ResNet-50 plus FPN/head convolutions
/// (documented substitution for the Figure 3 motivation).
pub fn retinanet_approx() -> ModelGraph {
    let base = resnet50();
    let mut b = GraphBuilder::new();
    let mut prev = None;
    for l in base.layers() {
        let deps = l.deps.clone();
        let id = b.push(
            l.name.clone(),
            l.kind,
            l.kernel,
            l.weight_bytes,
            l.out_bytes,
            deps,
        );
        prev = Some(id);
    }
    let mut last = prev.expect("resnet50 is non-empty");
    for i in 0..4 {
        let (c, _) = conv(&mut b, &format!("fpn{i}"), 28, 256, 256, 3, 1, vec![last]);
        last = c;
    }
    b.build("retinanet~").expect("retinanet graph is valid")
}

/// ResNet-RS approximated as a deepened ResNet-50 variant (documented
/// substitution for the Figure 3 motivation).
pub fn resnet_rs_approx() -> ModelGraph {
    resnet("resnet_rs~", [3, 4, 8, 3], true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet18_structure() {
        let g = resnet18();
        // conv1 + pool + 8 basic blocks (2 or 3 convs + add each) + fc.
        assert!(g.len() > 25 && g.len() < 45, "{} layers", g.len());
        // ~0.9 GMACs published for 224x224 (valid-padding shapes land a
        // little lower than same-padding ones).
        let gmacs = g.total_macs() as f64 / 1e9;
        assert!((0.4..3.0).contains(&gmacs), "{gmacs} GMACs");
    }

    #[test]
    fn resnet50_heavier_than_18() {
        assert!(resnet50().total_macs() > resnet18().total_macs());
        assert!(resnet34().total_macs() > resnet18().total_macs());
    }

    #[test]
    fn residuals_create_branches() {
        let g = resnet18();
        let cons = g.consumers();
        // Some layer output must feed 2+ consumers (the skip).
        assert!(cons.iter().any(|c| c.len() >= 2));
    }

    #[test]
    fn mobilenet_much_lighter_than_resnet() {
        assert!(mobilenet_v1().total_macs() * 2 < resnet18().total_macs());
        assert!(mobilenet_v1().total_weight_bytes() < 6_000_000);
    }

    #[test]
    fn googlenet_params_about_7m() {
        let p = googlenet().total_weight_bytes();
        assert!((4_000_000..10_000_000).contains(&p), "{p} bytes");
    }

    #[test]
    fn yolo_lite_is_tiny() {
        let g = yolo_lite();
        assert!(g.total_weight_bytes() < 2_000_000);
        assert!(g.is_chain() || !g.is_chain()); // structural smoke
        assert_eq!(g.layers().last().unwrap().name, "conv7");
    }

    #[test]
    fn resnet_block_micro() {
        let g = resnet_block(16, 64);
        assert_eq!(g.name(), "resnet_block_16wh_64c");
        assert!(g.len() >= 4);
        let g2 = resnet_block(20, 32);
        assert!(g2.total_macs() < g.total_macs());
    }

    #[test]
    fn approximations_scale_up() {
        assert!(retinanet_approx().total_macs() > resnet50().total_macs());
        assert!(resnet_rs_approx().total_macs() > resnet50().total_macs());
    }
}
