//! Connected induced-subgraph enumeration over the *free* nodes of a
//! physical topology — the candidate-generation step of Algorithm 1
//! (lines 20–29).
//!
//! The paper prunes candidates three ways; we implement all of them:
//!
//! 1. connectivity (R-3) — we enumerate *connected* subgraphs directly via
//!    the ESU ("enumerate subgraphs", Wernicke 2006) scheme, so disconnected
//!    node sets are never produced;
//! 2. isomorphism dedup — callers pair this module with
//!    [`crate::canonical::canonical_key`];
//! 3. exact-match early exit — [`enumerate_connected`] accepts a visitor
//!    that can stop enumeration as soon as a perfect candidate is seen.
//!
//! A rectangle fast-path ([`mesh_rectangles`]) answers `w × h` mesh requests
//! in O(free-mask scan) time without general enumeration.

use crate::cache::FreeSet;
use crate::{MeshShape, NodeId, Topology};
use std::collections::BTreeSet;

/// Upper bound on enumerated candidates, protecting against combinatorial
/// blow-up on large free regions (the NP-hard step the paper parallelizes).
pub const DEFAULT_CANDIDATE_CAP: usize = 2_000;

/// Recursion-step budget per candidate of the cap: bounds the total work
/// of the enumeration (including the worst-case-exponential *exhaustion
/// proof* when few candidates exist) to `cap × STEPS_PER_CANDIDATE`.
pub const STEPS_PER_CANDIDATE: usize = 200;

/// Outcome of the enumeration visitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visit {
    /// Keep enumerating.
    Continue,
    /// Stop enumeration immediately (e.g. exact match found).
    Stop,
}

/// Enumerates every connected induced subgraph with exactly `k` nodes of
/// the subgraph of `topo` induced by `free`, invoking `visit` once per
/// candidate (as a sorted node list). Enumeration is exhaustive and
/// duplicate-free (ESU), but stops after `cap` candidates or when the
/// visitor returns [`Visit::Stop`].
///
/// Returns the number of candidates visited.
pub fn enumerate_connected(
    topo: &Topology,
    free: &[NodeId],
    k: usize,
    cap: usize,
    visit: impl FnMut(&[NodeId]) -> Visit,
) -> usize {
    let set = FreeSet::from_free_nodes(topo.node_count(), free);
    enumerate_connected_in(topo, &set, k, cap, visit)
}

/// [`enumerate_connected`] over an incrementally-maintained [`FreeSet`]:
/// the occupancy mask is reused as-is instead of being rebuilt from a node
/// list — the hot-path entry point for online serving, where the free set
/// changes by small deltas between requests.
///
/// # Panics
///
/// Panics when `free` tracks a different node count than `topo` — the
/// mask is indexed by physical node id, so a mismatched set is a caller
/// bug, not an enumerable state. [`crate::mapping::Mapper::map_in`]
/// surfaces the same condition gracefully as
/// [`crate::TopoError::FreeSetMismatch`].
pub fn enumerate_connected_in(
    topo: &Topology,
    free: &FreeSet,
    k: usize,
    cap: usize,
    mut visit: impl FnMut(&[NodeId]) -> Visit,
) -> usize {
    assert_eq!(
        free.capacity(),
        topo.node_count(),
        "free set sized for a different topology"
    );
    if k == 0 || free.free_count() < k {
        return 0;
    }
    let is_free = free.mask();
    let mut count = 0usize;
    let mut steps = cap.saturating_mul(STEPS_PER_CANDIDATE).max(10_000);
    let mut stopped = false;

    // ESU: for each root v (ascending), grow subgraphs using only nodes > v,
    // with an extension set of exclusive neighbors.
    for root in (0..topo.node_count() as u32).map(NodeId) {
        if !is_free[root.index()] {
            continue;
        }
        if stopped || count >= cap || steps == 0 {
            break;
        }
        let mut sub = vec![root];
        let ext: BTreeSet<NodeId> = topo
            .neighbors(root)
            .iter()
            .copied()
            .filter(|&u| u > root && is_free[u.index()])
            .collect();
        extend(
            topo,
            is_free,
            root,
            &mut sub,
            ext,
            k,
            cap,
            &mut count,
            &mut steps,
            &mut stopped,
            &mut visit,
        );
    }
    count
}

#[allow(clippy::too_many_arguments)]
fn extend(
    topo: &Topology,
    is_free: &[bool],
    root: NodeId,
    sub: &mut Vec<NodeId>,
    ext: BTreeSet<NodeId>,
    k: usize,
    cap: usize,
    count: &mut usize,
    steps: &mut usize,
    stopped: &mut bool,
    visit: &mut impl FnMut(&[NodeId]) -> Visit,
) {
    if *stopped || *count >= cap || *steps == 0 {
        return;
    }
    *steps -= 1;
    if sub.len() == k {
        *count += 1;
        let mut sorted = sub.clone();
        sorted.sort_unstable();
        if visit(&sorted) == Visit::Stop {
            *stopped = true;
        }
        return;
    }
    let mut ext = ext;
    while let Some(&w) = ext.iter().next() {
        ext.remove(&w);
        if *stopped || *count >= cap || *steps == 0 {
            return;
        }
        // New extension: ext ∪ {exclusive neighbors of w} (neighbors > root,
        // free, not already in sub, not already in ext-before-this-level —
        // ESU guarantees uniqueness by only adding neighbors not adjacent to
        // the current subgraph before w joined).
        let mut next_ext = ext.clone();
        for &u in topo.neighbors(w) {
            if u > root && is_free[u.index()] && !sub.contains(&u) && !neighbor_of_sub(topo, sub, u)
            {
                next_ext.insert(u);
            }
        }
        sub.push(w);
        extend(
            topo, is_free, root, sub, next_ext, k, cap, count, steps, stopped, visit,
        );
        sub.pop();
    }
}

fn neighbor_of_sub(topo: &Topology, sub: &[NodeId], u: NodeId) -> bool {
    sub.iter().any(|&s| topo.has_edge(s, u))
}

/// Collects (up to `cap`) connected candidates as vectors.
pub fn connected_candidates(
    topo: &Topology,
    free: &[NodeId],
    k: usize,
    cap: usize,
) -> Vec<Vec<NodeId>> {
    let mut out = Vec::new();
    enumerate_connected(topo, free, k, cap, |c| {
        out.push(c.to_vec());
        Visit::Continue
    });
    out
}

/// Fast path for regular mesh requests: returns all placements of a
/// `req_w × req_h` window (and its transpose when not square) whose cells
/// are all free, as sorted node lists. Returns `None` when `topo` is not a
/// mesh.
pub fn mesh_rectangles(
    topo: &Topology,
    free: &[NodeId],
    req_w: u32,
    req_h: u32,
) -> Option<Vec<Vec<NodeId>>> {
    let set = FreeSet::from_free_nodes(topo.node_count(), free);
    mesh_rectangles_in(topo, &set, req_w, req_h)
}

/// [`mesh_rectangles`] over a prebuilt [`FreeSet`] (no mask rebuild).
///
/// # Panics
///
/// As for [`enumerate_connected_in`]: `free` must be sized for `topo`.
pub fn mesh_rectangles_in(
    topo: &Topology,
    free: &FreeSet,
    req_w: u32,
    req_h: u32,
) -> Option<Vec<Vec<NodeId>>> {
    assert_eq!(
        free.capacity(),
        topo.node_count(),
        "free set sized for a different topology"
    );
    let shape = topo.mesh_shape()?;
    let is_free = free.mask();
    let mut out = Vec::new();
    let mut shapes = vec![(req_w, req_h)];
    if req_w != req_h {
        shapes.push((req_h, req_w));
    }
    for (w, h) in shapes {
        collect_windows(&shape, is_free, w, h, &mut out);
    }
    Some(out)
}

fn collect_windows(
    shape: &MeshShape,
    is_free: &[bool],
    w: u32,
    h: u32,
    out: &mut Vec<Vec<NodeId>>,
) {
    if w == 0 || h == 0 || w > shape.width || h > shape.height {
        return;
    }
    for y0 in 0..=(shape.height - h) {
        'win: for x0 in 0..=(shape.width - w) {
            let mut cells = Vec::with_capacity((w * h) as usize);
            for dy in 0..h {
                for dx in 0..w {
                    let id = (y0 + dy) * shape.width + (x0 + dx);
                    if !is_free[id as usize] {
                        continue 'win;
                    }
                    cells.push(NodeId(id));
                }
            }
            cells.sort_unstable();
            out.push(cells);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Topology;

    fn all_free(t: &Topology) -> Vec<NodeId> {
        t.nodes().collect()
    }

    #[test]
    fn counts_match_known_values_on_path() {
        // A path of 4 nodes has exactly 3 connected subgraphs of size 2
        // (its edges) and 2 of size 3.
        let t = Topology::line(4);
        let free = all_free(&t);
        assert_eq!(connected_candidates(&t, &free, 2, usize::MAX).len(), 3);
        assert_eq!(connected_candidates(&t, &free, 3, usize::MAX).len(), 2);
        assert_eq!(connected_candidates(&t, &free, 4, usize::MAX).len(), 1);
    }

    #[test]
    fn all_candidates_connected_and_unique() {
        let t = Topology::mesh2d(3, 3);
        let free = all_free(&t);
        let cands = connected_candidates(&t, &free, 4, usize::MAX);
        let mut seen = std::collections::HashSet::new();
        for c in &cands {
            assert_eq!(c.len(), 4);
            assert!(t.is_connected_subset(c), "candidate {c:?} not connected");
            assert!(seen.insert(c.clone()), "duplicate candidate {c:?}");
        }
        // Known count: connected induced 4-subgraphs of the 3x3 grid graph.
        // Brute-force check below validates the number.
        let brute = brute_force_connected(&t, &free, 4);
        assert_eq!(cands.len(), brute.len());
    }

    fn brute_force_connected(t: &Topology, free: &[NodeId], k: usize) -> Vec<Vec<NodeId>> {
        let mut out = Vec::new();
        let n = free.len();
        let mut idx: Vec<usize> = (0..k).collect();
        if k > n {
            return out;
        }
        loop {
            let subset: Vec<NodeId> = idx.iter().map(|&i| free[i]).collect();
            if t.is_connected_subset(&subset) {
                out.push(subset);
            }
            // next combination
            let mut i = k;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                if idx[i] != i + n - k {
                    break;
                }
                if i == 0 {
                    return out;
                }
            }
            idx[i] += 1;
            for j in i + 1..k {
                idx[j] = idx[j - 1] + 1;
            }
        }
    }

    #[test]
    fn brute_force_agreement_sizes_2_to_5() {
        let t = Topology::mesh2d(3, 3);
        let free = all_free(&t);
        for k in 2..=5usize {
            let esu: std::collections::BTreeSet<Vec<NodeId>> =
                connected_candidates(&t, &free, k, usize::MAX)
                    .into_iter()
                    .collect();
            let brute: std::collections::BTreeSet<Vec<NodeId>> =
                brute_force_connected(&t, &free, k).into_iter().collect();
            assert_eq!(esu, brute, "mismatch at k={k}");
        }
    }

    #[test]
    fn respects_free_mask() {
        let t = Topology::mesh2d(3, 3);
        // Only the top row free.
        let free = vec![NodeId(0), NodeId(1), NodeId(2)];
        let cands = connected_candidates(&t, &free, 2, usize::MAX);
        assert_eq!(cands.len(), 2); // (0,1) and (1,2)
        for c in cands {
            for n in c {
                assert!(n.0 < 3);
            }
        }
    }

    #[test]
    fn cap_limits_output() {
        let t = Topology::mesh2d(4, 4);
        let free = all_free(&t);
        let cands = connected_candidates(&t, &free, 5, 10);
        assert_eq!(cands.len(), 10);
    }

    #[test]
    fn early_stop_via_visitor() {
        let t = Topology::mesh2d(4, 4);
        let free = all_free(&t);
        let mut seen = 0;
        enumerate_connected(&t, &free, 3, usize::MAX, |_| {
            seen += 1;
            if seen == 5 {
                Visit::Stop
            } else {
                Visit::Continue
            }
        });
        assert_eq!(seen, 5);
    }

    #[test]
    fn k_larger_than_free_returns_nothing() {
        let t = Topology::mesh2d(2, 2);
        let free = all_free(&t);
        assert!(connected_candidates(&t, &free, 5, usize::MAX).is_empty());
    }

    #[test]
    fn rectangles_on_full_mesh() {
        let t = Topology::mesh2d(5, 5);
        let free = all_free(&t);
        let rects = mesh_rectangles(&t, &free, 3, 3).unwrap();
        assert_eq!(rects.len(), 9); // 3x3 windows in a 5x5
        for r in &rects {
            assert_eq!(r.len(), 9);
            assert!(t.is_connected_subset(r));
        }
    }

    #[test]
    fn rectangles_include_transpose() {
        let t = Topology::mesh2d(4, 4);
        let free = all_free(&t);
        let rects = mesh_rectangles(&t, &free, 1, 4).unwrap();
        // vertical 1x4: 4 placements; horizontal 4x1: 4 placements
        assert_eq!(rects.len(), 8);
    }

    #[test]
    fn rectangles_respect_occupancy() {
        let t = Topology::mesh2d(5, 5);
        // Paper's topology lock-in example: after one 3x3 is placed at the
        // top-left, no second fully-free 3x3 window remains.
        let first: Vec<NodeId> = (0..3)
            .flat_map(|y| (0..3).map(move |x| NodeId(y * 5 + x)))
            .collect();
        let free: Vec<NodeId> = t.nodes().filter(|n| !first.contains(n)).collect();
        assert_eq!(free.len(), 16);
        let rects = mesh_rectangles(&t, &free, 3, 3).unwrap();
        assert!(
            rects.is_empty(),
            "the 5x5-minus-3x3 example must exhibit topology lock-in"
        );
    }

    #[test]
    fn non_mesh_returns_none() {
        let t = Topology::ring(6);
        let free = all_free(&t);
        assert!(mesh_rectangles(&t, &free, 2, 2).is_none());
    }
}
