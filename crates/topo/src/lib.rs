//! Topology substrate for inter-core connected NPU virtualization.
//!
//! This crate provides the graph machinery behind the vNPU paper's
//! *best-effort topology mapping* (ISCA'25, §4.3):
//!
//! * [`Topology`] — an undirected graph with per-node attributes
//!   (heterogeneous core kinds, distance to the nearest memory interface)
//!   and per-edge attributes (criticality costs), plus 2D-mesh builders.
//! * [`enumerate`] — connected induced-subgraph enumeration (Algorithm 1,
//!   lines 20–29) with a rectangle fast-path for regular mesh requests.
//! * [`canonical`] — canonical forms for small graphs, used to deduplicate
//!   isomorphic candidate topologies (Algorithm 1, line 25).
//! * [`ged`] — topology edit distance: an exact A* search for small graphs
//!   and the Riesen–Bunke bipartite heuristic (backed by [`hungarian`]) for
//!   larger ones, both parameterized by [`MatchCosts`].
//! * [`mapping`] — the allocation strategies evaluated in the paper:
//!   straightforward (zig-zag by core ID) and similar-topology (minimum
//!   topology edit distance), with optional disconnected "fragmentation"
//!   mode.
//! * [`route`] — dimension-order routing and confined (direction-override)
//!   path computation used by the NoC vRouter.
//! * [`cache`] — the online-serving hot path: an incrementally-maintained
//!   free-core set ([`FreeSet`]) and a memo table for complete mapping
//!   results ([`MappingCache`]), so repeated requests under churn skip
//!   re-enumeration and re-scoring entirely.
//!
//! # Example
//!
//! Allocate a 2×2 virtual mesh out of a partially-occupied 4×4 physical
//! mesh:
//!
//! ```
//! use vnpu_topo::{Topology, NodeId, mapping::{Mapper, Strategy}};
//!
//! let phys = Topology::mesh2d(4, 4);
//! let req = Topology::mesh2d(2, 2);
//! let mut free: Vec<NodeId> = phys.nodes().collect();
//! free.retain(|n| n.index() != 0); // core 0 already allocated
//!
//! let mapper = Mapper::new(&phys);
//! let mapping = mapper.map(&free, &req, &Strategy::similar_topology()).unwrap();
//! assert_eq!(mapping.phys_nodes().len(), 4);
//! assert_eq!(mapping.edit_distance(), 0); // plenty of exact 2x2 windows left
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod canonical;
pub mod enumerate;
pub mod ged;
pub mod hungarian;
pub mod mapping;
pub mod route;
mod topology;

pub use cache::{CacheStats, FreeSet, MappingCache, ShardedMappingCache};
pub use ged::{GedResult, MatchCosts, UniformCosts};
pub use mapping::{Mapper, Mapping, PlacementCache, ProbedCache, Strategy};
pub use route::Direction;
pub use topology::{EdgeAttr, MeshShape, NodeAttr, NodeId, NodeKind, Topology};

use std::fmt;

/// Errors produced by topology construction and mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopoError {
    /// A node index was out of range for the topology.
    NodeOutOfRange {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the topology.
        len: usize,
    },
    /// An edge referenced identical endpoints.
    SelfLoop(u32),
    /// A topology-mapping request asked for more nodes than are free.
    InsufficientNodes {
        /// Nodes requested.
        requested: usize,
        /// Nodes available.
        available: usize,
    },
    /// No candidate satisfying the constraints (e.g. connectivity) exists.
    NoCandidate,
    /// A free set sized for a different topology was supplied to a mapper.
    FreeSetMismatch {
        /// Nodes tracked by the free set.
        set: usize,
        /// Nodes in the physical topology.
        topology: usize,
    },
    /// The requested mesh dimensions were degenerate (zero-sized).
    EmptyMesh,
    /// A routing path was requested between nodes that are not connected
    /// inside the allowed node set.
    Unroutable {
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::NodeOutOfRange { node, len } => {
                write!(f, "node {node} out of range for topology of {len} nodes")
            }
            TopoError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            TopoError::InsufficientNodes {
                requested,
                available,
            } => write!(
                f,
                "requested {requested} nodes but only {available} are free"
            ),
            TopoError::NoCandidate => write!(f, "no candidate topology satisfies the constraints"),
            TopoError::FreeSetMismatch { set, topology } => write!(
                f,
                "free set tracks {set} nodes but the topology has {topology}"
            ),
            TopoError::EmptyMesh => write!(f, "mesh dimensions must be non-zero"),
            TopoError::Unroutable { src, dst } => {
                write!(
                    f,
                    "no route from node {src} to node {dst} inside the allowed set"
                )
            }
        }
    }
}

impl std::error::Error for TopoError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, TopoError>;
