//! **Ablation** (§4.1.2) — NoC routing strategies for irregular virtual
//! NPUs: default DOR (packets may cross foreign cores → interference) vs.
//! direction-override routing confined to the virtual topology.
//!
//! This reproduces Figure 5's scenario literally: vNPU2 owns physical
//! cores {3, 6, 7, 11} of a 4×3 mesh; its 11→6 flow under DOR crosses
//! foreign core 10 and shares the (10,6) link with the neighbouring
//! tenant's own traffic. Confined routing (11→7→6) removes the shared
//! link, eliminating the cross-tenant contention.

use crate::{adhoc_vrouter, print_table};
use vnpu::vrouter::RoutePolicy;
use vnpu_mem::translate::PhysicalTranslator;
use vnpu_sim::isa::{Instr, Program};
use vnpu_sim::machine::{CoreServices, Machine};
use vnpu_sim::SocConfig;

const BYTES: u64 = 16 * 1024;

/// Runs both tenants with tenant A using the given policy; returns
/// (A cycles/iter, B cycles/iter, total link contention).
fn measure(policy: RoutePolicy, iterations: u32) -> (f64, f64, u64) {
    let cfg = SocConfig {
        mesh_width: 4,
        mesh_height: 3,
        ..SocConfig::fpga()
    };
    let mut machine = Machine::new(cfg.clone());

    // Tenant A = Figure 5's vNPU2 on {3, 6, 7, 11}; virtual 3 (phys 11)
    // streams to virtual 1 (phys 6) every iteration.
    let a = machine.add_tenant("vnpu2");
    let a_cores = vec![3u32, 6, 7, 11];
    let bind_a = |machine: &mut Machine, vcore: u32, program: Program| {
        let mut router = adhoc_vrouter(&cfg, a_cores.clone(), policy);
        router.precompute_paths();
        machine
            .bind_with(
                a_cores[vcore as usize],
                a,
                vcore,
                program,
                CoreServices {
                    router: Box::new(router),
                    translator: Box::new(PhysicalTranslator::new()),
                    limiter: None,
                },
            )
            .unwrap();
    };
    bind_a(
        &mut machine,
        3,
        Program::looped(vec![], vec![Instr::send(1, BYTES, 0)], iterations),
    );
    bind_a(
        &mut machine,
        1,
        Program::looped(vec![], vec![Instr::recv(3, BYTES, 0)], iterations),
    );

    // Tenant B owns {2, 10}; its 10→2 flow always rides DOR through
    // foreign core 6, sharing the (10,6) link with A's DOR route.
    let b = machine.add_tenant("neighbour");
    let b_cores = vec![10u32, 2];
    for (vcore, program) in [
        (
            0u32,
            Program::looped(vec![], vec![Instr::send(1, BYTES, 0)], iterations),
        ),
        (
            1u32,
            Program::looped(vec![], vec![Instr::recv(0, BYTES, 0)], iterations),
        ),
    ] {
        let router = adhoc_vrouter(&cfg, b_cores.clone(), RoutePolicy::Dor);
        machine
            .bind_with(
                b_cores[vcore as usize],
                b,
                vcore,
                program,
                CoreServices {
                    router: Box::new(router),
                    translator: Box::new(PhysicalTranslator::new()),
                    limiter: None,
                },
            )
            .unwrap();
    }

    let report = machine.run().unwrap();
    (
        report.cycles_per_iteration(a),
        report.cycles_per_iteration(b),
        report.noc_contention_cycles(),
    )
}

/// Compares DOR vs confined routing; the isolation assertions are
/// structural (per-iteration contention) and hold at any scale.
pub fn run(quick: bool) {
    let iterations = if quick { 16 } else { 128 };
    let (dor_a, dor_b, dor_contention) = measure(RoutePolicy::Dor, iterations);
    let (conf_a, conf_b, conf_contention) = measure(RoutePolicy::Confined, iterations);
    print_table(
        "Ablation: Figure 5's NoC interference — DOR vs confined routing for vNPU2",
        &[
            "vNPU2 policy",
            "vNPU2 c/iter",
            "neighbour c/iter",
            "link contention (cyc)",
        ],
        &[
            vec![
                "DOR".to_owned(),
                format!("{dor_a:.0}"),
                format!("{dor_b:.0}"),
                dor_contention.to_string(),
            ],
            vec![
                "Confined".to_owned(),
                format!("{conf_a:.0}"),
                format!("{conf_b:.0}"),
                conf_contention.to_string(),
            ],
        ],
    );
    println!(
        "\nUnder DOR both tenants fight for the (10,6) link ({dor_contention} wait \
         cycles); the direction-override path 11→7→6 stays inside vNPU2 and the \
         contention drops to {conf_contention} — the §4.1.2 'NoC non-interference' \
         guarantee."
    );
    assert!(
        dor_contention > 0,
        "Figure 5's DOR interference must appear"
    );
    assert!(
        conf_contention < dor_contention / 4,
        "confinement must remove the shared-link contention"
    );
    assert!(
        conf_b <= dor_b,
        "the neighbour must not slow down when vNPU2 confines itself"
    );
}
