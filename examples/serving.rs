//! Dynamic serving demo: 60 epochs of tenant churn on the paper's 6×6
//! SIM chip.
//!
//! Requests arrive Poisson-ish (seeded, reproducible), each asking for a
//! virtual topology from a mixed catalogue (meshes, chains, awkward core
//! counts). The hypervisor admits them through its FIFO admission queue,
//! placements run through the memoized topology-mapping hot path, every
//! live tenant executes a ring workload each machine epoch, and expired
//! tenants depart — freeing cores and HBM for the next wave.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use vnpu_serve::{ServeConfig, ServeRuntime};

fn main() {
    let cfg = ServeConfig::standard(2026, 60);
    println!(
        "serving on a {}x{} chip, {} epochs, seed {}\n",
        cfg.chips[0].soc.mesh_width, cfg.chips[0].soc.mesh_height, cfg.epochs, cfg.traffic.seed
    );
    let report = ServeRuntime::new(cfg).run().expect("serving run completes");

    println!("{}\n", report.summary());

    // Fragmentation trajectory, coarsely sampled: watch the free region
    // shatter and heal as tenants come and go.
    println!("tick  live  free  islands  connectivity");
    for s in report.fragmentation.iter().step_by(6) {
        println!(
            "{:>4}  {:>4}  {:>4}  {:>7}  {:>11.3}",
            s.tick, s.live_vnpus, s.free_cores, s.free_components, s.free_connectivity
        );
    }

    assert_eq!(report.leaked_cores, 0, "drained chip must hold no cores");
    assert_eq!(report.leaked_hbm_bytes, 0, "drained chip must hold no HBM");
    println!("\nno leaked cores, no leaked HBM — chip is pristine after drain");
}
