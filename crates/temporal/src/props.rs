//! The property-combinator DSL: small, streaming property machines
//! ([`always`], [`never`](fn@never), [`leads_to_within`], [`monotone`],
//! [`conserved`]) that a checker composes into a rule catalogue.
//!
//! Every combinator is *online*: it observes one [`TraceEvent`] at a
//! time, keeps O(1) state per tracked subject, and appends
//! [`TemporalFinding`]s as violations become provable — no combinator
//! ever buffers the trace. [`Property::finish`] closes the stream:
//! obligations already past their deadline at the final tick are
//! flagged; obligations still inside their window are not (a run may
//! legitimately end with work in flight).

use crate::trace::TraceEvent;
use crate::{Subject, TempRule, TemporalFinding};
use std::collections::{BTreeMap, BTreeSet};

/// A streaming temporal property.
///
/// Implementations must never panic, whatever the trace contains — a
/// corrupted trace is precisely the input a checker exists for.
pub trait Property {
    /// Observes one event, appending any findings it proves.
    fn observe(&mut self, ev: &TraceEvent, out: &mut Vec<TemporalFinding>);
    /// Closes the stream at `final_tick`, flagging obligations whose
    /// deadline already passed.
    fn finish(&mut self, final_tick: u64, out: &mut Vec<TemporalFinding>);
}

/// `always(P)`: every event must satisfy the predicate. The closure
/// returns `Some((subject, detail))` when the event *violates* the
/// property, `None` when it is fine (or irrelevant).
pub struct Always<F> {
    rule: TempRule,
    check: F,
}

/// Builds an [`Always`] property. The closure may carry mutable state
/// (e.g. the last observed context event), which keeps per-event work
/// O(1).
pub fn always<F>(rule: TempRule, check: F) -> Always<F>
where
    F: FnMut(&TraceEvent) -> Option<(Subject, String)>,
{
    Always { rule, check }
}

/// `never(P)` ≡ `always(¬P)`: the closure returns `Some` when the
/// *banned* condition holds. Provided as its own constructor so rule
/// definitions read the way they are specified.
pub fn never<F>(rule: TempRule, banned: F) -> Always<F>
where
    F: FnMut(&TraceEvent) -> Option<(Subject, String)>,
{
    always(rule, banned)
}

impl<F> Property for Always<F>
where
    F: FnMut(&TraceEvent) -> Option<(Subject, String)>,
{
    fn observe(&mut self, ev: &TraceEvent, out: &mut Vec<TemporalFinding>) {
        if let Some((subject, detail)) = (self.check)(ev) {
            out.push(TemporalFinding {
                rule: self.rule,
                first_tick: ev.tick(),
                last_tick: ev.tick(),
                subject,
                detail,
            });
        }
    }

    fn finish(&mut self, _final_tick: u64, _out: &mut Vec<TemporalFinding>) {}
}

/// `trigger leads_to resolve within n`: every subject the trigger
/// names must be named by the resolver within `bound` ticks, else the
/// obligation is overdue and a finding fires (once per obligation).
pub struct LeadsToWithin<T, R> {
    rule: TempRule,
    bound: u64,
    trigger: T,
    resolve: R,
    what: &'static str,
    /// Open obligations: subject → tick it opened.
    pending: BTreeMap<Subject, u64>,
    /// The same obligations ordered by open tick, so expiry pops from
    /// the front — amortized O(1) per event.
    by_open: BTreeSet<(u64, Subject)>,
}

/// Builds a [`LeadsToWithin`] property. `trigger` opens an obligation
/// for the subject it returns (no-op when one is already open);
/// `resolve` closes it. `what` names the obligation in finding details.
pub fn leads_to_within<T, R>(
    rule: TempRule,
    bound: u64,
    what: &'static str,
    trigger: T,
    resolve: R,
) -> LeadsToWithin<T, R>
where
    T: FnMut(&TraceEvent) -> Option<Subject>,
    R: FnMut(&TraceEvent) -> Option<Subject>,
{
    LeadsToWithin {
        rule,
        bound,
        trigger,
        resolve,
        what,
        pending: BTreeMap::new(),
        by_open: BTreeSet::new(),
    }
}

impl<T, R> LeadsToWithin<T, R> {
    /// Flags every obligation strictly older than `bound` ticks at
    /// `now` (an obligation resolving *at* its deadline is on time).
    fn expire(&mut self, now: u64, out: &mut Vec<TemporalFinding>) {
        while let Some(&(opened, subject)) = self.by_open.iter().next() {
            if opened.saturating_add(self.bound) >= now {
                break;
            }
            self.by_open.remove(&(opened, subject));
            self.pending.remove(&subject);
            out.push(TemporalFinding {
                rule: self.rule,
                first_tick: opened,
                last_tick: now,
                subject,
                detail: format!(
                    "{} within {} ticks (opened tick {}, still unresolved at tick {})",
                    self.what, self.bound, opened, now
                ),
            });
        }
    }
}

impl<T, R> Property for LeadsToWithin<T, R>
where
    T: FnMut(&TraceEvent) -> Option<Subject>,
    R: FnMut(&TraceEvent) -> Option<Subject>,
{
    fn observe(&mut self, ev: &TraceEvent, out: &mut Vec<TemporalFinding>) {
        self.expire(ev.tick(), out);
        if let Some(subject) = (self.resolve)(ev) {
            if let Some(opened) = self.pending.remove(&subject) {
                self.by_open.remove(&(opened, subject));
            }
        }
        if let Some(subject) = (self.trigger)(ev) {
            let opened = *self.pending.entry(subject).or_insert_with(|| ev.tick());
            self.by_open.insert((opened, subject));
        }
    }

    fn finish(&mut self, final_tick: u64, out: &mut Vec<TemporalFinding>) {
        self.expire(final_tick, out);
    }
}

/// `monotone(series)`: a per-subject numeric series must never
/// decrease.
pub struct Monotone<F> {
    rule: TempRule,
    series: F,
    what: &'static str,
    last: BTreeMap<Subject, (u64, u64)>,
}

/// Builds a [`Monotone`] property over the `(subject, value)` pairs the
/// closure extracts.
pub fn monotone<F>(rule: TempRule, what: &'static str, series: F) -> Monotone<F>
where
    F: FnMut(&TraceEvent) -> Option<(Subject, u64)>,
{
    Monotone {
        rule,
        series,
        what,
        last: BTreeMap::new(),
    }
}

impl<F> Property for Monotone<F>
where
    F: FnMut(&TraceEvent) -> Option<(Subject, u64)>,
{
    fn observe(&mut self, ev: &TraceEvent, out: &mut Vec<TemporalFinding>) {
        if let Some((subject, value)) = (self.series)(ev) {
            match self.last.get(&subject).copied() {
                Some((prev_tick, prev)) if value < prev => {
                    out.push(TemporalFinding {
                        rule: self.rule,
                        first_tick: prev_tick,
                        last_tick: ev.tick(),
                        subject,
                        detail: format!(
                            "{} regressed: {} at tick {} after {} at tick {}",
                            self.what,
                            value,
                            ev.tick(),
                            prev,
                            prev_tick
                        ),
                    });
                }
                _ => {
                    self.last.insert(subject, (ev.tick(), value));
                }
            }
        }
    }

    fn finish(&mut self, _final_tick: u64, _out: &mut Vec<TemporalFinding>) {}
}

/// `conserved(deltas, claim)`: the per-dimension sum of event deltas
/// must equal the claimed totals when (and each time) a claim event
/// appears.
pub struct Conserved<D, C> {
    rule: TempRule,
    deltas: D,
    claim: C,
    sums: BTreeMap<&'static str, u64>,
    first_tick: Option<u64>,
}

/// Builds a [`Conserved`] property. `deltas` yields the dimensions an
/// event pays into; `claim` yields the claimed totals (typically from a
/// single trailing [`TraceEvent::ReportClaim`]).
pub fn conserved<D, C>(rule: TempRule, deltas: D, claim: C) -> Conserved<D, C>
where
    D: FnMut(&TraceEvent) -> Vec<(&'static str, u64)>,
    C: FnMut(&TraceEvent) -> Option<Vec<(&'static str, u64)>>,
{
    Conserved {
        rule,
        deltas,
        claim,
        sums: BTreeMap::new(),
        first_tick: None,
    }
}

impl<D, C> Property for Conserved<D, C>
where
    D: FnMut(&TraceEvent) -> Vec<(&'static str, u64)>,
    C: FnMut(&TraceEvent) -> Option<Vec<(&'static str, u64)>>,
{
    fn observe(&mut self, ev: &TraceEvent, out: &mut Vec<TemporalFinding>) {
        for (dim, delta) in (self.deltas)(ev) {
            if delta > 0 {
                self.first_tick.get_or_insert(ev.tick());
            }
            let slot = self.sums.entry(dim).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
        if let Some(claimed) = (self.claim)(ev) {
            for (dim, claim) in claimed {
                let paid = self.sums.get(dim).copied().unwrap_or(0);
                if paid != claim {
                    out.push(TemporalFinding {
                        rule: self.rule,
                        first_tick: self.first_tick.unwrap_or(0),
                        last_tick: ev.tick(),
                        subject: Subject::Fleet,
                        detail: format!(
                            "{dim} not conserved: events paid {paid}, report claims {claim}"
                        ),
                    });
                }
            }
        }
    }

    fn finish(&mut self, _final_tick: u64, _out: &mut Vec<TemporalFinding>) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arrival(tick: u64, id: u64) -> TraceEvent {
        TraceEvent::Arrival { tick, id }
    }

    fn admitted(tick: u64, id: u64) -> TraceEvent {
        TraceEvent::Admitted {
            tick,
            id,
            chip: 0,
            vm: 0,
        }
    }

    fn starve_prop() -> impl Property {
        leads_to_within(
            TempRule::Starvation,
            4,
            "request must resolve",
            |ev| match ev {
                TraceEvent::Arrival { id, .. } => Some(Subject::Request(*id)),
                _ => None,
            },
            |ev| match ev {
                TraceEvent::Admitted { id, .. } | TraceEvent::Rejected { id, .. } => {
                    Some(Subject::Request(*id))
                }
                _ => None,
            },
        )
    }

    #[test]
    fn leads_to_within_resolves_on_time() {
        let mut p = starve_prop();
        let mut out = Vec::new();
        p.observe(&arrival(0, 1), &mut out);
        p.observe(&admitted(4, 1), &mut out); // exactly at the deadline
        p.finish(20, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn leads_to_within_flags_overdue_once() {
        let mut p = starve_prop();
        let mut out = Vec::new();
        p.observe(&arrival(0, 1), &mut out);
        p.observe(&arrival(10, 2), &mut out); // tick advance exposes #1
        p.observe(&admitted(11, 2), &mut out);
        p.finish(100, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, TempRule::Starvation);
        assert_eq!(out[0].subject, Subject::Request(1));
        assert_eq!(out[0].first_tick, 0);
    }

    #[test]
    fn leads_to_within_keeps_inflight_work_at_finish() {
        let mut p = starve_prop();
        let mut out = Vec::new();
        p.observe(&arrival(10, 1), &mut out);
        p.finish(12, &mut out); // still inside the window
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn monotone_flags_regressions() {
        let mut p = monotone(TempRule::CacheConservation, "hits", |ev| match ev {
            TraceEvent::CacheSample { hits, .. } => Some((Subject::Fleet, *hits)),
            _ => None,
        });
        let mut out = Vec::new();
        let sample = |tick, hits| TraceEvent::CacheSample {
            tick,
            hits,
            misses: 0,
            lookups: hits,
        };
        p.observe(&sample(0, 5), &mut out);
        p.observe(&sample(1, 7), &mut out);
        p.observe(&sample(2, 6), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].detail.contains("regressed"));
    }

    #[test]
    fn conserved_checks_each_dimension() {
        let mut p = conserved(
            TempRule::CostConservation,
            |ev| match ev {
                TraceEvent::Migrated { cost, .. } => {
                    vec![("migrations", 1), ("paused", cost.paused_cycles)]
                }
                _ => Vec::new(),
            },
            |ev| match ev {
                TraceEvent::ReportClaim { migrations, .. } => {
                    Some(vec![("migrations", *migrations), ("paused", 30)])
                }
                _ => None,
            },
        );
        let mut out = Vec::new();
        let cost = vnpu::plan::ReconfigCost {
            routing_cycles: 0,
            rtt_cycles: 0,
            data_move_bytes: 0,
            paused_cycles: 30,
        };
        p.observe(
            &TraceEvent::Migrated {
                tick: 1,
                chip: 0,
                vm: 0,
                cost,
            },
            &mut out,
        );
        p.observe(
            &TraceEvent::ReportClaim {
                tick: 2,
                migrations: 2, // wrong: only one was paid
                drain_migrations: 0,
                reconfig: cost,
                drain_reconfig: Default::default(),
                recovery_reconfig: Default::default(),
            },
            &mut out,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("migrations not conserved"));
    }
}
