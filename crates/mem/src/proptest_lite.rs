//! A dependency-free, deterministic property-testing harness.
//!
//! The reproduction workspace must build and test with no network access,
//! so the `proptest` dev-dependency the original suite used is replaced
//! by this module: a xorshift64* PRNG, composable [`Strategy`] value
//! generators (integer ranges, tuples, vectors), and a [`check`] runner
//! that minimizes failing inputs by halving (shorter vectors, smaller
//! integers) before reporting them.
//!
//! It lives in `vnpu_mem` — the workspace's leaf crate — so every other
//! crate (and the root meta-crate's `tests/props.rs`) can reach it
//! without dependency cycles.
//!
//! # Example
//!
//! ```
//! use vnpu_mem::proptest_lite::{check, range, vec_of};
//! use vnpu_mem::prop_assert;
//!
//! check("sum_is_monotone", 64, vec_of(range(0u64..100), 0..8), |xs| {
//!     let mut sorted = xs.clone();
//!     sorted.sort_unstable();
//!     prop_assert!(sorted.iter().sum::<u64>() == xs.iter().sum::<u64>());
//!     Ok(())
//! });
//! ```
//!
//! Failures panic with the minimized input, the case number, and the
//! seed, so a run is always reproducible. `VNPU_PROP_CASES` in the
//! environment overrides every suite's case count (e.g. a nightly soak
//! with `VNPU_PROP_CASES=10000`).

use std::fmt::Debug;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The outcome of one property evaluation: `Ok(())` or a failure message.
pub type PropResult = Result<(), String>;

/// Deterministic xorshift64* pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a nonzero-coerced seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// A composable value generator with halving-based shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes strictly "smaller" variants of `v`, most aggressive
    /// first. An empty vector means `v` is fully minimized.
    fn shrink(&self, v: &Self::Value) -> Vec<Self::Value>;
}

/// Strategy for a half-open integer range `lo..hi`.
#[derive(Debug, Clone)]
pub struct RangeStrategy<T> {
    lo: T,
    hi: T,
}

/// Uniform integer in `lo..hi` (half-open; `lo < hi` required).
pub fn range<T: UniformInt>(r: Range<T>) -> RangeStrategy<T> {
    assert!(
        r.start.to_u64() < r.end.to_u64(),
        "range(): empty range {:?}..{:?}",
        r.start.to_u64(),
        r.end.to_u64()
    );
    RangeStrategy {
        lo: r.start,
        hi: r.end,
    }
}

/// Integer types usable with [`range`].
pub trait UniformInt: Copy + Clone + Debug + PartialEq {
    /// Widens to u64 for uniform sampling.
    fn to_u64(self) -> u64;
    /// Narrows from u64 (value is always in the strategy's range).
    fn from_u64(v: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),+) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )+};
}
uniform_int!(u8, u16, u32, u64, usize);

impl<T: UniformInt> Strategy for RangeStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        let (lo, hi) = (self.lo.to_u64(), self.hi.to_u64());
        T::from_u64(lo + rng.below(hi - lo))
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        // Halve the distance to the lower bound.
        let (lo, v) = (self.lo.to_u64(), v.to_u64());
        let mut out = Vec::new();
        if v > lo {
            out.push(T::from_u64(lo));
            let mid = lo + (v - lo) / 2;
            if mid != lo && mid != v {
                out.push(T::from_u64(mid));
            }
            if v - 1 != lo {
                out.push(T::from_u64(v - 1));
            }
        }
        out
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `len`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    min_len: usize,
    max_len: usize,
}

/// A vector of `elem`-generated values with length in `len` (half-open).
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec_of(): empty length range");
    VecStrategy {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let span = (self.max_len - self.min_len) as u64;
        let len = self.min_len + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // 1. Halve the length (keep the prefix), down to min_len.
        if v.len() > self.min_len {
            let half = (v.len() / 2).max(self.min_len);
            if half < v.len() {
                out.push(v[..half].to_vec());
            }
            if v.len() - 1 > half {
                out.push(v[..v.len() - 1].to_vec());
            }
        }
        // 2. Shrink one element at a time.
        for (i, elem) in v.iter().enumerate() {
            for smaller in self.elem.shrink(elem) {
                let mut copy = v.clone();
                copy[i] = smaller;
                out.push(copy);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for smaller in self.$idx.shrink(&v.$idx) {
                        let mut copy = v.clone();
                        copy.$idx = smaller;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Asserts a condition inside a property, failing the case (and
/// triggering shrinking) instead of aborting the whole run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!("[{}:{}] {}", file!(), line!(), format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property; see [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{} ({:?} vs {:?})", format!($($fmt)+), a, b);
    }};
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(FNV_PRIME)
    })
}

/// Maximum shrink steps before reporting the best-so-far counterexample.
const MAX_SHRINK_STEPS: usize = 4096;

fn run_one<T: Clone + Debug>(prop: &dyn Fn(&T) -> PropResult, v: &T) -> PropResult {
    match catch_unwind(AssertUnwindSafe(|| prop(v))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic".to_owned());
            Err(format!("panic: {msg}"))
        }
    }
}

/// Runs `prop` against `cases` values drawn from `strategy`.
///
/// On failure the input is minimized by halving and the runner panics
/// with the smallest failing value, its error, and the reproduction
/// seed. `VNPU_PROP_CASES` overrides `cases` globally.
pub fn check<S, F>(name: &str, cases: u32, strategy: S, prop: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> PropResult,
{
    let cases = std::env::var("VNPU_PROP_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(cases);
    let base = fnv1a(name.as_bytes());
    for case in 0..cases {
        // SplitMix64-style stream separation per case.
        let seed = base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = Rng::new(seed);
        let value = strategy.generate(&mut rng);
        if let Err(first_err) = run_one(&prop, &value) {
            let (minimal, err, steps) = minimize(&strategy, &prop, value, first_err);
            panic!(
                "property '{name}' failed (case {case}/{cases}, seed {seed:#x}, \
                 {steps} shrink steps)\n  minimal input: {minimal:?}\n  error: {err}"
            );
        }
    }
}

/// Greedy halving minimization: repeatedly move to the first shrink
/// candidate that still fails.
fn minimize<S, F>(
    strategy: &S,
    prop: &F,
    mut value: S::Value,
    mut err: String,
    // Returns (minimal value, its error, shrink steps taken).
) -> (S::Value, String, usize)
where
    S: Strategy,
    F: Fn(&S::Value) -> PropResult,
{
    // Silence the global panic hook while probing shrink candidates:
    // each caught panic would otherwise print its full message (and
    // backtrace) up to MAX_SHRINK_STEPS times, burying the final
    // minimal-counterexample report.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in strategy.shrink(&value) {
            steps += 1;
            if let Err(e) = run_one(prop, &candidate) {
                value = candidate;
                err = e;
                continue 'outer;
            }
            if steps >= MAX_SHRINK_STEPS {
                break;
            }
        }
        break; // no candidate fails: fully minimized
    }
    std::panic::set_hook(prev_hook);
    (value, err, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn rng_is_deterministic_and_varied() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 30, "xorshift must not cycle early");
    }

    #[test]
    fn range_respects_bounds() {
        let s = range(10u32..20);
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn vec_respects_length_bounds() {
        let s = vec_of(range(0u64..5), 2..6);
        let mut rng = Rng::new(9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let count = Cell::new(0u32);
        check("always_passes", 100, range(0u32..1000), |_| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 100);
    }

    #[test]
    fn failing_property_minimizes_by_halving() {
        // Fails whenever the vector contains a value >= 50; the minimal
        // counterexample is a single-element vector [50].
        let result = catch_unwind(AssertUnwindSafe(|| {
            check(
                "minimizes",
                200,
                vec_of(range(0u64..1000), 0..12),
                |xs: &Vec<u64>| {
                    if xs.iter().any(|&x| x >= 50) {
                        Err("too big".into())
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let msg = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("panic message");
        assert!(msg.contains("minimal input: [50]"), "got: {msg}");
    }

    #[test]
    fn panicking_property_is_caught_and_reported() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            check("panics", 50, range(0u32..10), |&v| {
                assert!(v < 100, "inner panic {v}");
                if v > 5 {
                    panic!("boom at {v}");
                }
                Ok(())
            });
        }));
        let msg = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("panic message");
        assert!(msg.contains("boom"), "got: {msg}");
        // Shrinking drove the value down to the smallest failing one.
        assert!(msg.contains("minimal input: 6"), "got: {msg}");
    }

    #[test]
    fn tuples_generate_and_shrink_componentwise() {
        let s = (range(0u32..10), range(5u64..50), range(0usize..3));
        let mut rng = Rng::new(1234);
        let v = s.generate(&mut rng);
        assert!(v.0 < 10 && (5..50).contains(&v.1) && v.2 < 3);
        let shrunk = s.shrink(&(9u32, 49u64, 2usize));
        assert!(!shrunk.is_empty());
        for (a, b, c) in shrunk {
            assert!(a <= 9 && b <= 49 && c <= 2);
            assert!((a, b, c) != (9, 49, 2), "shrinks must differ");
        }
    }

    #[test]
    fn prop_assert_macros_produce_errors_not_panics() {
        fn inner(x: u32) -> PropResult {
            prop_assert!(x != 3, "x was {}", x);
            prop_assert_eq!(x % 2, 0);
            Ok(())
        }
        assert!(inner(2).is_ok());
        assert!(inner(3).unwrap_err().contains("x was 3"));
        assert!(inner(5).unwrap_err().contains("x % 2"));
    }
}
