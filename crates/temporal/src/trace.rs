//! The structured trace: one [`TraceEvent`] per state transition of a
//! serving run, emitted by the serve loop as they happen.
//!
//! The trace is the single source of truth for a run's accounting: the
//! serve report folds its counters from these events via
//! [`crate::TraceFold`], and the temporal checker
//! ([`crate::TemporalChecker`]) evaluates its properties over the same
//! stream — so a counter and the property guarding it can never drift
//! apart (the "lossy counters" failure mode this crate replaces).
//!
//! Every variant carries the tick it happened on; [`TraceEvent::tick`]
//! gives uniform access. Events within one tick appear in phase order
//! (departures → recovery → arrivals → admission → drain → defrag →
//! execution), which the checker relies on only monotonically — a
//! corrupted trace with out-of-order ticks is handled without panicking.

use vnpu::plan::ReconfigCost;

/// How a fault-affected tenant was recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryKind {
    /// Remapped in place around the dead resource (remap-under-pin).
    Remapped,
    /// Emergency cross-chip re-placement.
    Replaced,
    /// The fault was repaired under the tenant before any recovery
    /// action landed — recovered without moving.
    SelfHealed,
}

/// One state transition of a serving run.
///
/// `chip` fields are cluster chip indices; `vm` fields are the raw
/// [`vnpu::VmId`] value on that chip; `id` fields are the raw
/// [`vnpu::admission::RequestId`] value of a queued request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A request arrived and was submitted to the admission queue.
    Arrival {
        /// Tick the request was submitted.
        tick: u64,
        /// The request's admission id.
        id: u64,
    },
    /// The tick's admission pass is about to run. `largest_island` is
    /// the largest connected free-core component over all *schedulable*
    /// chips at pass start — the sound upper bound for every
    /// [`TraceEvent::HintEmitted`] this tick (free regions only shrink
    /// during a pass; departures and recovery ran earlier).
    AdmissionStart {
        /// Tick of the pass.
        tick: u64,
        /// Largest schedulable free island at pass start (cores).
        largest_island: u32,
    },
    /// A queued request was placed.
    Admitted {
        /// Tick of the decision.
        tick: u64,
        /// The request's admission id.
        id: u64,
        /// Chip the vNPU landed on.
        chip: usize,
        /// VM id on that chip.
        vm: u32,
    },
    /// A queued request was terminally rejected.
    Rejected {
        /// Tick of the decision.
        tick: u64,
        /// The request's admission id.
        id: u64,
    },
    /// A terminal rejection carried a fit hint ("this shape *would*
    /// have placed").
    HintEmitted {
        /// Tick the hint was probed.
        tick: u64,
        /// The rejected request's admission id.
        id: u64,
        /// Cores of the hinted shape.
        cores: u32,
    },
    /// A tenant left the fleet (lifetime expiry, end-of-run drain, or
    /// retired as lost).
    Departed {
        /// Tick of the teardown.
        tick: u64,
        /// Chip the tenant lived on.
        chip: usize,
        /// Its VM id.
        vm: u32,
    },
    /// The defragmentation phase committed one live migration.
    Migrated {
        /// Tick of the commit.
        tick: u64,
        /// Chip the migration ran on.
        chip: usize,
        /// The migrated VM.
        vm: u32,
        /// The paid reconfiguration cost.
        cost: ReconfigCost,
    },
    /// A committed defrag pass's booked fragmentation recovery.
    DefragRecovered {
        /// Tick of the pass.
        tick: u64,
        /// Chip the pass compacted.
        chip: usize,
        /// Growth of the largest free window (cores; may be 0).
        window_cores: u64,
        /// Reduction of buddy external fragmentation (clamped at 0).
        hbm_frag_delta: f64,
    },
    /// The maintenance phase evacuated one tenant off a draining chip.
    DrainMove {
        /// Tick of the move.
        tick: u64,
        /// Source (draining) chip.
        from_chip: usize,
        /// VM id on the source chip.
        from_vm: u32,
        /// Destination chip.
        to_chip: usize,
        /// VM id on the destination chip.
        to_vm: u32,
        /// The paid reconfiguration cost.
        cost: ReconfigCost,
    },
    /// One budgeted drain step's progress accounting for one draining
    /// chip (emitted every tick the chip drains, even when nothing
    /// moved).
    DrainStep {
        /// Tick of the step.
        tick: u64,
        /// The draining chip.
        chip: usize,
        /// Tenants moved this step.
        moved: u64,
        /// Proposals skipped (budget-staled or unaffordable) — an
        /// *explicit* stall, distinct from a silent one.
        skipped: u64,
        /// Tenants still resident after the step.
        remaining: u64,
    },
    /// A scheduled hardware-fault onset landed (core or link).
    FaultOnset {
        /// Tick of the onset.
        tick: u64,
        /// The wounded chip.
        chip: usize,
    },
    /// A scheduled hardware repair landed.
    FaultRepair {
        /// Tick of the repair.
        tick: u64,
        /// The repaired chip.
        chip: usize,
    },
    /// A live tenant was detected as fault-affected and joined the
    /// pending-recovery queue. Opens the TEMP-FAULT obligation: the
    /// tenant must be recovered, lost, or departed within the recovery
    /// deadline.
    RecoveryDetected {
        /// Tick the outage was detected.
        tick: u64,
        /// The affected tenant's chip.
        chip: usize,
        /// Its VM id.
        vm: u32,
    },
    /// A recovery action paid reconfiguration cost (charged even when a
    /// committed remap fails to escape a link fault and the tenant
    /// stays pending).
    RecoveryPaid {
        /// Tick the cost was paid.
        tick: u64,
        /// The chip the action ran on.
        chip: usize,
        /// The paid cost.
        cost: ReconfigCost,
    },
    /// A pending tenant was recovered. `chip`/`vm` name the tenant's
    /// identity *at detection time* (an emergency re-placement gives it
    /// a new identity afterwards).
    Recovered {
        /// Tick of the recovery.
        tick: u64,
        /// The tenant's chip at detection time.
        chip: usize,
        /// Its VM id at detection time.
        vm: u32,
        /// How it recovered.
        kind: RecoveryKind,
        /// Tick its outage was detected (the obligation's start).
        onset_tick: u64,
    },
    /// A pending tenant was declared lost at the recovery deadline and
    /// retired (a matching [`TraceEvent::Departed`] follows).
    TenantLost {
        /// Tick of the loss declaration.
        tick: u64,
        /// The tenant's chip.
        chip: usize,
        /// Its VM id.
        vm: u32,
        /// Tick its outage was detected.
        onset_tick: u64,
    },
    /// One chip executed a machine epoch.
    Executed {
        /// Tick of the epoch.
        tick: u64,
        /// The chip.
        chip: usize,
        /// The epoch's makespan in machine cycles.
        machine_cycles: u64,
    },
    /// One chip served this tick in degraded mode (a core or link fault
    /// active at the end of the recovery phase).
    Degraded {
        /// The degraded tick.
        tick: u64,
        /// The degraded chip.
        chip: usize,
    },
    /// Cumulative mapping-cache counters at the end of a tick.
    /// `lookups` is carried separately from `hits + misses` so a
    /// corrupted trace is caught by conservation instead of being
    /// vacuously consistent.
    CacheSample {
        /// The sampled tick.
        tick: u64,
        /// Cumulative cache hits.
        hits: u64,
        /// Cumulative cache misses.
        misses: u64,
        /// Cumulative lookups (must equal hits + misses).
        lookups: u64,
    },
    /// The fleet reached quiescence (end-of-run drain): every tenant
    /// retired, so the free state must be fully coalesced and leak-free.
    Quiesced {
        /// Tick of the quiescence point.
        tick: u64,
        /// Live vNPUs across the fleet (0 at a true quiescence).
        live_vnpus: u64,
        /// Cores still marked used across chips.
        leaked_cores: u64,
        /// HBM bytes still allocated across chips.
        leaked_hbm_bytes: u64,
        /// Cores masked dead by the fault layer (dead hardware may
        /// legitimately split the free region).
        faulted_cores: u64,
        /// Connected free-region components summed over chips.
        free_components: u64,
        /// Chips in the fleet (an idle healthy chip is one component).
        chips: u64,
    },
    /// The run's claimed totals, appended after the last real event so
    /// the offline checker can verify conservation: Σ per-event paid
    /// costs must equal the claim, per dimension.
    ReportClaim {
        /// Tick the claim was taken.
        tick: u64,
        /// Claimed defrag migrations.
        migrations: u64,
        /// Claimed drain evacuations.
        drain_migrations: u64,
        /// Claimed summed defrag reconfiguration cost.
        reconfig: ReconfigCost,
        /// Claimed summed drain reconfiguration cost.
        drain_reconfig: ReconfigCost,
        /// Claimed summed recovery reconfiguration cost.
        recovery_reconfig: ReconfigCost,
    },
}

impl TraceEvent {
    /// The tick this event happened on.
    pub fn tick(&self) -> u64 {
        match *self {
            TraceEvent::Arrival { tick, .. }
            | TraceEvent::AdmissionStart { tick, .. }
            | TraceEvent::Admitted { tick, .. }
            | TraceEvent::Rejected { tick, .. }
            | TraceEvent::HintEmitted { tick, .. }
            | TraceEvent::Departed { tick, .. }
            | TraceEvent::Migrated { tick, .. }
            | TraceEvent::DefragRecovered { tick, .. }
            | TraceEvent::DrainMove { tick, .. }
            | TraceEvent::DrainStep { tick, .. }
            | TraceEvent::FaultOnset { tick, .. }
            | TraceEvent::FaultRepair { tick, .. }
            | TraceEvent::RecoveryDetected { tick, .. }
            | TraceEvent::RecoveryPaid { tick, .. }
            | TraceEvent::Recovered { tick, .. }
            | TraceEvent::TenantLost { tick, .. }
            | TraceEvent::Executed { tick, .. }
            | TraceEvent::Degraded { tick, .. }
            | TraceEvent::CacheSample { tick, .. }
            | TraceEvent::Quiesced { tick, .. }
            | TraceEvent::ReportClaim { tick, .. } => tick,
        }
    }
}
