//! Mutation testing for the static plan linter, on the in-repo
//! property harness (`vnpu_mem::proptest_lite`): start from a plan the
//! linter certifies clean, corrupt one field of its [`PlanView`] at
//! random — duplicate an acquired core, inflate a declared cost,
//! retarget a draining chip — and assert the linter flags **every**
//! mutant while continuing to pass the pristine original. The last two
//! tests are fleet-level regressions: the serving example's cluster and
//! a hand-churned chip both audit clean end to end.

use std::sync::Arc;
use vnpu::cluster::{Cluster, LeastLoaded};
use vnpu::drain::ChipSchedState;
use vnpu::plan::{PlanOp, ReconfigBudget};
use vnpu::{Hypervisor, VnpuRequest};
use vnpu_audit::{audit_cluster, lint_view, OpKindView, PlanView};
use vnpu_mem::proptest_lite::{check, range};
use vnpu_mem::{prop_assert, prop_assert_eq};
use vnpu_serve::{ServeConfig, ServeRuntime};
use vnpu_sim::SocConfig;

/// A 6×6 chip with two resident tenants and a clean three-op plan
/// (destroy one tenant, create two more), plus the resolved view.
fn chip_with_plan() -> (Hypervisor, PlanView) {
    let mut hv = Hypervisor::new(SocConfig::sim());
    let doomed = hv.create_vnpu(VnpuRequest::mesh(2, 2)).expect("tenant a");
    hv.create_vnpu(VnpuRequest::mesh(2, 3)).expect("tenant b");
    let txn = hv
        .plan(&[
            PlanOp::Destroy(doomed),
            PlanOp::Create(VnpuRequest::mesh(3, 2)),
            PlanOp::Create(VnpuRequest::cores(3)),
        ])
        .expect("plannable churn");
    let view = PlanView::resolve(&hv, &txn);
    (hv, view)
}

fn rule_ids(findings: &[vnpu_audit::AuditFinding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule.id()).collect()
}

/// Every duplicated-core mutant is flagged as double-booked; the
/// original plan keeps linting clean.
#[test]
fn mutated_duplicate_core_is_always_flagged() {
    check(
        "mutated_duplicate_core_is_always_flagged",
        64,
        (range(0u64..64), range(0u64..64)),
        |&(op_pick, core_pick)| {
            let (hv, view) = chip_with_plan();
            prop_assert!(
                lint_view(&hv, &view, ChipSchedState::Schedulable, None).is_empty(),
                "the pristine plan must lint clean"
            );
            // Pick any op that acquires cores and duplicate one of them.
            let candidates: Vec<usize> = view
                .ops
                .iter()
                .enumerate()
                .filter(|(_, op)| !op.acquires.is_empty())
                .map(|(i, _)| i)
                .collect();
            prop_assert!(!candidates.is_empty(), "the plan has creates");
            let oi = candidates[(op_pick as usize) % candidates.len()];
            let mut mutant = view.clone();
            let dup = {
                let acquires = &mutant.ops[oi].acquires;
                acquires[(core_pick as usize) % acquires.len()]
            };
            mutant.ops[oi].acquires.push(dup);
            let findings = lint_view(&hv, &mutant, ChipSchedState::Schedulable, None);
            prop_assert!(
                rule_ids(&findings).contains(&"PLAN-CORE"),
                "duplicating core {} in op {} must be double-booked, got {:?}",
                dup,
                oi,
                findings
            );
            Ok(())
        },
    );
}

/// Every cost-inflation mutant breaks the declared cost sum; the
/// original plan keeps linting clean.
#[test]
fn mutated_cost_inflation_is_always_flagged() {
    check(
        "mutated_cost_inflation_is_always_flagged",
        64,
        (range(0u64..64), range(1u64..1 << 40), range(0u64..4)),
        |&(op_pick, delta, field)| {
            let (hv, view) = chip_with_plan();
            prop_assert!(
                lint_view(&hv, &view, ChipSchedState::Schedulable, None).is_empty(),
                "the pristine plan must lint clean"
            );
            let mut mutant = view.clone();
            let oi = (op_pick as usize) % mutant.ops.len();
            let cost = &mut mutant.ops[oi].cost;
            match field {
                0 => cost.routing_cycles = cost.routing_cycles.wrapping_add(delta),
                1 => cost.rtt_cycles = cost.rtt_cycles.wrapping_add(delta),
                2 => cost.data_move_bytes = cost.data_move_bytes.wrapping_add(delta),
                _ => cost.paused_cycles = cost.paused_cycles.wrapping_add(delta),
            }
            let findings = lint_view(&hv, &mutant, ChipSchedState::Schedulable, None);
            prop_assert!(
                rule_ids(&findings).contains(&"PLAN-COST"),
                "inflating cost field {} of op {} by {} must break the sum, got {:?}",
                field,
                oi,
                delta,
                findings
            );
            Ok(())
        },
    );
}

/// A plan carrying creates is flagged once per placement-adding op when
/// the chip is draining or drained — and not at all when schedulable.
#[test]
fn mutated_draining_retarget_is_always_flagged() {
    check(
        "mutated_draining_retarget_is_always_flagged",
        32,
        range(0u64..2),
        |&drained| {
            let (hv, view) = chip_with_plan();
            let sched = if drained == 0 {
                ChipSchedState::Draining
            } else {
                ChipSchedState::Drained
            };
            let findings = lint_view(&hv, &view, sched, None);
            let placements = view
                .ops
                .iter()
                .filter(|op| matches!(op.kind, OpKindView::Create | OpKindView::Remap))
                .count();
            prop_assert!(placements > 0, "the plan adds placements");
            prop_assert_eq!(
                rule_ids(&findings)
                    .iter()
                    .filter(|id| **id == "PLAN-DRAIN")
                    .count(),
                placements,
                "every placement-adding op targeting a {} chip is a finding",
                sched
            );
            prop_assert!(
                lint_view(&hv, &view, ChipSchedState::Schedulable, None).is_empty(),
                "the same plan is clean on a schedulable chip"
            );
            Ok(())
        },
    );
}

/// The linter never panics, whatever garbage the view carries: random
/// cores (in and out of the mesh), random byte counts, random costs and
/// a nonsense budget all just produce findings.
#[test]
fn garbage_views_never_panic_the_linter() {
    check(
        "garbage_views_never_panic_the_linter",
        64,
        (
            range(0u64..1 << 48),
            range(0u64..200),
            range(0u64..1 << 48),
            range(0u64..64),
        ),
        |&(fingerprint, core, bytes, cost)| {
            let (hv, mut view) = chip_with_plan();
            view.generation = fingerprint.wrapping_mul(31);
            view.snapshot.free_fingerprint = fingerprint;
            view.snapshot.free_count = (core as usize).wrapping_mul(7);
            view.snapshot.hbm_free_bytes = bytes;
            view.declared_total.paused_cycles = cost;
            for op in &mut view.ops {
                op.acquires.push(core as u32);
                op.releases.push(core.wrapping_add(1) as u32);
                op.alloc_bytes = op.alloc_bytes.wrapping_add(bytes);
            }
            let tight = ReconfigBudget {
                max_migrations: (cost % 3) as usize,
                max_paused_cycles: cost,
                max_data_move_bytes: bytes,
            };
            let findings = lint_view(&hv, &view, ChipSchedState::Draining, Some(&tight));
            prop_assert!(
                !findings.is_empty(),
                "a thoroughly corrupted view cannot lint clean"
            );
            Ok(())
        },
    );
}

/// Fleet regression: the cluster-serving example's configuration —
/// heterogeneous chips, mid-run policy swap and all — runs with the
/// per-tick auditor enabled and accumulates zero findings.
#[test]
fn serving_example_fleet_audits_clean() {
    let small = SocConfig {
        mesh_width: 4,
        mesh_height: 4,
        ..SocConfig::sim()
    };
    let mut cfg = ServeConfig::cluster(2026, 40, vec![SocConfig::sim(), small]);
    cfg.traffic.mean_interarrival_ticks = 1;
    cfg.traffic.mean_lifetime_epochs = 8;
    cfg.placement = Arc::new(LeastLoaded);
    cfg.audit = true;
    let mut rt = ServeRuntime::new(cfg);
    for _ in 0..40 {
        let ev = rt.step().expect("tick completes");
        assert_eq!(ev.audit_findings, 0, "every tick audits clean");
    }
    rt.drain().expect("drain completes");
    let report = rt.report();
    assert_eq!(report.audit_findings, 0);
    assert!(rt.audit_findings().is_empty());
    // Belt and braces: one more sweep over the drained fleet directly.
    assert!(audit_cluster(rt.cluster()).is_empty());
}

/// Fleet regression: a hand-churned cluster (creates, destroys, a full
/// drain cycle) audits clean at every waypoint.
#[test]
fn hand_churned_cluster_audits_clean_at_every_waypoint() {
    let mut cluster = Cluster::new(vec![SocConfig::sim(), SocConfig::sim()]);
    let mut live = Vec::new();
    for i in 0..6 {
        let id = cluster
            .create_on(i % 2, VnpuRequest::mesh(2, 2).mem_bytes(16 << 20))
            .expect("create");
        live.push(id);
    }
    assert!(audit_cluster(&cluster).is_empty(), "loaded fleet is clean");
    for id in live.drain(..3) {
        cluster.destroy(id).expect("destroy");
    }
    assert!(
        audit_cluster(&cluster).is_empty(),
        "post-churn fleet is clean"
    );
    cluster.begin_drain(0).expect("begin drain");
    assert!(
        audit_cluster(&cluster).is_empty(),
        "draining fleet is clean"
    );
}
