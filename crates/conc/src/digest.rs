//! The per-phase determinism digest chain.
//!
//! The serve loop (behind `ServeConfig`'s [`crate::ConcMode`]) hashes
//! the *result* of each tick phase — admission merge, drain apply,
//! defrag apply, execution fold — per tick and per chip into a
//! [`DigestChain`]. Two runs that must agree (different worker counts,
//! different schedule seeds) then compare chains entry-by-entry:
//! [`compare_chains`] pinpoints the **first** divergent
//! `(tick, phase, chip)` instead of leaving a whole-report diff to
//! bisect, and reports it as a `CONC-DET` [`ConcFinding`].
//!
//! Hashing is a self-contained splitmix64 fold — stable across runs,
//! platforms and `std` versions, unlike `DefaultHasher`'s unspecified
//! algorithm.

use std::fmt;

use crate::{ConcFinding, ConcRule};

/// splitmix64's finalizer: a cheap, well-mixed 64-bit permutation.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// An order-sensitive 64-bit fold: `write_u64` values in, one mixed
/// word out. Order sensitivity is the point — a merge that folds in
/// completion order instead of nomination order produces a different
/// digest.
#[derive(Debug, Clone, Copy)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest {
            state: 0xD1E5_7A11_u64,
        }
    }
}

impl Digest {
    /// A fresh digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one word in (order-sensitive).
    pub fn write_u64(&mut self, value: u64) {
        self.state = mix64(self.state ^ value).rotate_left(17);
    }

    /// Folds a byte string in (length-prefixed, so `"ab","c"` and
    /// `"a","bc"` differ).
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(word));
        }
    }

    /// The folded value.
    pub fn finish(&self) -> u64 {
        mix64(self.state)
    }
}

/// Which tick phase a digest entry covers. Ordered as the serve loop
/// runs them within a tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Fault-recovery fold: onsets and repairs applied, affected tenants
    /// detected, and each one's recovery resolution (remapped, replaced
    /// cross-chip, pending or lost) per chip.
    Recovery,
    /// Admission-wave merge: which requests landed where, in nomination
    /// order.
    Admission,
    /// Drain-step apply: planned moves, skips and remaining counts per
    /// draining chip.
    Drain,
    /// Defrag receipt apply: created / migrated / destroyed VMs and
    /// their costs.
    Defrag,
    /// Per-chip execution fold: the makespan each chip reported.
    Execution,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Recovery => "recovery",
            Phase::Admission => "admission",
            Phase::Drain => "drain",
            Phase::Defrag => "defrag",
            Phase::Execution => "execution",
        })
    }
}

/// One recorded phase digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DigestEntry {
    /// Serve tick the phase ran in.
    pub tick: u64,
    /// Which phase.
    pub phase: Phase,
    /// The chip the digest covers, or `None` for a fleet-level phase
    /// (the admission merge spans chips).
    pub chip: Option<u32>,
    /// The folded phase result.
    pub digest: u64,
}

/// The ordered log of phase digests for one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DigestChain {
    /// Entries in recording order (tick-major, phase order within a
    /// tick, chip order within a phase).
    pub entries: Vec<DigestEntry>,
}

impl DigestChain {
    /// A fresh, empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one phase digest.
    pub fn record(&mut self, tick: u64, phase: Phase, chip: Option<u32>, digest: u64) {
        self.entries.push(DigestEntry {
            tick,
            phase,
            chip,
            digest,
        });
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn divergence_finding(
    label_a: &str,
    label_b: &str,
    a: &DigestEntry,
    b: &DigestEntry,
) -> ConcFinding {
    let finding = if a.tick == b.tick && a.phase == b.phase && a.chip == b.chip {
        ConcFinding::error(
            ConcRule::Determinism,
            format!(
                "runs '{label_a}' and '{label_b}' diverge first at tick {} phase {}{}: digest {:#018x} vs {:#018x}",
                a.tick,
                a.phase,
                match a.chip {
                    Some(c) => format!(" chip {c}"),
                    None => String::from(" (fleet)"),
                },
                a.digest,
                b.digest,
            ),
        )
    } else {
        ConcFinding::error(
            ConcRule::Determinism,
            format!(
                "runs '{label_a}' and '{label_b}' record different phase sequences: first mismatch \
                 (tick {} {}{:?}) vs (tick {} {}{:?})",
                a.tick, a.phase, a.chip, b.tick, b.phase, b.chip,
            ),
        )
    };
    match (a.chip, b.chip) {
        (Some(c), Some(d)) if c == d => finding.on_chip(c as usize),
        _ => finding,
    }
}

/// Compares two chains that must be identical; returns a `CONC-DET`
/// finding naming the first divergent `(tick, phase, chip)`, or `None`
/// when they agree.
pub fn compare_chains(
    label_a: &str,
    chain_a: &DigestChain,
    label_b: &str,
    chain_b: &DigestChain,
) -> Option<ConcFinding> {
    for (a, b) in chain_a.entries.iter().zip(&chain_b.entries) {
        if a != b {
            return Some(divergence_finding(label_a, label_b, a, b));
        }
    }
    if chain_a.len() != chain_b.len() {
        return Some(ConcFinding::error(
            ConcRule::Determinism,
            format!(
                "runs '{label_a}' and '{label_b}' recorded different phase counts: {} vs {} \
                 (shorter run is a prefix of the longer)",
                chain_a.len(),
                chain_b.len(),
            ),
        ));
    }
    None
}

/// Compares every labelled chain against the first; one finding per
/// diverging run. Empty when all runs agree.
pub fn compare_all(chains: &[(String, DigestChain)]) -> Vec<ConcFinding> {
    let Some((base_label, base)) = chains.first() else {
        return Vec::new();
    };
    chains
        .iter()
        .skip(1)
        .filter_map(|(label, chain)| compare_chains(base_label, base, label, chain))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Digest::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Digest::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_fold_is_length_prefixed() {
        let mut a = Digest::new();
        a.write_bytes(b"ab");
        a.write_bytes(b"c");
        let mut b = Digest::new();
        b.write_bytes(b"a");
        b.write_bytes(b"bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn identical_chains_compare_clean() {
        let mut chain = DigestChain::new();
        chain.record(0, Phase::Admission, None, 7);
        chain.record(0, Phase::Execution, Some(0), 9);
        assert!(compare_chains("a", &chain, "b", &chain.clone()).is_none());
        assert!(compare_all(&[("a".into(), chain.clone()), ("b".into(), chain)]).is_empty());
    }

    #[test]
    fn first_divergent_entry_is_named() {
        let mut a = DigestChain::new();
        a.record(0, Phase::Admission, None, 7);
        a.record(1, Phase::Execution, Some(2), 9);
        a.record(2, Phase::Execution, Some(2), 11);
        let mut b = a.clone();
        b.entries[1].digest = 10;
        b.entries[2].digest = 12;
        let finding = compare_chains("w1", &a, "w4", &b).expect("diverges");
        assert_eq!(finding.rule, ConcRule::Determinism);
        assert_eq!(finding.chip, Some(2));
        assert!(finding.detail.contains("tick 1"), "{}", finding.detail);
        assert!(finding.detail.contains("execution"), "{}", finding.detail);
    }

    #[test]
    fn length_mismatch_is_a_finding() {
        let mut a = DigestChain::new();
        a.record(0, Phase::Admission, None, 7);
        let b = DigestChain::new();
        let finding = compare_chains("a", &a, "b", &b).expect("length mismatch");
        assert!(
            finding.detail.contains("phase counts"),
            "{}",
            finding.detail
        );
    }
}
