//! The machine: cores + NoC + HBM + controller under one deterministic
//! event loop.
//!
//! Programs are bound to physical cores per *tenant* (a virtual NPU, or
//! the single bare-metal tenant). More than one program may be bound to
//! the same physical core — that is the MIG baseline's time-division
//! multiplexing (§6.3.2): compute kernels of co-resident threads serialize
//! on the tile's compute unit with a context-switch penalty, while their
//! DMA and NoC activity interleaves freely (which is why TDM can hide the
//! imbalance of ResNet-style stages by pairing a hot virtual core with a
//! cold one).
//!
//! The machine is layered into *persistent chip state* (this module:
//! configuration, per-core hardware, NoC links, HBM channels, the tenant
//! registry) and *epoch state* ([`crate::epoch`]: thread bindings, the
//! event queue, flows/flags/barriers, traces). One machine can run many
//! successive workload batches — [`Machine::run_epoch`] executes the
//! current batch and resets only the epoch layer, so a serving runtime
//! interleaves tenant arrivals with execution without ever rebuilding the
//! chip model.

use crate::config::SocConfig;
use crate::epoch::{EpochState, EpochSummary, Phase, ThreadState};
use crate::hbm::Hbm;
use crate::isa::{Instr, Program};
use crate::noc::{DorRouter, Noc, NocRouter};
use crate::stats::Report;
use crate::{Result, SimError};
use std::collections::HashMap;
use vnpu_mem::counter::AccessCounter;
use vnpu_mem::translate::PhysicalTranslator;
use vnpu_mem::Translate;

/// Identifier of a tenant (one virtual NPU instance, or bare metal).
pub type TenantId = u32;

/// Per-core virtualization services: how this core resolves NoC
/// destinations and translates DMA addresses.
///
/// Bare-metal defaults are provided by [`CoreServices::bare_metal`]; the
/// `vnpu` crate constructs vRouter/vChunk-backed services.
pub struct CoreServices {
    /// NoC destination resolution and path selection.
    pub router: Box<dyn NocRouter>,
    /// DMA address translation (physical / page TLB / range TLB).
    pub translator: Box<dyn Translate + Send>,
    /// Optional per-virtual-NPU memory-bandwidth limiter.
    pub limiter: Option<AccessCounter>,
}

impl CoreServices {
    /// Identity routing (DOR on physical IDs) and identity translation.
    pub fn bare_metal(cfg: &SocConfig) -> Self {
        CoreServices {
            router: Box::new(DorRouter::new(cfg)),
            translator: Box::new(PhysicalTranslator::new()),
            limiter: None,
        }
    }
}

impl std::fmt::Debug for CoreServices {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreServices")
            .field("router", &self.router.name())
            .field("translator", &self.translator.name())
            .field("limited", &self.limiter.is_some())
            .finish()
    }
}

/// One physical core's state. The hybrid-core scalings survive across
/// epochs (they model hardware); everything else is per-epoch occupancy
/// and is cleared by [`Machine::finish_epoch`].
#[derive(Debug)]
pub(crate) struct CoreState {
    pub(crate) compute_busy_until: u64,
    /// The send/receive engine is separate hardware: packets stream out
    /// asynchronously while the core computes (§6.2.3's "fully
    /// overlapped" broadcast). Outgoing packets serialize here.
    pub(crate) send_engine_busy_until: u64,
    pub(crate) last_owner: Option<usize>,
    pub(crate) thread_count: u32,
    pub(crate) footprint: u64,
    /// Hybrid-core scaling (§7): matrix-kernel cycles are multiplied by
    /// `matrix_scale`/100 and vector kernels by `vector_scale`/100. 100 =
    /// a standard core.
    pub(crate) matrix_scale: u32,
    pub(crate) vector_scale: u32,
}

impl Default for CoreState {
    fn default() -> Self {
        CoreState {
            compute_busy_until: 0,
            send_engine_busy_until: 0,
            last_owner: None,
            thread_count: 0,
            footprint: 0,
            matrix_scale: 100,
            vector_scale: 100,
        }
    }
}

impl CoreState {
    /// Clears per-epoch occupancy, keeping the hardware scalings.
    fn reset_epoch(&mut self) {
        self.compute_busy_until = 0;
        self.send_engine_busy_until = 0;
        self.last_owner = None;
        self.thread_count = 0;
        self.footprint = 0;
    }
}

/// Minimum number of finished-epoch summaries [`Machine`] retains; see
/// [`Machine::epoch_history`]. Bounded so a serving runtime driving one
/// machine through millions of epochs does not accumulate memory.
pub const EPOCH_HISTORY_CAP: usize = 4_096;

/// The simulated NPU machine.
pub struct Machine {
    cfg: SocConfig,
    cores: Vec<CoreState>,
    pub(crate) noc: Noc,
    pub(crate) hbm: Hbm,
    pub(crate) tenant_names: HashMap<TenantId, String>,
    next_tenant: TenantId,
    pub(crate) mem_trace_enabled: bool,
    pub(crate) recv_ack: u64,
    /// Per-thread virtualization services (parallel to the epoch's thread
    /// list).
    pub(crate) services: Vec<CoreServices>,
    pub(crate) epoch: EpochState,
    epoch_index: u64,
    epoch_history: Vec<EpochSummary>,
    /// Pause debt from epoch-boundary live migrations
    /// ([`Machine::migrate_tenant`]): every thread the tenant binds in the
    /// *next* epoch starts this many cycles late (its cores were being
    /// drained, moved and re-deployed). Cleared by
    /// [`Machine::finish_epoch`].
    pending_migration_pause: HashMap<TenantId, u64>,
    migrations: u64,
    migration_pause_cycles: u64,
    /// Hardware-reconfiguration fingerprint, evolved as a hash chain by
    /// [`Machine::set_core_scales`] and the fault-injection surface
    /// ([`Machine::fault_core`] and friends): virtualization layers fold
    /// this into their mapping-cache keys so strategies costed against
    /// the old hardware expire on reconfig *and* on fault onset/repair. A
    /// hash chain (not a bare counter) so two identically-modeled chips
    /// reconfigured *differently* can never collide on "same number of
    /// reconfigs" — only chips that applied the same reconfig sequence
    /// (and therefore have the same hardware state) share a value. 0 =
    /// pristine.
    topology_generation: u64,
    /// Faulted physical cores (injected hardware failures). Faults model
    /// hardware, so they survive epoch resets until explicitly repaired;
    /// binding a program onto a faulted core errors with
    /// [`SimError::CoreFaulted`].
    faulted_cores: Vec<bool>,
    faults_injected: u64,
    faults_repaired: u64,
}

/// Extra per-hop NoC router cycles a chip pays while it has any active
/// fault (core or link): the routers fall back to slower fault-tolerant
/// arbitration until every fault is repaired. Charged automatically by
/// [`Machine::fault_core`] / [`Machine::fault_link`] and lifted by the
/// matching repairs.
pub const DEGRADED_ROUTER_PENALTY: u64 = 4;

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("cores", &self.cores.len())
            .field("threads", &self.epoch.threads.len())
            .field("epoch", &self.epoch_index)
            .field("now", &self.epoch.now)
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Creates a machine for the given SoC configuration.
    pub fn new(cfg: SocConfig) -> Self {
        let n = cfg.core_count() as usize;
        Machine {
            noc: Noc::new(&cfg),
            hbm: Hbm::new(&cfg),
            cores: (0..n).map(|_| CoreState::default()).collect(),
            tenant_names: HashMap::new(),
            next_tenant: 0,
            mem_trace_enabled: false,
            recv_ack: 2,
            services: Vec::new(),
            epoch: EpochState::new(n),
            epoch_index: 0,
            epoch_history: Vec::new(),
            pending_migration_pause: HashMap::new(),
            migrations: 0,
            migration_pause_cycles: 0,
            topology_generation: 0,
            faulted_cores: vec![false; n],
            faults_injected: 0,
            faults_repaired: 0,
            cfg,
        }
    }

    /// Hardware-reconfiguration fingerprint (0 until the first
    /// [`Machine::set_core_scales`]; afterwards a deterministic hash
    /// chain over the applied reconfig sequence). Mapping caches keyed on
    /// the chip's graph fingerprint alone cannot see reconfigs — pair
    /// this value with the fingerprint when memoizing cost-annotated
    /// placements. Equal values imply the same reconfig history (up to
    /// hash collision), so identically-reconfigured identical chips may
    /// soundly share cache entries while divergent ones cannot.
    pub fn topology_generation(&self) -> u64 {
        self.topology_generation
    }

    /// The machine's configuration.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    pub(crate) fn core(&self, i: usize) -> &CoreState {
        &self.cores[i]
    }

    pub(crate) fn core_mut(&mut self, i: usize) -> &mut CoreState {
        &mut self.cores[i]
    }

    pub(crate) fn core_scales(&self, i: usize) -> (u32, u32) {
        (self.cores[i].matrix_scale, self.cores[i].vector_scale)
    }

    /// Registers a tenant (one virtual NPU / workload instance). Tenants
    /// persist across epochs until removed.
    pub fn add_tenant(&mut self, name: &str) -> TenantId {
        let id = self.next_tenant;
        self.next_tenant += 1;
        self.tenant_names.insert(id, name.to_owned());
        id
    }

    /// Unregisters a tenant, e.g. when its virtual NPU is destroyed
    /// between epochs.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTenant`] — never registered or already
    ///   removed.
    /// * [`SimError::TenantBusy`] — the tenant still has threads bound in
    ///   the current epoch; finish the epoch first.
    pub fn remove_tenant(&mut self, tenant: TenantId) -> Result<()> {
        if !self.tenant_names.contains_key(&tenant) {
            return Err(SimError::UnknownTenant(tenant));
        }
        if self.epoch.tenant_threads.get(&tenant).copied().unwrap_or(0) > 0 {
            return Err(SimError::TenantBusy(tenant));
        }
        self.tenant_names.remove(&tenant);
        Ok(())
    }

    /// Registered tenant count.
    pub fn tenant_count(&self) -> usize {
        self.tenant_names.len()
    }

    /// Declares that `tenant` was live-migrated between epochs: its cores
    /// were drained, its state moved and its meta-tables re-deployed,
    /// which pauses the tenant for `pause_cycles`. Epoch boundaries are
    /// the only legal migration points — the event loop has no notion of
    /// moving a thread mid-flight — so the call is refused while the
    /// tenant has threads bound in the current epoch. The pause is
    /// charged to every thread the tenant binds in the next epoch (they
    /// all start late by `pause_cycles`, prepended as a prelude delay);
    /// repeated migrations before the next epoch accumulate.
    ///
    /// # Errors
    ///
    /// * [`SimError::UnknownTenant`] — never registered or already
    ///   removed.
    /// * [`SimError::TenantBusy`] — threads are bound in the current
    ///   epoch; finish it first.
    pub fn migrate_tenant(&mut self, tenant: TenantId, pause_cycles: u64) -> Result<()> {
        if !self.tenant_names.contains_key(&tenant) {
            return Err(SimError::UnknownTenant(tenant));
        }
        if self.epoch.tenant_threads.get(&tenant).copied().unwrap_or(0) > 0 {
            return Err(SimError::TenantBusy(tenant));
        }
        *self.pending_migration_pause.entry(tenant).or_insert(0) += pause_cycles;
        self.migrations += 1;
        self.migration_pause_cycles += pause_cycles;
        Ok(())
    }

    /// Registers a tenant that was live-migrated *onto* this machine
    /// from another chip — a maintenance evacuation landing. The tenant
    /// begins its residency paused for `pause_cycles` (its state crossed
    /// the inter-chip fabric and its meta-tables were re-deployed):
    /// every thread it binds in its first epoch here starts that many
    /// cycles late, exactly as an intra-chip
    /// [`Machine::migrate_tenant`]'s pause lands at the next epoch
    /// boundary. Counted as a migration in
    /// [`Machine::migration_count`] / [`Machine::migration_pause_cycles`].
    pub fn adopt_tenant(&mut self, name: &str, pause_cycles: u64) -> TenantId {
        let tenant = self.add_tenant(name);
        // A fresh tenant has no bound threads, so the epoch-boundary
        // precondition of `migrate_tenant` holds by construction.
        *self.pending_migration_pause.entry(tenant).or_insert(0) += pause_cycles;
        self.migrations += 1;
        self.migration_pause_cycles += pause_cycles;
        tenant
    }

    /// Live migrations declared over this machine's lifetime.
    pub fn migration_count(&self) -> u64 {
        self.migrations
    }

    /// Total pause cycles charged to migrated tenants so far.
    pub fn migration_pause_cycles(&self) -> u64 {
        self.migration_pause_cycles
    }

    /// Enables per-chunk global-memory access tracing (Figure 6).
    pub fn enable_mem_trace(&mut self) {
        self.mem_trace_enabled = true;
    }

    /// Configures a hybrid core (§7): matrix kernels (matmul/conv) run at
    /// `matrix_pct`% of the standard cycle count and vector kernels at
    /// `vector_pct`% — e.g. `(50, 200)` is a matrix-optimized core with a
    /// double-size systolic array and a halved vector unit. The setting
    /// models hardware and therefore survives epoch resets.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoreOutOfRange`] for bad core indices.
    pub fn set_core_scales(&mut self, core: u32, matrix_pct: u32, vector_pct: u32) -> Result<()> {
        let state = self
            .cores
            .get_mut(core as usize)
            .ok_or(SimError::CoreOutOfRange {
                core,
                count: self.cfg.core_count(),
            })?;
        state.matrix_scale = matrix_pct.max(1);
        state.vector_scale = vector_pct.max(1);
        // A reconfig invalidates anything costed against the old scales
        // (heterogeneous match costs, cached mapping strategies). Chain
        // the reconfig parameters into the fingerprint — see the
        // `topology_generation` field docs for why this is a hash chain
        // rather than a counter. `| 1` keeps 0 reserved for "pristine".
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.topology_generation.hash(&mut h);
        (core, matrix_pct.max(1), vector_pct.max(1)).hash(&mut h);
        self.topology_generation = h.finish() | 1;
        Ok(())
    }

    /// Evolves the topology-generation hash chain with one fault event —
    /// the same chain [`Machine::set_core_scales`] uses, so every cached
    /// mapping (successes *and* exhaustion proofs) keyed on the old
    /// generation expires when the hardware changes health.
    fn chain_fault_event(&mut self, tag: u8, a: u32, b: u32, active: bool) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.topology_generation.hash(&mut h);
        (tag, a, b, active).hash(&mut h);
        self.topology_generation = h.finish() | 1;
    }

    /// Re-derives the degraded-mode router penalty from the current fault
    /// state: any active fault forces [`DEGRADED_ROUTER_PENALTY`].
    fn refresh_degraded_mode(&mut self) {
        let penalty = if self.has_active_faults() {
            DEGRADED_ROUTER_PENALTY
        } else {
            0
        };
        self.noc.set_degraded_penalty(penalty);
    }

    /// Injects a hardware fault into a physical core. While faulted the
    /// core refuses bindings ([`SimError::CoreFaulted`]) and the whole
    /// chip runs degraded ([`DEGRADED_ROUTER_PENALTY`] extra cycles per
    /// NoC hop). Faults model hardware: they survive epoch resets until
    /// [`Machine::repair_core`]. Returns whether the state changed
    /// (`false` = already faulted; the generation chain does not move).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoreOutOfRange`] for bad core indices.
    pub fn fault_core(&mut self, core: u32) -> Result<bool> {
        let count = self.cfg.core_count();
        let slot = self
            .faulted_cores
            .get_mut(core as usize)
            .ok_or(SimError::CoreOutOfRange { core, count })?;
        if *slot {
            return Ok(false);
        }
        *slot = true;
        self.faults_injected += 1;
        self.chain_fault_event(0xFC, core, 0, true);
        self.refresh_degraded_mode();
        Ok(true)
    }

    /// Repairs a previously faulted core (the inverse of
    /// [`Machine::fault_core`]). Returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CoreOutOfRange`] for bad core indices.
    pub fn repair_core(&mut self, core: u32) -> Result<bool> {
        let count = self.cfg.core_count();
        let slot = self
            .faulted_cores
            .get_mut(core as usize)
            .ok_or(SimError::CoreOutOfRange { core, count })?;
        if !*slot {
            return Ok(false);
        }
        *slot = false;
        self.faults_repaired += 1;
        self.chain_fault_event(0xFC, core, 0, false);
        self.refresh_degraded_mode();
        Ok(true)
    }

    /// Injects a hardware fault into the undirected NoC link between `a`
    /// and `b`: packets routed across it (either direction) error with
    /// [`SimError::LinkFaulted`], and the chip runs degraded until the
    /// link is repaired. Returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteFault`] when the cores are not adjacent.
    pub fn fault_link(&mut self, a: u32, b: u32) -> Result<bool> {
        let changed = self.noc.set_link_faulted(a, b, true)?;
        if changed {
            self.faults_injected += 1;
            self.chain_fault_event(0xF1, a, b, true);
            self.refresh_degraded_mode();
        }
        Ok(changed)
    }

    /// Repairs a previously faulted link (the inverse of
    /// [`Machine::fault_link`]). Returns whether the state changed.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RouteFault`] when the cores are not adjacent.
    pub fn repair_link(&mut self, a: u32, b: u32) -> Result<bool> {
        let changed = self.noc.set_link_faulted(a, b, false)?;
        if changed {
            self.faults_repaired += 1;
            self.chain_fault_event(0xF1, a, b, false);
            self.refresh_degraded_mode();
        }
        Ok(changed)
    }

    /// Whether a physical core is currently faulted (`false` for indices
    /// outside the mesh).
    pub fn core_faulted(&self, core: u32) -> bool {
        self.faulted_cores
            .get(core as usize)
            .copied()
            .unwrap_or(false)
    }

    /// Currently faulted physical cores, ascending.
    pub fn faulted_cores(&self) -> Vec<u32> {
        self.faulted_cores
            .iter()
            .enumerate()
            .filter(|(_, &f)| f)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Whether any core or link fault is currently active.
    pub fn has_active_faults(&self) -> bool {
        self.faulted_cores.iter().any(|&f| f) || self.noc.faulted_link_count() > 0
    }

    /// Hardware faults injected over the machine's lifetime.
    pub fn fault_injection_count(&self) -> u64 {
        self.faults_injected
    }

    /// Hardware faults repaired over the machine's lifetime.
    pub fn fault_repair_count(&self) -> u64 {
        self.faults_repaired
    }

    /// Currently faulted directed NoC links, in sorted order.
    pub fn faulted_links(&self) -> Vec<(u32, u32)> {
        self.noc.faulted_links().collect()
    }

    /// Binds `program` as tenant `tenant`'s program-level core `prog_core`
    /// onto physical core `phys_core` with bare-metal services.
    ///
    /// # Errors
    ///
    /// See [`Machine::bind_with`].
    pub fn bind(
        &mut self,
        phys_core: u32,
        tenant: TenantId,
        prog_core: u32,
        program: Program,
    ) -> Result<()> {
        let services = CoreServices::bare_metal(&self.cfg);
        self.bind_with(phys_core, tenant, prog_core, program, services)
    }

    /// Binds a program with explicit virtualization services.
    ///
    /// Multiple threads may share a physical core (TDM). Each program's
    /// own footprint must fit the scratchpad; co-resident TDM contexts may
    /// *over-subscribe* it — the working-set swap this implies is charged
    /// through [`crate::config::SocConfig::tdm_switch_penalty`] (the paper
    /// §7 notes NPU context switches are costly yet still uses TDM as the
    /// MIG fallback).
    ///
    /// # Errors
    ///
    /// * [`SimError::CoreOutOfRange`] — bad physical core.
    /// * [`SimError::CoreFaulted`] — the physical core carries an
    ///   injected hardware fault.
    /// * [`SimError::UnknownTenant`] — unregistered tenant.
    /// * [`SimError::ScratchpadOverflow`] — a single program's footprint
    ///   exceeds the tile's scratchpad.
    pub fn bind_with(
        &mut self,
        phys_core: u32,
        tenant: TenantId,
        prog_core: u32,
        program: Program,
        services: CoreServices,
    ) -> Result<()> {
        let count = self.cfg.core_count();
        if phys_core >= count {
            return Err(SimError::CoreOutOfRange {
                core: phys_core,
                count,
            });
        }
        if self.faulted_cores[phys_core as usize] {
            return Err(SimError::CoreFaulted { core: phys_core });
        }
        if !self.tenant_names.contains_key(&tenant) {
            return Err(SimError::UnknownTenant(tenant));
        }
        // A tenant migrated since the last epoch starts every thread late:
        // its cores were drained and its state moved during the boundary.
        let mut program = program;
        if let Some(&pause) = self.pending_migration_pause.get(&tenant) {
            if pause > 0 {
                program.prelude.insert(0, Instr::Delay { cycles: pause });
            }
        }
        let core = &mut self.cores[phys_core as usize];
        if program.footprint_bytes > self.cfg.scratchpad_bytes {
            return Err(SimError::ScratchpadOverflow {
                core: phys_core,
                required: program.footprint_bytes,
                capacity: self.cfg.scratchpad_bytes,
            });
        }
        core.footprint += program.footprint_bytes;
        core.thread_count += 1;
        *self.epoch.tenant_threads.entry(tenant).or_insert(0) += 1;
        let phase = if program.prelude.is_empty() {
            if program.body.is_empty() || program.iterations == 0 {
                Phase::Done
            } else {
                Phase::Body { iter: 0, pc: 0 }
            }
        } else {
            Phase::Prelude(0)
        };
        self.epoch.threads.push(ThreadState {
            tenant,
            prog_core,
            phys_core,
            program,
            phase,
            warmup_done: None,
            finished_at: None,
            body_started: None,
            compute_cycles: 0,
            macs: 0,
            consumed_flags: HashMap::new(),
            blocked: None,
        });
        self.services.push(services);
        Ok(())
    }

    /// Zero-based index of the epoch currently accepting bindings.
    pub fn epoch_index(&self) -> u64 {
        self.epoch_index
    }

    /// Summaries of recently finished epochs, oldest first. Retention is
    /// bounded — at least the most recent [`EPOCH_HISTORY_CAP`] epochs are
    /// kept (at most twice that) — so a long-lived serving machine does
    /// not grow memory with uptime; [`Machine::epoch_index`] still counts
    /// every epoch ever finished.
    pub fn epoch_history(&self) -> &[EpochSummary] {
        &self.epoch_history
    }

    /// Ends the current epoch: drops all thread bindings, flows, flags,
    /// barriers and traces, and rewinds the chip's clocks (core/link/
    /// channel `busy_until`) to zero — while the chip structures (cores
    /// with their hybrid scalings, NoC link graph, HBM channels) and the
    /// tenant registry survive. The machine is immediately bindable for
    /// the next batch.
    pub fn finish_epoch(&mut self) {
        let threads = self.epoch.threads.len();
        let tenants = self
            .epoch
            .tenant_threads
            .values()
            .filter(|&&n| n > 0)
            .count();
        let makespan = self
            .epoch
            .threads
            .iter()
            .filter_map(|th| th.finished_at)
            .max()
            .unwrap_or(0)
            .max(self.epoch.now);
        // Drop the oldest half in one batch (amortized O(1) per epoch)
        // rather than shifting the whole vector on every finish.
        if self.epoch_history.len() >= 2 * EPOCH_HISTORY_CAP {
            self.epoch_history.drain(..EPOCH_HISTORY_CAP);
        }
        self.epoch_history.push(EpochSummary {
            index: self.epoch_index,
            makespan,
            threads,
            tenants,
        });
        self.epoch_index += 1;
        self.epoch = EpochState::new(self.cfg.core_count() as usize);
        self.services.clear();
        // Migration pauses apply to exactly one epoch's bindings.
        self.pending_migration_pause.clear();
        for core in &mut self.cores {
            core.reset_epoch();
        }
        self.noc.reset_epoch();
        self.hbm.reset_epoch();
    }

    /// Runs the current batch to completion and finishes the epoch: the
    /// returned [`Report`] covers exactly this batch, and the machine is
    /// ready for the next round of [`Machine::bind_with`] calls.
    ///
    /// # Errors
    ///
    /// As for [`Machine::run`]. On error the epoch is *not* finished, so
    /// the failed state remains inspectable.
    pub fn run_epoch(&mut self) -> Result<Report> {
        let report = self.run()?;
        self.finish_epoch();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute::kernel_cycles;
    use crate::isa::{Instr, Kernel};
    use vnpu_mem::VirtAddr;

    fn fpga() -> SocConfig {
        SocConfig::fpga()
    }

    #[test]
    fn empty_machine_runs() {
        let mut m = Machine::new(fpga());
        let r = m.run().unwrap();
        assert_eq!(r.makespan(), 0);
    }

    #[test]
    fn single_compute_duration() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        let r = m.run().unwrap();
        let expect = kernel_cycles(
            &fpga(),
            &Kernel::Matmul {
                m: 16,
                k: 16,
                n: 16,
            },
        );
        // Dispatch offset + kernel.
        assert!(r.makespan() >= expect);
        assert!(r.makespan() < expect + 100);
    }

    #[test]
    fn send_recv_pair_completes() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(0, t, 0, Program::once(vec![Instr::send(1, 4096, 7)]))
            .unwrap();
        m.bind(1, t, 1, Program::once(vec![Instr::recv(0, 4096, 7)]))
            .unwrap();
        let r = m.run().unwrap();
        // 2 packets of 2048B: ≈ send_setup + 2*(128+13) + flight.
        assert!(r.makespan() > 250, "makespan {}", r.makespan());
        assert!(r.makespan() < 600, "makespan {}", r.makespan());
    }

    #[test]
    fn table3_send_costs() {
        // Reproduce the Table 3 calibration: Send of N packets ≈ 27 + 141·N.
        for (packets, paper) in [(2u64, 309u64), (10, 1430), (20, 2810), (30, 4236)] {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("t");
            let bytes = packets * 2048;
            m.bind(0, t, 0, Program::once(vec![Instr::send(1, bytes, 0)]))
                .unwrap();
            m.bind(1, t, 1, Program::once(vec![Instr::recv(0, bytes, 0)]))
                .unwrap();
            let r = m.run().unwrap();
            let send_end = r.tenant(t).unwrap().end;
            let ratio = send_end as f64 / paper as f64;
            assert!(
                (0.8..1.3).contains(&ratio),
                "{packets} packets: got {send_end}, paper {paper}"
            );
        }
    }

    #[test]
    fn recv_before_send_blocks_then_completes() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(
            0,
            t,
            0,
            Program::once(vec![
                Instr::Delay { cycles: 10_000 },
                Instr::send(1, 2048, 0),
            ]),
        )
        .unwrap();
        m.bind(1, t, 1, Program::once(vec![Instr::recv(0, 2048, 0)]))
            .unwrap();
        let r = m.run().unwrap();
        assert!(r.makespan() > 10_000);
    }

    #[test]
    fn missing_sender_deadlocks() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(1, t, 1, Program::once(vec![Instr::recv(0, 2048, 0)]))
            .unwrap();
        match m.run() {
            Err(SimError::Deadlock { detail }) => assert!(detail.contains("recv")),
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn dma_load_uses_bandwidth() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        // 64 KiB at 8 B/cyc per channel ≈ 8192 cycles minimum.
        m.bind(0, t, 0, Program::once(vec![Instr::dma_load(0, 64 * 1024)]))
            .unwrap();
        let r = m.run().unwrap();
        assert!(r.makespan() >= 8192, "makespan {}", r.makespan());
        assert!(r.makespan() < 12_000, "makespan {}", r.makespan());
    }

    #[test]
    fn hbm_contention_slows_same_channel_peers() {
        // Cores 0 and 1 share interface 0 (row 0); core 4 is on row 1.
        let solo = {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("t");
            m.bind(0, t, 0, Program::once(vec![Instr::dma_load(0, 64 * 1024)]))
                .unwrap();
            m.run().unwrap().makespan()
        };
        let contended = {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("t");
            m.bind(0, t, 0, Program::once(vec![Instr::dma_load(0, 64 * 1024)]))
                .unwrap();
            m.bind(
                1,
                t,
                1,
                Program::once(vec![Instr::dma_load(1 << 20, 64 * 1024)]),
            )
            .unwrap();
            m.run().unwrap().makespan()
        };
        assert!(
            contended as f64 > solo as f64 * 1.5,
            "contended {contended} vs solo {solo}"
        );
    }

    #[test]
    fn pipeline_iterations_overlap() {
        // Two-stage pipeline: with 4 iterations, the makespan must be far
        // below 4x the single-iteration latency (pipelining works).
        let body0 = vec![Instr::matmul(64, 64, 64), Instr::send(1, 2048, 0)];
        let body1 = vec![Instr::recv(0, 2048, 0), Instr::matmul(64, 64, 64)];
        let once = {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("t");
            m.bind(0, t, 0, Program::looped(vec![], body0.clone(), 1))
                .unwrap();
            m.bind(1, t, 1, Program::looped(vec![], body1.clone(), 1))
                .unwrap();
            m.run().unwrap().makespan()
        };
        let four = {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("t");
            m.bind(0, t, 0, Program::looped(vec![], body0, 4)).unwrap();
            m.bind(1, t, 1, Program::looped(vec![], body1, 4)).unwrap();
            m.run().unwrap().makespan()
        };
        assert!(
            four < once * 3,
            "4 iterations ({four}) should pipeline well below 3x single ({once})"
        );
    }

    #[test]
    fn tdm_serializes_compute() {
        let kernel = Instr::matmul(128, 128, 128);
        let solo = {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("a");
            m.bind(0, t, 0, Program::looped(vec![], vec![kernel], 8))
                .unwrap();
            m.run().unwrap().makespan()
        };
        let shared = {
            let mut m = Machine::new(fpga());
            let a = m.add_tenant("a");
            let b = m.add_tenant("b");
            m.bind(0, a, 0, Program::looped(vec![], vec![kernel], 8))
                .unwrap();
            m.bind(0, b, 0, Program::looped(vec![], vec![kernel], 8))
                .unwrap();
            m.run().unwrap().makespan()
        };
        assert!(
            shared as f64 > solo as f64 * 1.8,
            "TDM sharing must roughly double time: {shared} vs {solo}"
        );
    }

    #[test]
    fn tdm_pairing_hides_idle_thread() {
        // A busy thread paired with a mostly-idle one: much better than 2x.
        let busy = Instr::matmul(128, 128, 128);
        let mut m = Machine::new(fpga());
        let a = m.add_tenant("busy");
        let b = m.add_tenant("idle");
        m.bind(0, a, 0, Program::looped(vec![], vec![busy], 8))
            .unwrap();
        m.bind(0, b, 0, Program::once(vec![Instr::Delay { cycles: 100 }]))
            .unwrap();
        let shared = m.run().unwrap().makespan();
        let mut m2 = Machine::new(fpga());
        let a2 = m2.add_tenant("busy");
        m2.bind(0, a2, 0, Program::looped(vec![], vec![busy], 8))
            .unwrap();
        let solo = m2.run().unwrap().makespan();
        assert!(
            (shared as f64) < solo as f64 * 1.2,
            "idle partner must not cost 2x: {shared} vs {solo}"
        );
    }

    #[test]
    fn barrier_synchronizes_tenant() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(
            0,
            t,
            0,
            Program::once(vec![
                Instr::Delay { cycles: 5000 },
                Instr::Barrier { id: 1 },
            ]),
        )
        .unwrap();
        m.bind(1, t, 1, Program::once(vec![Instr::Barrier { id: 1 }]))
            .unwrap();
        let r = m.run().unwrap();
        assert!(r.makespan() >= 5000);
    }

    #[test]
    fn global_write_read_synchronize() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(
            0,
            t,
            0,
            Program::once(vec![Instr::GlobalWrite {
                va: VirtAddr(0),
                bytes: 4096,
                tag: 3,
            }]),
        )
        .unwrap();
        m.bind(
            1,
            t,
            1,
            Program::once(vec![Instr::GlobalRead {
                va: VirtAddr(0),
                bytes: 4096,
                tag: 3,
            }]),
        )
        .unwrap();
        let r = m.run().unwrap();
        // Write 4096 + flag, then read 4096, both through 8 B/cyc channels.
        assert!(r.makespan() > 1000, "makespan {}", r.makespan());
    }

    #[test]
    fn uvm_broadcast_costs_scale_with_readers() {
        // 1:1 vs 1:3 memory-synchronized broadcast — cost grows with
        // readers (each re-reads from HBM), unlike NoC forwarding.
        let run = |readers: u32| {
            let mut m = Machine::new(fpga());
            let t = m.add_tenant("t");
            m.bind(
                0,
                t,
                0,
                Program::once(vec![Instr::GlobalWrite {
                    va: VirtAddr(0),
                    bytes: 32 * 1024,
                    tag: 0,
                }]),
            )
            .unwrap();
            for rdr in 0..readers {
                m.bind(
                    rdr + 1,
                    t,
                    rdr + 1,
                    Program::once(vec![Instr::GlobalRead {
                        va: VirtAddr(0),
                        bytes: 32 * 1024,
                        tag: 0,
                    }]),
                )
                .unwrap();
            }
            m.run().unwrap().makespan()
        };
        let one = run(1);
        let three = run(3);
        assert!(
            three > one * 3 / 2,
            "1:3 ({three}) must cost more than 1:1 ({one})"
        );
    }

    #[test]
    fn scratchpad_overflow_rejected() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        let p = Program::once(vec![]).with_footprint(1 << 20); // 1 MB > 512 KB
        assert!(matches!(
            m.bind(0, t, 0, p),
            Err(SimError::ScratchpadOverflow { .. })
        ));
    }

    #[test]
    fn bind_errors() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        assert!(matches!(
            m.bind(99, t, 0, Program::once(vec![])),
            Err(SimError::CoreOutOfRange { .. })
        ));
        assert!(matches!(
            m.bind(0, 42, 0, Program::once(vec![])),
            Err(SimError::UnknownTenant(42))
        ));
    }

    #[test]
    fn determinism_same_seed_same_cycles() {
        let run = || {
            let mut m = Machine::new(fpga());
            let a = m.add_tenant("a");
            let b = m.add_tenant("b");
            for c in 0..4u32 {
                m.bind(
                    c,
                    a,
                    c,
                    Program::looped(
                        vec![Instr::dma_load(u64::from(c) << 20, 16 * 1024)],
                        vec![
                            Instr::matmul(64, 64, 64),
                            Instr::send((c + 1) % 4, 2048, c),
                            Instr::recv((c + 3) % 4, 2048, (c + 3) % 4),
                        ],
                        5,
                    ),
                )
                .unwrap();
            }
            m.bind(
                4,
                b,
                0,
                Program::looped(vec![], vec![Instr::matmul(32, 32, 32)], 7),
            )
            .unwrap();
            m.run().unwrap().makespan()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn warmup_recorded_from_prelude() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(
            0,
            t,
            0,
            Program::looped(
                vec![Instr::dma_load(0, 32 * 1024)],
                vec![Instr::matmul(16, 16, 16)],
                2,
            ),
        )
        .unwrap();
        let r = m.run().unwrap();
        let ts = r.tenant(t).unwrap();
        assert!(ts.warmup_end > 3000, "warmup {}", ts.warmup_end);
        assert!(ts.end > ts.warmup_end);
    }

    #[test]
    fn mem_trace_capture() {
        let mut m = Machine::new(fpga());
        m.enable_mem_trace();
        let t = m.add_tenant("t");
        m.bind(0, t, 0, Program::once(vec![Instr::dma_load(0x1000, 8192)]))
            .unwrap();
        let r = m.run().unwrap();
        let trace = r.mem_trace();
        assert_eq!(trace.len(), 4); // 8192 / 2048 chunks
                                    // Monotonically increasing addresses (Pattern-2).
        for w in trace.windows(2) {
            assert!(w[1].2 > w[0].2);
        }
    }

    #[test]
    fn flow_credit_blocks_runaway_sender() {
        // Sender pushes 16 KiB per iteration; receiver consumes slowly.
        // With 64 KiB credit the sender cannot run more than ~4 iterations
        // ahead, so the makespan is dominated by the receiver.
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        m.bind(
            0,
            t,
            0,
            Program::looped(vec![], vec![Instr::send(1, 16 * 1024, 0)], 16),
        )
        .unwrap();
        m.bind(
            1,
            t,
            1,
            Program::looped(
                vec![],
                vec![
                    Instr::Delay { cycles: 20_000 },
                    Instr::recv(0, 16 * 1024, 0),
                ],
                16,
            ),
        )
        .unwrap();
        let r = m.run().unwrap();
        assert!(r.makespan() >= 16 * 20_000);
    }

    #[test]
    fn epochs_reuse_the_machine_deterministically() {
        // The same batch run in epoch 0 of a fresh machine and in epoch 3
        // of a reused one must report identical cycles: finish_epoch fully
        // rewinds the chip clocks.
        let bind_batch = |m: &mut Machine| {
            let t = m.add_tenant("batch");
            m.bind(
                0,
                t,
                0,
                Program::looped(
                    vec![Instr::dma_load(0, 16 * 1024)],
                    vec![Instr::matmul(64, 64, 64), Instr::send(1, 2048, 0)],
                    3,
                ),
            )
            .unwrap();
            m.bind(
                1,
                t,
                1,
                Program::looped(vec![], vec![Instr::recv(0, 2048, 0)], 3),
            )
            .unwrap();
        };
        let fresh = {
            let mut m = Machine::new(fpga());
            bind_batch(&mut m);
            m.run_epoch().unwrap().makespan()
        };
        let mut m = Machine::new(fpga());
        for _ in 0..3 {
            bind_batch(&mut m);
            m.run_epoch().unwrap();
        }
        assert_eq!(m.epoch_index(), 3);
        bind_batch(&mut m);
        let reused = m.run_epoch().unwrap().makespan();
        assert_eq!(fresh, reused, "epoch reuse must not leak timing state");
        assert_eq!(m.epoch_history().len(), 4);
        assert!(m.epoch_history().iter().all(|e| e.makespan == fresh));
    }

    #[test]
    fn epoch_history_retention_is_bounded() {
        let mut m = Machine::new(fpga());
        let total = 2 * EPOCH_HISTORY_CAP + 5;
        for _ in 0..total {
            m.finish_epoch(); // empty epochs: summaries only
        }
        assert_eq!(m.epoch_index(), total as u64, "every epoch is counted");
        let history = m.epoch_history();
        assert!(history.len() <= 2 * EPOCH_HISTORY_CAP);
        assert!(history.len() >= EPOCH_HISTORY_CAP, "recent epochs retained");
        assert_eq!(
            history.last().unwrap().index,
            total as u64 - 1,
            "the newest summary survives trimming"
        );
        // Contiguous, oldest first.
        let first = history.first().unwrap().index;
        for (i, e) in history.iter().enumerate() {
            assert_eq!(e.index, first + i as u64);
        }
    }

    #[test]
    fn tenants_persist_across_epochs_until_removed() {
        let mut m = Machine::new(fpga());
        let keep = m.add_tenant("keeper");
        let drop_me = m.add_tenant("transient");
        m.bind(0, keep, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        m.bind(
            1,
            drop_me,
            0,
            Program::once(vec![Instr::matmul(16, 16, 16)]),
        )
        .unwrap();
        // Mid-epoch removal is refused: bindings reference the tenant.
        assert!(matches!(
            m.remove_tenant(drop_me),
            Err(SimError::TenantBusy(_))
        ));
        m.run_epoch().unwrap();
        // Between epochs the tenant can leave; the other remains bindable.
        m.remove_tenant(drop_me).unwrap();
        assert_eq!(m.tenant_count(), 1);
        assert!(matches!(
            m.bind(0, drop_me, 0, Program::once(vec![])),
            Err(SimError::UnknownTenant(_))
        ));
        m.bind(0, keep, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        m.run_epoch().unwrap();
        assert!(matches!(
            m.remove_tenant(drop_me),
            Err(SimError::UnknownTenant(_))
        ));
    }

    #[test]
    fn set_core_scales_evolves_the_topology_generation() {
        let mut m = Machine::new(fpga());
        assert_eq!(m.topology_generation(), 0, "pristine machines are 0");
        m.set_core_scales(0, 50, 200).unwrap();
        let after_one = m.topology_generation();
        assert_ne!(after_one, 0);
        m.set_core_scales(1, 200, 50).unwrap();
        assert_ne!(m.topology_generation(), after_one);
        // A failed reconfig changes nothing.
        let before = m.topology_generation();
        assert!(m.set_core_scales(999, 50, 50).is_err());
        assert_eq!(m.topology_generation(), before);
        // Deterministic, sequence-sensitive: the same reconfig sequence
        // reproduces the same fingerprint; a different sequence (same
        // count) must not collide — that is what lets identical chips
        // share mapping-cache entries only when their hardware states
        // actually match.
        let mut twin = Machine::new(fpga());
        twin.set_core_scales(0, 50, 200).unwrap();
        assert_eq!(twin.topology_generation(), after_one);
        let mut other = Machine::new(fpga());
        other.set_core_scales(0, 200, 50).unwrap();
        assert_ne!(other.topology_generation(), after_one);
    }

    #[test]
    fn core_faults_reject_bindings_and_evolve_the_generation() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("t");
        assert!(!m.has_active_faults());
        assert!(m.fault_core(0).unwrap());
        assert!(!m.fault_core(0).unwrap(), "double fault is a no-op");
        let gen_after_fault = m.topology_generation();
        assert_ne!(gen_after_fault, 0, "faults evolve the generation chain");
        assert!(m.core_faulted(0));
        assert_eq!(m.faulted_cores(), vec![0]);
        assert!(m.has_active_faults());
        assert_eq!(m.fault_injection_count(), 1);
        assert!(matches!(
            m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)])),
            Err(SimError::CoreFaulted { core: 0 })
        ));
        // Healthy cores still bind; the epoch completes normally.
        m.bind(1, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        m.run_epoch().unwrap();
        assert!(m.core_faulted(0), "faults survive epoch resets");
        assert!(m.repair_core(0).unwrap());
        assert!(!m.repair_core(0).unwrap(), "double repair is a no-op");
        assert_eq!(m.fault_repair_count(), 1);
        assert!(!m.has_active_faults());
        assert_ne!(
            m.topology_generation(),
            gen_after_fault,
            "repair evolves the chain again"
        );
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        m.run_epoch().unwrap();
        assert!(m.fault_core(999).is_err());
        assert!(m.repair_core(999).is_err());
    }

    #[test]
    fn link_faults_degrade_then_repair_restores_timing() {
        // Identical single-hop send on a healthy chip vs one with an
        // unrelated faulted link: the degraded chip is strictly slower,
        // and repair restores the healthy timing exactly.
        let send_epoch = |m: &mut Machine| {
            let t = m.add_tenant("s");
            m.bind(0, t, 0, Program::once(vec![Instr::send(1, 2048, 0)]))
                .unwrap();
            m.bind(1, t, 1, Program::once(vec![Instr::recv(0, 2048, 0)]))
                .unwrap();
            let span = m.run_epoch().unwrap().makespan();
            m.remove_tenant(t).unwrap();
            span
        };
        let mut m = Machine::new(fpga());
        let healthy = send_epoch(&mut m);
        m.fault_link(2, 3).unwrap();
        assert_eq!(m.faulted_links(), vec![(2, 3), (3, 2)]);
        let degraded = send_epoch(&mut m);
        assert!(
            degraded > healthy,
            "degraded mode must slow the NoC: {degraded} vs {healthy}"
        );
        m.repair_link(2, 3).unwrap();
        assert_eq!(send_epoch(&mut m), healthy);
        // A send across the faulted link itself errors, never hangs.
        m.fault_link(0, 1).unwrap();
        let t = m.add_tenant("x");
        m.bind(0, t, 0, Program::once(vec![Instr::send(1, 2048, 0)]))
            .unwrap();
        m.bind(1, t, 1, Program::once(vec![Instr::recv(0, 2048, 0)]))
            .unwrap();
        assert!(matches!(
            m.run(),
            Err(SimError::LinkFaulted { .. } | SimError::Deadlock { .. })
        ));
    }

    #[test]
    fn migrate_tenant_pauses_next_epoch_only() {
        let mut m = Machine::new(fpga());
        let t = m.add_tenant("mover");
        // Mid-epoch migration is refused: the tenant has bound threads.
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        assert!(matches!(
            m.migrate_tenant(t, 500),
            Err(SimError::TenantBusy(_))
        ));
        let baseline = m.run_epoch().unwrap().makespan();
        // At the epoch boundary the migration is legal and the pause is
        // charged to the next epoch's threads.
        m.migrate_tenant(t, 10_000).unwrap();
        assert_eq!(m.migration_count(), 1);
        assert_eq!(m.migration_pause_cycles(), 10_000);
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        let paused = m.run_epoch().unwrap().makespan();
        assert!(
            paused >= baseline + 10_000,
            "migration pause must delay the epoch: {paused} vs {baseline}"
        );
        // The pause is consumed: the epoch after runs at full speed.
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        assert_eq!(m.run_epoch().unwrap().makespan(), baseline);
        // Unknown tenants are rejected.
        assert!(matches!(
            m.migrate_tenant(999, 1),
            Err(SimError::UnknownTenant(999))
        ));
    }

    #[test]
    fn adopted_tenant_starts_its_first_epoch_paused() {
        // An evacuated tenant landing from another chip pays its
        // cross-chip pause on the threads of its *first* epoch here.
        let mut reference = Machine::new(fpga());
        let r = reference.add_tenant("local");
        reference
            .bind(0, r, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        let baseline = reference.run_epoch().unwrap().makespan();

        let mut m = Machine::new(fpga());
        let t = m.adopt_tenant("evacuee", 25_000);
        assert_eq!(m.migration_count(), 1, "an adoption is a migration");
        assert_eq!(m.migration_pause_cycles(), 25_000);
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        let paused = m.run_epoch().unwrap().makespan();
        assert!(
            paused >= baseline + 25_000,
            "the landing pause must delay the first epoch: {paused} vs {baseline}"
        );
        // The pause is consumed; the second epoch runs at full speed.
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(16, 16, 16)]))
            .unwrap();
        assert_eq!(m.run_epoch().unwrap().makespan(), baseline);
    }

    #[test]
    fn hybrid_core_scalings_survive_epochs() {
        let mut m = Machine::new(fpga());
        m.set_core_scales(0, 50, 200).unwrap();
        let t = m.add_tenant("t");
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(64, 64, 64)]))
            .unwrap();
        let fast = m.run_epoch().unwrap().makespan();
        // Next epoch, same kernel: the hybrid scaling must still apply.
        m.bind(0, t, 0, Program::once(vec![Instr::matmul(64, 64, 64)]))
            .unwrap();
        let again = m.run_epoch().unwrap().makespan();
        assert_eq!(fast, again, "hardware scalings persist across epochs");
    }
}
