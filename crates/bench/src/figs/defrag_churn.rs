//! **Defrag churn** — the background-defragmentation scenario on top of
//! the serving runtime: ≥1,000 vNPU create/destroy requests streamed
//! through one 6×6 chip, run twice — once bare and once with the
//! [`GreedyDefrag`] policy committing live migrations through the
//! transactional placement-plan API every tick.
//!
//! Asserted invariants (both modes):
//!
//! * both runs are deterministic under the seed (whole
//!   [`vnpu_serve::ServeReport`]s reproduce byte-for-byte);
//! * the defragmenter actually migrates, and every migration's paid
//!   [`vnpu::plan::ReconfigCost`] is accounted in the report
//!   (meta-table cycles, moved bytes, paused-tenant time);
//! * the defragmented run ends with *strictly lower* terminal buddy
//!   external fragmentation than the identical run without defrag;
//! * a placement plan staled mid-flight (generation injected between
//!   plan and commit) commits nothing — the hypervisor's state digest is
//!   bit-identical before and after the failed commit;
//! * a third defragmented run with [`vnpu_serve::ServeConfig::audit`]
//!   enabled reports zero fleet-audit findings and produces a
//!   byte-identical report (auditing is read-only).

use std::sync::Arc;
use vnpu::plan::{GreedyDefrag, PlanOp, ReconfigCost};
use vnpu::{Hypervisor, VnpuError, VnpuRequest};
use vnpu_serve::{ServeConfig, ServeReport, ServeRuntime};
use vnpu_sim::SocConfig;

/// Fixed seed: the whole request stream, admission trace, migration
/// schedule and report are reproducible from this value.
const SEED: u64 = 0xDEF4_A611;

fn churn_config(quick: bool, defrag: bool) -> ServeConfig {
    let epochs = if quick { 1_300 } else { 4_000 };
    let mut cfg = ServeConfig::standard(SEED, epochs);
    // ~1 arrival per tick: a 1,300-epoch quick run comfortably clears
    // 1,000 requests while staying CI-fast.
    cfg.traffic.mean_interarrival_ticks = 1;
    cfg.traffic.candidate_cap = if quick { 200 } else { 400 };
    // Tight HBM (1 GiB against a stream of 16–128 MiB tenants) so buddy
    // external fragmentation is real memory pressure, not the structural
    // half-space split of an oversized allocator.
    cfg.chips[0].hbm_bytes = 1 << 30;
    if defrag {
        cfg.defrag = Some(Arc::new(GreedyDefrag {
            max_memory_moves: 1,
            ..GreedyDefrag::default()
        }));
        cfg.defrag_interval = 1;
    }
    cfg
}

fn assert_churn_invariants(r: &ServeReport, label: &str) {
    assert!(
        r.submitted >= 1_000,
        "{label}: churn must exceed 1,000 requests, got {}",
        r.submitted
    );
    assert_eq!(r.leaked_cores, 0, "{label}: no cores may leak");
    assert_eq!(r.leaked_hbm_bytes, 0, "{label}: no HBM may leak");
    assert_eq!(
        r.accepted + r.rejected + r.queued_at_end,
        r.submitted,
        "{label}: every request accounted exactly once"
    );
}

/// The terminal buddy external fragmentation of a run: the mean over
/// the final 100 samples. A single end-tick sample swings with whichever
/// tenant happened to depart last; the windowed terminal is the steady
/// state the chip settles into.
fn terminal_hbm_fragmentation(r: &ServeReport) -> f64 {
    let window = r.fragmentation.len().min(100);
    assert!(window > 0, "runs produce samples");
    let tail = &r.fragmentation[r.fragmentation.len() - window..];
    tail.iter()
        .map(|s| s.hbm_external_fragmentation)
        .sum::<f64>()
        / window as f64
}

/// Demonstrates the transactional guarantee the serving loop relies on:
/// a plan staled between plan and commit provably mutates nothing.
fn assert_stale_commit_mutates_nothing() {
    let mut hv = Hypervisor::new(SocConfig::sim());
    hv.create_vnpu(VnpuRequest::mesh(2, 2))
        .expect("seed tenant");
    let txn = hv
        .plan(&[PlanOp::Create(VnpuRequest::mesh(3, 3))])
        .expect("plannable create");
    // Inject staleness mid-plan: the generation chain advances under
    // the outstanding transaction.
    hv.invalidate_plans();
    let digest = hv.state_digest();
    let vnpus = hv.vnpu_count();
    let free = hv.free_core_count();
    let hbm = hv.hbm_free_bytes();
    assert!(
        matches!(hv.commit(&txn), Err(VnpuError::StalePlan { .. })),
        "a staled plan must be rejected"
    );
    assert_eq!(hv.state_digest(), digest, "failed commit mutates nothing");
    assert_eq!(hv.vnpu_count(), vnpus);
    assert_eq!(hv.free_core_count(), free);
    assert_eq!(hv.hbm_free_bytes(), hbm);
    println!("stale-commit probe: rejected, state digest unchanged\n");
}

/// Runs the churn scenario with and without the defragmenter.
///
/// # Panics
///
/// Panics when any invariant fails — the bench doubles as the
/// acceptance gate for the defragmentation stack.
pub fn run(quick: bool) {
    println!("== defrag_churn: background defragmentation under load ==\n");

    assert_stale_commit_mutates_nothing();

    // --- Baseline, twice: byte-identical reports or bust. ---
    let baseline = ServeRuntime::new(churn_config(quick, false))
        .run()
        .expect("baseline churn run completes");
    let baseline_again = ServeRuntime::new(churn_config(quick, false))
        .run()
        .expect("baseline rerun completes");
    assert_eq!(
        baseline, baseline_again,
        "same seed must reproduce the baseline report"
    );
    assert_churn_invariants(&baseline, "baseline");
    assert_eq!(baseline.migrations, 0, "no defragmenter, no migrations");
    assert_eq!(baseline.reconfig, ReconfigCost::default());
    println!("[no defrag]\n{}\n", baseline.summary());

    // --- Defragmented, twice: determinism under migrations too. ---
    let defragged = ServeRuntime::new(churn_config(quick, true))
        .run()
        .expect("defrag churn run completes");
    let defragged_again = ServeRuntime::new(churn_config(quick, true))
        .run()
        .expect("defrag rerun completes");
    assert_eq!(
        defragged, defragged_again,
        "same seed must reproduce the defrag report, migrations included"
    );
    assert_churn_invariants(&defragged, "defrag");
    assert_eq!(
        defragged.submitted, baseline.submitted,
        "the defragmenter must not perturb the arrival stream"
    );

    // --- Audited defrag run: live migrations every tick are exactly the
    //     churn the fleet auditor exists to police. Zero findings, and a
    //     byte-identical report because auditing is read-only. ---
    let mut audited_cfg = churn_config(quick, true);
    audited_cfg.audit = true;
    let audited = ServeRuntime::new(audited_cfg)
        .run()
        .expect("audited defrag run completes");
    assert_eq!(
        audited.audit_findings, 0,
        "a defragmenting fleet audits clean on every tick"
    );
    assert_eq!(
        audited, defragged,
        "auditing is read-only: the audited report is byte-identical"
    );
    println!("[defrag, audited] zero findings, report byte-identical\n");

    // --- Every migration's cost is accounted. ---
    assert!(
        defragged.migrations > 0,
        "churn fragments the chip; the defragmenter must act"
    );
    assert!(
        defragged.reconfig.config_cycles() > 0,
        "migrations pay meta-table re-deployment"
    );
    assert!(
        defragged.reconfig.data_move_bytes > 0,
        "migrations move tenant state"
    );
    assert!(
        defragged.reconfig.paused_cycles >= defragged.reconfig.config_cycles(),
        "the pause covers at least the meta-table rewrites"
    );
    assert_eq!(
        defragged.per_chip.iter().map(|c| c.migrations).sum::<u64>(),
        defragged.migrations,
        "per-chip sections cover every migration"
    );
    assert!(
        defragged.frag_windows_recovered > 0 || defragged.hbm_frag_recovered > 0.0,
        "committed passes must book recovered fragmentation"
    );

    // --- The headline claim: lower terminal buddy fragmentation. ---
    let base_frag = terminal_hbm_fragmentation(&baseline);
    let defrag_frag = terminal_hbm_fragmentation(&defragged);
    let mean = |r: &ServeReport| {
        r.fragmentation
            .iter()
            .map(|s| s.hbm_external_fragmentation)
            .sum::<f64>()
            / r.fragmentation.len().max(1) as f64
    };
    println!(
        "buddy external fragmentation: baseline terminal {base_frag:.4} \
         mean {:.4}, defragmented terminal {defrag_frag:.4} mean {:.4}",
        mean(&baseline),
        mean(&defragged),
    );
    assert!(
        defrag_frag < base_frag,
        "the defragmenter must strictly reduce terminal buddy external \
         fragmentation (baseline {base_frag:.4} vs defrag {defrag_frag:.4})"
    );
    assert!(
        mean(&defragged) < mean(&baseline),
        "the whole-run mean must drop too"
    );
    println!("\n[defrag]\n{}\n", defragged.summary());

    // --- JSON report via the existing harness conventions. ---
    if let Some(dir) = crate::harness::report_dir() {
        let name = if quick {
            "defrag_churn.report.quick.json"
        } else {
            "defrag_churn.report.json"
        };
        let path = dir.join(name);
        if std::fs::write(&path, defragged.to_json(64)).is_ok() {
            println!("defrag report written to {}\n", path.display());
        }
    }
}
