//! Drain-for-maintenance: whole-chip evacuation as a budgeted plan
//! pipeline.
//!
//! Datacenter accelerator fleets treat maintenance drains as routine —
//! firmware rollouts, cooling work, board swaps — and a dynamic
//! virtualization layer must make evacuate-and-restore a scheduler
//! primitive, not an operator script. This module composes the existing
//! machinery into exactly that:
//!
//! * a [`DrainPolicy`] decides *which* tenants leave the draining chip
//!   this epoch and *where* they land, within a per-epoch
//!   [`ReconfigBudget`] — the shipped [`CheapestFirstDrain`] moves the
//!   cheapest tenants first (by estimated [`ReconfigCost`], dominated by
//!   the cross-chip data-movement term) onto the least-loaded
//!   schedulable destination that fits;
//! * [`crate::cluster::Cluster::begin_drain`] marks the chip
//!   unschedulable (placement policies stop nominating it, the fleet
//!   [`crate::admission::FitHint`] stops advertising it) and stales its
//!   outstanding placement plans;
//! * [`crate::cluster::Cluster::drain_step`] runs one budgeted
//!   evacuation step through [`crate::cluster::Cluster::migrate_to_chip`]
//!   — create-before-destroy, so a failed move leaves the tenant on the
//!   source chip and a tenant can never exist on two chips;
//! * [`crate::cluster::Cluster::complete_drain`] validates the chip is
//!   empty (maintenance may start);
//!   [`crate::cluster::Cluster::undrain`] hands the chip back to the
//!   schedulers with byte-identical schedulability.

use crate::cluster::{ChipSnapshot, ClusterVmId};
use crate::hypervisor::Hypervisor;
use crate::ids::VmId;
use crate::plan::{ReconfigBudget, ReconfigCost};
use crate::vnpu::VirtualNpu;
use std::fmt;
use vnpu_mem::rtt::rtt_deploy_cycles;

/// Whether a chip may be nominated for placements, and where it is in
/// the drain lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChipSchedState {
    /// In service: placement policies nominate it, fit hints advertise
    /// it.
    Schedulable,
    /// Being evacuated: no new placements, budgeted
    /// [`crate::cluster::Cluster::drain_step`]s move its tenants off.
    Draining,
    /// Evacuated and under maintenance: empty, unschedulable, waiting
    /// for [`crate::cluster::Cluster::undrain`].
    Drained,
}

impl fmt::Display for ChipSchedState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChipSchedState::Schedulable => write!(f, "schedulable"),
            ChipSchedState::Draining => write!(f, "draining"),
            ChipSchedState::Drained => write!(f, "drained"),
        }
    }
}

/// One tenant moved off a draining chip by a
/// [`crate::cluster::Cluster::drain_step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainMove {
    /// The tenant's identity on the draining chip (now stale).
    pub from: ClusterVmId,
    /// Its identity on the destination chip.
    pub to: ClusterVmId,
    /// The paid cross-chip migration cost.
    pub cost: ReconfigCost,
}

/// What one budgeted drain step did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DrainStep {
    /// Tenants moved this step, in migration order.
    pub moved: Vec<DrainMove>,
    /// Proposals that could not be applied this step (destination
    /// stopped fitting, tenant departed under the policy) — the tenants
    /// stay on the draining chip for a later step.
    pub skipped: usize,
    /// Tenants still resident on the draining chip after this step
    /// (the residual occupancy; 0 means the chip is ready for
    /// [`crate::cluster::Cluster::complete_drain`]).
    pub remaining: usize,
    /// The summed cost every move this step actually paid.
    pub total: ReconfigCost,
}

impl DrainStep {
    /// Whether the step left the chip empty.
    pub fn is_evacuated(&self) -> bool {
        self.remaining == 0
    }
}

/// The bytes a cross-chip move of `vnpu` carries over the inter-chip
/// fabric: its entire guest HBM plus each core's scratchpad working set.
/// The single source of the data-movement formula — both the drain
/// estimate ([`estimated_move_cost`]) and the charge
/// [`crate::cluster::Cluster::migrate_to_chip`] actually pays call it,
/// so the budget can never admit moves priced by a stale formula.
pub fn cross_chip_data_bytes(hv: &Hypervisor, vnpu: &VirtualNpu) -> u64 {
    vnpu.mem_bytes() + u64::from(vnpu.core_count()) * hv.config().scratchpad_bytes
}

/// The estimated cross-chip move price of one live tenant: its routing
/// table and RTT re-deploy on the destination, and its data movement
/// ([`cross_chip_data_bytes`]). The data term — the dominant one — is
/// exactly what [`crate::cluster::Cluster::migrate_to_chip`] charges;
/// the meta-table terms are priced from the *source* tables and may
/// differ slightly on the landed copy (a tenant landing non-exact gets
/// a costlier table), so budget gating on this estimate bounds, rather
/// than exactly equals, the paid cost.
pub fn estimated_move_cost(hv: &Hypervisor, vnpu: &VirtualNpu) -> ReconfigCost {
    ReconfigCost::for_move(
        vnpu.routing_table().config_cycles(),
        rtt_deploy_cycles(vnpu.rtt_entries().len()),
        cross_chip_data_bytes(hv, vnpu),
    )
}

/// Decides which tenants leave a draining chip this epoch, and where
/// they land.
///
/// Object-safe for the same reason [`crate::admission::AdmissionPolicy`]
/// and [`crate::plan::Defragmenter`] are: deployments bring their own
/// evacuation logic (tenant priority tiers, anti-affinity, rack-level
/// spreading) without this crate enumerating it. Implementations must be
/// deterministic functions of their inputs — serve reports are asserted
/// byte-identical across runs. Proposals are advisory: the driver
/// applies each through the transactional
/// [`crate::cluster::Cluster::migrate_to_chip`] and skips (rather than
/// fails on) proposals that no longer apply.
pub trait DrainPolicy: fmt::Debug + Send + Sync {
    /// Short name for reports and debugging.
    fn name(&self) -> &'static str;

    /// Proposes this step's evacuation set for the draining chip as
    /// `(tenant, destination chip)` pairs, within `budget`. `hv` is the
    /// draining chip's hypervisor; `destinations` are the snapshots of
    /// every *schedulable* chip the tenants may land on (the draining
    /// chip itself is never among them). Tenants not proposed stay for a
    /// later step.
    fn plan_step(
        &self,
        hv: &Hypervisor,
        destinations: &[ChipSnapshot],
        budget: &ReconfigBudget,
    ) -> Vec<(VmId, usize)>;
}

/// The reference drain policy: cheapest-tenant-first.
///
/// Tenants are ordered by their estimated cross-chip
/// [`ReconfigCost`] ([`estimated_move_cost`] — ascending data movement,
/// then pause, then VM id for determinism) so each budgeted epoch
/// evacuates as many tenants as the budget allows and the expensive
/// movers go last, when departures may have emptied them for free. Each
/// tenant lands on the least-loaded destination that fits it (most free
/// cores, ties broken toward more free HBM then the lower chip index);
/// the working snapshots are debited as proposals accumulate so one
/// step's proposals never oversubscribe a destination.
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapestFirstDrain;

impl DrainPolicy for CheapestFirstDrain {
    fn name(&self) -> &'static str {
        "cheapest-first"
    }

    fn plan_step(
        &self,
        hv: &Hypervisor,
        destinations: &[ChipSnapshot],
        budget: &ReconfigBudget,
    ) -> Vec<(VmId, usize)> {
        let mut tenants: Vec<(u64, u64, u32, ReconfigCost)> = hv
            .vnpus()
            .map(|(vm, v)| {
                let cost = estimated_move_cost(hv, v);
                (cost.data_move_bytes, cost.paused_cycles, vm.0, cost)
            })
            .collect();
        tenants.sort_unstable_by_key(|&(data, paused, vm, _)| (data, paused, vm));
        let mut dests: Vec<ChipSnapshot> = destinations.to_vec();
        let mut proposals: Vec<(VmId, usize)> = Vec::new();
        let mut total = ReconfigCost::default();
        for (_, _, vm, cost) in tenants {
            let vm = VmId(vm);
            if proposals.len() >= budget.max_migrations {
                break;
            }
            // The sort is by data movement (the dominant term), but the
            // budget also caps paused cycles, which carry non-monotone
            // meta-table terms — so an unaffordable tenant is skipped,
            // not a stopping point: a later one may still fit.
            if !budget.admits(&total, proposals.len(), &cost) {
                continue;
            }
            let vnpu = hv.vnpu(vm).expect("listed vm is live");
            let cores = vnpu.core_count();
            let mem = vnpu.mem_bytes();
            let temporal = vnpu.wants_temporal_sharing();
            let Some(dest) = dests
                .iter_mut()
                .filter(|d| d.fits_raw(cores, mem, temporal))
                .min_by_key(|d| {
                    (
                        std::cmp::Reverse(d.free_cores),
                        std::cmp::Reverse(d.hbm_free_bytes),
                        d.chip,
                    )
                })
            else {
                // No destination fits right now; the tenant stays for a
                // later step (departures elsewhere may open room).
                continue;
            };
            dest.free_cores = dest.free_cores.saturating_sub(cores);
            dest.hbm_free_bytes = dest.hbm_free_bytes.saturating_sub(mem);
            dest.live_vnpus += 1;
            let chip = dest.chip;
            total = total.plus(cost);
            proposals.push((vm, chip));
        }
        proposals
    }
}
