//! The hypervisor: owner of all physical NPU resources (§5.2).
//!
//! The paper modifies KVM so that only the hypervisor can program the
//! hyper-mode NPU controller: it allocates cores with a topology-mapping
//! strategy, allocates HBM with a buddy system, builds the routing table
//! and the range translation table, and deploys both into meta-zones. This
//! module is that logic as a library: [`Hypervisor::create_vnpu`] performs
//! the whole provisioning pipeline and accounts the controller cycles it
//! would cost (the Figure 11 configuration overhead).

use crate::admission::{
    AdmissionEvent, AdmissionOutcome, AdmissionPolicy, AdmissionPolicyKind, AdmissionQueue,
    AdmissionTick, FitHint, FragmentationStats, RequestId, TickVerdict,
};
use crate::ids::{VirtCoreId, VmId};
use crate::meta::MetaZoneLayout;
use crate::mmio::{MmioSpace, PfReg, Requester};
use crate::routing_table::RoutingTable;
use crate::vnpu::{VirtualNpu, VnpuRequest, GUEST_VA_BASE};
use crate::{Result, VnpuError};
use std::collections::BTreeMap;
use std::sync::Arc;
use vnpu_mem::buddy::{Block, BuddyAllocator};
use vnpu_mem::rtt::RttEntry;
use vnpu_mem::{Perm, PhysAddr, VirtAddr};
use vnpu_sim::SocConfig;
use vnpu_topo::cache::{labeled_hash, CacheStats, FreeSet, MappingCache};
use vnpu_topo::mapping::{Mapper, Strategy};
use vnpu_topo::{NodeId, Topology};

/// Candidate-enumeration cap for [`Hypervisor::fit_hint_in`] probes:
/// hints are advisory, so the probe budget stays well below a real
/// placement attempt's.
const FIT_PROBE_CANDIDATE_CAP: usize = 200;

/// Default HBM capacity managed by the hypervisor (the paper's SIM config
/// pairs the chip with tens of GB of HBM).
pub const DEFAULT_HBM_BYTES: u64 = 16 << 30;

/// Minimum buddy block (also the RTT entry granularity floor).
pub const MIN_BLOCK_BYTES: u64 = 1 << 20;

/// Largest single buddy block the hypervisor requests per RTT entry;
/// bigger guest windows become multiple entries.
pub const MAX_BLOCK_BYTES: u64 = 256 << 20;

/// The resource owner and meta-table manager for one physical NPU.
#[derive(Debug)]
pub struct Hypervisor {
    cfg: SocConfig,
    topo: Arc<Topology>,
    /// The chip's `labeled_hash` fingerprint, computed once so per-request
    /// mappers don't re-hash the whole topology before a cache lookup.
    phys_key: u64,
    core_users: Vec<u32>,
    /// The free-core region (`core_users[i] == 0`), maintained
    /// incrementally so the mapping hot path never rebuilds it.
    free_set: FreeSet,
    buddy: BuddyAllocator,
    vnpus: BTreeMap<VmId, VirtualNpu>,
    next_vm: u32,
    config_cycles: u64,
    mmio: MmioSpace,
    /// Memoized mapping results keyed by (request, strategy, free region).
    cache: MappingCache,
    /// Queued create requests awaiting placement.
    admissions: AdmissionQueue,
    /// Monotone count of vNPU destructions (drives retry-after-free).
    free_events: u64,
    /// Memoized *fit-hint probe* results, kept separate from the
    /// placement cache so advisory probes never inflate the
    /// placement-memoization statistics ([`Hypervisor::cache_stats`])
    /// that serving reports and benches assert on.
    hint_cache: MappingCache,
    /// Reconfiguration generation, folded into every mapping-cache key:
    /// hardware changes the topology fingerprint cannot see (hybrid-core
    /// scaling alters heterogeneous match costs) bump this counter so
    /// previously cached strategies expire instead of replaying stale
    /// placements.
    topo_generation: u64,
}

impl Hypervisor {
    /// Creates a hypervisor over a physical NPU with the default HBM size.
    pub fn new(cfg: SocConfig) -> Self {
        Self::with_hbm_bytes(cfg, DEFAULT_HBM_BYTES)
    }

    /// Creates a hypervisor with an explicit HBM capacity.
    pub fn with_hbm_bytes(cfg: SocConfig, hbm_bytes: u64) -> Self {
        let mut topo = Topology::mesh2d(cfg.mesh_width, cfg.mesh_height);
        // Annotate distance to the memory interfaces (west edge) so that
        // heterogeneous mapping costs can use it.
        let interfaces: Vec<NodeId> = (0..cfg.mesh_height)
            .map(|row| NodeId(row * cfg.mesh_width))
            .collect();
        topo.annotate_mem_distance(&interfaces);
        let n = cfg.core_count() as usize;
        let mut mmio = MmioSpace::new();
        mmio.write_pf(Requester::Hypervisor, PfReg::HyperEnable, 1)
            .expect("hypervisor owns the PF");
        let phys_key = labeled_hash(&topo);
        Hypervisor {
            topo: Arc::new(topo),
            phys_key,
            core_users: vec![0; n],
            free_set: FreeSet::all_free(n),
            buddy: BuddyAllocator::new(PhysAddr(0x8_0000_0000), hbm_bytes, MIN_BLOCK_BYTES),
            vnpus: BTreeMap::new(),
            next_vm: 0,
            config_cycles: 0,
            mmio,
            cache: MappingCache::default(),
            admissions: AdmissionQueue::default(),
            free_events: 0,
            hint_cache: MappingCache::default(),
            topo_generation: 0,
            cfg,
        }
    }

    /// The mapper for this chip, bound to the precomputed topology
    /// fingerprint and the current reconfiguration generation.
    fn mapper(&self) -> Mapper<'_> {
        Mapper::with_phys_key(&self.topo, self.phys_key).at_generation(self.topo_generation)
    }

    /// Takes one user reference on a core, updating the free region when
    /// the core transitions free → used.
    fn acquire_core(&mut self, core: u32) {
        let users = &mut self.core_users[core as usize];
        *users += 1;
        if *users == 1 {
            self.free_set.occupy(NodeId(core));
        }
    }

    /// Drops one user reference on a core, updating the free region when
    /// the core transitions used → free.
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::OverRelease`] when the core has no user — a
    /// double release, which previously was silently masked by a
    /// saturating subtraction.
    fn release_core(&mut self, core: u32) -> Result<()> {
        let users = &mut self.core_users[core as usize];
        if *users == 0 {
            return Err(VnpuError::OverRelease { core });
        }
        *users -= 1;
        if *users == 0 {
            self.free_set.release(NodeId(core));
            // Any used→free transition is a retry signal, whether it came
            // from destroy_vnpu or an administrative release_cores — a
            // retry-after-free request must not stall behind capacity
            // freed outside a vNPU teardown.
            self.free_events += 1;
        }
        Ok(())
    }

    /// The controller's MMIO register space (PF + per-tenant VFs).
    pub fn mmio(&self) -> &MmioSpace {
        &self.mmio
    }

    /// Mutable MMIO access — hyper-mode configuration or guest doorbells
    /// (access rules are enforced per call by [`MmioSpace`]).
    pub fn mmio_mut(&mut self) -> &mut MmioSpace {
        &mut self.mmio
    }

    /// The SoC configuration.
    pub fn config(&self) -> &SocConfig {
        &self.cfg
    }

    /// The physical topology (memory-distance annotated).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Currently free physical cores, ascending.
    pub fn free_cores(&self) -> Vec<u32> {
        self.free_set.nodes().into_iter().map(|n| n.0).collect()
    }

    /// The free-core region (incrementally maintained).
    pub fn free_set(&self) -> &FreeSet {
        &self.free_set
    }

    /// Number of free cores.
    pub fn free_core_count(&self) -> u32 {
        self.free_set.free_count() as u32
    }

    /// Mapping-cache effectiveness counters (hits, misses, evictions).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Free HBM bytes.
    pub fn hbm_free_bytes(&self) -> u64 {
        self.buddy.free_bytes()
    }

    /// Total managed HBM bytes.
    pub fn hbm_total_bytes(&self) -> u64 {
        self.buddy.total_bytes()
    }

    /// Monotone count of resource-freeing events — core used→free
    /// transitions (from vNPU teardown *or* administrative core release)
    /// and vNPU destructions (which also free HBM). This is the
    /// retry-after-free signal.
    pub fn free_events(&self) -> u64 {
        self.free_events
    }

    /// Fraction of physical cores currently allocated.
    pub fn core_utilization(&self) -> f64 {
        1.0 - f64::from(self.free_core_count()) / f64::from(self.cfg.core_count())
    }

    /// Controller cycles spent configuring meta-tables so far (Figure 11).
    pub fn total_config_cycles(&self) -> u64 {
        self.config_cycles
    }

    /// The reconfiguration generation mapping-cache keys are bound to.
    pub fn topology_generation(&self) -> u64 {
        self.topo_generation
    }

    /// Declares a hardware reconfiguration the topology fingerprint
    /// cannot see — hybrid-core scaling
    /// ([`vnpu_sim::machine::Machine::set_core_scales`]) changes
    /// heterogeneous match costs without touching the graph. Every
    /// mapping memoized before the bump silently expires (its key carries
    /// the old generation).
    ///
    /// The bare increment is sound for this hypervisor's own cache. When
    /// several *identical-model* chips share one cache, two chips bumped
    /// the same number of times after *different* reconfigs would alias —
    /// chips paired with a machine should instead mirror the machine's
    /// hardware-state hash chain via
    /// [`Hypervisor::set_topology_generation`] (the serve layer's
    /// `set_core_scales` does).
    pub fn bump_topology_generation(&mut self) {
        self.topo_generation += 1;
    }

    /// Adopts an externally tracked reconfiguration counter — when the
    /// chip is paired with a [`vnpu_sim::machine::Machine`], its
    /// [`vnpu_sim::machine::Machine::topology_generation`] is the ground
    /// truth (it is bumped inside `set_core_scales` itself and cannot
    /// drift), and the pairing layer mirrors it here after every
    /// reconfig.
    pub fn set_topology_generation(&mut self, generation: u64) {
        self.topo_generation = generation;
    }

    /// Number of live virtual NPUs.
    pub fn vnpu_count(&self) -> usize {
        self.vnpus.len()
    }

    /// Live virtual NPUs, ascending by VM ID.
    pub fn vnpus(&self) -> impl Iterator<Item = (&VmId, &VirtualNpu)> {
        self.vnpus.iter()
    }

    /// Looks up a virtual NPU.
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::UnknownVm`] for stale IDs.
    pub fn vnpu(&self, vm: VmId) -> Result<&VirtualNpu> {
        self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))
    }

    /// Provisions a virtual NPU: maps cores, allocates memory, builds and
    /// "deploys" the routing and range-translation tables. Mapping goes
    /// through this hypervisor's own [`MappingCache`]; chips managed by a
    /// [`crate::cluster::Cluster`] use
    /// [`Hypervisor::create_vnpu_in`] with the cluster's shared cache
    /// instead.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::EmptyRequest`] — zero cores or zero memory.
    /// * [`VnpuError::Mapping`] — no core allocation satisfies the
    ///   strategy (e.g. topology lock-in under
    ///   [`vnpu_topo::mapping::Strategy::exact_only`]).
    /// * [`VnpuError::Memory`] — HBM exhausted.
    pub fn create_vnpu(&mut self, req: VnpuRequest) -> Result<VmId> {
        let mut cache = std::mem::take(&mut self.cache);
        let result = self.create_vnpu_in(req, &mut cache);
        self.cache = cache;
        result
    }

    /// [`Hypervisor::create_vnpu`] with an explicit (possibly shared)
    /// [`MappingCache`]. A [`crate::cluster::Cluster`] passes one cache to
    /// every chip it owns; entries cannot alias across chips because the
    /// key carries each chip's topology fingerprint and reconfiguration
    /// generation.
    ///
    /// # Errors
    ///
    /// As for [`Hypervisor::create_vnpu`].
    pub fn create_vnpu_in(&mut self, req: VnpuRequest, cache: &mut MappingCache) -> Result<VmId> {
        if req.core_count() == 0 || req.memory_bytes() == 0 {
            return Err(VnpuError::EmptyRequest);
        }
        // 1. Core allocation via the topology-mapping strategy, memoized
        //    through the mapping cache (the request topology + free-region
        //    fingerprint identify the answer). With temporal sharing (§7
        //    over-provisioning), the available set is widened with the
        //    least-loaded busy cores; their current tenants will be
        //    time-division-multiplexed with this one. The widened set is
        //    its own cacheable region — its fingerprint differs from the
        //    plain free set's.
        let widened: Option<FreeSet> = if req.wants_temporal_sharing()
            && self.free_set.free_count() < req.core_count() as usize
        {
            let mut set = self.free_set.clone();
            let mut busy: Vec<(u32, u32)> = self
                .core_users
                .iter()
                .enumerate()
                .filter(|(_, &u)| u > 0)
                .map(|(i, &u)| (u, i as u32))
                .collect();
            busy.sort_unstable();
            for (_, core) in busy {
                if set.free_count() >= req.core_count() as usize {
                    break;
                }
                set.release(NodeId(core));
            }
            Some(set)
        } else {
            None
        };
        let available = widened.as_ref().unwrap_or(&self.free_set);
        let mapping =
            self.mapper()
                .map_cached(available, req.topology(), req.strategy_ref(), cache)?;

        // 2. Guest memory: buddy blocks mapped 1:1 into RTT entries.
        let (entries, blocks) = self.allocate_memory(req.memory_bytes())?;
        let mem_bytes: u64 = entries.iter().map(|e| e.size).sum();

        // 3. Routing table: compact form when the allocation is an exact
        //    axis-aligned mesh window, standard otherwise.
        let vm = VmId(self.next_vm);
        let routing_table = self.build_routing_table(vm, &req, &mapping);

        // 4. Meta-zone budget check per core.
        let layout = MetaZoneLayout {
            noc_rt_entries: u64::from(req.core_count()),
            direction_entries: if req.wants_noc_isolation() {
                // Worst case: every pair stores a full path.
                u64::from(req.core_count()) * u64::from(req.core_count())
            } else {
                0
            },
            rtt_entries: entries.len() as u64,
        };
        if let Err(e) = layout.check(self.cfg.scratchpad_bytes) {
            for b in &blocks {
                let _ = self.buddy.free(b.addr);
            }
            return Err(e);
        }

        // 5. Deploy: mark cores used, account controller configuration.
        for &n in mapping.phys_nodes() {
            self.acquire_core(n.0);
        }
        self.config_cycles += routing_table.config_cycles();
        self.config_cycles += entries.len() as u64 * 22; // RTT entry writes
        self.next_vm += 1;
        let vnpu = VirtualNpu::new(
            vm,
            req.topology().clone(),
            Arc::clone(&self.topo),
            mapping,
            routing_table,
            entries,
            blocks,
            mem_bytes,
            req.memory_mode(),
            req.wants_noc_isolation(),
            req.bandwidth_cap_bytes(),
        );
        self.vnpus.insert(vm, vnpu);
        Ok(vm)
    }

    /// Administratively reserves specific physical cores (hyper-mode
    /// operation: maintenance, pinned system services, or reproducing a
    /// pre-occupied chip state as in the paper's Figure 17/18 setups).
    /// Already-reserved cores are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`VnpuError::VirtCoreOutOfRange`] if any index is outside
    /// the chip.
    pub fn reserve_cores(&mut self, cores: &[u32]) -> Result<()> {
        let count = self.cfg.core_count();
        for &c in cores {
            if c >= count {
                return Err(VnpuError::VirtCoreOutOfRange {
                    vcore: VirtCoreId(c),
                    count,
                });
            }
        }
        for &c in cores {
            self.acquire_core(c);
        }
        Ok(())
    }

    /// Releases cores previously taken with [`Hypervisor::reserve_cores`].
    ///
    /// The call is transactional: it validates every index *and* every
    /// user count up front, so a failing call changes nothing.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::VirtCoreOutOfRange`] — an index outside the chip.
    /// * [`VnpuError::OverRelease`] — a core released more times than it
    ///   was acquired (counting duplicates within this call).
    pub fn release_cores(&mut self, cores: &[u32]) -> Result<()> {
        let count = self.cfg.core_count();
        let mut releases = vec![0u32; count as usize];
        for &c in cores {
            if c >= count {
                return Err(VnpuError::VirtCoreOutOfRange {
                    vcore: VirtCoreId(c),
                    count,
                });
            }
            releases[c as usize] += 1;
            if releases[c as usize] > self.core_users[c as usize] {
                return Err(VnpuError::OverRelease { core: c });
            }
        }
        for &c in cores {
            self.release_core(c).expect("validated above");
        }
        Ok(())
    }

    /// Tears down a virtual NPU, releasing cores and memory.
    ///
    /// # Errors
    ///
    /// * [`VnpuError::UnknownVm`] — stale ID.
    /// * [`VnpuError::OverRelease`] — a core of this vNPU no longer has a
    ///   user reference (an earlier [`Hypervisor::release_cores`] misuse);
    ///   the vNPU is left untouched.
    pub fn destroy_vnpu(&mut self, vm: VmId) -> Result<()> {
        let vnpu = self.vnpus.get(&vm).ok_or(VnpuError::UnknownVm(vm))?;
        if let Some(n) = vnpu
            .mapping()
            .phys_nodes()
            .iter()
            .find(|n| self.core_users[n.index()] == 0)
        {
            return Err(VnpuError::OverRelease { core: n.0 });
        }
        let vnpu = self.vnpus.remove(&vm).expect("looked up above");
        for &n in vnpu.mapping().phys_nodes() {
            self.release_core(n.0).expect("validated above");
        }
        for b in vnpu.blocks() {
            self.buddy
                .free(b.addr)
                .expect("hypervisor-owned block frees cleanly");
        }
        self.free_events += 1;
        Ok(())
    }

    /// Builds per-core services for binding into a machine — convenience
    /// over [`VirtualNpu::services`].
    ///
    /// # Errors
    ///
    /// Propagates lookup and construction failures.
    pub fn services(&self, vm: VmId, vcore: VirtCoreId) -> Result<vnpu_sim::machine::CoreServices> {
        self.vnpu(vm)?.services(vcore)
    }

    /// Queues a create request for placement by a later admission tick.
    /// Requests that can *never* fit (more cores than the chip, more
    /// memory than the HBM) are still queued; the first tick rejects them.
    pub fn submit(&mut self, req: VnpuRequest) -> RequestId {
        self.admissions.push(req)
    }

    /// Number of requests waiting for placement.
    pub fn pending_count(&self) -> usize {
        self.admissions.len()
    }

    /// The admission queue (policy, attempt budget, queued IDs).
    pub fn admissions(&self) -> &AdmissionQueue {
        &self.admissions
    }

    /// Replaces the admission ordering policy with a trait object —
    /// any [`AdmissionPolicy`] implementation, including ones defined
    /// outside this crate.
    pub fn set_admission_policy_obj(&mut self, policy: std::sync::Arc<dyn AdmissionPolicy>) {
        self.admissions.set_policy(policy);
    }

    /// Replaces the admission ordering policy from the legacy closed
    /// enum — a shim over [`Hypervisor::set_admission_policy_obj`].
    #[deprecated(
        since = "0.1.0",
        note = "admission policies are open trait objects now; \
                use `set_admission_policy_obj` with `Fifo`, `SmallestFirst`, \
                `RetryAfterFree`, `Backfill`, `Aging`, or a custom impl"
    )]
    pub fn set_admission_policy(&mut self, policy: AdmissionPolicyKind) {
        self.admissions.set_policy(policy.to_policy());
    }

    /// Caps placement attempts per queued request (see
    /// [`AdmissionQueue::set_max_attempts`]).
    pub fn set_admission_max_attempts(&mut self, max_attempts: Option<u32>) {
        self.admissions.set_max_attempts(max_attempts);
    }

    /// Runs one admission tick: attempts queued requests in policy order,
    /// placing each through the same transactional
    /// [`Hypervisor::create_vnpu`] pipeline (and therefore through the
    /// mapping cache). Returns the tick's *terminal* decisions —
    /// admissions and rejections; requests that merely stay queued produce
    /// no event.
    ///
    /// Rejection happens when a request cannot possibly fit the chip
    /// (cores or memory exceed the hardware) or when its attempt budget is
    /// exhausted. What happens after a non-terminal failure is the
    /// policy's call ([`FailureAction`]): head-of-line policies stop the
    /// tick, skip-ahead policies continue, backfill policies continue for
    /// strictly smaller requests only.
    pub fn process_admissions(&mut self) -> Vec<AdmissionEvent> {
        let mut cache = std::mem::take(&mut self.cache);
        let events = self.process_admissions_in(&mut cache);
        self.cache = cache;
        events
    }

    /// [`Hypervisor::process_admissions`] with an explicit (possibly
    /// shared) [`MappingCache`] — the form a
    /// [`crate::cluster::Cluster`]-managed chip uses.
    pub fn process_admissions_in(&mut self, cache: &mut MappingCache) -> Vec<AdmissionEvent> {
        let mut events = Vec::new();
        let mut tick = AdmissionTick::new();
        for id in self.admissions.attempt_order(self.free_events) {
            let Some(req) = self.admissions.request(id) else {
                // A policy may return stale or duplicate IDs; ignore them.
                continue;
            };
            if tick.skips(&req.view()) {
                continue;
            }
            // A failure is terminal (reject now, never retry) when the
            // request can't fit the hardware even on an idle chip. The
            // classification only applies to *failed* attempts: if a
            // future placement path (sharding, over-provisioning) lets
            // such a request place after all, the admission succeeds
            // normally.
            let terminal = req.req.core_count() == 0
                || req.req.memory_bytes() == 0
                || req.req.core_count() > self.cfg.core_count()
                || req.req.memory_bytes() > self.buddy.total_bytes();
            let request = req.req.clone();
            match self.create_vnpu_in(request, cache) {
                Ok(vm) => {
                    self.admissions.remove(id);
                    events.push(AdmissionEvent {
                        id,
                        outcome: AdmissionOutcome::Admitted(vm),
                        config_cycles_total: self.config_cycles,
                        fit_hint: None,
                    });
                }
                Err(err) => {
                    match tick.on_failure(&mut self.admissions, id, self.free_events, terminal) {
                        TickVerdict::Reject => {
                            let fit_hint = match &err {
                                VnpuError::Mapping(vnpu_topo::TopoError::NoCandidate) => {
                                    self.fit_hint()
                                }
                                _ => None,
                            };
                            events.push(AdmissionEvent {
                                id,
                                outcome: AdmissionOutcome::Rejected(err),
                                config_cycles_total: self.config_cycles,
                                fit_hint,
                            });
                        }
                        TickVerdict::Defer => {}
                        TickVerdict::EndTick => break,
                    }
                }
            }
        }
        events
    }

    /// The largest request shape that would place on the *current* free
    /// region, probed largest-first with near-square mesh shapes through
    /// the given cache — so repeated rejections against an unchanged
    /// free region replay the memoized exhaustion proofs instead of
    /// re-enumerating. `None` when nothing fits (no free cores, or every
    /// probe fails).
    ///
    /// Pass a *dedicated* hint cache (as [`Hypervisor::fit_hint`] and the
    /// cluster do), not the placement cache: probes are advisory and
    /// would otherwise distort the placement-memoization hit rate.
    pub fn fit_hint_in(&self, cache: &mut MappingCache) -> Option<FitHint> {
        // Probes enumerate *connected* candidates, so nothing larger than
        // the largest connected free component can succeed — start there
        // instead of burning guaranteed-failure enumerations from the
        // total free count.
        let largest_island = self.fragmentation().largest_free_component;
        self.fit_hint_in_bounded(cache, largest_island)
    }

    /// [`Hypervisor::fit_hint_in`] with the chip's largest connected free
    /// component already known (callers that just computed
    /// [`Hypervisor::fragmentation`] pass it in to avoid a second
    /// free-region scan). Probing starts at `largest_island` because
    /// larger connected candidates cannot exist.
    pub fn fit_hint_in_bounded(
        &self,
        cache: &mut MappingCache,
        largest_island: usize,
    ) -> Option<FitHint> {
        let free = self.free_set.free_count() as u32;
        if free == 0 || largest_island == 0 {
            return None;
        }
        let mapper = self.mapper();
        let strategy = Strategy::similar_topology()
            .threads(1)
            .candidate_cap(FIT_PROBE_CANDIDATE_CAP);
        for cores in (1..=(largest_island as u32).min(free)).rev() {
            let probe = crate::vnpu::near_mesh_topology(cores);
            if mapper
                .map_cached(&self.free_set, &probe, &strategy, cache)
                .is_ok()
            {
                let width = probe
                    .mesh_shape()
                    .map_or_else(|| (cores as f64).sqrt().ceil() as u32, |shape| shape.width);
                return Some(FitHint {
                    cores,
                    width,
                    height: cores.div_ceil(width.max(1)),
                });
            }
        }
        None
    }

    /// [`Hypervisor::fit_hint_in`] against this hypervisor's own
    /// dedicated hint cache (placement-cache statistics stay untouched).
    pub fn fit_hint(&mut self) -> Option<FitHint> {
        let mut cache = std::mem::take(&mut self.hint_cache);
        let hint = self.fit_hint_in(&mut cache);
        self.hint_cache = cache;
        hint
    }

    /// The per-tick fragmentation picture: free-core connectivity and
    /// buddy external fragmentation (the two resources whose fragmentation
    /// gates admission).
    pub fn fragmentation(&self) -> FragmentationStats {
        let free_nodes = self.free_set.nodes();
        let components = self.topo.subset_components(&free_nodes);
        let free_cores = free_nodes.len();
        let largest = components.first().copied().unwrap_or(0);
        let free_bytes = self.buddy.free_bytes();
        let largest_block = self.buddy.largest_free_block();
        FragmentationStats {
            free_cores: free_cores as u32,
            free_components: components.len(),
            largest_free_component: largest,
            free_connectivity: if free_cores == 0 {
                1.0
            } else {
                largest as f64 / free_cores as f64
            },
            hbm_free_bytes: free_bytes,
            hbm_largest_free_block: largest_block,
            hbm_external_fragmentation: if free_bytes == 0 {
                0.0
            } else {
                1.0 - largest_block as f64 / free_bytes as f64
            },
        }
    }

    fn allocate_memory(&mut self, bytes: u64) -> Result<(Vec<RttEntry>, Vec<Block>)> {
        let mut entries: Vec<RttEntry> = Vec::new();
        let mut blocks: Vec<Block> = Vec::new();
        let mut va = VirtAddr(GUEST_VA_BASE);
        let mut remaining = bytes;
        while remaining > 0 {
            let ask = remaining.clamp(MIN_BLOCK_BYTES, MAX_BLOCK_BYTES);
            let block = match self.buddy.alloc(ask) {
                Ok(b) => b,
                Err(e) => {
                    // Roll back partial allocations.
                    for b in &blocks {
                        let _ = self.buddy.free(b.addr);
                    }
                    return Err(VnpuError::Memory(e));
                }
            };
            entries.push(RttEntry::new(va, block.addr, block.size, Perm::RW));
            va = va.offset(block.size);
            remaining = remaining.saturating_sub(block.size);
            blocks.push(block);
        }
        Ok((entries, blocks))
    }

    /// Detects an axis-aligned window allocation and emits the compact
    /// mesh table, else the standard per-entry table.
    fn build_routing_table(
        &self,
        vm: VmId,
        req: &VnpuRequest,
        mapping: &vnpu_topo::mapping::Mapping,
    ) -> RoutingTable {
        let v2p: Vec<u32> = mapping.phys_nodes().iter().map(|n| n.0).collect();
        if mapping.edit_distance() == 0 {
            if let Some(shape) = req.topology().mesh_shape() {
                let w = self.cfg.mesh_width;
                let origin = v2p[0];
                let window = v2p.iter().enumerate().all(|(v, &p)| {
                    let vx = v as u32 % shape.width;
                    let vy = v as u32 / shape.width;
                    p == origin + vy * w + vx
                });
                if window {
                    return RoutingTable::mesh2d(vm, crate::PhysCoreId(origin), shape, w);
                }
            }
        }
        RoutingTable::from_dense(vm, &v2p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::{Backfill, RetryAfterFree, SmallestFirst};
    use crate::vchunk::MemMode;
    use std::sync::Arc;

    fn hv() -> Hypervisor {
        Hypervisor::new(SocConfig::sim()) // 6x6
    }

    #[test]
    fn create_exact_mesh_vnpu() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
        let v = h.vnpu(vm).unwrap();
        assert_eq!(v.core_count(), 9);
        assert_eq!(v.mapping().edit_distance(), 0);
        assert_eq!(v.routing_table().entry_count(), 1, "compact table expected");
        assert_eq!(h.free_core_count(), 27);
    }

    #[test]
    fn paper_lock_in_scenario_on_5x5() {
        // §4.3: 5x5 chip, two 3x3 requests. Exact-only: second fails and
        // ~64% of cores idle; similar-topology: both fit.
        let cfg = SocConfig {
            mesh_width: 5,
            mesh_height: 5,
            ..SocConfig::sim()
        };
        let mut h = Hypervisor::new(cfg.clone());
        h.create_vnpu(VnpuRequest::mesh(3, 3).strategy(Strategy::exact_only()))
            .unwrap();
        let second_exact = h.create_vnpu(VnpuRequest::mesh(3, 3).strategy(Strategy::exact_only()));
        assert!(second_exact.is_err(), "topology lock-in must occur");
        assert_eq!(h.free_core_count(), 16); // 64% of 25 wasted

        let mut h2 = Hypervisor::new(cfg);
        h2.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
        let vm2 = h2
            .create_vnpu(VnpuRequest::mesh(3, 3).strategy(Strategy::similar_topology().threads(2)))
            .unwrap();
        let v2 = h2.vnpu(vm2).unwrap();
        assert_eq!(v2.core_count(), 9);
        assert!(v2.mapping().edit_distance() > 0);
        assert_eq!(h2.free_core_count(), 7);
    }

    #[test]
    fn destroy_releases_resources() {
        let mut h = hv();
        let before_mem = h.buddy.free_bytes();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(128 << 20))
            .unwrap();
        assert_eq!(h.free_core_count(), 32);
        assert!(h.buddy.free_bytes() < before_mem);
        h.destroy_vnpu(vm).unwrap();
        assert_eq!(h.free_core_count(), 36);
        assert_eq!(h.buddy.free_bytes(), before_mem);
        assert!(matches!(h.vnpu(vm), Err(VnpuError::UnknownVm(_))));
        assert!(h.destroy_vnpu(vm).is_err());
    }

    #[test]
    fn memory_plan_covers_request_contiguously() {
        let mut h = hv();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(600 << 20))
            .unwrap();
        let v = h.vnpu(vm).unwrap();
        let entries = v.rtt_entries();
        assert!(entries.len() >= 3, "600 MB needs multiple <=256 MB blocks");
        // VA-contiguous from the base.
        let mut va = GUEST_VA_BASE;
        for e in entries {
            assert_eq!(e.va.value(), va);
            va += e.size;
        }
        assert!(v.mem_bytes() >= 600 << 20);
    }

    #[test]
    fn hbm_exhaustion_rolls_back() {
        let mut h = Hypervisor::with_hbm_bytes(SocConfig::sim(), 64 << 20);
        let free_before = h.buddy.free_bytes();
        let r = h.create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(1 << 30));
        assert!(matches!(r, Err(VnpuError::Memory(_))));
        assert_eq!(
            h.buddy.free_bytes(),
            free_before,
            "partial blocks must be freed"
        );
        assert_eq!(h.free_core_count(), 36, "no cores leaked");
    }

    #[test]
    fn empty_request_rejected() {
        let mut h = hv();
        assert!(matches!(
            h.create_vnpu(VnpuRequest::mesh(2, 2).mem_bytes(0)),
            Err(VnpuError::EmptyRequest)
        ));
    }

    #[test]
    fn services_buildable_for_every_core() {
        let mut h = hv();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 3).noc_isolation(true))
            .unwrap();
        for v in 0..6 {
            let s = h.services(vm, VirtCoreId(v)).unwrap();
            assert_eq!(s.router.name(), "vrouter-confined");
            assert!(s.translator.name().starts_with("vchunk"));
        }
        assert!(h.services(vm, VirtCoreId(6)).is_err());
    }

    #[test]
    fn mem_mode_flows_to_services() {
        let mut h = hv();
        let vm = h
            .create_vnpu(VnpuRequest::mesh(2, 2).mem_mode(MemMode::Page { tlb_entries: 32 }))
            .unwrap();
        let s = h.services(vm, VirtCoreId(0)).unwrap();
        assert_eq!(s.translator.name(), "iotlb-32");
    }

    #[test]
    fn config_cycles_accumulate() {
        let mut h = hv();
        assert_eq!(h.total_config_cycles(), 0);
        h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let after_one = h.total_config_cycles();
        assert!(after_one > 0);
        h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        assert!(h.total_config_cycles() > after_one);
    }

    #[test]
    fn irregular_allocation_gets_standard_table() {
        let mut h = hv();
        // First take a 6x1 row so the remaining region still has 3x3
        // windows; then occupy one interior core via a 1x1 vNPU to break
        // window alignment in that area... simplest: allocate 1x1 at core 0
        // then request 6x6-minus impossible, so ask a line of 5.
        h.create_vnpu(VnpuRequest::mesh(1, 1)).unwrap();
        let vm = h
            .create_vnpu(VnpuRequest::custom(Topology::line(5)))
            .unwrap();
        let v = h.vnpu(vm).unwrap();
        // Line of 5 on a mesh still matches exactly (a row), possibly
        // shifted; either table form is valid but lookups must be total.
        for i in 0..5 {
            assert!(v.routing_table().lookup(VirtCoreId(i)).is_some());
        }
    }

    #[test]
    fn utilization_math() {
        let mut h = hv();
        assert_eq!(h.core_utilization(), 0.0);
        h.create_vnpu(VnpuRequest::mesh(3, 3)).unwrap();
        assert!((h.core_utilization() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn reserve_and_release_cores() {
        let mut h = hv();
        h.reserve_cores(&[0, 7, 35]).unwrap();
        assert_eq!(h.free_core_count(), 33);
        assert!(!h.free_cores().contains(&7));
        h.release_cores(&[7]).unwrap();
        assert!(h.free_cores().contains(&7));
        assert!(h.reserve_cores(&[99]).is_err());
    }

    #[test]
    fn temporal_sharing_overprovisions() {
        let mut h = hv();
        // Fill the whole chip spatially.
        let first = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        assert_eq!(h.free_core_count(), 0);
        // A strict request now fails...
        assert!(h.create_vnpu(VnpuRequest::mesh(2, 2)).is_err());
        // ...but temporal sharing places it on busy cores (TDM).
        let shared = h
            .create_vnpu(VnpuRequest::mesh(2, 2).temporal_sharing(true))
            .unwrap();
        let v = h.vnpu(shared).unwrap();
        assert_eq!(v.core_count(), 4);
        // Its cores are shared with the first tenant.
        let first_cores: Vec<u32> = h
            .vnpu(first)
            .unwrap()
            .mapping()
            .phys_nodes()
            .iter()
            .map(|n| n.0)
            .collect();
        for n in h.vnpu(shared).unwrap().mapping().phys_nodes() {
            assert!(first_cores.contains(&n.0));
        }
        // Destroying both returns every core.
        h.destroy_vnpu(shared).unwrap();
        h.destroy_vnpu(first).unwrap();
        assert_eq!(h.free_core_count(), 36);
    }

    #[test]
    fn over_release_is_an_error_not_a_silent_mask() {
        // Regression: release_cores/destroy_vnpu used saturating_sub on
        // the user counts, so a double release silently zeroed state and
        // later teardown corrupted accounting. It must be a hard error.
        let mut h = hv();
        h.reserve_cores(&[3]).unwrap();
        h.release_cores(&[3]).unwrap();
        assert_eq!(
            h.release_cores(&[3]),
            Err(VnpuError::OverRelease { core: 3 })
        );
        // Duplicates inside one call count too, and the failing call is
        // transactional: nothing is released.
        h.reserve_cores(&[5]).unwrap();
        assert_eq!(
            h.release_cores(&[5, 5]),
            Err(VnpuError::OverRelease { core: 5 })
        );
        assert!(!h.free_cores().contains(&5), "failed call must not mutate");
        h.release_cores(&[5]).unwrap();
        // destroy_vnpu notices when a vNPU's core was stripped externally.
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        let core = h.vnpu(vm).unwrap().mapping().phys_nodes()[0].0;
        h.release_cores(&[core]).unwrap(); // misuse: steals the vNPU's core
        assert_eq!(h.destroy_vnpu(vm), Err(VnpuError::OverRelease { core }));
        assert!(h.vnpu(vm).is_ok(), "failed destroy must keep the vNPU");
    }

    #[test]
    fn free_set_tracks_core_users_incrementally() {
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(3, 2)).unwrap();
        let reference: Vec<u32> = h
            .core_users
            .iter()
            .enumerate()
            .filter_map(|(i, &u)| (u == 0).then_some(i as u32))
            .collect();
        assert_eq!(h.free_cores(), reference);
        assert_eq!(h.free_set().free_count(), 30);
        h.destroy_vnpu(vm).unwrap();
        assert_eq!(h.free_set().free_count(), 36);
    }

    #[test]
    fn mapping_cache_hits_on_repeated_churn() {
        let mut h = hv();
        // Same request shape against the same free region, repeatedly.
        for _ in 0..4 {
            let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
            h.destroy_vnpu(vm).unwrap();
        }
        let stats = h.cache_stats();
        assert_eq!(stats.misses, 1, "one cold mapping");
        assert_eq!(stats.hits, 3, "subsequent identical requests must hit");
    }

    #[test]
    fn admission_fifo_blocks_head_of_line() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap(); // 6 cores left
        let big = h.submit(VnpuRequest::mesh(3, 3));
        let small = h.submit(VnpuRequest::mesh(1, 2));
        let events = h.process_admissions();
        assert!(events.is_empty(), "FIFO head cannot place, tick stops");
        assert_eq!(h.pending_count(), 2);
        let _ = (big, small);
    }

    #[test]
    fn admission_smallest_first_places_past_blocked_head() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap();
        let big = h.submit(VnpuRequest::mesh(3, 3));
        let small = h.submit(VnpuRequest::mesh(1, 2));
        h.set_admission_policy_obj(Arc::new(SmallestFirst));
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, small);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Admitted(_)));
        assert_eq!(h.pending_count(), 1, "big request stays queued");
        let _ = big;
    }

    #[test]
    fn admission_retry_after_free_waits_for_departure() {
        let mut h = hv();
        let resident = h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap(); // full chip
        h.set_admission_policy_obj(Arc::new(RetryAfterFree));
        let id = h.submit(VnpuRequest::mesh(2, 2));
        assert!(h.process_admissions().is_empty());
        // Without a destroy, the next tick does not even attempt it.
        let misses_before = h.cache_stats().misses;
        assert!(h.process_admissions().is_empty());
        assert_eq!(h.cache_stats().misses, misses_before, "no re-attempt");
        h.destroy_vnpu(resident).unwrap();
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Admitted(_)));
    }

    #[test]
    fn admission_events_stamp_config_cycles_incrementally() {
        let mut h = hv();
        h.submit(VnpuRequest::mesh(2, 2));
        h.submit(VnpuRequest::mesh(2, 2));
        let before = h.total_config_cycles();
        let events = h.process_admissions();
        let after = h.total_config_cycles();
        assert_eq!(events.len(), 2);
        // Each placement deploys its own meta-tables, so the per-event
        // cumulative counters are strictly increasing and the first
        // admission's stamp must not include the second's work.
        assert!(before < events[0].config_cycles_total);
        assert!(events[0].config_cycles_total < events[1].config_cycles_total);
        assert_eq!(events[1].config_cycles_total, after);
    }

    #[test]
    fn admission_rejects_impossible_and_budget_exhausted() {
        let mut h = hv();
        let impossible = h.submit(VnpuRequest::mesh(7, 7)); // 49 > 36 cores
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, impossible);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Rejected(_)));

        h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap(); // fill the chip
        h.set_admission_max_attempts(Some(2));
        let starved = h.submit(VnpuRequest::mesh(2, 2));
        assert!(h.process_admissions().is_empty(), "attempt 1 defers");
        let events = h.process_admissions();
        assert_eq!(events.len(), 1, "attempt 2 exhausts the budget");
        assert_eq!(events[0].id, starved);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Rejected(_)));
        assert_eq!(h.pending_count(), 0);
    }

    #[test]
    fn admission_backfill_skips_only_smaller_requests() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap(); // 6 cores left
        let big = h.submit(VnpuRequest::mesh(3, 3)); // blocked head (9)
        let same = h.submit(VnpuRequest::mesh(3, 3)); // same size: held back
        let small = h.submit(VnpuRequest::mesh(1, 2)); // backfills
        h.set_admission_policy_obj(Arc::new(Backfill));
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, small);
        assert!(matches!(events[0].outcome, AdmissionOutcome::Admitted(_)));
        assert_eq!(h.pending_count(), 2, "both 3x3 requests stay queued");
        let _ = (big, same);
    }

    #[test]
    fn legacy_enum_policy_shim_still_works() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap();
        h.submit(VnpuRequest::mesh(3, 3));
        let small = h.submit(VnpuRequest::mesh(1, 2));
        #[allow(deprecated)]
        h.set_admission_policy(AdmissionPolicyKind::SmallestFirst);
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, small);
    }

    #[test]
    fn reconfig_generation_invalidates_mapping_cache() {
        // Regression for the ROADMAP's "mapping-cache invalidation on
        // reconfig" hazard: a hybrid-core rescale between two identical
        // requests must miss the cache — the memoized strategy was costed
        // against the old hardware.
        let mut h = hv();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        h.destroy_vnpu(vm).unwrap();
        assert_eq!(h.cache_stats().misses, 1);
        h.bump_topology_generation();
        let vm = h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        h.destroy_vnpu(vm).unwrap();
        let stats = h.cache_stats();
        assert_eq!(stats.hits, 0, "post-reconfig lookup must not hit");
        assert_eq!(stats.misses, 2);
        // Without another reconfig the new generation's entry hits.
        h.create_vnpu(VnpuRequest::mesh(2, 2)).unwrap();
        assert_eq!(h.cache_stats().hits, 1);
    }

    #[test]
    fn terminal_no_candidate_rejection_carries_fit_hint() {
        // Two free islands — a 3x2 block (6 cores) and a 2x2 block (4
        // cores), 10 free total. A 3x3 request (9 cores) passes the count
        // check but has no *connected* candidate → NoCandidate; with a
        // budget of one attempt it is terminally rejected. The event must
        // offer the largest shape that does fit: the whole 6-core island.
        let mut h = hv();
        let keep_free = [0u32, 1, 2, 6, 7, 8, 28, 29, 34, 35];
        let taken: Vec<u32> = (0..36).filter(|c| !keep_free.contains(c)).collect();
        h.reserve_cores(&taken).unwrap();
        h.set_admission_max_attempts(Some(1));
        let id = h.submit(VnpuRequest::mesh(3, 3));
        let events = h.process_admissions();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].id, id);
        assert!(matches!(
            events[0].outcome,
            AdmissionOutcome::Rejected(VnpuError::Mapping(vnpu_topo::TopoError::NoCandidate))
        ));
        let hint = events[0].fit_hint.expect("a 6-core island fits");
        assert_eq!(hint.cores, 6, "largest fitting shape fills the big island");
        assert_eq!((hint.width, hint.height), (3, 2));
        // Admitted events never carry a hint.
        let mut h2 = hv();
        h2.submit(VnpuRequest::mesh(2, 2));
        let ev = h2.process_admissions();
        assert!(ev[0].fit_hint.is_none());
    }

    #[test]
    fn fit_hint_is_none_on_a_full_chip() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 6)).unwrap();
        assert_eq!(h.fit_hint(), None);
    }

    #[test]
    fn fragmentation_stats_reflect_lock_in() {
        let cfg = SocConfig {
            mesh_width: 3,
            mesh_height: 3,
            ..SocConfig::sim()
        };
        let mut h = Hypervisor::new(cfg);
        let frag = h.fragmentation();
        assert_eq!(frag.free_components, 1);
        assert!((frag.free_connectivity - 1.0).abs() < 1e-12);
        assert!(frag.hbm_external_fragmentation < 1e-12);
        // Occupy the middle row: the free region splits into two islands.
        h.reserve_cores(&[3, 4, 5]).unwrap();
        let frag = h.fragmentation();
        assert_eq!(frag.free_cores, 6);
        assert_eq!(frag.free_components, 2);
        assert_eq!(frag.largest_free_component, 3);
        assert!((frag.free_connectivity - 0.5).abs() < 1e-12);
    }

    #[test]
    fn temporal_sharing_prefers_free_cores_first() {
        let mut h = hv();
        h.create_vnpu(VnpuRequest::mesh(6, 5)).unwrap(); // 30 cores busy
        let vm = h
            .create_vnpu(VnpuRequest::custom(Topology::line(6)).temporal_sharing(true))
            .unwrap();
        // Six cores were still free; sharing must not have been needed.
        let v = h.vnpu(vm).unwrap();
        for n in v.mapping().phys_nodes() {
            assert!(n.0 >= 30, "free bottom row preferred, got {n}");
        }
    }
}
