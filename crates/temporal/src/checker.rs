//! The shipped rule catalogue: [`TemporalChecker::standard`] composes
//! the seven `TEMP-*` rules from the combinators in [`crate::props`],
//! and [`check_trace`] runs them offline over a recorded trace.

use crate::props::{always, conserved, leads_to_within, monotone, Property};
use crate::trace::TraceEvent;
use crate::{Subject, TempRule, TemporalFinding};
use std::fmt;

/// Tuning knobs for the standard rule catalogue. Bounds are in ticks
/// and must match the policies of the run being checked — the checker
/// discovers violations, it does not guess policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckerConfig {
    /// `TEMP-STARVE`: every arrival must be admitted or terminally
    /// rejected within this many ticks. `None` disables the rule (use
    /// when the run's admission policy gives no bound).
    pub starve_bound_ticks: Option<u64>,
    /// `TEMP-DRAIN`: a draining chip may go at most this many ticks
    /// with *silent* steps (nothing moved, nothing explicitly skipped,
    /// residents remaining) before the drain counts as stalled.
    pub drain_stall_ticks: u64,
    /// `TEMP-FAULT`: a detected outage must resolve (recovered, lost,
    /// or departed) within this many ticks — mirror of the serve
    /// policy's `max_recovery_ticks`.
    pub max_recovery_ticks: u64,
    /// `TEMP-HINT`: check emitted fit hints against the admission
    /// pass's snapshot bound.
    pub check_hints: bool,
}

impl Default for CheckerConfig {
    /// Defaults mirror the serve defaults: drain stalls flagged after
    /// 16 silent ticks, recovery deadline 8 ticks, hints checked,
    /// starvation disabled until the caller supplies the policy bound.
    fn default() -> Self {
        CheckerConfig {
            starve_bound_ticks: None,
            drain_stall_ticks: 16,
            max_recovery_ticks: 8,
            check_hints: true,
        }
    }
}

/// Extracts the subject of a fault-recovery obligation: the tenant's
/// identity at detection time.
fn tenant(chip: usize, vm: u32) -> Subject {
    Subject::Tenant { chip, vm }
}

/// The streaming checker: feed it every [`TraceEvent`] in emission
/// order (online, inside the serve loop, or offline over a recording),
/// then [`TemporalChecker::finish`] once. Findings accumulate in
/// [`TemporalChecker::findings`] and are stable across replays of the
/// same trace.
pub struct TemporalChecker {
    props: Vec<Box<dyn Property>>,
    findings: Vec<TemporalFinding>,
    max_tick: u64,
    finished: bool,
}

impl fmt::Debug for TemporalChecker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TemporalChecker")
            .field("props", &self.props.len())
            .field("findings", &self.findings)
            .field("max_tick", &self.max_tick)
            .field("finished", &self.finished)
            .finish()
    }
}

impl TemporalChecker {
    /// Builds the shipped seven-rule catalogue.
    pub fn standard(config: CheckerConfig) -> Self {
        let mut props: Vec<Box<dyn Property>> = Vec::new();

        // TEMP-STARVE — liveness: arrival leads-to admit/terminal-reject
        // within the policy bound.
        if let Some(bound) = config.starve_bound_ticks {
            props.push(Box::new(leads_to_within(
                TempRule::Starvation,
                bound,
                "queued request must be admitted or terminally rejected",
                |ev| match ev {
                    TraceEvent::Arrival { id, .. } => Some(Subject::Request(*id)),
                    _ => None,
                },
                |ev| match ev {
                    TraceEvent::Admitted { id, .. } | TraceEvent::Rejected { id, .. } => {
                        Some(Subject::Request(*id))
                    }
                    _ => None,
                },
            )));
        }

        // TEMP-DRAIN — convergence: a silent drain step (no move, no
        // explicit skip, residents remaining) opens a stall window that
        // any progress step closes.
        props.push(Box::new(leads_to_within(
            TempRule::DrainConvergence,
            config.drain_stall_ticks,
            "silently stalled drain must make progress or finish",
            |ev| match ev {
                TraceEvent::DrainStep {
                    chip,
                    moved: 0,
                    skipped: 0,
                    remaining,
                    ..
                } if *remaining > 0 => Some(Subject::Chip(*chip)),
                _ => None,
            },
            |ev| match ev {
                TraceEvent::DrainStep {
                    chip,
                    moved,
                    skipped,
                    remaining,
                    ..
                } if *moved > 0 || *skipped > 0 || *remaining == 0 => Some(Subject::Chip(*chip)),
                _ => None,
            },
        )));

        // TEMP-FAULT — deadline: a detected outage resolves (recovered,
        // lost, or departed) by the recovery deadline...
        props.push(Box::new(leads_to_within(
            TempRule::FaultDeadline,
            config.max_recovery_ticks,
            "detected outage must be recovered, lost, or departed",
            |ev| match ev {
                TraceEvent::RecoveryDetected { chip, vm, .. } => Some(tenant(*chip, *vm)),
                _ => None,
            },
            |ev| match ev {
                TraceEvent::Recovered { chip, vm, .. }
                | TraceEvent::TenantLost { chip, vm, .. }
                | TraceEvent::Departed { chip, vm, .. } => Some(tenant(*chip, *vm)),
                _ => None,
            },
        )));
        // ...and the resolution events themselves must respect the
        // deadline: never recovered *after* it, never declared lost
        // *before* it. Catches traces where the obligation was closed
        // with a forged outcome.
        let deadline = config.max_recovery_ticks;
        props.push(Box::new(always(
            TempRule::FaultDeadline,
            move |ev| match *ev {
                TraceEvent::Recovered {
                    tick,
                    chip,
                    vm,
                    onset_tick,
                    ..
                } if tick.saturating_sub(onset_tick) > deadline => Some((
                    tenant(chip, vm),
                    format!(
                        "recovered {} ticks after detection (deadline {deadline})",
                        tick.saturating_sub(onset_tick)
                    ),
                )),
                TraceEvent::TenantLost {
                    tick,
                    chip,
                    vm,
                    onset_tick,
                } if tick.saturating_sub(onset_tick) < deadline => Some((
                    tenant(chip, vm),
                    format!(
                        "declared lost only {} ticks after detection (deadline {deadline})",
                        tick.saturating_sub(onset_tick)
                    ),
                )),
                _ => None,
            },
        )));

        // TEMP-COST — conservation: per dimension, the sum of paid
        // costs over the trace equals the report's claimed totals.
        props.push(Box::new(conserved(
            TempRule::CostConservation,
            |ev| match ev {
                TraceEvent::Migrated { cost, .. } => vec![
                    ("migrations", 1),
                    ("reconfig.routing_cycles", cost.routing_cycles),
                    ("reconfig.rtt_cycles", cost.rtt_cycles),
                    ("reconfig.data_move_bytes", cost.data_move_bytes),
                    ("reconfig.paused_cycles", cost.paused_cycles),
                ],
                TraceEvent::DrainMove { cost, .. } => vec![
                    ("drain_migrations", 1),
                    ("drain_reconfig.routing_cycles", cost.routing_cycles),
                    ("drain_reconfig.rtt_cycles", cost.rtt_cycles),
                    ("drain_reconfig.data_move_bytes", cost.data_move_bytes),
                    ("drain_reconfig.paused_cycles", cost.paused_cycles),
                ],
                TraceEvent::RecoveryPaid { cost, .. } => vec![
                    ("recovery_reconfig.routing_cycles", cost.routing_cycles),
                    ("recovery_reconfig.rtt_cycles", cost.rtt_cycles),
                    ("recovery_reconfig.data_move_bytes", cost.data_move_bytes),
                    ("recovery_reconfig.paused_cycles", cost.paused_cycles),
                ],
                _ => Vec::new(),
            },
            |ev| match ev {
                TraceEvent::ReportClaim {
                    migrations,
                    drain_migrations,
                    reconfig,
                    drain_reconfig,
                    recovery_reconfig,
                    ..
                } => Some(vec![
                    ("migrations", *migrations),
                    ("reconfig.routing_cycles", reconfig.routing_cycles),
                    ("reconfig.rtt_cycles", reconfig.rtt_cycles),
                    ("reconfig.data_move_bytes", reconfig.data_move_bytes),
                    ("reconfig.paused_cycles", reconfig.paused_cycles),
                    ("drain_migrations", *drain_migrations),
                    (
                        "drain_reconfig.routing_cycles",
                        drain_reconfig.routing_cycles,
                    ),
                    ("drain_reconfig.rtt_cycles", drain_reconfig.rtt_cycles),
                    (
                        "drain_reconfig.data_move_bytes",
                        drain_reconfig.data_move_bytes,
                    ),
                    ("drain_reconfig.paused_cycles", drain_reconfig.paused_cycles),
                    (
                        "recovery_reconfig.routing_cycles",
                        recovery_reconfig.routing_cycles,
                    ),
                    ("recovery_reconfig.rtt_cycles", recovery_reconfig.rtt_cycles),
                    (
                        "recovery_reconfig.data_move_bytes",
                        recovery_reconfig.data_move_bytes,
                    ),
                    (
                        "recovery_reconfig.paused_cycles",
                        recovery_reconfig.paused_cycles,
                    ),
                ]),
                _ => None,
            },
        )));

        // TEMP-CACHE — cumulative counters are internally consistent
        // and never regress.
        props.push(Box::new(always(TempRule::CacheConservation, |ev| {
            match *ev {
                TraceEvent::CacheSample {
                    hits,
                    misses,
                    lookups,
                    ..
                } if hits.saturating_add(misses) != lookups => Some((
                    Subject::Fleet,
                    format!("cache sample inconsistent: {hits} hits + {misses} misses != {lookups} lookups"),
                )),
                _ => None,
            }
        })));
        props.push(Box::new(monotone(
            TempRule::CacheConservation,
            "cumulative cache hits",
            |ev| match ev {
                TraceEvent::CacheSample { hits, .. } => Some((Subject::Fleet, *hits)),
                _ => None,
            },
        )));
        props.push(Box::new(monotone(
            TempRule::CacheConservation,
            "cumulative cache misses",
            |ev| match ev {
                TraceEvent::CacheSample { misses, .. } => Some((Subject::Fleet, *misses)),
                _ => None,
            },
        )));

        // TEMP-LEAK — quiescence implies a fully coalesced, leak-free
        // free state. Coalescence is only provable on healthy hardware:
        // dead cores may legitimately split a chip's free region.
        props.push(Box::new(always(TempRule::QuiescenceLeak, |ev| {
            if let TraceEvent::Quiesced {
                live_vnpus,
                leaked_cores,
                leaked_hbm_bytes,
                faulted_cores,
                free_components,
                chips,
                ..
            } = *ev
            {
                if live_vnpus != 0 || leaked_cores != 0 || leaked_hbm_bytes != 0 {
                    return Some((
                        Subject::Fleet,
                        format!(
                            "quiescence leak: {live_vnpus} live vNPUs, \
                             {leaked_cores} cores and {leaked_hbm_bytes} HBM bytes still held"
                        ),
                    ));
                }
                if faulted_cores == 0 && free_components != chips {
                    return Some((
                        Subject::Fleet,
                        format!(
                            "quiescent free state not coalesced: {free_components} \
                             free components across {chips} healthy chips"
                        ),
                    ));
                }
            }
            None
        })));

        // TEMP-HINT — an emitted fit hint never exceeds the largest
        // schedulable free island at the start of its admission pass
        // (free regions only shrink during a pass, so the pass-start
        // island is a sound upper bound for every hint in the pass).
        if config.check_hints {
            let mut island: Option<(u64, u32)> = None;
            props.push(Box::new(always(
                TempRule::HintSoundness,
                move |ev| match *ev {
                    TraceEvent::AdmissionStart {
                        tick,
                        largest_island,
                    } => {
                        island = Some((tick, largest_island));
                        None
                    }
                    TraceEvent::HintEmitted { tick, id, cores } => match island {
                        Some((pass_tick, bound)) if pass_tick == tick && cores > bound => Some((
                            Subject::Request(id),
                            format!(
                                "hinted {cores} cores but the largest schedulable \
                                 free island at pass start was {bound}"
                            ),
                        )),
                        _ => None,
                    },
                    _ => None,
                },
            )));
        }

        TemporalChecker {
            props,
            findings: Vec::new(),
            max_tick: 0,
            finished: false,
        }
    }

    /// Feeds one event to every property.
    pub fn observe(&mut self, ev: &TraceEvent) {
        self.max_tick = self.max_tick.max(ev.tick());
        for prop in &mut self.props {
            prop.observe(ev, &mut self.findings);
        }
    }

    /// Closes the stream: obligations whose deadline already passed at
    /// the last observed tick are flagged; obligations still inside
    /// their window are not. Idempotent.
    pub fn finish(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let max_tick = self.max_tick;
        for prop in &mut self.props {
            prop.finish(max_tick, &mut self.findings);
        }
    }

    /// The findings proven so far (all of them, after [`Self::finish`]).
    pub fn findings(&self) -> &[TemporalFinding] {
        &self.findings
    }

    /// Consumes the checker, returning its findings.
    pub fn into_findings(mut self) -> Vec<TemporalFinding> {
        self.finish();
        self.findings
    }
}

/// Runs the standard catalogue offline over a recorded trace.
pub fn check_trace(events: &[TraceEvent], config: CheckerConfig) -> Vec<TemporalFinding> {
    let mut checker = TemporalChecker::standard(config);
    for ev in events {
        checker.observe(ev);
    }
    checker.into_findings()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::RecoveryKind;
    use vnpu::plan::ReconfigCost;

    fn cfg() -> CheckerConfig {
        CheckerConfig {
            starve_bound_ticks: Some(8),
            ..CheckerConfig::default()
        }
    }

    #[test]
    fn empty_trace_is_clean() {
        assert!(check_trace(&[], cfg()).is_empty());
    }

    #[test]
    fn on_schedule_recovery_is_clean_and_late_recovery_fires() {
        let detect = TraceEvent::RecoveryDetected {
            tick: 10,
            chip: 0,
            vm: 3,
        };
        let on_time = TraceEvent::Recovered {
            tick: 18, // exactly at the 8-tick deadline
            chip: 0,
            vm: 3,
            kind: RecoveryKind::Remapped,
            onset_tick: 10,
        };
        assert!(check_trace(&[detect, on_time], cfg()).is_empty());

        let late = TraceEvent::Recovered {
            tick: 25,
            chip: 0,
            vm: 3,
            kind: RecoveryKind::Remapped,
            onset_tick: 10,
        };
        let findings = check_trace(&[detect, late], cfg());
        assert!(
            findings.iter().all(|f| f.rule == TempRule::FaultDeadline),
            "{findings:?}"
        );
        assert!(!findings.is_empty());
    }

    #[test]
    fn unresolved_outage_fires_at_finish() {
        let findings = check_trace(
            &[
                TraceEvent::RecoveryDetected {
                    tick: 0,
                    chip: 1,
                    vm: 9,
                },
                TraceEvent::Executed {
                    tick: 40,
                    chip: 1,
                    machine_cycles: 1,
                },
            ],
            cfg(),
        );
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, TempRule::FaultDeadline);
        assert_eq!(findings[0].subject, Subject::Tenant { chip: 1, vm: 9 });
    }

    #[test]
    fn silent_drain_stall_fires_and_explicit_skips_do_not() {
        let silent = |tick| TraceEvent::DrainStep {
            tick,
            chip: 2,
            moved: 0,
            skipped: 0,
            remaining: 4,
        };
        let skipping = |tick| TraceEvent::DrainStep {
            tick,
            chip: 2,
            moved: 0,
            skipped: 1,
            remaining: 4,
        };
        let trace: Vec<TraceEvent> = (0..20).map(silent).collect();
        let findings = check_trace(&trace, cfg());
        assert_eq!(findings.len(), 1, "one stall window, one finding");
        assert_eq!(findings[0].rule, TempRule::DrainConvergence);
        assert_eq!(findings[0].subject, Subject::Chip(2));

        let trace: Vec<TraceEvent> = (0..40).map(skipping).collect();
        assert!(
            check_trace(&trace, cfg()).is_empty(),
            "explicit stall is not silent"
        );
    }

    #[test]
    fn hint_beyond_pass_start_island_fires() {
        let trace = [
            TraceEvent::AdmissionStart {
                tick: 5,
                largest_island: 8,
            },
            TraceEvent::HintEmitted {
                tick: 5,
                id: 7,
                cores: 9,
            },
        ];
        let findings = check_trace(&trace, cfg());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, TempRule::HintSoundness);
        assert_eq!(findings[0].subject, Subject::Request(7));

        let quiet = CheckerConfig {
            check_hints: false,
            ..CheckerConfig::default()
        };
        assert!(check_trace(&trace, quiet).is_empty());
    }

    #[test]
    fn cost_claim_mismatch_fires_per_dimension() {
        let cost = ReconfigCost {
            routing_cycles: 2,
            rtt_cycles: 3,
            data_move_bytes: 64,
            paused_cycles: 5,
        };
        let trace = [
            TraceEvent::Migrated {
                tick: 1,
                chip: 0,
                vm: 0,
                cost,
            },
            TraceEvent::ReportClaim {
                tick: 2,
                migrations: 1,
                drain_migrations: 0,
                reconfig: ReconfigCost {
                    paused_cycles: 6, // inflated
                    ..cost
                },
                drain_reconfig: ReconfigCost::default(),
                recovery_reconfig: ReconfigCost::default(),
            },
        ];
        let findings = check_trace(&trace, cfg());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, TempRule::CostConservation);
        assert!(findings[0].detail.contains("paused_cycles"));
    }

    #[test]
    fn checker_debug_and_finish_are_idempotent() {
        let mut checker = TemporalChecker::standard(cfg());
        checker.observe(&TraceEvent::Arrival { tick: 0, id: 1 });
        checker.finish();
        checker.finish();
        let dbg = format!("{checker:?}");
        assert!(dbg.contains("TemporalChecker"), "{dbg}");
    }
}
