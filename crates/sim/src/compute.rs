//! Gemmini-style compute timing for systolic arrays and vector units.
//!
//! The model follows the standard output-stationary systolic dataflow: a
//! `D×D` array computes one `D×D` output tile per `K + 2D` cycles (stream
//! `K` partial sums through, plus pipeline fill/drain), so an `M×K·K×N`
//! matmul takes `⌈M/D⌉·⌈N/D⌉·(K + 2D)` cycles plus a fixed issue overhead.
//! Convolutions are lowered to im2col matmuls, the lowering Gemmini itself
//! uses. These land within ~1.5× of the absolute kernel times the paper
//! reports in Figures 12–13 (Conv ~10⁴ cycles, Matmul ~5·10³ on the
//! 16×16 FPGA tile), preserving the orders-of-magnitude relationships the
//! micro-benchmarks rely on.

use crate::config::SocConfig;
use crate::isa::{out_dim, Kernel};

/// Fixed instruction-issue overhead per kernel invocation, cycles.
pub const KERNEL_ISSUE_OVERHEAD: u64 = 50;

/// im2col lowering inefficiency for convolutions: input patches are
/// rebuilt on the fly, costing roughly a third of extra cycles over an
/// equal-MAC matmul (calibrated against the paper's Figure 13 kernel
/// times, where `Conv32hw16c_16oc3k` at 2.07 GMAC takes 2.8× the cycles of
/// the nearly-equal-MAC `Matmul_128m_128k_128n`).
pub const CONV_IM2COL_NUM: u64 = 4;
/// Denominator of the im2col factor.
pub const CONV_IM2COL_DEN: u64 = 3;

/// Cycles the tile's compute units are occupied by `kernel`.
pub fn kernel_cycles(cfg: &SocConfig, kernel: &Kernel) -> u64 {
    let d = u64::from(cfg.systolic_dim);
    match *kernel {
        Kernel::Matmul { m, k, n } => matmul_cycles(d, m.into(), k.into(), n.into()),
        Kernel::Conv {
            hw,
            in_ch,
            out_ch,
            kernel,
            stride,
        } => {
            let out = u64::from(out_dim(hw, kernel, stride));
            let m = out * out;
            let k = u64::from(in_ch) * u64::from(kernel) * u64::from(kernel);
            let n = u64::from(out_ch);
            matmul_cycles(d, m, k, n) * CONV_IM2COL_NUM / CONV_IM2COL_DEN
        }
        Kernel::Vector { elems } => {
            KERNEL_ISSUE_OVERHEAD + elems.div_ceil(u64::from(cfg.vector_lanes))
        }
    }
}

fn matmul_cycles(d: u64, m: u64, k: u64, n: u64) -> u64 {
    if m == 0 || k == 0 || n == 0 {
        return KERNEL_ISSUE_OVERHEAD;
    }
    let tiles = m.div_ceil(d) * n.div_ceil(d);
    KERNEL_ISSUE_OVERHEAD + tiles * (k + 2 * d)
}

/// Achieved MAC utilization of running `kernel` alone on one tile, in
/// `[0, 1]` — the metric behind the paper's Figure 3 motivation.
pub fn kernel_utilization(cfg: &SocConfig, kernel: &Kernel) -> f64 {
    let cycles = kernel_cycles(cfg, kernel);
    if cycles == 0 {
        return 0.0;
    }
    let peak_macs = cycles * u64::from(cfg.systolic_dim) * u64::from(cfg.systolic_dim);
    kernel.macs() as f64 / peak_macs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fpga() -> SocConfig {
        SocConfig::fpga()
    }

    #[test]
    fn matmul_matches_formula() {
        // 128x128x128 on 16-dim SA: 8*8 tiles * (128 + 32) = 10240 + overhead.
        let c = kernel_cycles(
            &fpga(),
            &Kernel::Matmul {
                m: 128,
                k: 128,
                n: 128,
            },
        );
        assert_eq!(c, KERNEL_ISSUE_OVERHEAD + 64 * 160);
    }

    #[test]
    fn paper_fig13_kernels_are_right_magnitude() {
        let cfg = fpga();
        // Paper: Conv32hw16c_16oc3k = 13474 clk, Matmul_128m_128k_128n = 4836,
        // Conv16hw64c_128oc3k = 96912, Matmul_64m_512k_32n = 5212.
        let conv_a = kernel_cycles(
            &cfg,
            &Kernel::Conv {
                hw: 32,
                in_ch: 16,
                out_ch: 16,
                kernel: 3,
                stride: 1,
            },
        );
        let mm_a = kernel_cycles(
            &cfg,
            &Kernel::Matmul {
                m: 128,
                k: 128,
                n: 128,
            },
        );
        let conv_b = kernel_cycles(
            &cfg,
            &Kernel::Conv {
                hw: 16,
                in_ch: 64,
                out_ch: 128,
                kernel: 3,
                stride: 1,
            },
        );
        let mm_b = kernel_cycles(
            &cfg,
            &Kernel::Matmul {
                m: 64,
                k: 512,
                n: 32,
            },
        );
        for (ours, paper) in [
            (conv_a, 13474u64),
            (mm_a, 4836),
            (conv_b, 96912),
            (mm_b, 5212),
        ] {
            let ratio = ours as f64 / paper as f64;
            assert!(
                (0.3..3.0).contains(&ratio),
                "kernel time {ours} too far from paper's {paper}"
            );
        }
    }

    #[test]
    fn bigger_array_is_faster() {
        let small = kernel_cycles(
            &SocConfig::fpga(),
            &Kernel::Matmul {
                m: 256,
                k: 256,
                n: 256,
            },
        );
        let large = kernel_cycles(
            &SocConfig::sim(),
            &Kernel::Matmul {
                m: 256,
                k: 256,
                n: 256,
            },
        );
        assert!(large < small);
    }

    #[test]
    fn vector_scales_with_lanes() {
        let cfg = fpga();
        let v = kernel_cycles(&cfg, &Kernel::Vector { elems: 1600 });
        assert_eq!(v, KERNEL_ISSUE_OVERHEAD + 100);
    }

    #[test]
    fn degenerate_kernels() {
        let cfg = fpga();
        assert_eq!(
            kernel_cycles(&cfg, &Kernel::Matmul { m: 0, k: 8, n: 8 }),
            KERNEL_ISSUE_OVERHEAD
        );
        assert_eq!(
            kernel_cycles(&cfg, &Kernel::Vector { elems: 0 }),
            KERNEL_ISSUE_OVERHEAD
        );
    }

    #[test]
    fn utilization_bounded_and_sane() {
        let cfg = fpga();
        // Perfectly tiled big matmul: high utilization.
        let big = kernel_utilization(
            &cfg,
            &Kernel::Matmul {
                m: 512,
                k: 2048,
                n: 512,
            },
        );
        assert!(big > 0.8, "big matmul utilization {big}");
        // Tiny matmul: terrible utilization.
        let tiny = kernel_utilization(&cfg, &Kernel::Matmul { m: 4, k: 4, n: 4 });
        assert!(tiny < 0.05, "tiny matmul utilization {tiny}");
        for u in [big, tiny] {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn small_models_underutilize_big_chip() {
        // The Figure 3 motivation: the same kernel that nearly saturates the
        // FPGA tile badly underutilizes the 128-dim SIM tile.
        let k = Kernel::Matmul {
            m: 64,
            k: 512,
            n: 32,
        };
        let small = kernel_utilization(&SocConfig::fpga(), &k);
        let large = kernel_utilization(&SocConfig::sim(), &k);
        assert!(large < small / 2.0, "large {large} vs small {small}");
    }
}
