//! Buddy allocator for the NPU's global memory (HBM/DRAM).
//!
//! The paper's hypervisor "utilizes the traditional buddy system for memory
//! allocation, and records address mappings in the range translation table.
//! Unlike the page table which needs to partition blocks from the buddy
//! system into fixed-size pages, vNPU maps an entire block directly into
//! the RTT entry with the block size" (§5.2). [`BuddyAllocator::alloc`]
//! therefore returns the *whole block* (address + rounded-up size) so the
//! caller can install it as a single range.

use crate::{MemError, PhysAddr, Result};
use std::collections::{BTreeSet, HashMap};

/// A power-of-two buddy allocator over a contiguous physical region.
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    base: PhysAddr,
    min_block: u64,
    /// `free[o]` holds offsets (from `base`) of free blocks of size
    /// `min_block << o`.
    free: Vec<BTreeSet<u64>>,
    /// Allocated block start offset → order.
    allocated: HashMap<u64, usize>,
    total: u64,
    in_use: u64,
}

/// A block handed out by [`BuddyAllocator::alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Physical start address.
    pub addr: PhysAddr,
    /// Block size in bytes (power of two, ≥ the requested size).
    pub size: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `total` bytes starting at `base`, with
    /// the given minimum block size.
    ///
    /// # Panics
    ///
    /// Panics if `min_block` is not a power of two, or `total` is not a
    /// multiple of `min_block`, or `total == 0`.
    pub fn new(base: PhysAddr, total: u64, min_block: u64) -> Self {
        assert!(
            min_block.is_power_of_two(),
            "min_block must be a power of two"
        );
        assert!(
            total > 0 && total % min_block == 0,
            "total must be a positive multiple of min_block"
        );
        let max_order = {
            let mut o = 0;
            while (min_block << (o + 1)) <= total {
                o += 1;
            }
            o
        };
        let mut free: Vec<BTreeSet<u64>> = vec![BTreeSet::new(); max_order + 1];
        // Seed with maximal blocks greedily (handles non-power-of-two totals).
        let mut off = 0u64;
        while off < total {
            let remaining = total - off;
            let mut o = max_order;
            loop {
                let sz = min_block << o;
                if sz <= remaining && off % sz == 0 {
                    free[o].insert(off);
                    off += sz;
                    break;
                }
                o -= 1;
            }
        }
        BuddyAllocator {
            base,
            min_block,
            free,
            allocated: HashMap::new(),
            total,
            in_use: 0,
        }
    }

    /// Total managed bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Bytes currently allocated (counting buddy rounding).
    pub fn used_bytes(&self) -> u64 {
        self.in_use
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.total - self.in_use
    }

    fn order_for(&self, size: u64) -> usize {
        let mut o = 0;
        while (self.min_block << o) < size {
            o += 1;
        }
        o
    }

    /// Allocates a block of at least `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if no sufficiently large block is
    /// free (external fragmentation counts: the buddy system cannot merge
    /// non-buddy neighbors).
    pub fn alloc(&mut self, size: u64) -> Result<Block> {
        if size == 0 {
            return Err(MemError::OutOfMemory { requested: 0 });
        }
        let want = self.order_for(size);
        if want >= self.free.len() {
            return Err(MemError::OutOfMemory { requested: size });
        }
        // Find the smallest order ≥ want with a free block.
        let mut o = want;
        while o < self.free.len() && self.free[o].is_empty() {
            o += 1;
        }
        if o == self.free.len() {
            return Err(MemError::OutOfMemory { requested: size });
        }
        let off = *self.free[o].iter().next().expect("non-empty set");
        self.free[o].remove(&off);
        // Split down to the wanted order.
        while o > want {
            o -= 1;
            let buddy = off + (self.min_block << o);
            self.free[o].insert(buddy);
        }
        self.allocated.insert(off, want);
        let bytes = self.min_block << want;
        self.in_use += bytes;
        Ok(Block {
            addr: self.base.offset(off),
            size: bytes,
        })
    }

    /// Frees a previously allocated block, coalescing buddies.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidFree`] if `addr` is not the start of a
    /// live allocation.
    pub fn free(&mut self, addr: PhysAddr) -> Result<()> {
        let off = addr
            .value()
            .checked_sub(self.base.value())
            .ok_or(MemError::InvalidFree { pa: addr })?;
        let order = self
            .allocated
            .remove(&off)
            .ok_or(MemError::InvalidFree { pa: addr })?;
        self.in_use -= self.min_block << order;
        let mut off = off;
        let mut o = order;
        // Coalesce while the buddy is free.
        while o + 1 < self.free.len() {
            let buddy = off ^ (self.min_block << o);
            if self.free[o].remove(&buddy) {
                off = off.min(buddy);
                o += 1;
            } else {
                break;
            }
        }
        self.free[o].insert(off);
        Ok(())
    }

    /// Largest currently-free block size in bytes (0 when full).
    pub fn largest_free_block(&self) -> u64 {
        for o in (0..self.free.len()).rev() {
            if !self.free[o].is_empty() {
                return self.min_block << o;
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc_kb(b: &mut BuddyAllocator, kb: u64) -> Block {
        b.alloc(kb * 1024).unwrap()
    }

    #[test]
    fn rounds_to_power_of_two() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 1 << 20, 4096);
        let blk = b.alloc(5000).unwrap();
        assert_eq!(blk.size, 8192);
        assert_eq!(b.used_bytes(), 8192);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut b = BuddyAllocator::new(PhysAddr(0x1000_0000), 1 << 20, 4096);
        let mut blocks = Vec::new();
        for i in 1..=20u64 {
            blocks.push(b.alloc(i * 3000).unwrap());
        }
        blocks.sort_by_key(|blk| blk.addr);
        for w in blocks.windows(2) {
            assert!(
                w[0].addr.value() + w[0].size <= w[1].addr.value(),
                "overlap between {:?} and {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn free_and_coalesce_restores_full_block() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 1 << 20, 4096);
        let a1 = alloc_kb(&mut b, 256);
        let a2 = alloc_kb(&mut b, 256);
        let a3 = alloc_kb(&mut b, 512);
        assert_eq!(b.free_bytes(), 0);
        b.free(a1.addr).unwrap();
        b.free(a2.addr).unwrap();
        b.free(a3.addr).unwrap();
        assert_eq!(b.free_bytes(), 1 << 20);
        assert_eq!(b.largest_free_block(), 1 << 20);
        // And the whole megabyte is allocatable again.
        let big = b.alloc(1 << 20).unwrap();
        assert_eq!(big.size, 1 << 20);
    }

    #[test]
    fn out_of_memory() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 64 * 1024, 4096);
        assert!(matches!(
            b.alloc(128 * 1024),
            Err(MemError::OutOfMemory { requested }) if requested == 128 * 1024
        ));
        let _ = b.alloc(64 * 1024).unwrap();
        assert!(b.alloc(4096).is_err());
    }

    #[test]
    fn double_free_rejected() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 1 << 20, 4096);
        let blk = b.alloc(4096).unwrap();
        b.free(blk.addr).unwrap();
        assert_eq!(
            b.free(blk.addr),
            Err(MemError::InvalidFree { pa: blk.addr })
        );
    }

    #[test]
    fn free_of_interior_address_rejected() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 1 << 20, 4096);
        let blk = b.alloc(8192).unwrap();
        assert!(b.free(blk.addr.offset(4096)).is_err());
        assert!(b.free(PhysAddr(0xffff_ffff)).is_err());
    }

    #[test]
    fn zero_alloc_rejected() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 1 << 20, 4096);
        assert!(b.alloc(0).is_err());
    }

    #[test]
    fn fragmentation_limits_largest_block() {
        let mut b = BuddyAllocator::new(PhysAddr(0), 64 * 1024, 4096);
        // Carve into sixteen 4 KiB blocks, free every other one: plenty of
        // free bytes, but nothing larger than 4 KiB.
        let blocks: Vec<Block> = (0..16).map(|_| b.alloc(4096).unwrap()).collect();
        for blk in blocks.iter().step_by(2) {
            b.free(blk.addr).unwrap();
        }
        assert_eq!(b.free_bytes(), 32 * 1024);
        assert_eq!(b.largest_free_block(), 4096);
        assert!(b.alloc(8192).is_err());
    }

    #[test]
    fn base_offset_respected() {
        let mut b = BuddyAllocator::new(PhysAddr(0x8000_0000), 1 << 20, 4096);
        let blk = b.alloc(4096).unwrap();
        assert!(blk.addr.value() >= 0x8000_0000);
        b.free(blk.addr).unwrap();
    }

    #[test]
    fn non_power_of_two_total_seeds_multiple_roots() {
        // 3 MiB total: should seed a 2 MiB and a 1 MiB root block.
        let mut b = BuddyAllocator::new(PhysAddr(0), 3 << 20, 4096);
        let a = b.alloc(2 << 20).unwrap();
        let c = b.alloc(1 << 20).unwrap();
        assert_eq!(a.size + c.size, 3 << 20);
        assert!(b.alloc(4096).is_err());
    }
}
