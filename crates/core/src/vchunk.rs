//! vChunk service construction: per-core translators over the hypervisor's
//! memory plan, plus bandwidth limiting (§4.2).
//!
//! The hypervisor allocates whole buddy blocks and maps each directly into
//! one RTT entry (§5.2); this module turns that entry list into the
//! translation hardware each bound core carries: a [`RangeTranslator`]
//! (vChunk proper), a [`PageTranslator`] (the IOTLB baseline of Figure
//! 14), or a [`PhysicalTranslator`] (the no-translation ideal).

use vnpu_mem::page::{PageTable, PageTranslator};
use vnpu_mem::rtt::{RangeTranslationTable, RangeTranslator, RttEntry};
use vnpu_mem::translate::PhysicalTranslator;
use vnpu_mem::{MemError, Translate, TranslationCosts};

/// Default page size for the page-based baseline.
pub const UVM_PAGE_SIZE: u64 = 4096;

/// Default monitoring window of the access counter, in cycles.
pub const BANDWIDTH_WINDOW_CYCLES: u64 = 10_000;

/// Which memory-virtualization mechanism a core uses — the Figure 14
/// comparison axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemMode {
    /// No translation (the "Physical Mem" ideal).
    Physical,
    /// vChunk range translation with the given hardware range-TLB entries.
    Range {
        /// Range-TLB entries (the paper evaluates 4).
        tlb_entries: usize,
    },
    /// Page-based translation with an IOTLB (the paper evaluates 4 and 32).
    Page {
        /// IOTLB entries.
        tlb_entries: usize,
    },
}

impl MemMode {
    /// The paper's default vChunk configuration (4 range-TLB entries).
    pub fn vchunk() -> Self {
        MemMode::Range { tlb_entries: 4 }
    }
}

/// Builds a boxed translator over the virtual NPU's RTT entry list.
///
/// # Errors
///
/// Propagates table-construction errors (overlapping ranges); page tables
/// additionally require entry addresses to be page-aligned (buddy blocks
/// are, by construction).
pub fn build_translator(
    entries: &[RttEntry],
    mode: MemMode,
    costs: TranslationCosts,
) -> Result<Box<dyn Translate + Send>, MemError> {
    match mode {
        MemMode::Physical => Ok(Box::new(PhysicalTranslator::new())),
        MemMode::Range { tlb_entries } => {
            let table = RangeTranslationTable::new(entries.to_vec())?;
            Ok(Box::new(RangeTranslator::new(table, tlb_entries, costs)))
        }
        MemMode::Page { tlb_entries } => {
            let mut table = PageTable::new(UVM_PAGE_SIZE);
            for e in entries {
                table.map_range(e.va, e.pa, e.size, e.perm)?;
            }
            Ok(Box::new(PageTranslator::new(table, tlb_entries, costs)))
        }
    }
}

/// Number of 4 KiB pages the same plan costs under page-based translation
/// (table-size comparison for [`crate::hwcost`]).
pub fn page_count(entries: &[RttEntry]) -> u64 {
    entries.iter().map(|e| e.size.div_ceil(UVM_PAGE_SIZE)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vnpu_mem::{Perm, PhysAddr, VirtAddr};

    fn entries() -> Vec<RttEntry> {
        vec![
            RttEntry::new(
                VirtAddr(0x1000_0000),
                PhysAddr(0x8000_0000),
                1 << 20,
                Perm::RW,
            ),
            RttEntry::new(
                VirtAddr(0x1010_0000),
                PhysAddr(0x9000_0000),
                1 << 19,
                Perm::RW,
            ),
        ]
    }

    #[test]
    fn all_three_modes_translate_consistently() {
        let e = entries();
        let costs = TranslationCosts::default();
        let mut range = build_translator(&e, MemMode::vchunk(), costs).unwrap();
        let mut page = build_translator(&e, MemMode::Page { tlb_entries: 32 }, costs).unwrap();
        let va = VirtAddr(0x1000_0040);
        let pr = range.translate(va, 64, Perm::R).unwrap();
        let pp = page.translate(va, 64, Perm::R).unwrap();
        assert_eq!(pr.pa, pp.pa);
        assert_eq!(pr.pa, PhysAddr(0x8000_0040));
    }

    #[test]
    fn physical_mode_is_identity() {
        let mut t = build_translator(&[], MemMode::Physical, TranslationCosts::default()).unwrap();
        let r = t.translate(VirtAddr(0x42), 8, Perm::RW).unwrap();
        assert_eq!(r.pa.value(), 0x42);
    }

    #[test]
    fn page_count_accounting() {
        assert_eq!(page_count(&entries()), 256 + 128);
    }

    #[test]
    fn translator_names_distinguish_modes() {
        let e = entries();
        let costs = TranslationCosts::default();
        assert_eq!(
            build_translator(&e, MemMode::Range { tlb_entries: 4 }, costs)
                .unwrap()
                .name(),
            "vchunk-4"
        );
        assert_eq!(
            build_translator(&e, MemMode::Page { tlb_entries: 32 }, costs)
                .unwrap()
                .name(),
            "iotlb-32"
        );
    }

    #[test]
    fn overlapping_plan_rejected() {
        let bad = vec![
            RttEntry::new(VirtAddr(0x1000), PhysAddr(0), 0x2000, Perm::RW),
            RttEntry::new(VirtAddr(0x2000), PhysAddr(0x10000), 0x1000, Perm::RW),
        ];
        assert!(build_translator(&bad, MemMode::vchunk(), TranslationCosts::default()).is_err());
    }
}
