//! ML workloads for the vNPU simulator: analytic model graphs, a pipeline
//! partitioner, and a compiler that lowers graphs to per-core instruction
//! streams in the IPU-style programming model of §3.1 (every layer pinned
//! to a core, activations forwarded with explicit sends over the NoC,
//! weights streamed from global memory by DMA).
//!
//! * [`graph`] — [`ModelGraph`]: layers with kernels, weight/activation
//!   sizes and dependencies.
//! * [`models`] — the networks of the paper's evaluation: ResNet-18/34/50,
//!   AlexNet, GoogLeNet, MobileNetV1, YOLO-Lite, BERT, GPT-2
//!   small/medium/large, DLRM, EfficientNet, plus the Figure 15
//!   micro-blocks.
//! * [`partition`] — FLOP-balanced contiguous pipeline partitioning onto
//!   `n` virtual cores.
//! * [`compile`] — lowering to [`vnpu_sim::isa::Program`]s with NoC or
//!   UVM (global-memory synchronization) communication.
//! * [`kernels`] — the Figure 12/13 micro-benchmark kernels.
//! * [`traffic`] — broadcast/reduce traffic generators (Figure 13).
//!
//! # Example
//!
//! ```
//! use vnpu_workloads::{models, compile::{self, CompileOptions}};
//! use vnpu_sim::SocConfig;
//!
//! # fn main() -> Result<(), vnpu_workloads::WorkloadError> {
//! let cfg = SocConfig::sim();
//! let model = models::resnet18();
//! let out = compile::compile(&model, 9, &cfg, &CompileOptions::default())?;
//! assert_eq!(out.programs.len(), 9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compile;
pub mod graph;
pub mod kernels;
pub mod models;
pub mod partition;
pub mod traffic;
pub mod transform;

pub use graph::{Layer, LayerId, LayerKind, ModelGraph};

use std::fmt;

/// Errors from partitioning and compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// The model has no layers.
    EmptyModel,
    /// Zero cores requested.
    NoCores,
    /// One pipeline stage's weights exceed a tile's scratchpad.
    StageTooLarge {
        /// Stage index.
        stage: usize,
        /// Weight bytes the stage needs resident.
        bytes: u64,
        /// Per-tile scratchpad capacity.
        capacity: u64,
    },
    /// A layer dependency references a later (or missing) layer.
    BadDependency {
        /// The layer with the bad dependency.
        layer: u32,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::EmptyModel => write!(f, "model graph has no layers"),
            WorkloadError::NoCores => write!(f, "at least one core is required"),
            WorkloadError::StageTooLarge {
                stage,
                bytes,
                capacity,
            } => write!(
                f,
                "stage {stage} needs {bytes} weight bytes but a tile holds {capacity}; use more cores"
            ),
            WorkloadError::BadDependency { layer } => {
                write!(f, "layer {layer} depends on a later or missing layer")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Convenience alias for results in this crate.
pub type Result<T> = std::result::Result<T, WorkloadError>;
