//! Drain-for-maintenance demo: a two-chip serving fleet under churn,
//! with chip 0 taken out of service mid-run.
//!
//! The drain lifecycle is `begin_drain` → budgeted `drain_step`s (run
//! automatically by the serve loop's maintenance phase) →
//! `complete_drain` once the chip is empty → `undrain` when the
//! maintenance window closes. While the chip drains, no placement and no
//! fleet fit hint ever names it; its tenants cross to the other chip via
//! create-before-destroy migrations whose `ReconfigCost` (dominated by
//! the data-movement term) is fully accounted in the report.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example drain_serving
//! ```

use std::sync::Arc;
use vnpu::cluster::LeastLoaded;
use vnpu::plan::ReconfigBudget;
use vnpu_serve::{ServeConfig, ServeRuntime};
use vnpu_sim::SocConfig;

fn main() {
    let mut cfg = ServeConfig::cluster(4021, 240, vec![SocConfig::sim(), SocConfig::sim()]);
    cfg.traffic.mean_interarrival_ticks = 2;
    cfg.traffic.mean_lifetime_epochs = 10;
    cfg.placement = Arc::new(LeastLoaded);
    cfg.drain_budget = ReconfigBudget {
        max_migrations: 2,
        ..ReconfigBudget::default()
    };
    let epochs = cfg.epochs;
    println!(
        "two 6x6 chips, {} epochs, seed {} — chip 0 drains for maintenance \
         mid-run (budget: {} moves/epoch)\n",
        epochs, cfg.traffic.seed, cfg.drain_budget.max_migrations
    );

    let mut rt = ServeRuntime::new(cfg);

    // Warm the fleet until chip 0 carries real load.
    while rt.cluster().chip(0).vnpu_count() < 4 {
        rt.step().expect("warm tick");
    }
    println!(
        "tick {:>4}: begin_drain(0) with {} tenants resident on chip 0",
        rt.tick_index(),
        rt.cluster().chip(0).vnpu_count()
    );
    rt.begin_drain(0).expect("begin_drain");

    // The maintenance phase evacuates chip 0, budgeted per epoch.
    while rt.cluster().chip(0).vnpu_count() > 0 {
        let ev = rt.step().expect("drain tick");
        if ev.drain_migrations > 0 {
            println!(
                "tick {:>4}: moved {} tenant(s) off chip 0 — {} remain \
                 (chip 1 now holds {})",
                ev.tick,
                ev.drain_migrations,
                rt.cluster().chip(0).vnpu_count(),
                rt.cluster().chip(1).vnpu_count(),
            );
        }
        assert!(
            ev.admitted.iter().all(|id| id.chip != 0),
            "no placement may land on the draining chip"
        );
    }
    rt.complete_drain(0).expect("chip 0 is empty");
    println!(
        "tick {:>4}: complete_drain(0) — maintenance window open\n",
        rt.tick_index()
    );

    // Maintenance happens off-stage; serving continues on chip 1 alone.
    for _ in 0..10 {
        rt.step().expect("maintenance tick");
    }
    rt.undrain(0).expect("hand the chip back");
    println!(
        "tick {:>4}: undrain(0) — chip 0 schedulable again\n",
        rt.tick_index()
    );

    while rt.tick_index() < epochs {
        rt.step().expect("tick");
    }
    rt.drain().expect("end-of-run drain");
    let report = rt.report();
    println!("{}\n", report.summary());
    println!(
        "maintenance paid for itself in the open: {} tenants evacuated, \
         {} config cycles, {} bytes moved cross-chip, {} tenant-pause cycles",
        report.drain_migrations,
        report.drain_reconfig.config_cycles(),
        report.drain_reconfig.data_move_bytes,
        report.drain_reconfig.paused_cycles,
    );

    assert!(report.drain_migrations > 0, "the drain must move tenants");
    assert_eq!(report.leaked_cores, 0, "no cores leak through a drain");
    assert_eq!(report.leaked_hbm_bytes, 0, "no HBM leaks through a drain");
    assert!(
        report.per_chip.iter().all(|c| c.schedulable()),
        "the whole fleet is back in service"
    );
    println!("\nno leaks, fleet back in service — drains are fully reversible");
}
