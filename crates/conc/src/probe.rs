//! The probe interface and the standard trace-recording probe.
//!
//! A [`ConcProbe`] is the observer every instrumented lock
//! ([`crate::sync`]) and the worker pool report to. Production code
//! holds `Option<Arc<dyn ConcProbe>>` fields that default to `None`;
//! the instrumented paths are a single `Option` check when nothing is
//! installed. [`TraceProbe`] is the standard implementation: it records
//! a global, sequence-numbered event log which [`crate::analysis`]
//! replays per thread.

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use crate::sites::Site;

/// What happened at an instrumented point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A lock at `site` (shard `shard`) was acquired.
    Acquired,
    /// The same lock was released.
    Released,
    /// A worker-pool batch was submitted by this thread. `shard` is
    /// unused (0) and `tag` carries the job count.
    Submit,
}

/// One recorded instrumentation event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Global sequence number (total order over all threads).
    pub seq: u64,
    /// Stable identity of the recording thread (hash of its
    /// [`std::thread::ThreadId`]; stable within a process run).
    pub thread: u64,
    /// The lock site (or, for [`EventKind::Submit`], the pool site).
    pub site: &'static Site,
    /// Shard index for sharded sites; 0 otherwise.
    pub shard: u32,
    /// Optional payload: the key hash for sharded-cache acquisitions
    /// (feeds `CONC-SHARD`), the job count for submissions.
    pub tag: Option<u64>,
    /// What happened.
    pub kind: EventKind,
}

/// A completed recording: the event log of one run, in global sequence
/// order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in ascending `seq` order.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The observer interface instrumented code reports to. Implementations
/// must be cheap and reentrancy-safe: they are called with the observed
/// lock *held*, so they must not take instrumented locks themselves.
pub trait ConcProbe: fmt::Debug + Send + Sync {
    /// A lock at `site` / `shard` was acquired by the calling thread.
    /// `tag` is the key hash for keyed (sharded-cache) acquisitions.
    fn on_acquired(&self, site: &'static Site, shard: u32, tag: Option<u64>);

    /// The matching release.
    fn on_release(&self, site: &'static Site, shard: u32);

    /// The calling thread submitted a worker-pool batch of `jobs` jobs.
    fn on_submit(&self, jobs: usize);
}

fn thread_fingerprint() -> u64 {
    let mut h = DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    h.finish()
}

#[derive(Debug, Default)]
struct TraceInner {
    next_seq: u64,
    events: Vec<TraceEvent>,
}

/// The standard probe: records every event into a global
/// sequence-numbered log. The log lives behind a plain `std` mutex —
/// this probe exists only in instrumented runs, where its cost is the
/// point, and keeping one total order over all threads is what lets the
/// analyses reconstruct per-thread held-sets *and* cross-thread
/// acquisition interleavings from one structure.
#[derive(Debug, Default)]
pub struct TraceProbe {
    inner: Mutex<TraceInner>,
}

impl TraceProbe {
    /// A fresh, empty probe.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, site: &'static Site, shard: u32, tag: Option<u64>, kind: EventKind) {
        let thread = thread_fingerprint();
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.events.push(TraceEvent {
            seq,
            thread,
            site,
            shard,
            tag,
            kind,
        });
    }

    /// Takes the recorded trace, leaving the probe empty for reuse.
    pub fn take_trace(&self) -> Trace {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.next_seq = 0;
        Trace {
            events: std::mem::take(&mut inner.events),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .events
            .len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ConcProbe for TraceProbe {
    fn on_acquired(&self, site: &'static Site, shard: u32, tag: Option<u64>) {
        self.record(site, shard, tag, EventKind::Acquired);
    }

    fn on_release(&self, site: &'static Site, shard: u32) {
        self.record(site, shard, None, EventKind::Released);
    }

    fn on_submit(&self, jobs: usize) {
        self.record(
            &crate::sites::POOL_RX,
            0,
            Some(jobs as u64),
            EventKind::Submit,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites::{CACHE_SHARD, POOL_RX};
    use std::sync::Arc;

    #[test]
    fn trace_probe_records_in_sequence_order() {
        let probe = TraceProbe::new();
        probe.on_acquired(&CACHE_SHARD, 3, Some(42));
        probe.on_release(&CACHE_SHARD, 3);
        probe.on_submit(7);
        let trace = probe.take_trace();
        assert_eq!(trace.len(), 3);
        let seqs: Vec<u64> = trace.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(trace.events[0].kind, EventKind::Acquired);
        assert_eq!(trace.events[0].tag, Some(42));
        assert_eq!(trace.events[2].kind, EventKind::Submit);
        assert_eq!(trace.events[2].site.id, POOL_RX.id);
        assert_eq!(trace.events[2].tag, Some(7));
    }

    #[test]
    fn take_trace_resets_the_probe() {
        let probe = TraceProbe::new();
        probe.on_acquired(&POOL_RX, 0, None);
        assert_eq!(probe.take_trace().len(), 1);
        assert!(probe.is_empty());
        probe.on_acquired(&POOL_RX, 0, None);
        let again = probe.take_trace();
        assert_eq!(again.events[0].seq, 0, "sequence restarts after take");
    }

    #[test]
    fn threads_get_distinct_fingerprints() {
        let probe = Arc::new(TraceProbe::new());
        probe.on_acquired(&POOL_RX, 0, None);
        let p = Arc::clone(&probe);
        std::thread::spawn(move || p.on_acquired(&POOL_RX, 0, None))
            .join()
            .unwrap();
        let trace = probe.take_trace();
        assert_eq!(trace.len(), 2);
        assert_ne!(trace.events[0].thread, trace.events[1].thread);
    }
}
